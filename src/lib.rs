//! # Responsive Parallelism with Futures and State — reproduction
//!
//! This is the facade crate of a Rust reproduction of
//! *Responsive Parallelism with Futures and State* (Muller, Singer,
//! Goldstein, Acar, Agrawal, Lee — PLDI 2020).  It re-exports the workspace
//! crates under short module names so examples and integration tests can use
//! a single dependency:
//!
//! * [`priority`] — partially ordered priority domains and constraint
//!   entailment (`rp-priority`).
//! * [`dag`] — the weak-edge cost-graph model, well-formedness,
//!   a-strengthening, a-span, competitor work, prompt scheduling, and the
//!   Theorem 2.3 response-time bound (`rp-core`).
//! * [`lambda4i`] — the λ⁴ᵢ calculus: syntax, type system, the
//!   graph-emitting stack-machine cost semantics, and the front-end
//!   pipeline (`.l4i` parser, solver-backed priority inference, and the
//!   rp-icilk compilation backend) (`rp-lambda4i`).
//! * [`sim`] — the deterministic discrete-event multicore simulation
//!   substrate (`rp-sim`).
//! * [`icilk`] — the I-Cilk runtime: prioritized futures, two-level adaptive
//!   scheduling, latency-hiding I/O futures, and the priority-oblivious
//!   baseline (`rp-icilk`).
//! * [`apps`] — the proxy / email / jserver case studies and their load
//!   harness (`rp-apps`).
//! * [`net`] — the TCP front end: a length-prefixed protocol over real
//!   loopback sockets, shard threads feeding the runtime, responses
//!   written by the I/O reactor (`rp-net`).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! reproduced tables and figures.
//!
//! ```
//! use responsive_parallelism::priority::PriorityDomain;
//! let dom = PriorityDomain::total_order(["background", "interactive"]).unwrap();
//! assert!(dom.lt(dom.priority("background").unwrap(), dom.priority("interactive").unwrap()));
//! ```

#![forbid(unsafe_code)]

pub use rp_apps as apps;
pub use rp_core as dag;
pub use rp_icilk as icilk;
pub use rp_lambda4i as lambda4i;
pub use rp_net as net;
pub use rp_priority as priority;
pub use rp_sim as sim;
