//! Cross-crate integration tests: λ⁴ᵢ programs → cost graphs → the Section 2
//! analyses, and the I-Cilk runtime serving the case-study workloads.

use responsive_parallelism::apps::harness::ExperimentConfig;
use responsive_parallelism::apps::{email, jserver, proxy};
use responsive_parallelism::dag::prelude::*;
use responsive_parallelism::icilk::runtime::{Runtime, RuntimeConfig, SchedulerKind};
use responsive_parallelism::lambda4i::policy::SelectionPolicy;
use responsive_parallelism::lambda4i::progs;
use responsive_parallelism::lambda4i::run::{run_program, RunConfig};
use responsive_parallelism::lambda4i::typecheck::typecheck_program;
use responsive_parallelism::sim::latency::LatencyModel;
use std::sync::Arc;

fn small_experiment() -> ExperimentConfig {
    ExperimentConfig {
        workers: 2,
        connections: 3,
        requests_per_connection: 3,
        io_latency: LatencyModel::Constant { micros: 200 },
        ..ExperimentConfig::default()
    }
}

#[test]
fn lambda4i_programs_produce_graphs_the_cost_model_accepts() {
    for prog in [
        progs::parallel_fib(6),
        progs::figure1_program(),
        progs::server_with_background(3, 5),
        progs::email_coordination_program(),
    ] {
        typecheck_program(&prog).unwrap_or_else(|e| panic!("{}: {e}", prog.name));
        for policy in [
            SelectionPolicy::Prompt,
            SelectionPolicy::Random { seed: 13 },
        ] {
            let result = run_program(
                &prog,
                &RunConfig {
                    cores: 3,
                    policy,
                    max_steps: 500_000,
                },
            )
            .unwrap_or_else(|e| panic!("{}: {e}", prog.name));
            // Theorem 3.7: well-typed programs yield strongly well-formed,
            // acyclic graphs (acyclicity is enforced by the builder).
            assert!(
                result.graph_report.strongly_well_formed,
                "{} not strongly well-formed",
                prog.name
            );
            assert!(result.graph_report.well_formed, "{} (Lemma 3.4)", prog.name);
            // Executions are admissible schedules of their own graph.
            assert!(result.admissible);
            // Theorem 3.8 / 2.3: no bound counterexamples.
            assert!(!result.any_bound_counterexample(), "{}", prog.name);
        }
    }
}

#[test]
fn machine_schedule_agrees_with_offline_prompt_scheduler_shape() {
    // The response-time advantage of prompt over oblivious shows up both in
    // the offline DAG scheduler and in the machine's D-Par policies.
    let prog = progs::server_with_background(4, 16);
    let hi = prog.domain.priority("interactive").unwrap();
    let cfg = |policy| RunConfig {
        cores: 1,
        policy,
        max_steps: 500_000,
    };
    let prompt = run_program(&prog, &cfg(SelectionPolicy::Prompt)).unwrap();
    let oblivious = run_program(&prog, &cfg(SelectionPolicy::Oblivious)).unwrap();
    let t_prompt = prompt.mean_response_at(hi).unwrap();
    let t_oblivious = oblivious.mean_response_at(hi).unwrap();
    assert!(t_prompt <= t_oblivious);

    // Offline: schedule the prompt run's graph with both offline schedulers.
    let dag = &prompt.graph;
    let interactive_thread = dag
        .threads()
        .find(|&t| dag.thread_priority(t) == hi)
        .expect("an interactive thread exists");
    let off_prompt = prompt_schedule(dag, 1);
    let off_oblivious = oblivious_schedule(dag, 1);
    let r_prompt = off_prompt.response_time(dag, interactive_thread).unwrap();
    let r_oblivious = off_oblivious
        .response_time(dag, interactive_thread)
        .unwrap();
    assert!(r_prompt <= r_oblivious);
}

#[test]
fn icilk_prioritizes_interactive_work_under_contention() {
    // Flood the runtime with background work, then measure an interactive
    // task's response on I-Cilk vs the baseline.  With a single worker the
    // baseline must drain the earlier-enqueued background tasks first.
    let run = |scheduler: SchedulerKind| -> (f64, f64) {
        let rt = Arc::new(Runtime::start(
            RuntimeConfig::new(1, 2)
                .with_level_names(["background", "interactive"])
                .with_scheduler(scheduler),
        ));
        let bg = rt.priority_by_name("background").unwrap();
        let ui = rt.priority_by_name("interactive").unwrap();
        for _ in 0..40 {
            rt.fcreate(bg, || {
                let mut x = 0u64;
                for i in 0..60_000u64 {
                    x = x.wrapping_add(i * i);
                }
                x
            });
        }
        let request = rt.fcreate(ui, || 7u64);
        let started = std::time::Instant::now();
        let _ = rt.ftouch_blocking(&request);
        let response = started.elapsed().as_secs_f64();
        rt.drain(std::time::Duration::from_secs(30));
        let snapshot = rt.metrics();
        let ui_mean = snapshot.mean_response_micros(1).unwrap_or(f64::MAX);
        Arc::try_unwrap(rt).expect("sole owner").shutdown();
        (response, ui_mean)
    };
    let (icilk_resp, icilk_mean) = run(SchedulerKind::ICilk);
    let (baseline_resp, baseline_mean) = run(SchedulerKind::Baseline);
    // The shape of Figure 13: I-Cilk answers the interactive request faster.
    // Use a generous factor to keep the test robust on slow CI machines.
    assert!(
        icilk_resp < baseline_resp * 1.5,
        "icilk {icilk_resp}s vs baseline {baseline_resp}s"
    );
    assert!(
        icilk_mean <= baseline_mean * 1.5,
        "icilk mean {icilk_mean}µs vs baseline mean {baseline_mean}µs"
    );
}

#[test]
fn all_three_case_studies_run_on_both_schedulers() {
    let config = small_experiment();
    let reports = [
        proxy::run_experiment(&config),
        email::run_experiment(&config),
        jserver::run_experiment(&config),
    ];
    for report in &reports {
        assert!(report.icilk.client_response.count() > 0, "{}", report.app);
        assert!(
            report.baseline.client_response.count() > 0,
            "{}",
            report.app
        );
        assert!(
            report.responsiveness_ratio().is_some(),
            "{} produced no ratio",
            report.app
        );
        assert!(!report.figure14_rows().is_empty());
    }
}

#[test]
fn table1_reproduction_has_modest_overheads() {
    let rows = rp_bench_table1();
    assert_eq!(rows.len(), 3);
    for (name, judgment_overhead) in rows {
        assert!(
            (1.0..10.0).contains(&judgment_overhead),
            "{name}: judgment overhead {judgment_overhead} outside the expected modest range"
        );
    }
}

/// Minimal inline re-measurement of the Table 1 quantities (the rp-bench
/// crate is a bin/bench-only crate, so the integration test recomputes the
/// two judgment counts directly).
fn rp_bench_table1() -> Vec<(String, f64)> {
    use responsive_parallelism::lambda4i::typecheck::typecheck_program_with;
    progs::case_studies()
        .into_iter()
        .map(|prog| {
            let with = typecheck_program_with(&prog, true).expect("type checks");
            let without = typecheck_program_with(&prog, false).expect("type checks");
            let w = (with.expr_judgments + with.cmd_judgments + with.entailment_checks) as f64;
            let wo = (without.expr_judgments + without.cmd_judgments) as f64;
            (prog.name.clone(), w / wo.max(1.0))
        })
        .collect()
}

#[test]
fn figures_1_to_3_reproduce_the_papers_claims() {
    use responsive_parallelism::dag::examples::{figure1c, figure2a, figure2b, figure3};
    use responsive_parallelism::dag::strengthen::strengthening;
    use responsive_parallelism::dag::wellformed::{check_strongly_well_formed, check_well_formed};

    // Figure 1(c): no prompt admissible 2-core schedule.
    let (g1c, _) = figure1c();
    let prompt = prompt_schedule(&g1c, 2);
    assert!(prompt.is_prompt(&g1c) && !prompt.is_admissible(&g1c));

    // Figure 2: (a) ill-formed, (b) well-formed.
    let (g2a, _) = figure2a();
    let (g2b, _) = figure2b();
    assert!(check_well_formed(&g2a).is_err());
    assert!(check_well_formed(&g2b).is_ok());
    assert!(check_strongly_well_formed(&g2b).is_ok());

    // Figure 3: the strengthening replaces (u0, u) with (u', u).
    let (g3, v) = figure3();
    let a = g3.thread_by_name("a").unwrap();
    let st = strengthening(&g3, a);
    assert_eq!(st.removed, vec![(v.u0, v.u)]);
    assert_eq!(st.added, vec![(v.u_prime, v.u)]);
}
