//! Property-based tests over the core invariants:
//!
//! * random well-formed DAGs respect Theorem 2.3 under prompt admissible
//!   schedules;
//! * prompt schedules are always prompt, valid, and no longer than twice the
//!   greedy lower bound `max(W/P, span)`;
//! * strengthening never removes high-priority vertices from the a-span's
//!   reach and never makes the a-span larger;
//! * priority-domain entailment is reflexive, transitive, and antisymmetric
//!   on concrete priorities.

use proptest::prelude::*;
use responsive_parallelism::dag::prelude::*;
use responsive_parallelism::dag::random::{RandomDagConfig, RandomDagGenerator};
use responsive_parallelism::priority::{Constraint, PriorityDomain};

fn dag_strategy() -> impl Strategy<Value = (u64, usize, usize)> {
    // (seed, priority levels, depth)
    (0u64..1_000, 1usize..4, 2usize..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_dags_are_well_formed_and_bounded((seed, levels, depth) in dag_strategy()) {
        let config = RandomDagConfig {
            priority_levels: levels,
            max_depth: depth,
            max_children: 3,
            max_thread_len: 4,
            touch_probability: 0.7,
            weak_edge_probability: 0.4,
        };
        let dag = RandomDagGenerator::new(config, seed).generate();
        prop_assert!(check_well_formed(&dag).is_ok());
        prop_assert!(check_strongly_well_formed(&dag).is_ok());

        for cores in [1usize, 2, 4] {
            let schedule = weak_respecting_prompt_schedule(&dag, cores);
            schedule.validate(&dag).unwrap();
            prop_assert!(schedule.is_admissible(&dag));
            let reports = check_bounds_batch(&dag, &schedule);
            for report in reports {
                // Only prompt admissible schedules are covered by the
                // theorem; the weak-respecting scheduler is admissible by
                // construction and usually prompt.  Never a counterexample.
                prop_assert!(!report.is_counterexample(), "{report:?}");
            }
        }
    }

    #[test]
    fn prompt_schedules_are_prompt_and_greedy((seed, levels, depth) in dag_strategy()) {
        let config = RandomDagConfig {
            priority_levels: levels,
            max_depth: depth,
            max_children: 3,
            max_thread_len: 4,
            touch_probability: 0.8,
            weak_edge_probability: 0.0,
        };
        let dag = RandomDagGenerator::new(config, seed).generate();
        for cores in [1usize, 2, 4] {
            let schedule = prompt_schedule(&dag, cores);
            schedule.validate(&dag).unwrap();
            prop_assert!(schedule.is_prompt(&dag));
            // Greedy (Brent-style) upper bound: T ≤ W/P + span.
            let upper = work(&dag) as f64 / cores as f64 + span(&dag) as f64;
            prop_assert!(schedule.len() as f64 <= upper + 1.0);
            // And no schedule beats max(ceil(W/P), span).
            let lower = (work(&dag) as f64 / cores as f64).ceil().max(span(&dag) as f64);
            prop_assert!(schedule.len() as f64 >= lower);
        }
    }

    #[test]
    fn strengthening_only_shortens_the_a_span((seed, levels, depth) in dag_strategy()) {
        let config = RandomDagConfig {
            priority_levels: levels,
            max_depth: depth,
            max_children: 2,
            max_thread_len: 4,
            touch_probability: 0.6,
            weak_edge_probability: 0.5,
        };
        let dag = RandomDagGenerator::new(config, seed).generate();
        for a in dag.threads() {
            let st = strengthening(&dag, a);
            // Replacement edges are only ever added for removed ones.
            prop_assert!(st.added.len() <= st.removed.len());
            // The a-span never exceeds the total work and is at least 1
            // (t itself) unless t is an ancestor of s (impossible).
            let s = a_span(&dag, a);
            prop_assert!(s >= 1 && s <= work(&dag));
            // Competitor work is at most the total work.
            prop_assert!(competitor_work(&dag, a) <= work(&dag));
        }
    }

    #[test]
    fn priority_order_is_a_partial_order(levels in 1usize..6) {
        let dom = PriorityDomain::numeric(levels);
        for a in dom.iter() {
            prop_assert!(dom.leq(a, a));
            for b in dom.iter() {
                if dom.leq(a, b) && dom.leq(b, a) {
                    prop_assert_eq!(a, b);
                }
                for c in dom.iter() {
                    if dom.leq(a, b) && dom.leq(b, c) {
                        prop_assert!(dom.leq(a, c));
                    }
                }
                // Entailment of closed constraints agrees with the order.
                prop_assert_eq!(
                    dom.entails_closed(&Constraint::leq(a, b)),
                    dom.leq(a, b)
                );
            }
        }
    }
}
