//! Seeded property tests over the core invariants:
//!
//! * random well-formed DAGs respect Theorem 2.3 under prompt admissible
//!   schedules;
//! * prompt schedules are always prompt, valid, and within the greedy
//!   (Brent-style) bounds;
//! * the bucketed prompt scheduler produces schedules byte-identical to the
//!   retained naive reference implementation;
//! * CSR neighbour queries agree with a recomputation from the flat edge
//!   list;
//! * strengthening never makes the a-span larger than the total work;
//! * priority-domain entailment is reflexive, transitive, and antisymmetric
//!   on concrete priorities.
//!
//! The build container is offline, so instead of `proptest` these are plain
//! seeded sweeps: every case derives deterministically from a seed, and a
//! failing seed reproduces by running the same test again.

use responsive_parallelism::dag::prelude::*;
use responsive_parallelism::dag::random::{RandomDagConfig, RandomDagGenerator};
use responsive_parallelism::priority::{Constraint, PriorityDomain};

/// The deterministic case sweep shared by the graph-shaped properties:
/// (seed, priority levels, depth) triples.
fn dag_cases() -> impl Iterator<Item = (u64, usize, usize)> {
    (0u64..24).map(|i| (i * 37 + 5, 1 + (i as usize % 3), 2 + (i as usize % 3)))
}

#[test]
fn random_dags_are_well_formed_and_bounded() {
    for (seed, levels, depth) in dag_cases() {
        let config = RandomDagConfig {
            priority_levels: levels,
            max_depth: depth,
            max_children: 3,
            max_thread_len: 4,
            touch_probability: 0.7,
            weak_edge_probability: 0.4,
        };
        let dag = RandomDagGenerator::new(config, seed).generate();
        assert!(check_well_formed(&dag).is_ok(), "seed {seed}");
        assert!(check_strongly_well_formed(&dag).is_ok(), "seed {seed}");

        for cores in [1usize, 2, 4] {
            let schedule = weak_respecting_prompt_schedule(&dag, cores);
            schedule.validate(&dag).unwrap();
            assert!(schedule.is_admissible(&dag), "seed {seed} P={cores}");
            let reports = check_bounds_batch(&dag, &schedule);
            for report in reports {
                // Only prompt admissible schedules are covered by the
                // theorem; the weak-respecting scheduler is admissible by
                // construction and usually prompt.  Never a counterexample.
                assert!(!report.is_counterexample(), "seed {seed}: {report:?}");
            }
        }
    }
}

#[test]
fn prompt_schedules_are_prompt_and_greedy() {
    for (seed, levels, depth) in dag_cases() {
        let config = RandomDagConfig {
            priority_levels: levels,
            max_depth: depth,
            max_children: 3,
            max_thread_len: 4,
            touch_probability: 0.8,
            weak_edge_probability: 0.0,
        };
        let dag = RandomDagGenerator::new(config, seed).generate();
        for cores in [1usize, 2, 4] {
            let schedule = prompt_schedule(&dag, cores);
            schedule.validate(&dag).unwrap();
            assert!(schedule.is_prompt(&dag), "seed {seed} P={cores}");
            // Greedy (Brent-style) upper bound: T ≤ W/P + span.
            let upper = work(&dag) as f64 / cores as f64 + span(&dag) as f64;
            assert!(schedule.len() as f64 <= upper + 1.0, "seed {seed}");
            // And no schedule beats max(ceil(W/P), span).
            let lower = (work(&dag) as f64 / cores as f64)
                .ceil()
                .max(span(&dag) as f64);
            assert!(schedule.len() as f64 >= lower, "seed {seed}");
        }
    }
}

#[test]
fn strengthening_only_shortens_the_a_span() {
    for (seed, levels, depth) in dag_cases() {
        let config = RandomDagConfig {
            priority_levels: levels,
            max_depth: depth,
            max_children: 2,
            max_thread_len: 4,
            touch_probability: 0.6,
            weak_edge_probability: 0.5,
        };
        let dag = RandomDagGenerator::new(config, seed).generate();
        for a in dag.threads() {
            let st = strengthening(&dag, a);
            // Replacement edges are only ever added for removed ones.
            assert!(st.added.len() <= st.removed.len(), "seed {seed}");
            // The a-span never exceeds the total work and is at least 1
            // (t itself) unless t is an ancestor of s (impossible).
            let s = a_span(&dag, a);
            assert!(s >= 1 && s <= work(&dag), "seed {seed}");
            // Competitor work is at most the total work.
            assert!(competitor_work(&dag, a) <= work(&dag), "seed {seed}");
        }
    }
}

/// The bucketed prompt scheduler must produce schedules *identical* to the
/// retained naive reference — same vertices in the same steps — across
/// random DAGs and 1–8 cores.  This is the executable-specification
/// guarantee behind the CSR/bucket rewrite: any ordering divergence is a
/// bug, not an acceptable approximation.
#[test]
fn bucketed_prompt_scheduler_matches_naive_reference() {
    use responsive_parallelism::dag::scheduler::reference;
    for (seed, levels, depth) in dag_cases() {
        let config = RandomDagConfig {
            priority_levels: levels,
            max_depth: depth,
            max_children: 3,
            max_thread_len: 4,
            touch_probability: 0.6,
            weak_edge_probability: 0.4,
        };
        let dag = RandomDagGenerator::new(config, seed).generate();
        for cores in 1..=8 {
            assert_eq!(
                prompt_schedule(&dag, cores),
                reference::prompt_schedule(&dag, cores),
                "prompt schedules diverged: seed {seed}, P={cores}"
            );
            assert_eq!(
                weak_respecting_prompt_schedule(&dag, cores),
                reference::weak_respecting_prompt_schedule(&dag, cores),
                "weak-respecting schedules diverged: seed {seed}, P={cores}"
            );
            assert_eq!(
                oblivious_schedule(&dag, cores),
                reference::oblivious_schedule(&dag, cores),
                "oblivious schedules diverged: seed {seed}, P={cores}"
            );
        }
    }
}

/// CSR neighbour queries must agree — content *and* order — with a
/// recomputation from the flat edge list, on both the recursive and the
/// sized generators.
#[test]
fn csr_neighbour_queries_match_edge_list_filters() {
    use responsive_parallelism::dag::graph::EdgeKind;
    let dags: Vec<_> = dag_cases()
        .take(8)
        .map(|(seed, levels, depth)| {
            let config = RandomDagConfig {
                priority_levels: levels,
                max_depth: depth,
                max_children: 3,
                max_thread_len: 5,
                touch_probability: 0.7,
                weak_edge_probability: 0.4,
            };
            RandomDagGenerator::new(config, seed).generate()
        })
        .chain([responsive_parallelism::dag::random::sized_dag(3, 40, 4, 5)])
        .collect();
    for dag in &dags {
        for v in dag.vertices() {
            let out: Vec<_> = dag
                .edges()
                .iter()
                .copied()
                .filter(|e| e.from == v)
                .collect();
            let inc: Vec<_> = dag.edges().iter().copied().filter(|e| e.to == v).collect();
            assert_eq!(dag.out_edges(v).collect::<Vec<_>>(), out);
            assert_eq!(dag.in_edges(v).collect::<Vec<_>>(), inc);
            let strong_parents: Vec<_> = inc
                .iter()
                .filter(|e| e.kind.is_strong())
                .map(|e| e.from)
                .collect();
            let weak_parents: Vec<_> = inc
                .iter()
                .filter(|e| e.kind == EdgeKind::Weak)
                .map(|e| e.from)
                .collect();
            let strong_succ: Vec<_> = out
                .iter()
                .filter(|e| e.kind.is_strong())
                .map(|e| e.to)
                .collect();
            assert_eq!(dag.strong_parents(v), strong_parents);
            assert_eq!(dag.weak_parents(v), weak_parents);
            assert_eq!(dag.strong_successors(v), strong_succ);
            assert_eq!(dag.strong_indegree(v), strong_parents.len());
        }
        // The cached creator table and name map agree with the edge lists.
        for t in dag.threads() {
            let naive_creator = dag
                .create_edges()
                .iter()
                .find(|(_, thr)| *thr == t)
                .map(|(v, _)| *v);
            assert_eq!(dag.creator_of(t), naive_creator);
            assert_eq!(dag.thread_by_name(&dag.thread(t).name), Some(t));
        }
    }
}

#[test]
fn priority_order_is_a_partial_order() {
    for levels in 1usize..6 {
        let dom = PriorityDomain::numeric(levels);
        for a in dom.iter() {
            assert!(dom.leq(a, a));
            for b in dom.iter() {
                if dom.leq(a, b) && dom.leq(b, a) {
                    assert_eq!(a, b);
                }
                for c in dom.iter() {
                    if dom.leq(a, b) && dom.leq(b, c) {
                        assert!(dom.leq(a, c));
                    }
                }
                // Entailment of closed constraints agrees with the order.
                assert_eq!(dom.entails_closed(&Constraint::leq(a, b)), dom.leq(a, b));
            }
        }
    }
}
