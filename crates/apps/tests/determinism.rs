//! Harness determinism: the same `ExperimentConfig` + seed must yield
//! identical request counts and completed-task totals across two runs, in
//! both closed- and open-loop modes.
//!
//! The proxy is deliberately not covered: its per-request task count depends
//! on cache hits, which depend on completion *timing* (a miss spawns an
//! extra insertion task), so only its request count — not its task total —
//! is timing-independent.  The job server and email client spawn a fixed,
//! seed-determined task shape per request.

use rp_apps::harness::{shutdown_runtime, ExperimentConfig, LoadMode, OpenLoopConfig};
use rp_apps::{email, jserver};
use rp_icilk::runtime::SchedulerKind;
use rp_sim::latency::LatencyModel;
use std::sync::Arc;
use std::time::Duration;

fn base_config() -> ExperimentConfig {
    ExperimentConfig {
        workers: 2,
        connections: 2,
        requests_per_connection: 4,
        io_latency: LatencyModel::Constant { micros: 150 },
        seed: 1234,
        ..ExperimentConfig::default()
    }
}

/// Runs the job server once and returns (client samples, completed tasks).
fn run_jserver(config: &ExperimentConfig) -> (usize, u64) {
    let rt = Arc::new(config.start_runtime(SchedulerKind::ICilk, &jserver::LEVELS));
    let client = jserver::drive(&rt, config);
    assert!(rt.drain(Duration::from_secs(10)));
    let completed = rt.metrics().total_completed();
    let count = client.count();
    shutdown_runtime(rt, Duration::from_secs(10));
    (count, completed)
}

/// Runs the email client once and returns (client samples, completed tasks).
fn run_email(config: &ExperimentConfig) -> (usize, u64) {
    let rt = Arc::new(config.start_runtime(SchedulerKind::ICilk, &email::LEVELS));
    let state = email::EmailState::generate(config.connections.max(1), 6, config.seed);
    let client = email::drive(&rt, &state, config);
    assert!(rt.drain(Duration::from_secs(10)));
    let completed = rt.metrics().total_completed();
    let count = client.count();
    drop(state);
    shutdown_runtime(rt, Duration::from_secs(10));
    (count, completed)
}

#[test]
fn jserver_closed_loop_is_deterministic() {
    let config = base_config();
    let a = run_jserver(&config);
    let b = run_jserver(&config);
    assert_eq!(a, b, "closed-loop request/task totals must not vary");
    // connections × requests_per_connection jobs, one task each.
    assert_eq!(a.1, 8);
}

#[test]
fn jserver_open_loop_is_deterministic() {
    let config = base_config().open_loop(OpenLoopConfig {
        arrival_rate_per_sec: 400.0,
        warmup_millis: 30,
        measure_millis: 120,
    });
    let a = run_jserver(&config);
    let b = run_jserver(&config);
    assert_eq!(
        a, b,
        "open-loop arrivals are drawn up front from the seed, so counts must match"
    );
    assert!(a.0 > 0, "the measurement window saw requests");
    assert!(
        a.1 >= a.0 as u64,
        "every measured request is a completed task"
    );
}

#[test]
fn email_closed_loop_is_deterministic() {
    let config = base_config();
    let a = run_email(&config);
    let b = run_email(&config);
    assert_eq!(a, b, "email task shape is fixed per request index");
    assert_eq!(a.0, config.connections * config.requests_per_connection);
}

#[test]
fn email_open_loop_is_deterministic() {
    let config = base_config().open_loop(OpenLoopConfig {
        arrival_rate_per_sec: 300.0,
        warmup_millis: 30,
        measure_millis: 120,
    });
    let a = run_email(&config);
    let b = run_email(&config);
    assert_eq!(
        a, b,
        "open-loop email: seed-determined arrivals and a fixed task shape per request index"
    );
    assert!(a.0 > 0, "the measurement window saw requests");
}

#[test]
fn open_loop_mode_changes_the_workload_shape() {
    // Sanity check that the dispatch actually switches modes: closed and
    // open runs of the same base config should issue different numbers of
    // requests (8 closed vs a ~45-jobs-per-150ms Poisson schedule).
    let closed = run_jserver(&base_config());
    let open = run_jserver(&base_config().open_loop(OpenLoopConfig {
        arrival_rate_per_sec: 400.0,
        warmup_millis: 0,
        measure_millis: 150,
    }));
    assert!(matches!(base_config().mode, LoadMode::Closed));
    assert_ne!(closed.0, open.0);
}
