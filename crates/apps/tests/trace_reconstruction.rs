//! Trace → cost-DAG reconstruction against the real runtime.
//!
//! Deterministic seeded runs on **one worker** must reconstruct a
//! well-formed cost graph whose observed schedule is a topological order of
//! the graph matching the execution order, and `BoundAnalysis::check_all`
//! must report `hypotheses_hold()` — well-formed graph, admissible prompt
//! schedule — on every thread, so the Theorem 2.3 bound applies (and holds)
//! for everything the runtime executed.

use rp_apps::harness::{shutdown_runtime, ExperimentConfig, OpenLoopConfig};
use rp_apps::{email, proxy};
use rp_core::trace::ReconstructedRun;
use rp_core::wellformed::check_well_formed;
use rp_icilk::runtime::{Runtime, RuntimeConfig};
use rp_sim::latency::LatencyModel;
use std::sync::Arc;
use std::time::Duration;

/// A fully sequential chain on one worker and one priority level: the
/// driver spawns a root task that alternately spawns-and-touches CPU
/// children and I/O futures.  With a single level and `P = 1`, promptness
/// is structural, so every hypothesis of Theorem 2.3 must hold.
fn chain_run(seed: u64, links: u64) -> ReconstructedRun {
    let rt = Arc::new(Runtime::start(
        RuntimeConfig::new(1, 1)
            .with_level_names(["only"])
            .with_tracing(true)
            .with_io_latency(LatencyModel::Constant { micros: 200 }, seed),
    ));
    let p = rt.priority_by_name("only").unwrap();
    let rt2 = Arc::clone(&rt);
    let root = rt.fcreate(p, move || {
        let mut acc = seed;
        for i in 0..links {
            let child = rt2.fcreate(p, move || i * 3 + 1);
            acc = acc.wrapping_add(rt2.ftouch(&child));
            let io = rt2.submit_io(p, move || i + 100);
            acc = acc.wrapping_add(rt2.ftouch(&io));
        }
        acc
    });
    let _ = rt.ftouch_blocking(&root);
    assert!(rt.drain(Duration::from_secs(10)));
    let trace = rt.trace_snapshot().expect("tracing enabled");
    let run = trace.reconstruct().expect("trace reconstructs");
    shutdown_runtime(rt, Duration::from_secs(10));
    run
}

#[test]
fn chain_reconstruction_is_well_formed_and_matches_execution_order() {
    let run = chain_run(0xA11CE, 4);
    // Root + 4 children + 4 I/O futures.
    assert_eq!(run.dag.thread_count(), 9);
    assert_eq!(run.skipped, 0);
    assert!(
        check_well_formed(&run.dag).is_ok(),
        "reconstructed DAG well-formed"
    );
    run.schedule.validate(&run.dag).expect("valid schedule");
    assert!(run.schedule.is_admissible(&run.dag));
    assert!(run.schedule.is_prompt(&run.dag), "one level, one core");

    // The observed schedule is the execution order: with P = 1 it is one
    // vertex per step, a topological order of the graph (validate() above
    // already proved every vertex runs strictly after its strong parents),
    // and it never runs counter to the recorded timestamps.
    assert!(run.schedule.steps.iter().all(|s| s.len() == 1));
    let flat: Vec<_> = run.schedule.steps.iter().flatten().copied().collect();
    assert_eq!(flat.len(), run.dag.vertex_count());
    for w in flat.windows(2) {
        assert!(
            run.vertex_times[w[0].index()] <= run.vertex_times[w[1].index()],
            "observed schedule reordered vertices against the recorded clock"
        );
    }
}

#[test]
fn chain_hypotheses_and_bounds_hold_on_every_thread() {
    let run = chain_run(0xBEEF, 3);
    let reports = run.check_observed();
    assert_eq!(reports.len(), run.dag.thread_count());
    for r in &reports {
        assert!(
            r.report.hypotheses_hold(),
            "hypotheses must hold on thread {:?}: {r:?}",
            r.task.thread
        );
        assert!(r.report.bound_holds(), "bound violated: {r:?}");
        assert!(!r.report.is_counterexample());
        assert!(r.report.observed.is_some(), "every thread completed");
        // The wall-clock measurement is coherent: spawn precedes finish.
        assert!(r.task.finished_at >= r.task.spawned_at);
    }
    // The replayed prompt schedule agrees.
    for r in run.check_replay(1) {
        assert!(!r.report.is_counterexample(), "{r:?}");
    }
}

#[test]
fn chain_reconstruction_is_deterministic_across_runs() {
    let a = chain_run(7, 5);
    let b = chain_run(7, 5);
    assert_eq!(a.dag.thread_count(), b.dag.thread_count());
    assert_eq!(a.dag.vertex_count(), b.dag.vertex_count());
    assert_eq!(a.dag.create_edges().len(), b.dag.create_edges().len());
    assert_eq!(a.dag.touch_edges().len(), b.dag.touch_edges().len());
    assert_eq!(a.dag.weak_edges().len(), b.dag.weak_edges().len());
    for (ta, tb) in a.tasks.iter().zip(&b.tasks) {
        assert_eq!(ta.is_io, tb.is_io);
        assert_eq!(ta.level, tb.level);
        assert_eq!(
            a.dag.thread(ta.thread).vertices.len(),
            b.dag.thread(tb.thread).vertices.len()
        );
    }
}

fn proxy_config() -> ExperimentConfig {
    ExperimentConfig {
        workers: 1,
        connections: 4,
        requests_per_connection: 3,
        io_latency: LatencyModel::Constant { micros: 300 },
        seed: 0x7AACE,
        ..ExperimentConfig::default()
    }
}

#[test]
fn traced_proxy_closed_loop_reconstructs_without_counterexamples() {
    let report = proxy::run_traced(&proxy_config()).expect("proxy trace reconstructs");
    assert!(report.run.dag.thread_count() > 12, "every request traced");
    assert_eq!(
        report.run.skipped, 0,
        "drained run leaves nothing mid-flight"
    );
    assert!(
        check_well_formed(&report.run.dag).is_ok(),
        "the proxy's priority discipline reconstructs to a well-formed graph"
    );
    report
        .run
        .schedule
        .validate(&report.run.dag)
        .expect("observed schedule valid");
    assert!(report.run.schedule.is_admissible(&report.run.dag));
    assert!(
        report.counterexamples().is_empty(),
        "Theorem 2.3 refuted: {:?}",
        report.counterexamples()
    );
}

#[test]
fn traced_proxy_open_loop_reconstructs_without_counterexamples() {
    let config = proxy_config().open_loop(OpenLoopConfig {
        arrival_rate_per_sec: 300.0,
        warmup_millis: 10,
        measure_millis: 80,
    });
    let report = proxy::run_traced(&config).expect("proxy trace reconstructs");
    assert!(report.run.dag.thread_count() > 0);
    report
        .run
        .schedule
        .validate(&report.run.dag)
        .expect("observed schedule valid");
    assert!(report.run.schedule.is_admissible(&report.run.dag));
    assert!(report.counterexamples().is_empty());
}

#[test]
fn traced_email_reconstructs_without_counterexamples() {
    let config = ExperimentConfig {
        workers: 2,
        connections: 3,
        requests_per_connection: 3,
        io_latency: LatencyModel::Constant { micros: 200 },
        seed: 99,
        ..ExperimentConfig::default()
    };
    let report = email::run_traced(&config).expect("email trace reconstructs");
    assert!(report.run.dag.thread_count() > 0);
    report
        .run
        .schedule
        .validate(&report.run.dag)
        .expect("observed schedule valid");
    assert!(report.run.schedule.is_admissible(&report.run.dag));
    assert!(report.counterexamples().is_empty());
}
