//! The I-Cilk case-study applications (Section 5.1) and their load-sweep
//! harness.
//!
//! Three applications, mirroring the paper's benchmarks:
//!
//! * [`proxy`] — a caching proxy server: a high-priority event loop answers
//!   client requests from a shared cache; cache misses are delegated to
//!   lower-priority fetch tasks that perform simulated network I/O; a
//!   logging component and the main/shutdown code run at still lower
//!   priorities (4 levels);
//! * [`email`] — a multi-user email client: an event loop handles user
//!   requests (send / sort / print), a periodic check component fires off
//!   compression of mailboxes with Huffman codes, and print/compress tasks
//!   coordinate through per-message slots holding future handles (6 levels);
//! * [`jserver`] — a job server executing Poisson-arriving jobs of four
//!   classes (matrix multiplication, Fibonacci, mergesort, Smith-Waterman)
//!   under a smallest-work-first priority assignment (4 levels).
//!
//! The [`harness`] module runs any of them against both the I-Cilk runtime
//! and the priority-oblivious baseline under a configurable load, collecting
//! the response-time and compute-time statistics that Figures 13 and 14
//! report.  Load is generated either closed-loop (each connection waits for
//! its reply) or open-loop ([`harness::drive_open_loop`]): Poisson arrivals
//! at a configured rate with warmup/measurement windows and
//! coordinated-omission-corrected latencies, the paper's actual workload
//! model for the rate sweeps.
//!
//! The [`faults`] module adds a seeded fault-injection layer for the socket
//! path (injected disconnects, partial writes, delayed/corrupted/truncated
//! reads), used by the chaos tests on both the client and server side.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod email;
pub mod faults;
pub mod harness;
pub mod jserver;
pub mod proxy;

pub use faults::{FaultConfig, FaultPlan, FaultSession, ReadFault, WriteFault};
pub use harness::{
    ExperimentConfig, ExperimentReport, LevelReport, LoadMode, OpenLoopConfig, OpenLoopOutcome,
    ResilienceConfig, StreamingTraceCollector, StreamingTraceReport,
};
