//! The job-server case study (§5.1).
//!
//! Jobs of four classes arrive according to a Poisson process and are
//! executed under a *smallest-work-first* priority assignment: the job class
//! with the least work gets the highest priority.  The classes (and their
//! priority order, highest first) are: matrix multiplication (`matmul`),
//! Fibonacci (`fib`), mergesort (`sort`), and Smith–Waterman sequence
//! alignment (`sw`) — the same classes as the paper, with input sizes scaled
//! down so the experiments run in seconds rather than minutes.

use crate::harness::{
    drive_open_loop, run_report, ExperimentConfig, ExperimentReport, LoadMode, OpenLoopConfig,
    OpenLoopOutcome,
};
use rp_icilk::runtime::{Runtime, SchedulerKind};
use rp_sim::poisson::PoissonProcess;
use rp_sim::stats::LatencyStats;
use std::sync::Arc;
use std::time::Duration;

/// Priority level names, lowest first (smallest-work-first: matmul is the
/// cheapest job class, so it gets the highest priority).
pub const LEVELS: [&str; 4] = ["sw", "sort", "fib", "matmul"];

// ---------------------------------------------------------------------------
// The compute kernels.
// ---------------------------------------------------------------------------

/// Naive recursive Fibonacci — the classic exponential-work microbenchmark.
pub fn fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib(n - 1) + fib(n - 2)
    }
}

/// Dense matrix multiplication of two `n × n` matrices generated from the
/// seed; returns a checksum of the product.
pub fn matmul_checksum(n: usize, seed: u64) -> u64 {
    let a: Vec<u64> = (0..n * n)
        .map(|i| (i as u64).wrapping_mul(seed) % 97)
        .collect();
    let b: Vec<u64> = (0..n * n)
        .map(|i| (i as u64).wrapping_add(seed) % 89)
        .collect();
    let mut c = vec![0u64; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] = c[i * n + j].wrapping_add(aik.wrapping_mul(b[k * n + j]));
            }
        }
    }
    c.iter()
        .fold(0u64, |h, &x| h.wrapping_mul(31).wrapping_add(x))
}

/// Mergesort of a pseudo-random vector; returns the median element.
pub fn mergesort_median(n: usize, seed: u64) -> u64 {
    fn sort(v: &mut Vec<u64>) {
        let n = v.len();
        if n <= 1 {
            return;
        }
        let mut right = v.split_off(n / 2);
        sort(v);
        sort(&mut right);
        let mut merged = Vec::with_capacity(n);
        let (mut i, mut j) = (0, 0);
        while i < v.len() && j < right.len() {
            if v[i] <= right[j] {
                merged.push(v[i]);
                i += 1;
            } else {
                merged.push(right[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&v[i..]);
        merged.extend_from_slice(&right[j..]);
        *v = merged;
    }
    let mut v: Vec<u64> = (0..n as u64)
        .map(|i| i.wrapping_mul(6364136223846793005).wrapping_add(seed) >> 33)
        .collect();
    sort(&mut v);
    v[n / 2]
}

/// Smith–Waterman local alignment score of two pseudo-random sequences of
/// length `n`.
pub fn smith_waterman(n: usize, seed: u64) -> i64 {
    let alphabet = [b'A', b'C', b'G', b'T'];
    let seq = |salt: u64| -> Vec<u8> {
        (0..n)
            .map(|i| alphabet[((i as u64).wrapping_mul(salt ^ seed) % 4) as usize])
            .collect()
    };
    let (a, b) = (seq(0x9E3779B97F4A7C15), seq(0xC2B2AE3D27D4EB4F));
    let (match_s, mismatch, gap) = (2i64, -1i64, -1i64);
    let mut prev = vec![0i64; n + 1];
    let mut best = 0i64;
    for i in 1..=n {
        let mut current = vec![0i64; n + 1];
        for j in 1..=n {
            let diag = prev[j - 1]
                + if a[i - 1] == b[j - 1] {
                    match_s
                } else {
                    mismatch
                };
            let up = prev[j] + gap;
            let left = current[j - 1] + gap;
            current[j] = diag.max(up).max(left).max(0);
            best = best.max(current[j]);
        }
        prev = current;
    }
    best
}

/// A job class with its kernel and input size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobClass {
    /// Divide-and-conquer matrix multiplication (highest priority).
    Matmul {
        /// Matrix dimension.
        n: usize,
    },
    /// Recursive Fibonacci.
    Fib {
        /// Argument.
        n: u64,
    },
    /// Mergesort.
    Sort {
        /// Number of elements.
        n: usize,
    },
    /// Smith–Waterman alignment (lowest priority).
    Sw {
        /// Sequence length.
        n: usize,
    },
}

impl JobClass {
    /// The default job mix used by the experiments (sizes scaled down from
    /// the paper's `matmul 1024 / fib 36 / sort 1.1e7 / sw 1024`).
    pub fn default_mix() -> [JobClass; 4] {
        [
            JobClass::Matmul { n: 48 },
            JobClass::Fib { n: 21 },
            JobClass::Sort { n: 20_000 },
            JobClass::Sw { n: 220 },
        ]
    }

    /// The priority level index of this class (position in [`LEVELS`]).
    pub fn level(&self) -> usize {
        match self {
            JobClass::Sw { .. } => 0,
            JobClass::Sort { .. } => 1,
            JobClass::Fib { .. } => 2,
            JobClass::Matmul { .. } => 3,
        }
    }

    /// The level name of this class.
    pub fn level_name(&self) -> &'static str {
        LEVELS[self.level()]
    }

    /// Executes the job, returning a checksum-ish result.
    pub fn execute(&self, seed: u64) -> u64 {
        match *self {
            JobClass::Matmul { n } => matmul_checksum(n, seed),
            JobClass::Fib { n } => fib(n),
            JobClass::Sort { n } => mergesort_median(n, seed),
            JobClass::Sw { n } => smith_waterman(n, seed) as u64,
        }
    }
}

/// Drives the job server on one runtime: jobs of each class arrive according
/// to independent Poisson processes whose rate scales with
/// `config.connections`; returns the response times of the highest-priority
/// class (matmul), the server's "interactive" jobs.
pub fn drive_jobs(rt: &Arc<Runtime>, config: &ExperimentConfig) -> LatencyStats {
    let mix = JobClass::default_mix();
    // Arrival rate per class: `connections` jobs per class over the run.
    let jobs_per_class = config.connections.max(1) * config.requests_per_connection.max(1) / 4;
    let mut arrivals =
        PoissonProcess::with_mean_inter_arrival(Duration::from_micros(400), config.seed);
    let mut stats = LatencyStats::new();
    let mut futures = Vec::new();
    for i in 0..jobs_per_class.max(1) {
        for job in mix {
            let gap = arrivals.next_gap();
            // Pace the open-loop arrival process in real time (capped so the
            // experiment stays fast).
            std::thread::sleep(gap.min(Duration::from_micros(300)));
            let priority = rt
                .priority_by_index(job.level())
                .expect("job classes map onto the runtime's levels");
            let seed = config.seed.wrapping_add(i as u64);
            let submitted = std::time::Instant::now();
            let fut = rt.fcreate(priority, move || job.execute(seed));
            futures.push((job, submitted, fut));
        }
    }
    for (job, submitted, fut) in futures {
        let _ = rt.ftouch_blocking(&fut);
        if matches!(job, JobClass::Matmul { .. }) {
            stats.record(submitted.elapsed());
        }
    }
    rt.drain(Duration::from_secs(20));
    stats
}

/// Open-loop variant of [`drive_jobs`]: jobs cycle through the default mix
/// and arrive at seeded Poisson times.  Unlike the closed loop (which
/// reports only the interactive `matmul` class), the returned outcome's
/// latency covers every job class — per-class tails come from the runtime's
/// per-level metrics.
pub fn drive_jobs_open(
    rt: &Arc<Runtime>,
    config: &ExperimentConfig,
    open: &OpenLoopConfig,
) -> OpenLoopOutcome {
    let mix = JobClass::default_mix();
    drive_open_loop(open, config.seed, |i| {
        let job = mix[i % mix.len()];
        let priority = rt
            .priority_by_index(job.level())
            .expect("job classes map onto the runtime's levels");
        let seed = config.seed.wrapping_add(i as u64);
        rt.fcreate(priority, move || job.execute(seed))
    })
}

/// Drives the job server in the mode `config.mode` selects.
pub fn drive(rt: &Arc<Runtime>, config: &ExperimentConfig) -> LatencyStats {
    match config.mode {
        LoadMode::Closed => drive_jobs(rt, config),
        LoadMode::Open(open) => {
            let outcome = drive_jobs_open(rt, config, &open);
            outcome.warn_if_lossy("jserver");
            rt.drain(Duration::from_secs(20));
            outcome.latency
        }
        LoadMode::Socket(_) => panic!(
            "socket load is driven from the client side over rp_net \
             (harness::drive_socket_open / bench_net), not by the in-process drivers"
        ),
    }
}

/// Runs the job-server case study on both schedulers.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentReport {
    let mut reports = Vec::new();
    for scheduler in [SchedulerKind::ICilk, SchedulerKind::Baseline] {
        let rt = Arc::new(config.start_runtime(scheduler, &LEVELS));
        let client = drive(&rt, config);
        reports.push(run_report(scheduler, &rt, &LEVELS, client));
        crate::harness::shutdown_runtime(rt, Duration::from_secs(10));
    }
    let baseline = reports.pop().expect("two runs");
    let icilk = reports.pop().expect("two runs");
    ExperimentReport {
        app: "jserver".into(),
        config: config.clone(),
        icilk,
        baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_sim::latency::LatencyModel;

    #[test]
    fn kernels_compute_plausible_results() {
        assert_eq!(fib(10), 55);
        assert_eq!(fib(1), 1);
        let m1 = matmul_checksum(8, 1);
        let m2 = matmul_checksum(8, 1);
        assert_eq!(m1, m2, "deterministic");
        assert_ne!(matmul_checksum(8, 2), 0);
        let median = mergesort_median(101, 3);
        let median2 = mergesort_median(101, 3);
        assert_eq!(median, median2);
        let score = smith_waterman(32, 5);
        assert!(score >= 0);
        assert_eq!(score, smith_waterman(32, 5));
    }

    #[test]
    fn job_classes_map_to_levels() {
        let mix = JobClass::default_mix();
        assert_eq!(mix[0].level(), 3);
        assert_eq!(mix[0].level_name(), "matmul");
        assert_eq!(mix[3].level(), 0);
        assert_eq!(mix[3].level_name(), "sw");
        for job in mix {
            assert!(job.execute(1) > 0 || matches!(job, JobClass::Sw { .. }));
        }
    }

    #[test]
    fn experiment_runs_on_both_schedulers() {
        let config = ExperimentConfig {
            workers: 2,
            connections: 2,
            requests_per_connection: 4,
            io_latency: LatencyModel::Constant { micros: 100 },
            ..ExperimentConfig::default()
        };
        let report = run_experiment(&config);
        assert!(report.icilk.client_response.count() > 0);
        assert!(report.baseline.client_response.count() > 0);
        assert_eq!(report.icilk.levels.len(), 4);
        // Every class executed at least once on each scheduler.
        assert!(report.icilk.levels.iter().all(|l| l.compute.count() > 0));
    }
}
