//! Seeded fault injection for the socket layer.
//!
//! The two untrusted surfaces of the TCP front end are the bytes a server
//! shard reads and the bytes the reactor writes back.  This module is a
//! deterministic fault model for both: a [`FaultPlan`] is a probability
//! table plus a seed, and [`FaultPlan::session`] derives an independent,
//! reproducible [`FaultSession`] per connection — the decision stream
//! depends only on `(seed, conn_id)` and the *sequence* of I/O operations
//! on that connection, never on wall-clock time or cross-connection
//! interleaving.  Chaos tests fix the seed and assert liveness (the server
//! answers or cleanly closes every surviving connection), so thread-timing
//! nondeterminism cannot change which faults fire.
//!
//! Faults modelled, per I/O operation:
//!
//! * **disconnect** — the connection is torn down mid-stream (read or
//!   write side);
//! * **partial write** — only a prefix of a response frame reaches the
//!   wire before the connection dies (the classic torn-frame case);
//! * **delayed read** — bytes arrive but are withheld from the parser for
//!   a while (a slow or stalled peer);
//! * **corruption** — a byte of the received data is flipped;
//! * **truncation** — the tail of the received data is dropped.
//!
//! Corruption and truncation mutate the data in place; disconnects,
//! partials, and delays are returned as [`ReadFault`] / [`WriteFault`]
//! verdicts for the I/O loop to enact (the session never touches sockets
//! itself, so it is equally usable on the client and server side and in
//! pure in-memory tests).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Probabilities and magnitudes of the injected faults.  All probabilities
/// are per I/O operation and default to zero — an all-default plan is a
/// no-op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the whole plan; each connection derives its own stream.
    pub seed: u64,
    /// Probability a read verdict is [`ReadFault::Disconnect`].
    pub read_disconnect: f64,
    /// Probability received bytes are withheld for [`FaultConfig::delay`].
    pub read_delay: f64,
    /// How long a delayed read withholds its bytes.
    pub delay: Duration,
    /// Probability one byte of the received data is flipped.
    pub corrupt: f64,
    /// Probability the tail of the received data is dropped.
    pub truncate: f64,
    /// Probability a write verdict is [`WriteFault::Disconnect`].
    pub write_disconnect: f64,
    /// Probability a write is cut short ([`WriteFault::Partial`]).
    pub partial_write: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            read_disconnect: 0.0,
            read_delay: 0.0,
            delay: Duration::from_millis(5),
            corrupt: 0.0,
            truncate: 0.0,
            write_disconnect: 0.0,
            partial_write: 0.0,
        }
    }
}

impl FaultConfig {
    /// A plan that exercises every fault kind at the given per-operation
    /// rate — the chaos tests' default shape.
    pub fn chaos(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            read_disconnect: rate,
            read_delay: rate,
            delay: Duration::from_millis(2),
            corrupt: rate,
            truncate: rate,
            write_disconnect: rate,
            partial_write: rate,
        }
    }
}

/// A seeded fault plan; cheap to clone, hand one to each side of the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl FaultPlan {
    /// Wraps a configuration into a plan.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan { config }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Derives the deterministic fault stream for one connection.  The
    /// same `(plan seed, conn_id)` always yields the same verdicts in the
    /// same order.
    pub fn session(&self, conn_id: u64) -> FaultSession {
        // SplitMix-style mix of (seed, conn_id) so adjacent connection ids
        // do not get correlated streams.
        let mut x = self.config.seed ^ conn_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        FaultSession {
            config: self.config,
            rng: StdRng::seed_from_u64(x ^ (x >> 31)),
        }
    }
}

/// The verdict for one read operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// Proceed normally (the data may still have been mutated in place).
    None,
    /// Withhold the received bytes from the parser for this long.
    Delay(Duration),
    /// Tear the connection down now.
    Disconnect,
}

/// The verdict for one write operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Write the whole buffer.
    Full,
    /// Write only this many bytes, then kill the connection (torn frame).
    Partial(usize),
    /// Tear the connection down instead of writing.
    Disconnect,
}

/// One connection's deterministic fault stream.
#[derive(Debug, Clone)]
pub struct FaultSession {
    config: FaultConfig,
    rng: StdRng,
}

impl FaultSession {
    /// Judges one read that produced `data`; may corrupt or truncate the
    /// data in place.  The RNG consumption per call is fixed (one draw per
    /// configured fault kind), so the verdict stream is a pure function of
    /// the call count.
    pub fn on_read(&mut self, data: &mut Vec<u8>) -> ReadFault {
        let disconnect = self.roll(self.config.read_disconnect);
        let delay = self.roll(self.config.read_delay);
        let corrupt = self.roll(self.config.corrupt);
        let truncate = self.roll(self.config.truncate);
        if corrupt && !data.is_empty() {
            let at = self.rng.gen_range(0..data.len());
            data[at] ^= 0x55;
        }
        if truncate && !data.is_empty() {
            let keep = self.rng.gen_range(0..data.len());
            data.truncate(keep);
        }
        if disconnect {
            ReadFault::Disconnect
        } else if delay {
            ReadFault::Delay(self.config.delay)
        } else {
            ReadFault::None
        }
    }

    /// Judges one write of `len` bytes.
    pub fn on_write(&mut self, len: usize) -> WriteFault {
        let disconnect = self.roll(self.config.write_disconnect);
        let partial = self.roll(self.config.partial_write);
        if disconnect {
            WriteFault::Disconnect
        } else if partial && len > 0 {
            WriteFault::Partial(self.rng.gen_range(0..len))
        } else {
            WriteFault::Full
        }
    }

    /// One probability roll; zero-probability faults still draw, keeping
    /// the stream alignment independent of which faults are enabled.
    fn roll(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_a_no_op() {
        let plan = FaultPlan::new(FaultConfig::default());
        let mut s = plan.session(7);
        let mut data = vec![1, 2, 3, 4];
        for _ in 0..100 {
            assert_eq!(s.on_read(&mut data), ReadFault::None);
            assert_eq!(data, vec![1, 2, 3, 4]);
            assert_eq!(s.on_write(data.len()), WriteFault::Full);
        }
    }

    #[test]
    fn sessions_are_deterministic_per_connection() {
        let plan = FaultPlan::new(FaultConfig::chaos(42, 0.3));
        for conn in 0..8u64 {
            let mut a = plan.session(conn);
            let mut b = plan.session(conn);
            for _ in 0..50 {
                let mut da = vec![0u8; 16];
                let mut db = vec![0u8; 16];
                assert_eq!(a.on_read(&mut da), b.on_read(&mut db));
                assert_eq!(da, db);
                assert_eq!(a.on_write(32), b.on_write(32));
            }
        }
    }

    #[test]
    fn different_connections_get_different_streams() {
        let plan = FaultPlan::new(FaultConfig::chaos(42, 0.5));
        let verdicts = |conn: u64| {
            let mut s = plan.session(conn);
            (0..64)
                .map(|_| {
                    let mut d = vec![0u8; 8];
                    (s.on_read(&mut d), s.on_write(8))
                })
                .collect::<Vec<_>>()
        };
        assert_ne!(verdicts(0), verdicts(1), "streams must decorrelate");
    }

    #[test]
    fn chaos_plan_eventually_fires_every_fault_kind() {
        let plan = FaultPlan::new(FaultConfig::chaos(9, 0.25));
        let (mut disconnects, mut delays, mut mutations, mut partials) = (0, 0, 0, 0);
        for conn in 0..32u64 {
            let mut s = plan.session(conn);
            for _ in 0..32 {
                let mut data = vec![0xAAu8; 32];
                match s.on_read(&mut data) {
                    ReadFault::Disconnect => disconnects += 1,
                    ReadFault::Delay(d) => {
                        assert_eq!(d, Duration::from_millis(2));
                        delays += 1;
                    }
                    ReadFault::None => {}
                }
                if data.len() < 32 || data.iter().any(|&b| b != 0xAA) {
                    mutations += 1;
                }
                match s.on_write(64) {
                    WriteFault::Partial(n) => {
                        assert!(n < 64);
                        partials += 1;
                    }
                    WriteFault::Disconnect => disconnects += 1,
                    WriteFault::Full => {}
                }
            }
        }
        assert!(disconnects > 0, "no disconnect fired");
        assert!(delays > 0, "no delay fired");
        assert!(mutations > 0, "no corruption/truncation fired");
        assert!(partials > 0, "no partial write fired");
    }

    #[test]
    fn partial_writes_are_strict_prefixes() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 3,
            partial_write: 1.0,
            ..FaultConfig::default()
        });
        let mut s = plan.session(0);
        for _ in 0..100 {
            match s.on_write(100) {
                WriteFault::Partial(n) => assert!(n < 100),
                v => panic!("expected a partial write, got {v:?}"),
            }
        }
    }
}
