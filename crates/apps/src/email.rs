//! The multi-user email-client case study (§5.1).
//!
//! Users send, sort, and print messages; a background component periodically
//! compresses mailboxes with Huffman codes.  Priority levels, lowest to
//! highest: `main`, `check`, `compress` (compression and printing), `sort`,
//! `send`, `event` (the user-request event loop).
//!
//! The interesting interaction from the paper is reproduced in
//! [`compress_message`] / [`print_message`]: both
//! operations claim a per-message slot holding the handle of any ongoing
//! operation; the newcomer touches the previous occupant's future before
//! proceeding, so a print never observes a half-compressed message and vice
//! versa — coordination through thread handles stored in mutable state.

use crate::harness::{
    collect_trace, drive_open_loop, run_report, ExperimentConfig, ExperimentReport, LoadMode,
    OpenLoopConfig, OpenLoopOutcome, TraceHarvestError, TraceRunReport,
};
use parking_lot::Mutex;
use rp_icilk::runtime::{Runtime, SchedulerKind};
use rp_icilk::IFuture;
use rp_sim::stats::LatencyStats;
use rp_sim::workload::EmailGenerator;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Priority level names, lowest first.
pub const LEVELS: [&str; 6] = ["main", "check", "compress", "sort", "send", "event"];

// ---------------------------------------------------------------------------
// Huffman coding (CLRS §16.3), the compression kernel of the case study.
// ---------------------------------------------------------------------------

/// A Huffman code for a byte alphabet: code words indexed by symbol.
#[derive(Debug, Clone)]
pub struct HuffmanCode {
    /// `codes[b]` is the bit string (as booleans) for byte `b`, if it occurs.
    codes: HashMap<u8, Vec<bool>>,
}

#[derive(Debug)]
enum Node {
    Leaf(u8),
    Internal(Box<Node>, Box<Node>),
}

impl HuffmanCode {
    /// Builds the optimal prefix code for the given text.
    ///
    /// Returns `None` for empty input.
    pub fn build(text: &[u8]) -> Option<HuffmanCode> {
        if text.is_empty() {
            return None;
        }
        let mut freq: HashMap<u8, u64> = HashMap::new();
        for &b in text {
            *freq.entry(b).or_insert(0) += 1;
        }
        // Simple O(n²) merge is fine for a 256-symbol alphabet.
        let mut forest: Vec<(u64, u64, Node)> = freq
            .iter()
            .map(|(&b, &f)| (f, u64::from(b), Node::Leaf(b)))
            .collect();
        let mut tiebreak = 256u64;
        while forest.len() > 1 {
            forest.sort_by_key(|(f, t, _)| (*f, *t));
            let (f1, _, n1) = forest.remove(0);
            let (f2, _, n2) = forest.remove(0);
            tiebreak += 1;
            forest.push((
                f1 + f2,
                tiebreak,
                Node::Internal(Box::new(n1), Box::new(n2)),
            ));
        }
        let (_, _, root) = forest.pop().expect("non-empty input has a tree");
        let mut codes = HashMap::new();
        match root {
            // A single-symbol alphabet gets the 1-bit code `0`.
            Node::Leaf(b) => {
                codes.insert(b, vec![false]);
            }
            node => assign(&node, &mut Vec::new(), &mut codes),
        }
        Some(HuffmanCode { codes })
    }

    /// Encodes the text, returning the bit stream packed into bytes together
    /// with the bit length.
    ///
    /// # Panics
    ///
    /// Panics if the text contains a symbol the code was not built for.
    pub fn encode(&self, text: &[u8]) -> (Vec<u8>, usize) {
        let mut bits = Vec::with_capacity(text.len() * 4);
        for b in text {
            bits.extend_from_slice(
                self.codes
                    .get(b)
                    .expect("symbol present in the code's alphabet"),
            );
        }
        let len = bits.len();
        let mut packed = vec![0u8; len.div_ceil(8)];
        for (i, bit) in bits.iter().enumerate() {
            if *bit {
                packed[i / 8] |= 1 << (i % 8);
            }
        }
        (packed, len)
    }

    /// Decodes a bit stream produced by [`encode`](Self::encode).
    pub fn decode(&self, packed: &[u8], bit_len: usize) -> Vec<u8> {
        // Invert the code table.
        let inverse: HashMap<&Vec<bool>, u8> = self.codes.iter().map(|(b, c)| (c, *b)).collect();
        let mut out = Vec::new();
        let mut current = Vec::new();
        for i in 0..bit_len {
            current.push(packed[i / 8] & (1 << (i % 8)) != 0);
            if let Some(&b) = inverse.get(&current) {
                out.push(b);
                current.clear();
            }
        }
        out
    }

    /// Number of distinct symbols in the code.
    pub fn alphabet_size(&self) -> usize {
        self.codes.len()
    }
}

fn assign(node: &Node, prefix: &mut Vec<bool>, codes: &mut HashMap<u8, Vec<bool>>) {
    match node {
        Node::Leaf(b) => {
            codes.insert(*b, prefix.clone());
        }
        Node::Internal(l, r) => {
            prefix.push(false);
            assign(l, prefix, codes);
            prefix.pop();
            prefix.push(true);
            assign(r, prefix, codes);
            prefix.pop();
        }
    }
}

// ---------------------------------------------------------------------------
// Mailboxes and the print/compress coordination slot.
// ---------------------------------------------------------------------------

/// One stored message: plain or compressed, plus the coordination slot
/// holding the handle of any in-flight print/compress operation.
#[derive(Debug)]
pub struct Message {
    /// The plain text (cleared once compressed).
    pub body: Mutex<String>,
    /// The compressed representation, if the message has been compressed.
    pub compressed: Mutex<Option<(Vec<u8>, usize)>>,
    /// The slot where print/compress operations publish their handle so the
    /// other can wait for them (the paper's per-email array entry).
    pub slot: Mutex<Option<IFuture<u64>>>,
}

/// One user's mailbox.
#[derive(Debug, Default)]
pub struct Mailbox {
    messages: Vec<Arc<Message>>,
}

impl Mailbox {
    /// Creates a mailbox holding the given message bodies.
    pub fn new(bodies: Vec<String>) -> Self {
        Mailbox {
            messages: bodies
                .into_iter()
                .map(|body| {
                    Arc::new(Message {
                        body: Mutex::new(body),
                        compressed: Mutex::new(None),
                        slot: Mutex::new(None),
                    })
                })
                .collect(),
        }
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether the mailbox has no messages.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// The message at the given index.
    pub fn message(&self, i: usize) -> Arc<Message> {
        Arc::clone(&self.messages[i])
    }
}

/// Claims the slot of a message for a new operation, returning the previous
/// occupant (if any) that must be touched before proceeding.
fn claim_slot(message: &Message, ticket: IFuture<u64>) -> Option<IFuture<u64>> {
    let mut slot = message.slot.lock();
    slot.replace(ticket)
}

/// Spawns a compression of `message` at `compress` priority, coordinating
/// with any in-flight print through the slot.
pub fn compress_message(rt: &Arc<Runtime>, message: Arc<Message>) -> IFuture<u64> {
    let compress = rt.priority_by_name("compress").expect("level exists");
    let rt2 = Arc::clone(rt);
    let ticket: IFuture<u64> = IFuture::detached(compress);
    let ticket_for_task = ticket.clone();
    let previous = claim_slot(&message, ticket.clone());
    rt.fcreate(compress, move || {
        if let Some(prev) = previous {
            // Wait for the ongoing print/compress of the same message;
            // both run at the same priority level so this touch is legal.
            let _ = rt2.ftouch(&prev);
        }
        let body = message.body.lock().clone();
        let result = if body.is_empty() {
            0
        } else if let Some(code) = HuffmanCode::build(body.as_bytes()) {
            let (packed, bits) = code.encode(body.as_bytes());
            let saved = body.len() as u64 * 8 - bits as u64;
            *message.compressed.lock() = Some((packed, bits));
            saved
        } else {
            0
        };
        ticket_for_task.fulfill(result);
        result
    });
    ticket
}

/// Spawns a print of `message` at `compress` priority (print and compress
/// share a level in the paper's assignment), coordinating through the slot.
pub fn print_message(rt: &Arc<Runtime>, message: Arc<Message>) -> IFuture<u64> {
    let compress = rt.priority_by_name("compress").expect("level exists");
    let rt2 = Arc::clone(rt);
    let ticket: IFuture<u64> = IFuture::detached(compress);
    let ticket_for_task = ticket.clone();
    let previous = claim_slot(&message, ticket.clone());
    rt.fcreate(compress, move || {
        if let Some(prev) = previous {
            let _ = rt2.ftouch(&prev);
        }
        // "Printing" = producing the uncompressed text and checksumming it.
        let text = {
            let compressed = message.compressed.lock();
            match compressed.as_ref() {
                Some((packed, bits)) => {
                    let body = message.body.lock();
                    if body.is_empty() {
                        // Body was dropped after compression: decode.
                        let code = HuffmanCode::build(b"placeholder");
                        drop(code);
                        format!("<compressed {} bits>", bits)
                    } else {
                        let _ = packed;
                        body.clone()
                    }
                }
                None => message.body.lock().clone(),
            }
        };
        let sum = text.bytes().map(u64::from).sum::<u64>();
        ticket_for_task.fulfill(sum);
        sum
    });
    ticket
}

/// The whole email application state: one mailbox per user.
#[derive(Debug)]
pub struct EmailState {
    /// Per-user mailboxes.
    pub mailboxes: Vec<Mailbox>,
}

impl EmailState {
    /// Builds `users` mailboxes with `messages_per_user` generated messages.
    pub fn generate(users: usize, messages_per_user: usize, seed: u64) -> Arc<Self> {
        let mut generator = EmailGenerator::new(seed);
        let mailboxes = (0..users)
            .map(|_| Mailbox::new(generator.mailbox(messages_per_user, 30, 120)))
            .collect();
        Arc::new(EmailState { mailboxes })
    }
}

/// Spawns the background checker that fires off compression of every
/// mailbox (shared by both load modes).
fn spawn_checker(rt: &Arc<Runtime>, state: &Arc<EmailState>) {
    let check = rt.priority_by_name("check").expect("level exists");
    let rt_check = Arc::clone(rt);
    let state_check = Arc::clone(state);
    rt.fcreate(check, move || {
        for mailbox in &state_check.mailboxes {
            for i in 0..mailbox.len() {
                let _ = compress_message(&rt_check, mailbox.message(i));
            }
        }
    });
}

/// The request-path priority levels, resolved once per run so the
/// per-request issue path does no name lookups.
#[derive(Debug, Clone, Copy)]
struct RequestLevels {
    event: rp_priority::Priority,
    send: rp_priority::Priority,
    sort: rp_priority::Priority,
}

impl RequestLevels {
    fn resolve(rt: &Runtime) -> Self {
        RequestLevels {
            event: rt.priority_by_name("event").expect("level exists"),
            send: rt.priority_by_name("send").expect("level exists"),
            sort: rt.priority_by_name("sort").expect("level exists"),
        }
    }
}

/// Issues the `i`-th client request: the event loop dispatches to
/// send / sort / print components and replies with what the user needs
/// (send confirmation, mailbox size, or the print acknowledgement).
/// Shared by the closed- and open-loop drivers so the request mix is
/// identical across modes; `levels` is resolved once per run so this
/// per-request path does no name lookups.
fn issue_request_at(
    rt: &Arc<Runtime>,
    state: &Arc<EmailState>,
    i: usize,
    levels: RequestLevels,
) -> IFuture<u64> {
    let RequestLevels { event, send, sort } = levels;
    let users = state.mailboxes.len();
    let user = i % users;
    let rt2 = Arc::clone(rt);
    let state2 = Arc::clone(state);
    rt.fcreate(event, move || {
        let mailbox = &state2.mailboxes[user];
        match i % 3 {
            0 => {
                // Send: simulated SMTP I/O plus a light body checksum at
                // `send` priority.
                let io = rt2.submit_io(event, move || 1u64);
                let body_sum = {
                    let msg = mailbox.message(i % mailbox.len());
                    let body = msg.body.lock();
                    body.bytes().map(u64::from).sum::<u64>()
                };
                let _ = rt2.fcreate(send, move || body_sum);
                rt2.ftouch(&io) + body_sum % 97
            }
            1 => {
                // Sort the mailbox by length at `sort` priority and wait
                // for the result (sort outranks event? no — event
                // outranks sort, so the event loop only *spawns* it and
                // replies immediately with the count, as the paper's
                // event loop does for slow operations).
                let lengths: Vec<usize> = (0..mailbox.len())
                    .map(|j| mailbox.message(j).body.lock().len())
                    .collect();
                let _ = rt2.fcreate(sort, move || {
                    let mut l = lengths;
                    l.sort_unstable();
                    l.last().copied().unwrap_or(0) as u64
                });
                mailbox.len() as u64
            }
            _ => {
                // Print: the event loop only *fires off* the print (it
                // runs at a lower priority, so touching it here would be
                // the very inversion the type system forbids) and
                // acknowledges the request; the print itself coordinates
                // with any in-flight compression through the slot.
                let msg = mailbox.message(i % mailbox.len());
                let _printed = print_message(&rt2, msg);
                mailbox.message(i % mailbox.len()).body.lock().len() as u64
            }
        }
    })
}

/// Drives the email workload on one runtime and returns client-observed
/// response times for the event-loop requests.
pub fn drive_clients(
    rt: &Arc<Runtime>,
    state: &Arc<EmailState>,
    config: &ExperimentConfig,
) -> LatencyStats {
    let mut stats = LatencyStats::new();
    let total = config.connections * config.requests_per_connection;
    let levels = RequestLevels::resolve(rt);
    spawn_checker(rt, state);
    for i in 0..total {
        let started = Instant::now();
        let request = issue_request_at(rt, state, i, levels);
        let _ = rt.ftouch_blocking(&request);
        stats.record(started.elapsed());
    }
    rt.drain(Duration::from_secs(10));
    stats
}

/// Open-loop variant of [`drive_clients`]: the same request mix, injected
/// at seeded Poisson arrival times instead of being paced by replies.
pub fn drive_clients_open(
    rt: &Arc<Runtime>,
    state: &Arc<EmailState>,
    config: &ExperimentConfig,
    open: &OpenLoopConfig,
) -> OpenLoopOutcome {
    let levels = RequestLevels::resolve(rt);
    spawn_checker(rt, state);
    drive_open_loop(open, config.seed, |i| {
        issue_request_at(rt, state, i, levels)
    })
}

/// Runs the email workload in the mode `config.mode` selects.
pub fn drive(
    rt: &Arc<Runtime>,
    state: &Arc<EmailState>,
    config: &ExperimentConfig,
) -> LatencyStats {
    match config.mode {
        LoadMode::Closed => drive_clients(rt, state, config),
        LoadMode::Open(open) => {
            let outcome = drive_clients_open(rt, state, config, &open);
            outcome.warn_if_lossy("email");
            rt.drain(Duration::from_secs(10));
            outcome.latency
        }
        LoadMode::Socket(_) => panic!(
            "socket load is driven from the client side over rp_net \
             (harness::drive_socket_open / bench_net), not by the in-process drivers"
        ),
    }
}

/// Runs the email workload once on the I-Cilk scheduler with execution
/// tracing on — the `--trace` mode of the closed- and open-loop harness
/// paths — and checks Theorem 2.3 against the reconstructed cost graph.
/// The print/compress coordination tickets are detached futures and thus
/// untraced: their orderings simply contribute no edges.
///
/// # Errors
///
/// Returns a [`TraceHarvestError`] when the trace cannot be reconstructed.
pub fn run_traced(config: &ExperimentConfig) -> Result<TraceRunReport, TraceHarvestError> {
    let config = config.clone().traced();
    let rt = Arc::new(config.start_runtime(SchedulerKind::ICilk, &LEVELS));
    let users = config.connections.max(1);
    let state = EmailState::generate(users, 6, config.seed);
    // `drive` ends with a drain in both load modes, so the snapshot below
    // sees only completed tasks.
    let _client = drive(&rt, &state, &config);
    let report = collect_trace(&rt);
    crate::harness::shutdown_runtime(rt, Duration::from_secs(10));
    report
}

/// Runs the email case study on both schedulers and reports the comparison.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentReport {
    let mut reports = Vec::new();
    for scheduler in [SchedulerKind::ICilk, SchedulerKind::Baseline] {
        let rt = Arc::new(config.start_runtime(scheduler, &LEVELS));
        let users = config.connections.max(1);
        let state = EmailState::generate(users, 6, config.seed);
        let client = drive(&rt, &state, config);
        reports.push(run_report(scheduler, &rt, &LEVELS, client));
        crate::harness::shutdown_runtime(rt, Duration::from_secs(10));
    }
    let baseline = reports.pop().expect("two runs");
    let icilk = reports.pop().expect("two runs");
    ExperimentReport {
        app: "email".into(),
        config: config.clone(),
        icilk,
        baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_sim::latency::LatencyModel;

    #[test]
    fn huffman_roundtrip_and_compression() {
        let text = b"abracadabra abracadabra abracadabra";
        let code = HuffmanCode::build(text).unwrap();
        let (packed, bits) = code.encode(text);
        assert!(bits < text.len() * 8, "huffman compresses repetitive text");
        assert_eq!(code.decode(&packed, bits), text.to_vec());
        assert!(code.alphabet_size() >= 5);
    }

    #[test]
    fn huffman_single_symbol_and_empty() {
        assert!(HuffmanCode::build(b"").is_none());
        let code = HuffmanCode::build(b"aaaa").unwrap();
        let (packed, bits) = code.encode(b"aaaa");
        assert_eq!(bits, 4);
        assert_eq!(code.decode(&packed, bits), b"aaaa".to_vec());
    }

    #[test]
    fn mailbox_construction() {
        let mb = Mailbox::new(vec!["one two".into(), "three".into()]);
        assert_eq!(mb.len(), 2);
        assert!(!mb.is_empty());
        assert_eq!(*mb.message(1).body.lock(), "three");
    }

    fn small_config() -> ExperimentConfig {
        ExperimentConfig {
            workers: 2,
            connections: 3,
            requests_per_connection: 4,
            io_latency: LatencyModel::Constant { micros: 200 },
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn compress_then_print_coordinate_through_the_slot() {
        let config = small_config();
        let rt = Arc::new(config.start_runtime(SchedulerKind::ICilk, &LEVELS));
        let state = EmailState::generate(1, 1, 7);
        let msg = state.mailboxes[0].message(0);
        let c = compress_message(&rt, Arc::clone(&msg));
        let p = print_message(&rt, Arc::clone(&msg));
        // Both complete; the print waited for the compression.
        let _ = rt.ftouch_blocking(&c);
        let _ = rt.ftouch_blocking(&p);
        assert!(msg.compressed.lock().is_some());
        // The spawned tasks hold clones of the runtime handle until their
        // closures finish; drain first, then wait to become the sole owner.
        assert!(rt.drain(Duration::from_secs(5)));
        crate::harness::shutdown_runtime(rt, Duration::from_secs(5));
    }

    /// Documents a known scheduler limitation (see ROADMAP): when three or
    /// more compressions of the *same* message are in flight, the slot
    /// chain can deadlock under work-helping.  A task suspended in
    /// `ftouch(previous)` helps by popping queued tasks onto its own
    /// stack; if the popped task is a later compress of the same message,
    /// it touches the suspended task's ticket — which can never be
    /// fulfilled, because its producer is buried beneath it on the same
    /// stack.  Chains of length ≤ 2 cannot wedge (the predecessor is a
    /// leaf task), which is why the coordinate-through-the-slot test above
    /// is safe.  Run with `--ignored` to observe the hang (it is
    /// probabilistic; repeat a few times).
    #[test]
    #[ignore = "known work-helping deadlock on slot chains of length >= 3"]
    fn same_message_compress_storm_documents_the_helping_deadlock() {
        let config = small_config();
        let rt = Arc::new(config.start_runtime(SchedulerKind::ICilk, &LEVELS));
        let compress = rt.priority_by_name("compress").expect("level exists");
        let mailboxes: Vec<_> = (0..6)
            .map(|_| Arc::new(Mailbox::new(vec!["the quick brown fox ".repeat(64); 1])))
            .collect();
        for _ in 0..50 {
            let outers: Vec<_> = (0..24)
                .map(|i| {
                    let rt2 = Arc::clone(&rt);
                    let mb = Arc::clone(&mailboxes[i % 6]);
                    rt.fcreate(compress, move || {
                        let t = compress_message(&rt2, mb.message(0));
                        rt2.ftouch(&t)
                    })
                })
                .collect();
            for o in &outers {
                rt.ftouch_blocking(o);
            }
        }
    }

    #[test]
    fn experiment_runs_on_both_schedulers() {
        let report = run_experiment(&small_config());
        assert_eq!(report.icilk.levels.len(), 6);
        assert!(report.icilk.client_response.count() > 0);
        assert!(report.baseline.client_response.count() > 0);
        assert!(!report.figure14_rows().is_empty());
    }
}
