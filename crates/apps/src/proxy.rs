//! The proxy-server case study (§5.1).
//!
//! Clients request URLs; the server answers from a cache of page bodies and,
//! on a miss, fetches the page over (simulated) network I/O.  Priority
//! levels, lowest to highest: `main` (startup / shutdown), `logging`
//! (statistics), `fetch` (cache-miss fetches), `event` (the per-client event
//! loop handling requests) — the assignment that "favors response time for
//! client requests".

use crate::harness::{
    collect_trace, drive_open_loop, run_report, ExperimentConfig, ExperimentReport, LoadMode,
    OpenLoopConfig, OpenLoopOutcome, TraceHarvestError, TraceRunReport,
};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use rp_icilk::runtime::{Runtime, SchedulerKind};
use rp_icilk::IFuture;
use rp_sim::stats::LatencyStats;
use rp_sim::workload::PageGenerator;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Priority level names, lowest first.
pub const LEVELS: [&str; 4] = ["main", "logging", "fetch", "event"];

/// The shared proxy state: the page cache and access statistics.
#[derive(Debug, Default)]
pub struct ProxyState {
    cache: RwLock<HashMap<String, Bytes>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl ProxyState {
    /// Creates an empty proxy state.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Cache lookup.
    pub fn lookup(&self, url: &str) -> Option<Bytes> {
        self.cache.read().get(url).cloned()
    }

    /// Inserts a fetched page.
    pub fn insert(&self, url: String, body: Bytes) {
        self.cache.write().insert(url, body);
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.lock(), *self.misses.lock())
    }
}

/// A tiny checksum standing in for the response post-processing the real
/// proxy does (header rewriting etc.).
fn checksum(body: &[u8]) -> u64 {
    body.iter().fold(1469598103934665603u64, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(1099511628211)
    })
}

/// Handles one client request on the given runtime, returning a future for
/// the response checksum.  The event-loop part runs at `event` priority; a
/// cache miss delegates the fetch to a `fetch`-priority task that performs
/// simulated network I/O; a `logging` task records statistics.
pub fn handle_request(
    rt: &Arc<Runtime>,
    state: &Arc<ProxyState>,
    url: String,
    body_if_missed: Bytes,
) -> IFuture<u64> {
    let event = rt.priority_by_name("event").expect("level exists");
    let fetch = rt.priority_by_name("fetch").expect("level exists");
    let logging = rt.priority_by_name("logging").expect("level exists");
    let rt2 = Arc::clone(rt);
    let state2 = Arc::clone(state);
    rt.fcreate(event, move || {
        // Log the access at low priority (fire and forget).
        let state_log = Arc::clone(&state2);
        let hit = state_log.lookup(&url).is_some();
        rt2.fcreate(logging, move || {
            if hit {
                *state_log.hits.lock() += 1;
            } else {
                *state_log.misses.lock() += 1;
            }
        });
        match state2.lookup(&url) {
            Some(body) => checksum(&body),
            None => {
                // The page is fetched over simulated network I/O through an
                // io_future, so no worker blocks on the latency; the
                // io_future is created at the event loop's own priority so
                // touching it is not an inversion.  The follow-up work that
                // is *not* on the client's critical path — inserting the page
                // into the cache — runs at the lower `fetch` priority, which
                // is where the cache-miss machinery lives in the paper's
                // priority assignment.
                let io = rt2.submit_io(event, move || body_if_missed);
                let body = rt2.ftouch(&io);
                let rt3 = Arc::clone(&rt2);
                let state3 = Arc::clone(&state2);
                let url2 = url.clone();
                let body2 = body.clone();
                // Cache insertion happens at fetch priority, off the event
                // loop's critical path.
                rt3.fcreate(fetch, move || {
                    state3.insert(url2, body2);
                });
                checksum(&body)
            }
        }
    })
}

/// Runs the proxy workload in the mode `config.mode` selects and returns
/// the client-observed response-time samples.
pub fn drive(
    rt: &Arc<Runtime>,
    state: &Arc<ProxyState>,
    config: &ExperimentConfig,
) -> LatencyStats {
    match config.mode {
        LoadMode::Closed => drive_clients(rt, state, config),
        LoadMode::Open(open) => {
            let outcome = drive_clients_open(rt, state, config, &open);
            outcome.warn_if_lossy("proxy");
            rt.drain(Duration::from_secs(10));
            outcome.latency
        }
        LoadMode::Socket(_) => panic!(
            "socket load is driven from the client side over rp_net \
             (harness::drive_socket_open / bench_net), not by the in-process drivers"
        ),
    }
}

/// Open-loop variant of [`drive_clients`]: requests arrive at the times of
/// a seeded Poisson process instead of being paced by previous replies.
/// The distinct-URL pool is sized like the closed loop's so cache behaviour
/// stays comparable across modes.
pub fn drive_clients_open(
    rt: &Arc<Runtime>,
    state: &Arc<ProxyState>,
    config: &ExperimentConfig,
    open: &OpenLoopConfig,
) -> OpenLoopOutcome {
    let mut pages = PageGenerator::new(256, 2048, config.seed);
    let distinct = (config.connections * config.requests_per_connection / 4).max(1);
    drive_open_loop(open, config.seed, |i| {
        let url = pages.url(i, distinct);
        let body = pages.page_for(&url);
        handle_request(rt, state, url, body)
    })
}

/// Runs the proxy workload on one runtime and returns the client-observed
/// response-time samples.
pub fn drive_clients(
    rt: &Arc<Runtime>,
    state: &Arc<ProxyState>,
    config: &ExperimentConfig,
) -> LatencyStats {
    let mut pages = PageGenerator::new(256, 2048, config.seed);
    let mut stats = LatencyStats::new();
    // Each "connection" issues a train of requests; distinct URL pool is a
    // quarter of the total so the cache gets real hits.
    let total = config.connections * config.requests_per_connection;
    let distinct = (total / 4).max(1);
    let mut in_flight: Vec<(Instant, IFuture<u64>)> = Vec::new();
    for i in 0..total {
        let url = pages.url(i, distinct);
        let body = pages.page_for(&url);
        let started = Instant::now();
        let fut = handle_request(rt, state, url, body);
        in_flight.push((started, fut));
        // Issue in small bursts per connection to create contention.
        if in_flight.len() >= config.connections.max(1) {
            for (started, fut) in in_flight.drain(..) {
                let _ = rt.ftouch_blocking(&fut);
                stats.record(started.elapsed());
            }
        }
    }
    for (started, fut) in in_flight.drain(..) {
        let _ = rt.ftouch_blocking(&fut);
        stats.record(started.elapsed());
    }
    rt.drain(Duration::from_secs(10));
    stats
}

/// Runs the proxy workload once on the I-Cilk scheduler with execution
/// tracing on — the `--trace` mode of the closed- and open-loop harness
/// paths — and checks Theorem 2.3 against the reconstructed cost graph.
///
/// # Errors
///
/// Returns a [`TraceHarvestError`] when the trace cannot be reconstructed.
pub fn run_traced(config: &ExperimentConfig) -> Result<TraceRunReport, TraceHarvestError> {
    let config = config.clone().traced();
    let rt = Arc::new(config.start_runtime(SchedulerKind::ICilk, &LEVELS));
    let state = ProxyState::new();
    // `drive` ends with a drain in both load modes, so the snapshot below
    // sees only completed tasks.
    let _client = drive(&rt, &state, &config);
    let report = collect_trace(&rt);
    crate::harness::shutdown_runtime(rt, Duration::from_secs(10));
    report
}

/// Runs the proxy case study on both schedulers and reports the comparison.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentReport {
    let mut reports = Vec::new();
    for scheduler in [SchedulerKind::ICilk, SchedulerKind::Baseline] {
        let rt = Arc::new(config.start_runtime(scheduler, &LEVELS));
        let state = ProxyState::new();
        let client = drive(&rt, &state, config);
        let report = run_report(scheduler, &rt, &LEVELS, client);
        reports.push(report);
        crate::harness::shutdown_runtime(rt, Duration::from_secs(10));
    }
    let baseline = reports.pop().expect("two runs");
    let icilk = reports.pop().expect("two runs");
    ExperimentReport {
        app: "proxy".into(),
        config: config.clone(),
        icilk,
        baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_sim::latency::LatencyModel;

    fn small_config() -> ExperimentConfig {
        ExperimentConfig {
            workers: 2,
            connections: 4,
            requests_per_connection: 3,
            io_latency: LatencyModel::Constant { micros: 300 },
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn cache_state_tracks_hits_and_misses() {
        let state = ProxyState::new();
        assert!(state.lookup("http://x/").is_none());
        state.insert("http://x/".into(), Bytes::from_static(b"abc"));
        assert_eq!(
            state.lookup("http://x/").unwrap(),
            Bytes::from_static(b"abc")
        );
        *state.hits.lock() += 1;
        assert_eq!(state.stats(), (1, 0));
    }

    #[test]
    fn checksum_is_deterministic_and_sensitive() {
        assert_eq!(checksum(b"hello"), checksum(b"hello"));
        assert_ne!(checksum(b"hello"), checksum(b"world"));
    }

    #[test]
    fn requests_complete_and_populate_cache() {
        let config = small_config();
        let rt = Arc::new(config.start_runtime(SchedulerKind::ICilk, &LEVELS));
        let state = ProxyState::new();
        let stats = drive_clients(&rt, &state, &config);
        assert_eq!(stats.count(), 12);
        assert!(!state.cache.read().is_empty());
        crate::harness::shutdown_runtime(rt, Duration::from_secs(10));
    }

    #[test]
    fn experiment_produces_ratios_for_both_schedulers() {
        let report = run_experiment(&small_config());
        assert_eq!(report.icilk.levels.len(), 4);
        assert_eq!(report.baseline.levels.len(), 4);
        assert!(report.icilk.client_response.count() > 0);
        assert!(report.responsiveness_ratio().is_some());
        assert!(!report.figure13_row().is_empty());
    }

    #[test]
    fn open_loop_requests_complete_and_measure() {
        let config = small_config().open_loop(crate::harness::OpenLoopConfig {
            arrival_rate_per_sec: 300.0,
            warmup_millis: 20,
            measure_millis: 80,
        });
        let rt = Arc::new(config.start_runtime(SchedulerKind::ICilk, &LEVELS));
        let state = ProxyState::new();
        let outcome = drive_clients_open(
            &rt,
            &state,
            &config,
            match &config.mode {
                crate::harness::LoadMode::Open(o) => o,
                _ => unreachable!(),
            },
        );
        assert!(outcome.issued > 0);
        assert_eq!(outcome.unfinished, 0, "all requests completed");
        assert_eq!(outcome.latency.count(), outcome.measured);
        assert!(!state.cache.read().is_empty(), "misses populated the cache");
        assert!(rt.drain(Duration::from_secs(5)));
        crate::harness::shutdown_runtime(rt, Duration::from_secs(10));
    }

    #[test]
    fn open_loop_experiment_produces_per_level_stats() {
        let config = small_config().open_loop(crate::harness::OpenLoopConfig {
            arrival_rate_per_sec: 300.0,
            warmup_millis: 10,
            measure_millis: 60,
        });
        let report = run_experiment(&config);
        assert!(report.icilk.client_response.count() > 0);
        assert!(report.baseline.client_response.count() > 0);
        // The event level saw every request on both schedulers.
        let event = LEVELS.iter().position(|&n| n == "event").unwrap();
        assert!(report.icilk.levels[event].response.count() > 0);
        assert!(report.baseline.levels[event].response.count() > 0);
    }
}
