//! Shared experiment harness: run a case study on I-Cilk and on the
//! baseline, collect per-level statistics, and compute the ratios the paper
//! plots.

use rp_icilk::master::MasterConfig;
use rp_icilk::runtime::{Runtime, RuntimeConfig, SchedulerKind};
use rp_sim::latency::LatencyModel;
use rp_sim::stats::{ratio, LatencyStats, RatioSummary};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Configuration shared by all three case studies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of worker threads for the server.
    pub workers: usize,
    /// Number of simulated client connections (proxy / email) or arrival
    /// intensity scale (jserver).
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_connection: usize,
    /// Simulated I/O latency model.
    pub io_latency: LatencyModel,
    /// Seed for all randomised pieces of the workload.
    pub seed: u64,
    /// Master scheduler parameters (quantum, threshold, γ).
    pub quantum_micros: u64,
    /// Utilization threshold for the master.
    pub utilization_threshold: f64,
    /// Growth parameter γ.
    pub growth: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            workers: 4,
            connections: 16,
            requests_per_connection: 8,
            io_latency: LatencyModel::Uniform { lo: 200, hi: 1_500 },
            seed: 42,
            quantum_micros: 500,
            utilization_threshold: 0.9,
            growth: 2.0,
        }
    }
}

impl ExperimentConfig {
    /// The master-scheduler configuration implied by this experiment config.
    pub fn master(&self) -> MasterConfig {
        MasterConfig {
            quantum: Duration::from_micros(self.quantum_micros),
            utilization_threshold: self.utilization_threshold,
            growth: self.growth,
        }
    }

    /// Builds the runtime configuration for the given scheduler flavour and
    /// priority level names (lowest first).
    pub fn runtime_config(&self, scheduler: SchedulerKind, level_names: &[&str]) -> RuntimeConfig {
        RuntimeConfig::new(self.workers, level_names.len())
            .with_level_names(level_names.to_vec())
            .with_scheduler(scheduler)
            .with_master(self.master())
            .with_io_latency(self.io_latency, self.seed)
    }

    /// Starts a runtime for this experiment.
    pub fn start_runtime(&self, scheduler: SchedulerKind, level_names: &[&str]) -> Runtime {
        Runtime::start(self.runtime_config(scheduler, level_names))
    }
}

/// Per-priority-level results of one run of one application on one
/// scheduler.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// The level's name.
    pub name: String,
    /// The level's index (0 = lowest).
    pub level: usize,
    /// Compute-time statistics of tasks at this level.
    pub compute: LatencyStats,
    /// Response-time statistics of tasks at this level.
    pub response: LatencyStats,
}

/// The results of running one application once on one scheduler.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Which scheduler ran it.
    pub scheduler: SchedulerKind,
    /// Client-observed response times (request issued → reply delivered) for
    /// the highest-priority interactive path.
    pub client_response: LatencyStats,
    /// Per-level task statistics, lowest level first.
    pub levels: Vec<LevelReport>,
}

/// The paired comparison the figures plot: baseline (Cilk-F) over treatment
/// (I-Cilk), so values above 1 mean I-Cilk is better.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Application name.
    pub app: String,
    /// The configuration used.
    pub config: ExperimentConfig,
    /// The I-Cilk run.
    pub icilk: RunReport,
    /// The baseline run.
    pub baseline: RunReport,
}

impl ExperimentReport {
    /// The responsiveness ratio (baseline / I-Cilk) of client-observed
    /// response times — the quantity of Figure 13.
    pub fn responsiveness_ratio(&self) -> Option<RatioSummary> {
        ratio(&self.baseline.client_response, &self.icilk.client_response)
    }

    /// The compute-time ratio (baseline / I-Cilk) for one priority level —
    /// the quantity of Figure 14.
    pub fn compute_ratio(&self, level: usize) -> Option<RatioSummary> {
        let b = &self.baseline.levels.get(level)?.compute;
        let t = &self.icilk.levels.get(level)?.compute;
        ratio(b, t)
    }

    /// Renders one figure-style row: app, connections, then mean/p95 ratios.
    pub fn figure13_row(&self) -> String {
        match self.responsiveness_ratio() {
            Some(r) => format!(
                "{:<8} conns={:<4} responsiveness ratio: mean {:.2}x  p95 {:.2}x  (I-Cilk mean {:.0}µs)",
                self.app,
                self.config.connections,
                r.mean_ratio,
                r.p95_ratio,
                self.icilk.client_response.mean_micros().unwrap_or(0.0)
            ),
            None => format!("{:<8} conns={:<4} (no samples)", self.app, self.config.connections),
        }
    }

    /// Renders Figure 14 style rows: one per level, highest priority first.
    pub fn figure14_rows(&self) -> Vec<String> {
        let mut rows = Vec::new();
        for level in (0..self.icilk.levels.len()).rev() {
            let name = &self.icilk.levels[level].name;
            match self.compute_ratio(level) {
                Some(r) => rows.push(format!(
                    "{:<8} conns={:<4} level {:<12} compute ratio: mean {:.2}x  p95 {:.2}x",
                    self.app, self.config.connections, name, r.mean_ratio, r.p95_ratio
                )),
                None => rows.push(format!(
                    "{:<8} conns={:<4} level {:<12} (no samples)",
                    self.app, self.config.connections, name
                )),
            }
        }
        rows
    }
}

/// Builds a [`RunReport`] from a runtime's metrics snapshot plus the
/// client-side response samples gathered by the application driver.
pub fn run_report(
    scheduler: SchedulerKind,
    rt: &Runtime,
    level_names: &[&str],
    client_response: LatencyStats,
) -> RunReport {
    let snap = rt.metrics();
    let levels = level_names
        .iter()
        .enumerate()
        .map(|(i, name)| LevelReport {
            name: (*name).to_string(),
            level: i,
            compute: snap.compute.get(i).cloned().unwrap_or_default(),
            response: snap.response.get(i).cloned().unwrap_or_default(),
        })
        .collect();
    RunReport {
        scheduler,
        client_response,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ExperimentConfig::default();
        assert!(c.workers >= 1);
        assert_eq!(c.master().growth, 2.0);
        assert_eq!(c.master().quantum, Duration::from_micros(500));
    }

    #[test]
    fn runtime_config_carries_levels_and_scheduler() {
        let c = ExperimentConfig::default();
        let rc = c.runtime_config(SchedulerKind::Baseline, &["a", "b", "c"]);
        assert_eq!(rc.levels, 3);
        assert_eq!(rc.scheduler, SchedulerKind::Baseline);
    }

    #[test]
    fn report_ratios_and_rows() {
        let mut fast = LatencyStats::new();
        let mut slow = LatencyStats::new();
        for v in [10_000u64, 20_000, 30_000] {
            fast.record_value(v);
            slow.record_value(v * 3);
        }
        let mk_run = |sched, client: &LatencyStats| RunReport {
            scheduler: sched,
            client_response: client.clone(),
            levels: vec![LevelReport {
                name: "only".into(),
                level: 0,
                compute: client.clone(),
                response: client.clone(),
            }],
        };
        let report = ExperimentReport {
            app: "test".into(),
            config: ExperimentConfig::default(),
            icilk: mk_run(SchedulerKind::ICilk, &fast),
            baseline: mk_run(SchedulerKind::Baseline, &slow),
        };
        let r = report.responsiveness_ratio().unwrap();
        assert!((r.mean_ratio - 3.0).abs() < 1e-9);
        assert!(report.figure13_row().contains("responsiveness ratio"));
        assert_eq!(report.figure14_rows().len(), 1);
        assert!(report.compute_ratio(0).is_some());
        assert!(report.compute_ratio(7).is_none());
    }
}
