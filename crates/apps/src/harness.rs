//! Shared experiment harness: run a case study on I-Cilk and on the
//! baseline, collect per-level statistics, and compute the ratios the paper
//! plots.
//!
//! Two load-generation modes are supported:
//!
//! * **closed loop** — each simulated connection issues its next request only
//!   after the previous reply arrives (`connections ×
//!   requests_per_connection` requests total).  Simple, but the offered load
//!   adapts to the server: a slow server sees *fewer* requests per second,
//!   which hides latency problems;
//! * **open loop** — requests are injected at the times of a seeded Poisson
//!   arrival process regardless of how the server is doing, the paper's
//!   actual workload model ("simulates user inputs using a Poisson
//!   process").  [`drive_open_loop`] implements the injection with
//!   warmup/measurement windows and *coordinated-omission-corrected*
//!   latencies: each response time is measured from the request's *intended*
//!   arrival time, not from when the injector actually managed to send it,
//!   so injector stalls behind a slow server count against the server
//!   instead of silently dropping the worst samples.

use rp_core::stream::{IncrementalReconstructor, StreamAggregates, StreamConfig, StreamCounters};
use rp_core::trace::{ReconstructedRun, TraceBoundReport, TraceError};
use rp_icilk::master::MasterConfig;
use rp_icilk::runtime::{Runtime, RuntimeConfig, SchedulerKind};
use rp_icilk::trace::TraceStats;
use rp_icilk::IFuture;
use rp_sim::clock::VirtualTime;
use rp_sim::latency::LatencyModel;
use rp_sim::poisson::PoissonProcess;
use rp_sim::stats::{ratio, LatencyStats, RatioSummary};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the load generator paces requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LoadMode {
    /// Closed loop: `connections × requests_per_connection` requests, each
    /// connection waiting for its reply before issuing the next request.
    #[default]
    Closed,
    /// Open loop: Poisson arrivals at a fixed rate, independent of server
    /// progress.
    Open(OpenLoopConfig),
    /// Open loop over **real loopback sockets**: the same Poisson schedule
    /// as [`LoadMode::Open`], but every request crosses a TCP connection to
    /// an `rp_net` server instead of calling a `drive()` function
    /// in-process.  Driven from the *client* side by [`drive_socket_open`];
    /// the in-process app drivers reject this mode.
    Socket(SocketLoadConfig),
}

/// Parameters of the open-loop injector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpenLoopConfig {
    /// Mean arrival rate in requests per second.
    pub arrival_rate_per_sec: f64,
    /// Warmup window: arrivals in the first `warmup_millis` are issued but
    /// not measured (caches fill, the master's allotments settle).
    pub warmup_millis: u64,
    /// Measurement window length, after the warmup.
    pub measure_millis: u64,
}

impl OpenLoopConfig {
    /// A config with the given arrival rate and the default 100 ms warmup /
    /// 400 ms measurement windows.
    pub fn at_rate(arrival_rate_per_sec: f64) -> Self {
        OpenLoopConfig {
            arrival_rate_per_sec,
            warmup_millis: 100,
            measure_millis: 400,
        }
    }

    /// Total injection horizon (warmup + measurement).
    pub fn horizon(&self) -> Duration {
        Duration::from_millis(self.warmup_millis + self.measure_millis)
    }
}

/// Parameters of the socket open-loop injector ([`drive_socket_open`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SocketLoadConfig {
    /// The Poisson arrival schedule (shared with the in-process open loop).
    pub open: OpenLoopConfig,
    /// Number of client threads; the global arrival schedule is split
    /// round-robin, each client owning one persistent loopback connection.
    pub clients: usize,
    /// Client-side fault handling (deadlines, `Overloaded` retries,
    /// reconnects); the default is fully passive — errors propagate exactly
    /// as they did before this knob existed.
    pub resilience: ResilienceConfig,
}

impl SocketLoadConfig {
    /// A config with the given arrival rate, the default open-loop windows,
    /// 4 client connections, and passive (non-resilient) fault handling.
    pub fn at_rate(arrival_rate_per_sec: f64) -> Self {
        SocketLoadConfig {
            open: OpenLoopConfig::at_rate(arrival_rate_per_sec),
            clients: 4,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Retry pacing for requests the server answered `Overloaded`: capped
/// exponential backoff with deterministic jitter (see [`backoff_delay`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total send attempts per request (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before attempt 2; doubles per further attempt.
    pub base: Duration,
    /// Upper bound of the exponential backoff.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base: Duration::from_micros(500),
            cap: Duration::from_millis(10),
        }
    }
}

/// Client-side resilience of the socket open loop.  Everything defaults to
/// off: no deadline, no retries, no reconnect — the driver then behaves
/// exactly as it did before resilience existed (any connection error aborts
/// the run).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ResilienceConfig {
    /// Per-request deadline, measured from the *intended* arrival time; a
    /// request unanswered past it is abandoned and counted in
    /// [`OpenLoopOutcome::timed_out`] (and in `unfinished`).
    pub deadline: Option<Duration>,
    /// Retry pacing for responses the classifier marks
    /// [`ResponseVerdict::Overloaded`].
    pub retry: RetryPolicy,
    /// Reconnect transparently when the connection breaks.  Requests that
    /// were awaiting a reply on the broken connection are recorded as
    /// unfinished **immediately** (never silently resent: the server may
    /// have executed them); requests merely queued for a backoff resend
    /// carry over to the new connection.
    pub reconnect: bool,
}

impl ResilienceConfig {
    /// The shape the overload bench and chaos tests use: reconnects on,
    /// a handful of retry attempts, and the given per-request deadline.
    pub fn robust(deadline: Option<Duration>) -> Self {
        ResilienceConfig {
            deadline,
            retry: RetryPolicy {
                max_attempts: 4,
                base: Duration::from_micros(200),
                cap: Duration::from_millis(5),
            },
            reconnect: true,
        }
    }
}

/// How the driver should treat one response body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseVerdict {
    /// A final answer (success or error): the request is complete.
    Answered,
    /// The server shed the request; retry it under the
    /// [`RetryPolicy`], or count it rejected once attempts run out.
    Overloaded,
}

/// The deterministic jittered backoff before `attempt` (≥ 2) of a request:
/// `min(base · 2^(attempt−2), cap)` scaled by a jitter factor in
/// `[0.5, 1.0)` drawn from a stateless hash of `(seed, request, attempt)`.
/// Being a pure function — no RNG state shared across requests — the delay
/// a given retry backs off for is independent of how requests interleave,
/// which keeps seeded runs reproducible.
pub fn backoff_delay(policy: &RetryPolicy, seed: u64, request: u64, attempt: u32) -> Duration {
    let doublings = attempt.saturating_sub(2).min(20);
    let exp = policy.base.saturating_mul(1 << doublings).min(policy.cap);
    // SplitMix64 finalizer over the three inputs.
    let mut x = seed ^ request.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (u64::from(attempt) << 32);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let unit = (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    exp.mul_f64(0.5 + 0.5 * unit)
}

/// Configuration shared by all three case studies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of worker threads for the server.
    pub workers: usize,
    /// Number of simulated client connections (proxy / email) or arrival
    /// intensity scale (jserver).
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_connection: usize,
    /// How the load generator paces requests (closed or open loop).
    pub mode: LoadMode,
    /// Simulated I/O latency model.
    pub io_latency: LatencyModel,
    /// Seed for all randomised pieces of the workload.
    pub seed: u64,
    /// Master scheduler parameters (quantum, threshold, γ).
    pub quantum_micros: u64,
    /// Utilization threshold for the master.
    pub utilization_threshold: f64,
    /// Growth parameter γ.
    pub growth: f64,
    /// Whether the runtime records an execution trace (see
    /// [`collect_trace`]).
    pub trace: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            workers: 4,
            connections: 16,
            requests_per_connection: 8,
            mode: LoadMode::Closed,
            io_latency: LatencyModel::Uniform { lo: 200, hi: 1_500 },
            seed: 42,
            quantum_micros: 500,
            utilization_threshold: 0.9,
            growth: 2.0,
            trace: false,
        }
    }
}

impl ExperimentConfig {
    /// The master-scheduler configuration implied by this experiment config.
    pub fn master(&self) -> MasterConfig {
        MasterConfig {
            quantum: Duration::from_micros(self.quantum_micros),
            utilization_threshold: self.utilization_threshold,
            growth: self.growth,
        }
    }

    /// Builds the runtime configuration for the given scheduler flavour and
    /// priority level names (lowest first).
    pub fn runtime_config(&self, scheduler: SchedulerKind, level_names: &[&str]) -> RuntimeConfig {
        RuntimeConfig::new(self.workers, level_names.len())
            .with_level_names(level_names.to_vec())
            .with_scheduler(scheduler)
            .with_master(self.master())
            .with_io_latency(self.io_latency, self.seed)
            .with_tracing(self.trace)
    }

    /// Starts a runtime for this experiment.
    pub fn start_runtime(&self, scheduler: SchedulerKind, level_names: &[&str]) -> Runtime {
        Runtime::start(self.runtime_config(scheduler, level_names))
    }

    /// This config with the load mode switched to open loop at the given
    /// arrival parameters.
    pub fn open_loop(mut self, open: OpenLoopConfig) -> Self {
        self.mode = LoadMode::Open(open);
        self
    }

    /// This config with execution tracing enabled.
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// What one open-loop run produced.
#[derive(Debug, Clone)]
pub struct OpenLoopOutcome {
    /// Coordinated-omission-corrected response times (intended arrival →
    /// observed completion) of the requests in the measurement window.
    pub latency: LatencyStats,
    /// Requests injected over the whole horizon (warmup + measurement).
    pub issued: usize,
    /// Requests measured (intended arrival inside the measurement window
    /// and completed before the tail deadline).
    pub measured: usize,
    /// Requests still incomplete when the tail deadline expired (0 on a
    /// healthy run).  For the socket driver this includes requests lost to
    /// a broken connection and requests abandoned at their deadline.
    pub unfinished: usize,
    /// Requests whose final answer was `Overloaded` after retries ran out
    /// (socket driver only; they are absent from [`Self::latency`]).
    pub rejected: usize,
    /// Requests abandoned because their per-request deadline expired
    /// (subset of [`Self::unfinished`]; socket driver only).
    pub timed_out: usize,
    /// Total retry sends after `Overloaded` answers (socket driver only).
    pub retries: usize,
    /// Transparent reconnects performed (socket driver only).
    pub reconnects: usize,
}

impl OpenLoopOutcome {
    /// Warns on stderr when requests never completed: their latencies are
    /// *absent* from [`Self::latency`], so tail percentiles understate an
    /// overloaded server.  Callers that reduce the outcome to bare stats
    /// (the `drive()` dispatchers) must not let that loss pass silently.
    pub fn warn_if_lossy(&self, app: &str) {
        if self.unfinished > 0 {
            eprintln!(
                "warning: {app} open-loop run: {} of {} requests never completed; \
                 measured latencies exclude them, so tail percentiles are understated",
                self.unfinished, self.issued
            );
        }
    }
}

/// How long after the last injection the driver keeps waiting for
/// still-running requests before giving up on them.
const OPEN_LOOP_TAIL_TIMEOUT: Duration = Duration::from_secs(10);

/// Completion-poll granularity of the injector while it waits for the next
/// intended arrival time (bounds the measurement error of each sample).
const OPEN_LOOP_POLL: Duration = Duration::from_micros(200);

/// Runs an open-loop injection: `issue(i)` is called at (or as soon as
/// possible after) the `i`-th arrival time of a Poisson process seeded with
/// `seed`, and every returned future's completion is awaited.
///
/// The arrival *schedule* is drawn up front, so the number of issued
/// requests is a deterministic function of `(open, seed)` — the injector
/// falling behind real time changes measured latencies, never the workload
/// shape.  Latency is measured from the **intended** arrival time
/// (coordinated-omission correction): if the injector stalls because the
/// server is saturated, the stall is charged to the affected requests
/// instead of being dropped from the distribution.
pub fn drive_open_loop<T, F>(open: &OpenLoopConfig, seed: u64, mut issue: F) -> OpenLoopOutcome
where
    T: Clone + Send + 'static,
    F: FnMut(usize) -> IFuture<T>,
{
    let warmup = Duration::from_millis(open.warmup_millis);
    let horizon = VirtualTime::from_micros(open.horizon().as_micros() as u64);
    let offsets =
        PoissonProcess::with_rate_per_sec(open.arrival_rate_per_sec, seed).arrivals_until(horizon);

    let start = Instant::now();
    let mut latency = LatencyStats::new();
    let mut measured = 0usize;
    // (intended arrival, inside the measurement window, future)
    let mut in_flight: Vec<(Instant, bool, IFuture<T>)> = Vec::new();

    fn poll_completions<T: Clone + Send + 'static>(
        in_flight: &mut Vec<(Instant, bool, IFuture<T>)>,
        latency: &mut LatencyStats,
        measured: &mut usize,
    ) {
        in_flight.retain(|(intended, measure, fut)| {
            if !fut.is_ready() {
                return true;
            }
            if *measure {
                latency.record(Instant::now().saturating_duration_since(*intended));
                *measured += 1;
            }
            false
        });
    }

    for (i, offset) in offsets.iter().enumerate() {
        let offset = Duration::from_micros(offset.as_micros());
        let intended = start + offset;
        // Harvest at least once per arrival — even when behind schedule —
        // so a completion is observed within one arrival interval of
        // happening and a backlogged injector does not inflate the
        // latencies of already-finished requests.
        poll_completions(&mut in_flight, &mut latency, &mut measured);
        // Wait for the intended arrival, harvesting completions meanwhile.
        // When behind schedule this loop exits immediately and the request
        // is injected late — with its latency still measured from
        // `intended`.
        loop {
            let now = Instant::now();
            if now >= intended {
                break;
            }
            std::thread::sleep((intended - now).min(OPEN_LOOP_POLL));
            poll_completions(&mut in_flight, &mut latency, &mut measured);
        }
        let fut = issue(i);
        in_flight.push((intended, offset >= warmup, fut));
    }

    let deadline = Instant::now() + OPEN_LOOP_TAIL_TIMEOUT;
    while !in_flight.is_empty() && Instant::now() < deadline {
        poll_completions(&mut in_flight, &mut latency, &mut measured);
        if !in_flight.is_empty() {
            std::thread::sleep(OPEN_LOOP_POLL);
        }
    }

    OpenLoopOutcome {
        latency,
        issued: offsets.len(),
        measured,
        unfinished: in_flight.len(),
        rejected: 0,
        timed_out: 0,
        retries: 0,
        reconnects: 0,
    }
}

// ---------------------------------------------------------------------------
// Socket open loop: the same Poisson schedule, over real TCP.
// ---------------------------------------------------------------------------

/// The wire **envelope** shared by this driver and the `rp_net` server: a
/// frame is a 4-byte big-endian length (of everything after it), an 8-byte
/// big-endian request id, and an opaque body.  Responses echo the request
/// id, so clients may pipeline requests on one connection and match replies
/// out of order.  `rp_net::protocol` implements the same envelope on the
/// server side (the body layout — request class tags and payloads — lives
/// only there; this driver treats bodies as opaque).
pub const SOCKET_FRAME_HEADER_BYTES: usize = 4;

/// Largest envelope length field either side accepts.  A header past this
/// bound cannot be a real frame, so the peer is broken or hostile — without
/// the cap, one bogus 4-byte header would make the reader buffer up to
/// 4 GiB waiting for a frame that never completes.
pub const SOCKET_FRAME_MAX_BYTES: usize = 64 << 20;

/// The peer sent an envelope header no valid frame can have (length < the
/// 8-byte request id, or past [`SOCKET_FRAME_MAX_BYTES`]).  The only sane
/// recovery is to drop the connection: the stream cannot be re-synchronised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MalformedFrame {
    /// The impossible length field.
    pub len: u32,
}

impl std::fmt::Display for MalformedFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "malformed envelope: length field {} outside 8..={SOCKET_FRAME_MAX_BYTES}",
            self.len
        )
    }
}

impl std::error::Error for MalformedFrame {}

impl From<MalformedFrame> for std::io::Error {
    fn from(e: MalformedFrame) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Writes one envelope frame (`id` + `body`) to `w`.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_socket_frame<W: Write>(w: &mut W, id: u64, body: &[u8]) -> std::io::Result<()> {
    let len = 8 + body.len();
    assert!(len <= SOCKET_FRAME_MAX_BYTES, "frame body too large");
    let mut frame = Vec::with_capacity(SOCKET_FRAME_HEADER_BYTES + len);
    frame.extend_from_slice(&u32::try_from(len).expect("frame fits in u32").to_be_bytes());
    frame.extend_from_slice(&id.to_be_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)
}

/// Extracts the next complete envelope frame from the front of `buf`,
/// returning the request id and body; `Ok(None)` when the buffer holds no
/// complete frame yet.
///
/// # Errors
///
/// Returns [`MalformedFrame`] on an impossible length field.  The caller
/// must drop the connection — the bytes are left in the buffer, so calling
/// again just returns the same error.
pub fn take_socket_frame(buf: &mut Vec<u8>) -> Result<Option<(u64, Vec<u8>)>, MalformedFrame> {
    if buf.len() < SOCKET_FRAME_HEADER_BYTES {
        return Ok(None);
    }
    let len_field = u32::from_be_bytes(buf[..4].try_into().expect("4 bytes"));
    let len = len_field as usize;
    if !(8..=SOCKET_FRAME_MAX_BYTES).contains(&len) {
        return Err(MalformedFrame { len: len_field });
    }
    if buf.len() < SOCKET_FRAME_HEADER_BYTES + len {
        return Ok(None);
    }
    let frame: Vec<u8> = buf.drain(..SOCKET_FRAME_HEADER_BYTES + len).collect();
    let id = u64::from_be_bytes(frame[4..12].try_into().expect("8 bytes"));
    Ok(Some((id, frame[12..].to_vec())))
}

/// What one client thread of [`drive_socket_open`] produced.
#[derive(Default)]
struct ClientOutcome {
    latency: LatencyStats,
    measured: usize,
    unfinished: usize,
    rejected: usize,
    timed_out: usize,
    retries: usize,
    reconnects: usize,
}

/// Runs an open-loop injection **over real loopback sockets**: the global
/// Poisson arrival schedule (identical to [`drive_open_loop`]'s for the
/// same `(open, seed)`) is split round-robin across `socket.clients` client
/// threads, each owning one persistent TCP connection to `addr`.  The
/// `i`-th arrival sends the body `encode(i)` wrapped in the wire envelope
/// with request id `i`; a request completes when a response frame echoing
/// its id arrives on the same connection.
///
/// Latencies are coordinated-omission corrected exactly like the in-process
/// open loop: measured from each request's *intended* arrival time, so a
/// saturated server (or a stalled client thread) charges the delay to the
/// affected requests.  Requests pipeline freely — a client does not wait
/// for a reply before sending the next request.
///
/// # Errors
///
/// Returns the first connection/send error any client thread hit.  Requests
/// whose responses never arrive are counted in
/// [`OpenLoopOutcome::unfinished`], not treated as errors.
pub fn drive_socket_open<F>(
    socket: &SocketLoadConfig,
    seed: u64,
    addr: SocketAddr,
    encode: F,
) -> std::io::Result<OpenLoopOutcome>
where
    F: Fn(usize) -> Vec<u8> + Send + Sync,
{
    drive_socket_open_with(socket, seed, addr, encode, |_| ResponseVerdict::Answered)
}

/// [`drive_socket_open`] with a response classifier: `classify` inspects
/// each response body and decides whether it is a final answer or an
/// `Overloaded` rejection to retry under
/// [`ResilienceConfig::retry`].  The driver treats bodies as opaque apart
/// from this verdict, so the protocol layering stays one-way
/// (`rp_net::protocol::body_is_overloaded` is the intended classifier for
/// `rp_net` servers).
///
/// # Errors
///
/// Returns the first connection/send error any client thread hit (with
/// [`ResilienceConfig::reconnect`] enabled, only errors that persist
/// through the reconnect attempts surface here).
pub fn drive_socket_open_with<F, C>(
    socket: &SocketLoadConfig,
    seed: u64,
    addr: SocketAddr,
    encode: F,
    classify: C,
) -> std::io::Result<OpenLoopOutcome>
where
    F: Fn(usize) -> Vec<u8> + Send + Sync,
    C: Fn(&[u8]) -> ResponseVerdict + Send + Sync,
{
    let open = socket.open;
    let clients = socket.clients.max(1);
    let warmup = Duration::from_millis(open.warmup_millis);
    let horizon = VirtualTime::from_micros(open.horizon().as_micros() as u64);
    let offsets =
        PoissonProcess::with_rate_per_sec(open.arrival_rate_per_sec, seed).arrivals_until(horizon);
    let issued = offsets.len();
    let encode = &encode;
    let classify = &classify;
    let offsets = &offsets;
    let resilience = &socket.resilience;

    let start = Instant::now();
    let outcomes: Vec<std::io::Result<ClientOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    socket_client_loop(
                        client, clients, addr, start, warmup, offsets, encode, classify,
                        resilience, seed,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("socket client thread"))
            .collect()
    });

    let mut total = ClientOutcome::default();
    for outcome in outcomes {
        let outcome = outcome?;
        total.latency.merge(&outcome.latency);
        total.measured += outcome.measured;
        total.unfinished += outcome.unfinished;
        total.rejected += outcome.rejected;
        total.timed_out += outcome.timed_out;
        total.retries += outcome.retries;
        total.reconnects += outcome.reconnects;
    }
    Ok(OpenLoopOutcome {
        latency: total.latency,
        issued,
        measured: total.measured,
        unfinished: total.unfinished,
        rejected: total.rejected,
        timed_out: total.timed_out,
        retries: total.retries,
        reconnects: total.reconnects,
    })
}

/// One request awaiting its reply (or its backoff resend).
struct Pending {
    intended: Instant,
    measure: bool,
    /// The encoded body, kept only when retries are enabled.
    body: Option<Vec<u8>>,
    /// Send attempts so far.
    attempts: u32,
    /// Abandon the request past this instant.
    deadline: Option<Instant>,
    /// `Some(when)` — queued for a backoff resend at `when`; `None` — sent,
    /// awaiting the reply.
    resend_at: Option<Instant>,
}

/// The mutable state of one socket client thread, factored out so the
/// connection-error path (record losses, reconnect, carry queued resends
/// over) is one method instead of a closure pyramid.
struct ClientState<'a> {
    resilience: &'a ResilienceConfig,
    seed: u64,
    addr: SocketAddr,
    stream: TcpStream,
    buf: Vec<u8>,
    in_flight: HashMap<u64, Pending>,
    /// Requests lost to a broken connection (recorded the moment the break
    /// is observed, not at the tail deadline).
    lost: usize,
    out: ClientOutcome,
}

impl ClientState<'_> {
    fn connect(addr: SocketAddr) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(OPEN_LOOP_POLL))?;
        Ok(stream)
    }

    /// One poll step: read with `wait` as the pacing timeout, complete any
    /// arrived responses, expire deadlines, flush due resends.
    fn poll(
        &mut self,
        wait: Duration,
        classify: &(impl Fn(&[u8]) -> ResponseVerdict + Sync),
    ) -> std::io::Result<()> {
        self.stream.set_read_timeout(Some(wait))?;
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => self.on_conn_error(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection with requests in flight",
            ))?,
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                loop {
                    match take_socket_frame(&mut self.buf) {
                        Ok(Some((id, body))) => self.on_frame(id, &body, classify),
                        Ok(None) => break,
                        Err(e) => {
                            self.on_conn_error(e.into())?;
                            break;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => self.on_conn_error(e)?,
        }
        self.expire_deadlines();
        self.flush_resends()
    }

    fn on_frame(
        &mut self,
        id: u64,
        body: &[u8],
        classify: &(impl Fn(&[u8]) -> ResponseVerdict + Sync),
    ) {
        let Some(mut pending) = self.in_flight.remove(&id) else {
            return; // duplicate (a retried request answered twice)
        };
        match classify(body) {
            ResponseVerdict::Answered => {
                if pending.measure {
                    self.out
                        .latency
                        .record(Instant::now().saturating_duration_since(pending.intended));
                    self.out.measured += 1;
                }
            }
            ResponseVerdict::Overloaded => {
                let retriable = pending.body.is_some()
                    && pending.attempts < self.resilience.retry.max_attempts
                    && pending.deadline.is_none_or(|d| Instant::now() < d);
                if retriable {
                    pending.attempts += 1;
                    pending.resend_at = Some(
                        Instant::now()
                            + backoff_delay(
                                &self.resilience.retry,
                                self.seed,
                                id,
                                pending.attempts,
                            ),
                    );
                    self.out.retries += 1;
                    self.in_flight.insert(id, pending);
                } else {
                    self.out.rejected += 1;
                }
            }
        }
    }

    /// Abandons requests whose per-request deadline has passed.
    fn expire_deadlines(&mut self) {
        if self.resilience.deadline.is_none() {
            return;
        }
        let now = Instant::now();
        let timed_out = &mut self.out.timed_out;
        self.in_flight.retain(|_, p| {
            let expired = p.deadline.is_some_and(|d| now >= d);
            if expired {
                *timed_out += 1;
            }
            !expired
        });
    }

    /// Sends every request whose (re)send is due.
    fn flush_resends(&mut self) -> std::io::Result<()> {
        let now = Instant::now();
        let due: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(_, p)| p.resend_at.is_some_and(|t| t <= now))
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            match self.in_flight[&id].body.clone() {
                Some(body) => self.send(id, &body)?,
                None => {
                    // Queued without a kept body (a failed initial send with
                    // retries off): the request cannot be resent — lost.
                    self.in_flight.remove(&id);
                    self.lost += 1;
                }
            }
        }
        Ok(())
    }

    /// Writes one frame for a request currently marked queued
    /// (`resend_at: Some`); on success the request switches to
    /// awaiting-reply.  A failed write goes through the connection-error
    /// path — the queued marker protects the request from being counted
    /// lost there — after which it is re-queued (body kept) or recorded
    /// lost (body not kept).
    fn send(&mut self, id: u64, body: &[u8]) -> std::io::Result<()> {
        if write_socket_frame(&mut self.stream, id, body).is_ok() {
            if let Some(p) = self.in_flight.get_mut(&id) {
                p.resend_at = None;
            }
            return Ok(());
        }
        self.on_conn_error(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "send failed",
        ))?;
        if let Some(p) = self.in_flight.get_mut(&id) {
            if p.body.is_some() {
                p.resend_at = Some(Instant::now());
            } else {
                self.in_flight.remove(&id);
                self.lost += 1;
            }
        }
        Ok(())
    }

    /// The connection broke.  Without [`ResilienceConfig::reconnect`] the
    /// error propagates (the historical behaviour).  With it, requests
    /// awaiting a reply are recorded lost *now* — the server may have
    /// executed them, so they are never resent — queued resends carry over,
    /// and the connection is re-established with a short bounded backoff.
    fn on_conn_error(&mut self, e: std::io::Error) -> std::io::Result<()> {
        if !self.resilience.reconnect {
            return Err(e);
        }
        let lost = &mut self.lost;
        self.in_flight.retain(|_, p| {
            let awaiting = p.resend_at.is_none();
            if awaiting {
                *lost += 1;
            }
            !awaiting
        });
        self.buf.clear();
        let mut wait = Duration::from_millis(1);
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match Self::connect(self.addr) {
                Ok(stream) => {
                    self.stream = stream;
                    self.out.reconnects += 1;
                    return Ok(());
                }
                Err(err) if Instant::now() < deadline => {
                    std::thread::sleep(wait);
                    wait = (wait * 2).min(Duration::from_millis(50));
                    let _ = err;
                }
                Err(err) => return Err(err),
            }
        }
    }
}

/// One client thread of the socket open loop: sends its round-robin share
/// of the arrival schedule down one connection, matching responses by id.
#[allow(clippy::too_many_arguments)]
fn socket_client_loop(
    client: usize,
    clients: usize,
    addr: SocketAddr,
    start: Instant,
    warmup: Duration,
    offsets: &[VirtualTime],
    encode: &(impl Fn(usize) -> Vec<u8> + Send + Sync),
    classify: &(impl Fn(&[u8]) -> ResponseVerdict + Send + Sync),
    resilience: &ResilienceConfig,
    seed: u64,
) -> std::io::Result<ClientOutcome> {
    let mut state = ClientState {
        resilience,
        seed,
        addr,
        stream: ClientState::connect(addr)?,
        buf: Vec::new(),
        in_flight: HashMap::new(),
        lost: 0,
        out: ClientOutcome::default(),
    };
    let keep_bodies = resilience.retry.max_attempts > 1;

    for (i, offset) in offsets.iter().enumerate() {
        if i % clients != client {
            continue;
        }
        let offset = Duration::from_micros(offset.as_micros());
        let intended = start + offset;
        // Wait for the intended arrival; the timed-out read is the sleep.
        // The timeout is capped at the time remaining (like the in-process
        // injector's `sleep(min(intended - now, OPEN_LOOP_POLL))`), so a
        // send is never held past its intended time by a full poll
        // interval — without the cap every sample would carry up to 200 µs
        // of client-side skew.  A 1 µs floor keeps the read from blocking
        // indefinitely (a zero timeout means "no timeout") while still
        // harvesting at least once per arrival even when behind schedule.
        loop {
            let remaining = intended.saturating_duration_since(Instant::now());
            let wait = remaining.min(OPEN_LOOP_POLL).max(Duration::from_micros(1));
            state.poll(wait, classify)?;
            if Instant::now() >= intended {
                break;
            }
        }
        let body = encode(i);
        state.in_flight.insert(
            i as u64,
            Pending {
                intended,
                measure: offset >= warmup,
                body: keep_bodies.then(|| body.clone()),
                attempts: 1,
                deadline: resilience.deadline.map(|d| intended + d),
                // Marked queued until the write below lands, so a write
                // failure routes through the same queued/lost logic as a
                // resend.
                resend_at: Some(Instant::now()),
            },
        );
        state.send(i as u64, &body)?;
    }

    let deadline = Instant::now() + OPEN_LOOP_TAIL_TIMEOUT;
    while !state.in_flight.is_empty() && Instant::now() < deadline {
        state.poll(OPEN_LOOP_POLL, classify)?;
    }

    let mut out = state.out;
    out.unfinished = state.in_flight.len() + state.lost + out.timed_out;
    Ok(out)
}

/// Why harvesting a trace from a runtime failed.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceHarvestError {
    /// The runtime was started without tracing (`ExperimentConfig::trace`
    /// was false).
    NotTracing,
    /// The event log could not be reconstructed into a cost graph.
    Reconstruct(TraceError),
}

impl std::fmt::Display for TraceHarvestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceHarvestError::NotTracing => write!(f, "runtime was not started with tracing"),
            TraceHarvestError::Reconstruct(e) => write!(f, "trace reconstruction failed: {e}"),
        }
    }
}

impl std::error::Error for TraceHarvestError {}

/// What a traced run produced: the reconstructed cost graph and schedule,
/// plus Theorem 2.3 reports against both the observed execution and a
/// replayed prompt admissible schedule on the same number of cores.
#[derive(Debug)]
pub struct TraceRunReport {
    /// The reconstructed graph, observed schedule, and per-task metadata.
    pub run: ReconstructedRun,
    /// Bound reports against the observed schedule (indexed by thread).
    pub observed: Vec<TraceBoundReport>,
    /// Bound reports against the replayed weak-respecting prompt schedule.
    pub replay: Vec<TraceBoundReport>,
}

impl TraceRunReport {
    /// Reports (observed and replay alike) that are counterexamples to
    /// Theorem 2.3 — the hypotheses held and the bound still failed.  A
    /// non-empty result means the scheduler, tracer, or bound analysis has a
    /// bug; callers should fail loudly.
    pub fn counterexamples(&self) -> Vec<&TraceBoundReport> {
        self.observed
            .iter()
            .chain(&self.replay)
            .filter(|r| r.report.is_counterexample())
            .collect()
    }

    /// How many threads' hypotheses held under the observed schedule (the
    /// rest are vacuous: their bound was not applicable as observed).
    pub fn observed_hypotheses_held(&self) -> usize {
        self.observed
            .iter()
            .filter(|r| r.report.hypotheses_hold())
            .count()
    }
}

/// Harvests a drained, tracing runtime into a [`TraceRunReport`]: snapshots
/// the event log, reconstructs the cost graph and observed schedule, and
/// checks the Theorem 2.3 bound per thread against both the observed
/// schedule and a replayed prompt admissible schedule.
///
/// Call after [`Runtime::drain`] so no task is mid-flight (incomplete tasks
/// would be skipped by reconstruction).
///
/// # Errors
///
/// Returns [`TraceHarvestError::NotTracing`] when the runtime records no
/// trace and [`TraceHarvestError::Reconstruct`] when the event log cannot be
/// rebuilt into a graph.
pub fn collect_trace(rt: &Runtime) -> Result<TraceRunReport, TraceHarvestError> {
    let trace = rt.trace_snapshot().ok_or(TraceHarvestError::NotTracing)?;
    let run = trace
        .reconstruct()
        .map_err(TraceHarvestError::Reconstruct)?;
    let observed = run.check_observed();
    let replay = run.check_replay(run.schedule.num_cores);
    Ok(TraceRunReport {
        run,
        observed,
        replay,
    })
}

/// Default drain interval of [`collect_trace_streaming`].
const STREAM_DRAIN_INTERVAL: Duration = Duration::from_millis(1);

/// Consecutive empty drains before the streaming collector treats the
/// runtime as trace-quiescent and flushes the reorder-window tail.
const STREAM_IDLE_FLUSH: u32 = 2;

/// The running (or final) state of a [`StreamingTraceCollector`]: the
/// reconstructor's aggregates and memory gauges plus the tracer's own
/// counters.
#[derive(Debug, Clone)]
pub struct StreamingTraceReport {
    /// Running totals over every retired request subgraph, including the
    /// per-level bound-slack statistics and counterexample counts.
    pub aggregates: StreamAggregates,
    /// The reconstructor's live memory and progress gauges.
    pub counters: StreamCounters,
    /// The tracer's recorded/drained/dropped/buffered counters.
    pub trace: TraceStats,
    /// Drained batches the reconstructor rejected (recording bugs; a
    /// healthy run keeps it 0).
    pub ingest_errors: u64,
}

/// State shared between the drain thread and the collector handle.
#[derive(Debug)]
struct StreamShared {
    recon: parking_lot::Mutex<IncrementalReconstructor>,
    ingest_errors: AtomicU64,
}

impl StreamShared {
    fn report(&self, rt: &Runtime) -> StreamingTraceReport {
        let recon = self.recon.lock();
        StreamingTraceReport {
            aggregates: recon.aggregates().clone(),
            counters: recon.counters(),
            trace: rt.trace_stats().unwrap_or_default(),
            ingest_errors: self.ingest_errors.load(Ordering::Relaxed),
        }
    }

    /// One drain → ingest (or quiescent flush) step.
    fn step(&self, rt: &Runtime, idle: &mut u32) {
        let Some(batch) = rt.drain_trace_events() else {
            return;
        };
        let mut recon = self.recon.lock();
        let result = if batch.events.is_empty() {
            *idle += 1;
            let counters = recon.counters();
            if *idle >= STREAM_IDLE_FLUSH
                && (counters.pending_events > 0 || counters.live_components > 0)
            {
                recon.flush()
            } else {
                Ok(Vec::new())
            }
        } else {
            *idle = 0;
            recon.ingest(&batch.events)
        };
        if result.is_err() {
            self.ingest_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Streaming counterpart of [`collect_trace`]: a background thread drains
/// the runtime's trace buffers into an [`IncrementalReconstructor`] *while
/// the workload runs*, retiring each request subgraph (and checking its
/// Theorem 2.3 bound) as soon as it completes.  Trace memory stays bounded
/// by in-flight work instead of total history, so arbitrarily long runs can
/// be checked.  Obtain one from [`collect_trace_streaming`]; read
/// [`StreamingTraceCollector::snapshot`] during the run and
/// [`StreamingTraceCollector::stop`] after [`Runtime::drain`].
#[derive(Debug)]
pub struct StreamingTraceCollector {
    runtime: Arc<Runtime>,
    stop_flag: Arc<std::sync::atomic::AtomicBool>,
    shared: Arc<StreamShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl StreamingTraceCollector {
    /// The live aggregates, gauges, and tracer counters, mid-run.
    pub fn snapshot(&self) -> StreamingTraceReport {
        self.shared.report(&self.runtime)
    }

    /// Stops the drain thread, sweeps the remaining events, finalizes the
    /// reconstructor (incomplete tasks are skipped and counted, exactly as
    /// post-hoc reconstruction skips them), and returns the final report.
    /// Call after [`Runtime::drain`] so nothing is mid-flight.
    pub fn stop(mut self) -> StreamingTraceReport {
        self.stop_flag.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        if let Some(batch) = self.runtime.drain_trace_events() {
            let mut recon = self.shared.recon.lock();
            if recon.ingest(&batch.events).is_err() {
                self.shared.ingest_errors.fetch_add(1, Ordering::Relaxed);
            }
            if recon.finalize().is_err() {
                self.shared.ingest_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.shared.report(&self.runtime)
    }
}

impl Drop for StreamingTraceCollector {
    fn drop(&mut self) {
        self.stop_flag.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Starts streaming trace collection on a tracing runtime: spawns the
/// background drain thread and returns its handle.  The thread drains every
/// millisecond and flushes the reconstructor's reorder-window tail when the
/// runtime goes trace-quiescent, so subgraphs retire promptly even when
/// traffic pauses.
///
/// # Errors
///
/// [`TraceHarvestError::NotTracing`] when the runtime records no trace;
/// [`TraceHarvestError::Reconstruct`] when the runtime's level declaration
/// cannot seed a reconstructor.
pub fn collect_trace_streaming(
    rt: &Arc<Runtime>,
) -> Result<StreamingTraceCollector, TraceHarvestError> {
    let (level_names, num_workers) = rt.trace_topology().ok_or(TraceHarvestError::NotTracing)?;
    let recon = IncrementalReconstructor::new(StreamConfig::new(level_names, num_workers))
        .map_err(TraceHarvestError::Reconstruct)?;
    let shared = Arc::new(StreamShared {
        recon: parking_lot::Mutex::new(recon),
        ingest_errors: AtomicU64::new(0),
    });
    let stop_flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let handle = {
        let rt = Arc::clone(rt);
        let shared = Arc::clone(&shared);
        let stop_flag = Arc::clone(&stop_flag);
        std::thread::Builder::new()
            .name("rp-trace-drain".to_string())
            .spawn(move || {
                let mut idle = 0u32;
                while !stop_flag.load(Ordering::SeqCst) {
                    std::thread::sleep(STREAM_DRAIN_INTERVAL);
                    shared.step(&rt, &mut idle);
                }
            })
            .expect("spawning the trace drain thread")
    };
    Ok(StreamingTraceCollector {
        runtime: Arc::clone(rt),
        stop_flag,
        shared,
        handle: Some(handle),
    })
}

/// Waits for spawned task closures to release their clones of the runtime
/// handle, then shuts the runtime down.
///
/// A task body that captured an `Arc<Runtime>` drops it only when the
/// closure itself is dropped, which can trail `Runtime::drain` by a moment —
/// so a bare `Arc::try_unwrap(rt).expect("sole owner")` right after a drain
/// is a race.  This retries until sole ownership is reached.
///
/// # Panics
///
/// Panics if the runtime is still shared after `timeout` (a stuck task).
pub fn shutdown_runtime(mut rt: Arc<Runtime>, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        match Arc::try_unwrap(rt) {
            Ok(owned) => {
                owned.shutdown();
                return;
            }
            Err(shared) => {
                assert!(
                    Instant::now() < deadline,
                    "runtime handle still shared after {timeout:?} — a task is stuck"
                );
                rt = shared;
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Per-priority-level results of one run of one application on one
/// scheduler.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// The level's name.
    pub name: String,
    /// The level's index (0 = lowest).
    pub level: usize,
    /// Compute-time statistics of tasks at this level.
    pub compute: LatencyStats,
    /// Response-time statistics of tasks at this level.
    pub response: LatencyStats,
}

/// The results of running one application once on one scheduler.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Which scheduler ran it.
    pub scheduler: SchedulerKind,
    /// Client-observed response times (request issued → reply delivered) for
    /// the highest-priority interactive path.
    pub client_response: LatencyStats,
    /// Per-level task statistics, lowest level first.
    pub levels: Vec<LevelReport>,
}

/// The paired comparison the figures plot: baseline (Cilk-F) over treatment
/// (I-Cilk), so values above 1 mean I-Cilk is better.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Application name.
    pub app: String,
    /// The configuration used.
    pub config: ExperimentConfig,
    /// The I-Cilk run.
    pub icilk: RunReport,
    /// The baseline run.
    pub baseline: RunReport,
}

impl ExperimentReport {
    /// The responsiveness ratio (baseline / I-Cilk) of client-observed
    /// response times — the quantity of Figure 13.
    pub fn responsiveness_ratio(&self) -> Option<RatioSummary> {
        ratio(&self.baseline.client_response, &self.icilk.client_response)
    }

    /// The compute-time ratio (baseline / I-Cilk) for one priority level —
    /// the quantity of Figure 14.
    pub fn compute_ratio(&self, level: usize) -> Option<RatioSummary> {
        let b = &self.baseline.levels.get(level)?.compute;
        let t = &self.icilk.levels.get(level)?.compute;
        ratio(b, t)
    }

    /// Renders one figure-style row: app, connections, then mean/p95 ratios.
    pub fn figure13_row(&self) -> String {
        match self.responsiveness_ratio() {
            Some(r) => format!(
                "{:<8} conns={:<4} responsiveness ratio: mean {:.2}x  p95 {:.2}x  (I-Cilk mean {:.0}µs)",
                self.app,
                self.config.connections,
                r.mean_ratio,
                r.p95_ratio,
                self.icilk.client_response.mean_micros().unwrap_or(0.0)
            ),
            None => format!("{:<8} conns={:<4} (no samples)", self.app, self.config.connections),
        }
    }

    /// Renders Figure 14 style rows: one per level, highest priority first.
    pub fn figure14_rows(&self) -> Vec<String> {
        let mut rows = Vec::new();
        for level in (0..self.icilk.levels.len()).rev() {
            let name = &self.icilk.levels[level].name;
            match self.compute_ratio(level) {
                Some(r) => rows.push(format!(
                    "{:<8} conns={:<4} level {:<12} compute ratio: mean {:.2}x  p95 {:.2}x",
                    self.app, self.config.connections, name, r.mean_ratio, r.p95_ratio
                )),
                None => rows.push(format!(
                    "{:<8} conns={:<4} level {:<12} (no samples)",
                    self.app, self.config.connections, name
                )),
            }
        }
        rows
    }
}

/// Builds a [`RunReport`] from a runtime's metrics snapshot plus the
/// client-side response samples gathered by the application driver.
pub fn run_report(
    scheduler: SchedulerKind,
    rt: &Runtime,
    level_names: &[&str],
    client_response: LatencyStats,
) -> RunReport {
    let snap = rt.metrics();
    let levels = level_names
        .iter()
        .enumerate()
        .map(|(i, name)| LevelReport {
            name: (*name).to_string(),
            level: i,
            compute: snap.compute.get(i).cloned().unwrap_or_default(),
            response: snap.response.get(i).cloned().unwrap_or_default(),
        })
        .collect();
    RunReport {
        scheduler,
        client_response,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn default_config_is_sane() {
        let c = ExperimentConfig::default();
        assert!(c.workers >= 1);
        assert_eq!(c.mode, LoadMode::Closed);
        assert_eq!(c.master().growth, 2.0);
        assert_eq!(c.master().quantum, Duration::from_micros(500));
        let open = c.open_loop(OpenLoopConfig::at_rate(500.0));
        match open.mode {
            LoadMode::Open(o) => {
                assert_eq!(o.arrival_rate_per_sec, 500.0);
                assert_eq!(o.horizon(), Duration::from_millis(500));
            }
            _ => panic!("open_loop() must switch the mode"),
        }
    }

    fn tiny_runtime() -> Arc<Runtime> {
        Arc::new(Runtime::start(
            RuntimeConfig::new(2, 2)
                .with_level_names(["bg", "ui"])
                .with_io_latency(LatencyModel::Constant { micros: 100 }, 1),
        ))
    }

    #[test]
    fn open_loop_issues_a_deterministic_schedule() {
        let open = OpenLoopConfig {
            arrival_rate_per_sec: 1_000.0,
            warmup_millis: 20,
            measure_millis: 80,
        };
        let run = || {
            let rt = tiny_runtime();
            let ui = rt.priority_by_name("ui").unwrap();
            let outcome = drive_open_loop(&open, 7, |i| rt.fcreate(ui, move || i as u64));
            rt.drain(Duration::from_secs(5));
            outcome
        };
        let a = run();
        let b = run();
        assert!(a.issued > 20, "~100 arrivals expected, got {}", a.issued);
        assert_eq!(a.issued, b.issued, "arrival schedule is seed-determined");
        assert_eq!(a.unfinished, 0);
        assert_eq!(b.unfinished, 0);
        assert_eq!(a.measured, b.measured);
        assert_eq!(a.latency.count(), a.measured);
        assert!(
            a.measured < a.issued,
            "warmup arrivals are issued but not measured"
        );
    }

    /// Coordinated-omission correction: when the injector falls behind (here
    /// because issuing itself is artificially slow), the backlog delay must
    /// show up in the measured latencies — they are measured from the
    /// *intended* arrival times.  Measuring from the actual send time would
    /// report near-zero latencies for these instantly-completing requests.
    #[test]
    fn open_loop_charges_injector_stalls_to_latency() {
        let open = OpenLoopConfig {
            arrival_rate_per_sec: 1_000.0,
            warmup_millis: 0,
            measure_millis: 100,
        };
        let rt = tiny_runtime();
        let ui = rt.priority_by_name("ui").unwrap();
        let outcome = drive_open_loop(&open, 3, |i| {
            // A stalled injector: each send takes ~2 ms against a 1 ms mean
            // inter-arrival gap, so intended arrivals pile up behind it.
            std::thread::sleep(Duration::from_millis(2));
            rt.fcreate(ui, move || i as u64)
        });
        rt.drain(Duration::from_secs(5));
        assert_eq!(outcome.unfinished, 0);
        let p95 = outcome.latency.p95().unwrap();
        assert!(
            p95 >= 10_000_000.0,
            "p95 {p95}ns should reflect the ≥10 ms injection backlog, \
             not the near-zero service time"
        );
    }

    /// A minimal frame-echo server: accepts `conns` connections, each served
    /// by a thread that echoes every envelope frame back unchanged.
    fn spawn_echo_server(conns: usize) -> std::net::SocketAddr {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        std::thread::spawn(move || {
            for _ in 0..conns {
                let (mut stream, _) = match listener.accept() {
                    Ok(conn) => conn,
                    Err(_) => return,
                };
                std::thread::spawn(move || {
                    let mut buf = Vec::new();
                    let mut chunk = [0u8; 4096];
                    loop {
                        match stream.read(&mut chunk) {
                            Ok(0) | Err(_) => return,
                            Ok(n) => {
                                buf.extend_from_slice(&chunk[..n]);
                                loop {
                                    match take_socket_frame(&mut buf) {
                                        Ok(Some((id, body))) => {
                                            if write_socket_frame(&mut stream, id, &body).is_err() {
                                                return;
                                            }
                                        }
                                        Ok(None) => break,
                                        Err(_) => return,
                                    }
                                }
                            }
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn socket_frames_roundtrip_through_a_buffer() {
        let mut wire = Vec::new();
        write_socket_frame(&mut wire, 7, b"hello").unwrap();
        write_socket_frame(&mut wire, u64::MAX, b"").unwrap();
        // A partial frame is not extracted.
        let mut partial = wire[..5].to_vec();
        assert_eq!(take_socket_frame(&mut partial), Ok(None));
        let (id, body) = take_socket_frame(&mut wire).unwrap().unwrap();
        assert_eq!((id, body.as_slice()), (7, b"hello".as_slice()));
        let (id, body) = take_socket_frame(&mut wire).unwrap().unwrap();
        assert_eq!((id, body.len()), (u64::MAX, 0));
        assert_eq!(take_socket_frame(&mut wire), Ok(None));
        assert!(wire.is_empty());
    }

    /// An impossible length field is an error, not an incomplete frame:
    /// treating it as incomplete would wedge the connection forever
    /// (length 0 never completes) or buffer up to 4 GiB (length
    /// `u32::MAX`).
    #[test]
    fn malformed_envelope_lengths_are_rejected() {
        // Length 0: smaller than the 8-byte request id.
        let mut zero = 0u32.to_be_bytes().to_vec();
        zero.extend_from_slice(&[1, 2, 3]);
        assert_eq!(take_socket_frame(&mut zero), Err(MalformedFrame { len: 0 }));
        // Absurdly large: past SOCKET_FRAME_MAX_BYTES.
        let mut huge = u32::MAX.to_be_bytes().to_vec();
        assert_eq!(
            take_socket_frame(&mut huge),
            Err(MalformedFrame { len: u32::MAX })
        );
        // The error converts into an io::Error for the client driver.
        let io: std::io::Error = MalformedFrame { len: 0 }.into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn socket_open_loop_issues_the_same_schedule_as_in_process() {
        let socket = SocketLoadConfig {
            open: OpenLoopConfig {
                arrival_rate_per_sec: 1_000.0,
                warmup_millis: 20,
                measure_millis: 80,
            },
            clients: 3,
            resilience: ResilienceConfig::default(),
        };
        let addr = spawn_echo_server(socket.clients);
        let outcome =
            drive_socket_open(&socket, 7, addr, |i| i.to_be_bytes().to_vec()).expect("socket run");
        // The schedule is the in-process one: same (open, seed) ⇒ same count.
        let horizon = VirtualTime::from_micros(socket.open.horizon().as_micros() as u64);
        let expected = PoissonProcess::with_rate_per_sec(socket.open.arrival_rate_per_sec, 7)
            .arrivals_until(horizon)
            .len();
        assert_eq!(outcome.issued, expected);
        assert!(outcome.issued > 20, "~100 arrivals expected");
        assert_eq!(outcome.unfinished, 0, "echo server answers everything");
        assert_eq!(outcome.latency.count(), outcome.measured);
        assert!(
            outcome.measured < outcome.issued,
            "warmup arrivals are issued but not measured"
        );
    }

    #[test]
    fn backoff_delay_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(8),
        };
        // Pure function: same inputs, same delay — however calls interleave.
        assert_eq!(
            backoff_delay(&policy, 42, 7, 2),
            backoff_delay(&policy, 42, 7, 2)
        );
        // Exponential growth with jitter in [0.5, 1.0)·exp, capped.
        for attempt in 2..=10u32 {
            let exp = policy
                .base
                .saturating_mul(1 << (attempt - 2).min(20))
                .min(policy.cap);
            for request in 0..50u64 {
                let d = backoff_delay(&policy, 42, request, attempt);
                assert!(
                    d >= exp / 2,
                    "attempt {attempt} req {request}: {d:?} < {exp:?}/2"
                );
                assert!(d < exp, "attempt {attempt} req {request}: {d:?} >= {exp:?}");
            }
        }
        // Jitter decorrelates requests (and seeds).
        let delays: Vec<Duration> = (0..16).map(|r| backoff_delay(&policy, 42, r, 2)).collect();
        assert!(
            delays.windows(2).any(|w| w[0] != w[1]),
            "all 16 requests drew identical jitter"
        );
        assert_ne!(
            backoff_delay(&policy, 1, 7, 2),
            backoff_delay(&policy, 2, 7, 2)
        );
    }

    /// A server that echoes frames but closes the connection the moment it
    /// reads a request with `id % 3 == 0`, leaving that request (and any
    /// pipelined ones) unanswered.  Accepts forever so reconnects land.
    fn spawn_flaky_server() -> std::net::SocketAddr {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        std::thread::spawn(move || loop {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 4096];
                loop {
                    match stream.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => {
                            buf.extend_from_slice(&chunk[..n]);
                            while let Ok(Some((id, body))) = take_socket_frame(&mut buf) {
                                if id % 3 == 0 {
                                    return; // mid-stream disconnect
                                }
                                if write_socket_frame(&mut stream, id, &body).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                }
            });
        });
        addr
    }

    /// Regression (mid-stream disconnect): a request lost to a connection
    /// reset must be recorded unfinished the moment the break is observed —
    /// not parked in flight until the 10 s tail timeout — and with
    /// reconnects enabled the driver must finish the schedule instead of
    /// erroring out.
    #[test]
    fn socket_driver_records_reset_losses_immediately_and_reconnects() {
        let socket = SocketLoadConfig {
            open: OpenLoopConfig {
                arrival_rate_per_sec: 1_000.0,
                warmup_millis: 0,
                measure_millis: 100,
            },
            clients: 2,
            resilience: ResilienceConfig {
                reconnect: true,
                ..ResilienceConfig::default()
            },
        };
        let addr = spawn_flaky_server();
        let started = Instant::now();
        let outcome =
            drive_socket_open(&socket, 11, addr, |i| i.to_be_bytes().to_vec()).expect("resilient");
        let elapsed = started.elapsed();
        assert!(
            outcome.reconnects > 0,
            "the flaky server must force reconnects"
        );
        assert!(
            outcome.unfinished >= outcome.issued / 6,
            "every id % 3 == 0 is lost: {} unfinished of {}",
            outcome.unfinished,
            outcome.issued
        );
        assert!(
            outcome.measured > 0,
            "surviving requests still complete across reconnects"
        );
        // The immediacy half of the regression: losses are recorded at
        // break time, so the run ends well before the 10 s tail timeout
        // (pre-fix, lost requests sat in flight until it expired).
        assert!(
            elapsed < Duration::from_secs(5),
            "run took {elapsed:?} — lost requests waited out the tail timeout"
        );
    }

    /// Without reconnects the historical contract holds: a broken
    /// connection aborts the run with the underlying error.
    #[test]
    fn socket_driver_without_reconnect_propagates_connection_errors() {
        let socket = SocketLoadConfig {
            open: OpenLoopConfig {
                arrival_rate_per_sec: 1_000.0,
                warmup_millis: 0,
                measure_millis: 20,
            },
            clients: 1,
            resilience: ResilienceConfig::default(),
        };
        let addr = spawn_flaky_server();
        let result = drive_socket_open(&socket, 11, addr, |i| i.to_be_bytes().to_vec());
        assert!(result.is_err(), "id 0 disconnects the only client");
    }

    /// A server that answers the first attempt of every id with the single
    /// byte `0xFF` (the test's "overloaded" marker) and echoes the retry.
    fn spawn_overload_once_server() -> std::net::SocketAddr {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        std::thread::spawn(move || loop {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            std::thread::spawn(move || {
                let mut seen = std::collections::HashSet::new();
                let mut buf = Vec::new();
                let mut chunk = [0u8; 4096];
                loop {
                    match stream.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => {
                            buf.extend_from_slice(&chunk[..n]);
                            while let Ok(Some((id, body))) = take_socket_frame(&mut buf) {
                                let reply: &[u8] = if seen.insert(id) { &[0xFF] } else { &body };
                                if write_socket_frame(&mut stream, id, reply).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                }
            });
        });
        addr
    }

    #[test]
    fn socket_driver_retries_overloaded_answers_with_backoff() {
        let socket = SocketLoadConfig {
            open: OpenLoopConfig {
                arrival_rate_per_sec: 800.0,
                warmup_millis: 20,
                measure_millis: 80,
            },
            clients: 2,
            resilience: ResilienceConfig {
                retry: RetryPolicy {
                    max_attempts: 3,
                    base: Duration::from_micros(100),
                    cap: Duration::from_millis(1),
                },
                ..ResilienceConfig::default()
            },
        };
        let addr = spawn_overload_once_server();
        let outcome = drive_socket_open_with(
            &socket,
            5,
            addr,
            |i| i.to_be_bytes().to_vec(),
            |body| {
                if body == [0xFF] {
                    ResponseVerdict::Overloaded
                } else {
                    ResponseVerdict::Answered
                }
            },
        )
        .expect("retried run");
        assert_eq!(outcome.unfinished, 0);
        assert_eq!(
            outcome.rejected, 0,
            "one retry suffices against this server"
        );
        assert_eq!(
            outcome.retries, outcome.issued,
            "every request is shed exactly once"
        );
        assert_eq!(outcome.latency.count(), outcome.measured);
        assert!(outcome.measured > 0 && outcome.measured < outcome.issued);
    }

    #[test]
    fn socket_driver_counts_rejections_once_retries_run_out() {
        let socket = SocketLoadConfig {
            open: OpenLoopConfig {
                arrival_rate_per_sec: 500.0,
                warmup_millis: 0,
                measure_millis: 40,
            },
            clients: 1,
            resilience: ResilienceConfig {
                retry: RetryPolicy {
                    max_attempts: 2,
                    base: Duration::from_micros(100),
                    cap: Duration::from_millis(1),
                },
                ..ResilienceConfig::default()
            },
        };
        // The echo server never stops answering 0xFF: every request burns
        // its retry and ends rejected.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        std::thread::spawn(move || {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            let mut buf = Vec::new();
            let mut chunk = [0u8; 4096];
            loop {
                match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => {
                        buf.extend_from_slice(&chunk[..n]);
                        while let Ok(Some((id, _))) = take_socket_frame(&mut buf) {
                            if write_socket_frame(&mut stream, id, &[0xFF]).is_err() {
                                return;
                            }
                        }
                    }
                }
            }
        });
        let outcome = drive_socket_open_with(
            &socket,
            5,
            addr,
            |i| i.to_be_bytes().to_vec(),
            |body| {
                if body == [0xFF] {
                    ResponseVerdict::Overloaded
                } else {
                    ResponseVerdict::Answered
                }
            },
        )
        .expect("rejected run");
        assert_eq!(outcome.rejected, outcome.issued, "no request ever succeeds");
        assert_eq!(outcome.retries, outcome.issued, "one retry each");
        assert_eq!(outcome.measured, 0);
        assert_eq!(outcome.unfinished, 0, "rejections are a final disposition");
    }

    /// Per-request deadlines: a server that swallows some requests must not
    /// stall the run for the 10 s tail timeout — the swallowed requests are
    /// abandoned at their deadline and counted.
    #[test]
    fn socket_driver_abandons_requests_at_their_deadline() {
        let socket = SocketLoadConfig {
            open: OpenLoopConfig {
                arrival_rate_per_sec: 800.0,
                warmup_millis: 0,
                measure_millis: 60,
            },
            clients: 2,
            resilience: ResilienceConfig {
                deadline: Some(Duration::from_millis(30)),
                ..ResilienceConfig::default()
            },
        };
        // Echoes everything except ids divisible by 5, which it swallows.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        std::thread::spawn(move || loop {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 4096];
                loop {
                    match stream.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => {
                            buf.extend_from_slice(&chunk[..n]);
                            while let Ok(Some((id, body))) = take_socket_frame(&mut buf) {
                                if id % 5 != 0
                                    && write_socket_frame(&mut stream, id, &body).is_err()
                                {
                                    return;
                                }
                            }
                        }
                    }
                }
            });
        });
        let started = Instant::now();
        let outcome =
            drive_socket_open(&socket, 13, addr, |i| i.to_be_bytes().to_vec()).expect("deadlines");
        assert!(outcome.timed_out > 0, "swallowed requests must time out");
        assert_eq!(
            outcome.unfinished, outcome.timed_out,
            "every loss here is a deadline expiry"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "deadlines must beat the tail timeout"
        );
    }

    #[test]
    fn runtime_config_carries_levels_and_scheduler() {
        let c = ExperimentConfig::default();
        let rc = c.runtime_config(SchedulerKind::Baseline, &["a", "b", "c"]);
        assert_eq!(rc.levels, 3);
        assert_eq!(rc.scheduler, SchedulerKind::Baseline);
    }

    #[test]
    fn report_ratios_and_rows() {
        let mut fast = LatencyStats::new();
        let mut slow = LatencyStats::new();
        for v in [10_000u64, 20_000, 30_000] {
            fast.record_value(v);
            slow.record_value(v * 3);
        }
        let mk_run = |sched, client: &LatencyStats| RunReport {
            scheduler: sched,
            client_response: client.clone(),
            levels: vec![LevelReport {
                name: "only".into(),
                level: 0,
                compute: client.clone(),
                response: client.clone(),
            }],
        };
        let report = ExperimentReport {
            app: "test".into(),
            config: ExperimentConfig::default(),
            icilk: mk_run(SchedulerKind::ICilk, &fast),
            baseline: mk_run(SchedulerKind::Baseline, &slow),
        };
        let r = report.responsiveness_ratio().unwrap();
        assert!((r.mean_ratio - 3.0).abs() < 1e-9);
        assert!(report.figure13_row().contains("responsiveness ratio"));
        assert_eq!(report.figure14_rows().len(), 1);
        assert!(report.compute_ratio(0).is_some());
        assert!(report.compute_ratio(7).is_none());
    }
}
