//! Per-priority-level task pools, per-worker work-stealing deques, and the
//! runtime's shared state.
//!
//! # Queue architecture
//!
//! In prioritized (I-Cilk) mode each worker owns a private work-stealing
//! deque: tasks a worker spawns at its own assigned level go onto its deque
//! (LIFO for the owner — locality), and idle workers steal the oldest task
//! from a peer, preferring peers assigned to the highest-allotted priority
//! level.  The per-level [`Injector`]s remain as the *injection/overflow*
//! path: they receive tasks pushed from outside the worker pool (the
//! original submission of every experiment) and tasks whose level differs
//! from the spawning worker's current assignment.  The fast path — a worker
//! spawning and then executing its own work — never touches a shared
//! injector, so the injectors stop being the contended bottleneck.
//!
//! In oblivious (Cilk-F stand-in) mode everything still funnels through one
//! global FIFO, deliberately: that contention is part of the baseline being
//! compared against.

use crate::metrics::MetricsCollector;
use crate::priority::PrioritySet;
use crate::trace::TraceCollector;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A unit of work: the boxed task body plus accounting metadata.
pub struct Task {
    /// The task body.
    pub run: Box<dyn FnOnce() + Send + 'static>,
    /// The priority level index of the task (0 = lowest).
    pub level: usize,
    /// When the task was enqueued (for response-time accounting).
    pub enqueued_at: Instant,
    /// The task's trace key, when the runtime records an execution trace.
    pub trace: Option<u64>,
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("level", &self.level)
            .field("enqueued_at", &self.enqueued_at)
            .finish_non_exhaustive()
    }
}

/// The queue and scheduler counters of one priority level.
#[derive(Debug)]
pub struct LevelPool {
    /// The level's injection/overflow queue (see the module docs).
    pub injector: Injector<Task>,
    /// Nanoseconds of useful work performed for this level in the current
    /// scheduling quantum.
    pub busy_nanos: AtomicU64,
    /// The level's desire (number of cores it wants next quantum).
    pub desire: AtomicUsize,
    /// The level's current allotment (cores assigned this quantum).
    pub allotment: AtomicUsize,
    /// Tasks currently queued or running at this level.
    pub pending: AtomicUsize,
}

impl LevelPool {
    fn new() -> Self {
        LevelPool {
            injector: Injector::new(),
            busy_nanos: AtomicU64::new(0),
            desire: AtomicUsize::new(1),
            allotment: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
        }
    }
}

/// Which scheduling strategy the runtime uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// I-Cilk: per-worker deques plus per-level injection queues, workers
    /// assigned to levels by the master.
    Prioritized,
    /// Cilk-F baseline: a single FIFO pool, priorities ignored for
    /// scheduling (but still recorded for metrics).
    Oblivious,
}

/// A worker thread's private deque, installed in thread-local storage so
/// [`SharedState::push_task`] can take the fast path without threading a
/// handle through every spawn site.
struct LocalDeque {
    /// Address of the owning [`SharedState`], guarding against a worker of
    /// one runtime pushing tasks of another runtime onto its deque.
    owner: usize,
    worker_id: usize,
    deque: Worker<Task>,
}

thread_local! {
    static LOCAL_DEQUE: RefCell<Option<LocalDeque>> = const { RefCell::new(None) };
}

/// State shared between the public runtime handle, the workers, the master
/// scheduler, and the I/O reactor.
#[derive(Debug)]
pub struct SharedState {
    /// The program's priority levels.
    pub priorities: PrioritySet,
    /// Per-level pools (always one per level, even in oblivious mode).
    pub levels: Vec<LevelPool>,
    /// The single global queue used in oblivious (baseline) mode.
    pub global: Injector<Task>,
    /// Which strategy is in effect.
    pub kind: PoolKind,
    /// Worker → assigned level index (meaningful in prioritized mode).
    pub assignment: Vec<AtomicUsize>,
    /// Stealer side of each worker's private deque.
    pub stealers: Vec<Stealer<Task>>,
    /// The worker-owned deque handles, taken once by each worker thread at
    /// startup (`None` after being claimed).
    deques: Mutex<Vec<Option<Worker<Task>>>>,
    /// Set when the runtime is shutting down.
    pub shutdown: AtomicBool,
    /// Per-level task statistics.
    pub metrics: MetricsCollector,
    /// The execution tracer, when tracing is enabled.
    pub trace: Option<Arc<TraceCollector>>,
    /// Number of worker threads.
    pub num_workers: usize,
}

impl SharedState {
    /// Creates the shared state for `num_workers` workers over the given
    /// priority set, without tracing.
    pub fn new(priorities: PrioritySet, num_workers: usize, kind: PoolKind) -> Arc<Self> {
        Self::new_with_trace(priorities, num_workers, kind, None)
    }

    /// Like [`SharedState::new`], optionally installing an execution tracer.
    pub fn new_with_trace(
        priorities: PrioritySet,
        num_workers: usize,
        kind: PoolKind,
        trace: Option<Arc<TraceCollector>>,
    ) -> Arc<Self> {
        let levels = (0..priorities.len()).map(|_| LevelPool::new()).collect();
        let metrics = MetricsCollector::new(priorities.len());
        // Initially every worker serves the highest level; the master
        // rebalances at the end of the first quantum.
        let top = priorities.len() - 1;
        let assignment = (0..num_workers).map(|_| AtomicUsize::new(top)).collect();
        let deques: Vec<Worker<Task>> = (0..num_workers).map(|_| Worker::new_lifo()).collect();
        let stealers = deques.iter().map(Worker::stealer).collect();
        Arc::new(SharedState {
            priorities,
            levels,
            global: Injector::new(),
            kind,
            assignment,
            stealers,
            deques: Mutex::new(deques.into_iter().map(Some).collect()),
            shutdown: AtomicBool::new(false),
            metrics,
            trace,
            num_workers,
        })
    }

    /// Claims worker `worker_id`'s deque and installs it in this thread's
    /// local storage.  Called once by each worker thread at startup.
    pub fn register_current_worker(self: &Arc<Self>, worker_id: usize) {
        let deque = self
            .deques
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get_mut(worker_id)
            .and_then(Option::take);
        if let Some(deque) = deque {
            LOCAL_DEQUE.with(|slot| {
                *slot.borrow_mut() = Some(LocalDeque {
                    owner: Arc::as_ptr(self) as usize,
                    worker_id,
                    deque,
                });
            });
        }
    }

    /// Removes this thread's local deque, if it belongs to this runtime.
    /// Remaining tasks flow back to the level injectors so nothing is
    /// stranded on a dead thread.
    pub fn unregister_current_worker(&self) {
        let local = LOCAL_DEQUE.with(|slot| {
            let owned = matches!(&*slot.borrow(), Some(l) if l.owner == self.addr());
            if owned {
                slot.borrow_mut().take()
            } else {
                None
            }
        });
        if let Some(local) = local {
            while let Some(task) = local.deque.pop() {
                let level = task.level.min(self.levels.len() - 1);
                self.levels[level].injector.push(task);
            }
        }
    }

    fn addr(&self) -> usize {
        self as *const SharedState as usize
    }

    /// Enqueues a task.
    ///
    /// Prioritized mode fast path: when called from a worker thread of this
    /// runtime whose current assignment matches the task's level, the task
    /// goes onto that worker's private deque; otherwise (external
    /// submission, or a spawn at a different level) it goes to the level's
    /// injection queue.  Oblivious mode always uses the global FIFO.
    pub fn push_task(&self, task: Task) {
        let level = task.level.min(self.levels.len() - 1);
        self.levels[level].pending.fetch_add(1, Ordering::Relaxed);
        match self.kind {
            PoolKind::Prioritized => {
                if let Some(task) = self.try_push_local(task, level) {
                    self.levels[level].injector.push(task);
                }
            }
            PoolKind::Oblivious => self.global.push(task),
        }
    }

    /// Attempts the worker-local fast path; gives the task back on miss.
    fn try_push_local(&self, task: Task, level: usize) -> Option<Task> {
        LOCAL_DEQUE.with(|slot| match &*slot.borrow() {
            Some(local)
                if local.owner == self.addr()
                    && self
                        .assignment
                        .get(local.worker_id)
                        .map(|a| a.load(Ordering::Relaxed))
                        == Some(level) =>
            {
                local.deque.push(task);
                None
            }
            _ => Some(task),
        })
    }

    /// The pop path for worker threads: own deque first (newest-first,
    /// locality), then the worker's assigned level injector, then stealing
    /// from peers serving the highest-allotted levels, then helping the
    /// other level injectors from the highest priority downward.
    pub fn pop_for_worker(&self, worker_id: usize) -> Option<Task> {
        match self.kind {
            PoolKind::Oblivious => self.pop_global(),
            PoolKind::Prioritized => {
                let assigned = self
                    .assignment
                    .get(worker_id)
                    .map(|a| a.load(Ordering::Relaxed))
                    .unwrap_or(0);
                if let Some(t) = self.pop_local(assigned) {
                    return Some(t);
                }
                if let Some(t) = self.pop_level(assigned) {
                    return Some(t);
                }
                if let Some(t) = self.steal_from_peers(Some(worker_id)) {
                    return Some(t);
                }
                for level in (0..self.levels.len()).rev() {
                    if level != assigned {
                        if let Some(t) = self.pop_level(level) {
                            return Some(t);
                        }
                    }
                }
                None
            }
        }
    }

    /// Tries to pop a task for a helper assigned to `preferred_level`
    /// (prioritized mode) or any task (oblivious mode).  Used by `ftouch`'s
    /// helping path and by threads outside the worker pool.
    ///
    /// In prioritized mode the helper first serves `preferred_level`'s
    /// injector; if that is empty it helps any *other* level, scanning from
    /// the highest priority down, and finally steals from the worker deques
    /// — this approximates proactive work stealing's property that cores are
    /// never idle while work exists, while the master's allotments still
    /// bias capacity toward high priorities.
    pub fn pop_task(&self, preferred_level: usize) -> Option<Task> {
        match self.kind {
            PoolKind::Oblivious => self.pop_global(),
            PoolKind::Prioritized => {
                if let Some(t) = self.pop_level(preferred_level) {
                    return Some(t);
                }
                for level in (0..self.levels.len()).rev() {
                    if level != preferred_level {
                        if let Some(t) = self.pop_level(level) {
                            return Some(t);
                        }
                    }
                }
                self.steal_from_peers(None)
            }
        }
    }

    /// Pops from this thread's own deque, when it belongs to this runtime.
    ///
    /// Only tasks matching the worker's *current* assignment are returned:
    /// after a master rebalance, tasks of the old level left on the deque
    /// flow back to their level injectors instead of being executed ahead
    /// of the newly assigned (possibly higher-priority) level — otherwise a
    /// stale backlog would invert the priority the rebalance established.
    fn pop_local(&self, assigned: usize) -> Option<Task> {
        LOCAL_DEQUE.with(|slot| match &*slot.borrow() {
            Some(local) if local.owner == self.addr() => {
                while let Some(task) = local.deque.pop() {
                    let level = task.level.min(self.levels.len() - 1);
                    if level == assigned {
                        return Some(task);
                    }
                    self.levels[level].injector.push(task);
                }
                None
            }
            _ => None,
        })
    }

    /// Steals from peer workers' deques, visiting peers assigned to the
    /// highest priority level first (the steal-from-highest-allotted-level
    /// policy: stolen capacity flows toward the levels the master granted
    /// the most cores at the top of the order).
    fn steal_from_peers(&self, thief: Option<usize>) -> Option<Task> {
        for level in (0..self.levels.len()).rev() {
            for (peer, assigned) in self.assignment.iter().enumerate() {
                if Some(peer) == thief || assigned.load(Ordering::Relaxed) != level {
                    continue;
                }
                loop {
                    match self.stealers[peer].steal() {
                        Steal::Success(t) => {
                            if let (Some(tc), Some(key)) = (&self.trace, t.trace) {
                                tc.record_steal(key);
                            }
                            return Some(t);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                }
            }
        }
        None
    }

    fn pop_global(&self) -> Option<Task> {
        loop {
            match self.global.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Empty => return None,
                Steal::Retry => continue,
            }
        }
    }

    fn pop_level(&self, level: usize) -> Option<Task> {
        loop {
            match self.levels[level].injector.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Empty => return None,
                Steal::Retry => continue,
            }
        }
    }

    /// Records that `nanos` of work were done for `level` this quantum.
    pub fn record_busy(&self, level: usize, nanos: u64) {
        if let Some(l) = self.levels.get(level) {
            l.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Marks a task at `level` as finished (for the pending counter).
    pub fn task_finished(&self, level: usize) {
        if let Some(l) = self.levels.get(level) {
            l.pending.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Whether any task is pending anywhere.
    pub fn any_pending(&self) -> bool {
        self.levels
            .iter()
            .any(|l| l.pending.load(Ordering::Relaxed) > 0)
    }

    /// Signals shutdown to workers, the master, and the reactor.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared(kind: PoolKind) -> Arc<SharedState> {
        SharedState::new(PrioritySet::new(["lo", "hi"]), 2, kind)
    }

    fn task(level: usize, marker: Arc<AtomicUsize>) -> Task {
        Task {
            run: Box::new(move || {
                marker.fetch_add(1, Ordering::SeqCst);
            }),
            level,
            enqueued_at: Instant::now(),
            trace: None,
        }
    }

    #[test]
    fn prioritized_pop_prefers_assigned_then_highest() {
        let s = shared(PoolKind::Prioritized);
        let m = Arc::new(AtomicUsize::new(0));
        s.push_task(task(0, m.clone()));
        s.push_task(task(1, m.clone()));
        // A helper assigned to level 0 pops its own level first.
        let t = s.pop_task(0).unwrap();
        assert_eq!(t.level, 0);
        // Then helps the other level.
        let t = s.pop_task(0).unwrap();
        assert_eq!(t.level, 1);
        assert!(s.pop_task(0).is_none());
    }

    #[test]
    fn oblivious_pop_is_fifo_across_levels() {
        let s = shared(PoolKind::Oblivious);
        let m = Arc::new(AtomicUsize::new(0));
        s.push_task(task(0, m.clone()));
        s.push_task(task(1, m.clone()));
        let first = s.pop_task(1).unwrap();
        assert_eq!(first.level, 0, "baseline ignores priority: FIFO order");
    }

    #[test]
    fn pending_counters_track_push_and_finish() {
        let s = shared(PoolKind::Prioritized);
        let m = Arc::new(AtomicUsize::new(0));
        assert!(!s.any_pending());
        s.push_task(task(1, m));
        assert!(s.any_pending());
        let t = s.pop_task(1).unwrap();
        (t.run)();
        s.task_finished(t.level);
        assert!(!s.any_pending());
    }

    #[test]
    fn busy_accounting_and_shutdown_flag() {
        let s = shared(PoolKind::Prioritized);
        s.record_busy(1, 500);
        assert_eq!(s.levels[1].busy_nanos.load(Ordering::Relaxed), 500);
        assert!(!s.is_shutting_down());
        s.request_shutdown();
        assert!(s.is_shutting_down());
    }

    #[test]
    fn worker_local_spawn_uses_private_deque_and_is_stealable() {
        let s = shared(PoolKind::Prioritized);
        let m = Arc::new(AtomicUsize::new(0));
        // Pretend this test thread is worker 0, assigned to level 1 (the
        // initial assignment).
        s.register_current_worker(0);
        s.push_task(task(1, m.clone()));
        s.push_task(task(1, m.clone()));
        // The tasks went to worker 0's deque, not the injector.
        assert!(s.levels[1].injector.is_empty());
        assert_eq!(s.stealers[0].len(), 2);
        // The owner pops newest-first from its own deque.
        assert!(s.pop_for_worker(0).is_some());
        assert_eq!(s.stealers[0].len(), 1);
        // A peer (or helper) can steal the remainder.
        let stolen = s.pop_task(0);
        assert!(stolen.is_some());
        assert_eq!(s.stealers[0].len(), 0);
        s.unregister_current_worker();
    }

    #[test]
    fn spawn_at_other_level_overflows_to_injector() {
        let s = shared(PoolKind::Prioritized);
        let m = Arc::new(AtomicUsize::new(0));
        s.register_current_worker(0);
        // Worker 0 is assigned to level 1; a level-0 spawn must not hide in
        // its deque (a level-0 worker would never find it there first).
        s.push_task(task(0, m.clone()));
        assert_eq!(s.stealers[0].len(), 0);
        assert_eq!(s.levels[0].injector.len(), 1);
        s.unregister_current_worker();
    }

    #[test]
    fn unregister_drains_deque_back_to_injectors() {
        let s = shared(PoolKind::Prioritized);
        let m = Arc::new(AtomicUsize::new(0));
        s.register_current_worker(0);
        s.push_task(task(1, m.clone()));
        assert_eq!(s.stealers[0].len(), 1);
        s.unregister_current_worker();
        assert_eq!(s.stealers[0].len(), 0);
        assert_eq!(s.levels[1].injector.len(), 1, "task flowed back");
    }

    #[test]
    fn reassigned_worker_reinjects_stale_deque_backlog() {
        let s = shared(PoolKind::Prioritized);
        let m = Arc::new(AtomicUsize::new(0));
        s.register_current_worker(0);
        // Worker 0 starts assigned to level 1 and builds a local backlog.
        s.push_task(task(1, m.clone()));
        s.push_task(task(1, m.clone()));
        assert_eq!(s.stealers[0].len(), 2);
        // The master reassigns worker 0 to level 0: the stale level-1 tasks
        // must flow back to the level-1 injector rather than being popped
        // ahead of the worker's new assignment.
        s.assignment[0].store(0, Ordering::Relaxed);
        // Nothing at level 0, so the worker helps the level-1 injector —
        // but only after the backlog has been re-injected there.
        let t = s.pop_for_worker(0).expect("backlog still reachable");
        assert_eq!(t.level, 1);
        assert_eq!(
            s.stealers[0].len(),
            0,
            "deque drained on assignment mismatch"
        );
        assert_eq!(s.levels[1].injector.len(), 1, "one task re-injected");
        s.unregister_current_worker();
    }

    #[test]
    fn cross_runtime_pushes_never_land_on_foreign_deques() {
        let a = shared(PoolKind::Prioritized);
        let b = shared(PoolKind::Prioritized);
        let m = Arc::new(AtomicUsize::new(0));
        // This thread is a worker of runtime A...
        a.register_current_worker(0);
        // ...but pushes a task belonging to runtime B.
        b.push_task(task(1, m.clone()));
        assert_eq!(a.stealers[0].len(), 0, "A's deque untouched");
        assert_eq!(b.levels[1].injector.len(), 1, "B got its task");
        a.unregister_current_worker();
    }
}
