//! Per-priority-level task pools and the runtime's shared state.

use crate::metrics::MetricsCollector;
use crate::priority::PrioritySet;
use crossbeam::deque::{Injector, Steal};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A unit of work: the boxed task body plus accounting metadata.
pub struct Task {
    /// The task body.
    pub run: Box<dyn FnOnce() + Send + 'static>,
    /// The priority level index of the task (0 = lowest).
    pub level: usize,
    /// When the task was enqueued (for response-time accounting).
    pub enqueued_at: Instant,
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("level", &self.level)
            .field("enqueued_at", &self.enqueued_at)
            .finish_non_exhaustive()
    }
}

/// The queue and scheduler counters of one priority level.
#[derive(Debug)]
pub struct LevelPool {
    /// The level's task queue.
    pub injector: Injector<Task>,
    /// Nanoseconds of useful work performed for this level in the current
    /// scheduling quantum.
    pub busy_nanos: AtomicU64,
    /// The level's desire (number of cores it wants next quantum).
    pub desire: AtomicUsize,
    /// The level's current allotment (cores assigned this quantum).
    pub allotment: AtomicUsize,
    /// Tasks currently queued or running at this level.
    pub pending: AtomicUsize,
}

impl LevelPool {
    fn new() -> Self {
        LevelPool {
            injector: Injector::new(),
            busy_nanos: AtomicU64::new(0),
            desire: AtomicUsize::new(1),
            allotment: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
        }
    }
}

/// Which scheduling strategy the runtime uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// I-Cilk: per-level pools, workers assigned to levels by the master.
    Prioritized,
    /// Cilk-F baseline: a single FIFO pool, priorities ignored for
    /// scheduling (but still recorded for metrics).
    Oblivious,
}

/// State shared between the public runtime handle, the workers, the master
/// scheduler, and the I/O reactor.
#[derive(Debug)]
pub struct SharedState {
    /// The program's priority levels.
    pub priorities: PrioritySet,
    /// Per-level pools (always one per level, even in oblivious mode).
    pub levels: Vec<LevelPool>,
    /// The single global queue used in oblivious (baseline) mode.
    pub global: Injector<Task>,
    /// Which strategy is in effect.
    pub kind: PoolKind,
    /// Worker → assigned level index (meaningful in prioritized mode).
    pub assignment: Vec<AtomicUsize>,
    /// Set when the runtime is shutting down.
    pub shutdown: AtomicBool,
    /// Per-level task statistics.
    pub metrics: MetricsCollector,
    /// Number of worker threads.
    pub num_workers: usize,
}

impl SharedState {
    /// Creates the shared state for `num_workers` workers over the given
    /// priority set.
    pub fn new(priorities: PrioritySet, num_workers: usize, kind: PoolKind) -> Arc<Self> {
        let levels = (0..priorities.len()).map(|_| LevelPool::new()).collect();
        let metrics = MetricsCollector::new(priorities.len());
        // Initially every worker serves the highest level; the master
        // rebalances at the end of the first quantum.
        let top = priorities.len() - 1;
        let assignment = (0..num_workers).map(|_| AtomicUsize::new(top)).collect();
        Arc::new(SharedState {
            priorities,
            levels,
            global: Injector::new(),
            kind,
            assignment,
            shutdown: AtomicBool::new(false),
            metrics,
            num_workers,
        })
    }

    /// Enqueues a task at its level (or the global queue in oblivious mode).
    pub fn push_task(&self, task: Task) {
        let level = task.level.min(self.levels.len() - 1);
        self.levels[level].pending.fetch_add(1, Ordering::Relaxed);
        match self.kind {
            PoolKind::Prioritized => self.levels[level].injector.push(task),
            PoolKind::Oblivious => self.global.push(task),
        }
    }

    /// Tries to pop a task for a worker assigned to `preferred_level`
    /// (prioritized mode) or any task (oblivious mode).
    ///
    /// In prioritized mode a worker first serves its assigned level; if that
    /// level is empty it may help any *other* level, scanning from the
    /// highest priority down — this approximates proactive work stealing's
    /// property that cores are never idle while work exists, while the
    /// master's allotments still bias capacity toward high priorities.
    pub fn pop_task(&self, preferred_level: usize) -> Option<Task> {
        match self.kind {
            PoolKind::Oblivious => loop {
                match self.global.steal() {
                    Steal::Success(t) => return Some(t),
                    Steal::Empty => return None,
                    Steal::Retry => continue,
                }
            },
            PoolKind::Prioritized => {
                if let Some(t) = self.pop_level(preferred_level) {
                    return Some(t);
                }
                for level in (0..self.levels.len()).rev() {
                    if level != preferred_level {
                        if let Some(t) = self.pop_level(level) {
                            return Some(t);
                        }
                    }
                }
                None
            }
        }
    }

    fn pop_level(&self, level: usize) -> Option<Task> {
        loop {
            match self.levels[level].injector.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Empty => return None,
                Steal::Retry => continue,
            }
        }
    }

    /// Records that `nanos` of work were done for `level` this quantum.
    pub fn record_busy(&self, level: usize, nanos: u64) {
        if let Some(l) = self.levels.get(level) {
            l.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Marks a task at `level` as finished (for the pending counter).
    pub fn task_finished(&self, level: usize) {
        if let Some(l) = self.levels.get(level) {
            l.pending.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Whether any task is pending anywhere.
    pub fn any_pending(&self) -> bool {
        self.levels
            .iter()
            .any(|l| l.pending.load(Ordering::Relaxed) > 0)
    }

    /// Signals shutdown to workers, the master, and the reactor.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared(kind: PoolKind) -> Arc<SharedState> {
        SharedState::new(PrioritySet::new(["lo", "hi"]), 2, kind)
    }

    fn task(level: usize, marker: Arc<AtomicUsize>) -> Task {
        Task {
            run: Box::new(move || {
                marker.fetch_add(1, Ordering::SeqCst);
            }),
            level,
            enqueued_at: Instant::now(),
        }
    }

    #[test]
    fn prioritized_pop_prefers_assigned_then_highest() {
        let s = shared(PoolKind::Prioritized);
        let m = Arc::new(AtomicUsize::new(0));
        s.push_task(task(0, m.clone()));
        s.push_task(task(1, m.clone()));
        // A worker assigned to level 0 pops its own level first.
        let t = s.pop_task(0).unwrap();
        assert_eq!(t.level, 0);
        // Then helps the other level.
        let t = s.pop_task(0).unwrap();
        assert_eq!(t.level, 1);
        assert!(s.pop_task(0).is_none());
    }

    #[test]
    fn oblivious_pop_is_fifo_across_levels() {
        let s = shared(PoolKind::Oblivious);
        let m = Arc::new(AtomicUsize::new(0));
        s.push_task(task(0, m.clone()));
        s.push_task(task(1, m.clone()));
        let first = s.pop_task(1).unwrap();
        assert_eq!(first.level, 0, "baseline ignores priority: FIFO order");
    }

    #[test]
    fn pending_counters_track_push_and_finish() {
        let s = shared(PoolKind::Prioritized);
        let m = Arc::new(AtomicUsize::new(0));
        assert!(!s.any_pending());
        s.push_task(task(1, m));
        assert!(s.any_pending());
        let t = s.pop_task(1).unwrap();
        (t.run)();
        s.task_finished(t.level);
        assert!(!s.any_pending());
    }

    #[test]
    fn busy_accounting_and_shutdown_flag() {
        let s = shared(PoolKind::Prioritized);
        s.record_busy(1, 500);
        assert_eq!(s.levels[1].busy_nanos.load(Ordering::Relaxed), 500);
        assert!(!s.is_shutting_down());
        s.request_shutdown();
        assert!(s.is_shutting_down());
    }
}
