//! I-Cilk in Rust: a prioritized task-parallel runtime for interactive
//! parallel applications.
//!
//! This crate implements Section 4 of *Responsive Parallelism with Futures
//! and State* (PLDI 2020):
//!
//! * [`priority`] — type-level priorities and the `OutranksOrEqual` marker
//!   trait, the Rust analogue of the paper's C++ template encoding of the
//!   λ⁴ᵢ `Touch` rule (priority inversions are compile errors), plus the
//!   dynamically-checked [`priority::PrioritySet`] used by the scheduler;
//! * [`future`] — prioritized futures: `fcreate` returns an [`future::IFuture`],
//!   `ftouch` waits for it (helping execute other ready tasks instead of
//!   blocking the worker);
//! * [`pool`] / [`worker`] — per-priority-level task pools served by a fixed
//!   set of worker threads;
//! * [`master`] — the two-level adaptive scheduler: every quantum it
//!   re-evaluates each level's *desire* from its measured utilization
//!   (multiplying or dividing by the growth parameter γ) and hands out cores
//!   from the highest priority downward (the A-STEAL-style strategy of §4.3);
//! * [`baseline`] — the priority-oblivious configuration standing in for
//!   Cilk-F: identical machinery with a single FIFO pool and no master;
//! * [`io_future`] — latency-hiding I/O futures: a reactor thread completes
//!   simulated I/O after a sampled latency without occupying a worker
//!   (the `io_future` / `cilk_read` / `cilk_write` substitute);
//! * [`metrics`] — per-level response-time and compute-time statistics
//!   (mean and 95th percentile, the quantities of Figures 13 and 14),
//!   sharded per recording thread so the task-completion hot path never
//!   contends on a global lock;
//! * [`trace`] — an optional low-overhead execution tracer (sharded like
//!   [`metrics`]) whose event log `rp_core::trace` reconstructs into a cost
//!   graph and schedule, making the Theorem 2.3 response-time bound an
//!   executable invariant of real runs;
//! * [`runtime`] — the public [`runtime::Runtime`] facade tying it together.
//!
//! # Quick start
//!
//! ```
//! use rp_icilk::runtime::{Runtime, RuntimeConfig, SchedulerKind};
//!
//! // Two priority levels: background below interactive.
//! let config = RuntimeConfig::new(2, 2).with_level_names(["background", "interactive"]);
//! let rt = Runtime::start(config);
//! let interactive = rt.priority_by_name("interactive").unwrap();
//! let f = rt.fcreate(interactive, || 6 * 7);
//! assert_eq!(rt.ftouch_blocking(&f), 42);
//! rt.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod future;
pub mod io_future;
pub mod master;
pub mod metrics;
pub mod pool;
pub mod priority;
pub mod runtime;
pub mod trace;
pub mod worker;

pub use future::IFuture;
pub use priority::{OutranksOrEqual, PriorityLevel};
pub use runtime::{Runtime, RuntimeConfig, SchedulerKind};
