//! Latency-hiding I/O futures.
//!
//! I-Cilk provides `cilk_read` / `cilk_write`, which start an I/O operation
//! and return an `io_future` without occupying a processing core while the
//! operation is in flight.  In this reproduction the "I/O" is simulated: a
//! dedicated reactor thread completes each request after a latency drawn
//! from an [`rp_sim::latency::LatencyModel`], delivering the payload by
//! fulfilling an [`IFuture`].  No worker thread is blocked in the meantime,
//! which is exactly the latency-hiding property the paper relies on.

use crate::future::IFuture;
use parking_lot::{Condvar, Mutex};
use rp_priority::Priority;
use rp_sim::latency::{LatencyModel, LatencySampler};
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A pending simulated I/O operation.
struct PendingIo {
    deadline: Instant,
    seq: u64,
    complete: Box<dyn FnOnce() + Send + 'static>,
}

impl PartialEq for PendingIo {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for PendingIo {}
impl PartialOrd for PendingIo {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingIo {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse order so the earliest deadline is the max-heap root.
        other
            .deadline
            .cmp(&self.deadline)
            .then(other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct ReactorState {
    queue: BinaryHeap<PendingIo>,
    shutdown: bool,
    seq: u64,
}

/// The simulated-I/O reactor: owns a background thread that completes
/// submitted operations at their deadlines.
pub struct IoReactor {
    state: Arc<(Mutex<ReactorState>, Condvar)>,
    sampler: Mutex<LatencySampler>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for IoReactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoReactor").finish_non_exhaustive()
    }
}

impl IoReactor {
    /// Starts the reactor with the given latency model and seed.
    pub fn start(model: LatencyModel, seed: u64) -> Self {
        let state: Arc<(Mutex<ReactorState>, Condvar)> =
            Arc::new((Mutex::new(ReactorState::default()), Condvar::new()));
        let thread_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("icilk-io-reactor".to_string())
            .spawn(move || reactor_loop(thread_state))
            .expect("spawning the I/O reactor");
        IoReactor {
            state,
            sampler: Mutex::new(LatencySampler::new(model, seed)),
            handle: Some(handle),
        }
    }

    /// Samples a latency from the reactor's model.
    pub fn sample_latency(&self) -> Duration {
        self.sampler.lock().sample_duration()
    }

    /// Submits a simulated I/O operation that produces a value of type `T`
    /// after `latency`, returning the future immediately.
    pub fn submit<T: Send + 'static>(
        &self,
        priority: Priority,
        latency: Duration,
        produce: impl FnOnce() -> T + Send + 'static,
    ) -> IFuture<T> {
        let future = IFuture::new(priority);
        let completion_handle = future.clone();
        let (lock, cv) = &*self.state;
        let mut st = lock.lock();
        st.seq += 1;
        let seq = st.seq;
        st.queue.push(PendingIo {
            deadline: Instant::now() + latency,
            seq,
            complete: Box::new(move || completion_handle.complete(produce())),
        });
        cv.notify_one();
        future
    }

    /// Submits an operation whose latency is drawn from the reactor's model.
    pub fn submit_with_model_latency<T: Send + 'static>(
        &self,
        priority: Priority,
        produce: impl FnOnce() -> T + Send + 'static,
    ) -> IFuture<T> {
        let latency = self.sample_latency();
        self.submit(priority, latency, produce)
    }

    /// Stops the reactor, completing any still-pending operations
    /// immediately.
    pub fn shutdown(&mut self) {
        {
            let (lock, cv) = &*self.state;
            let mut st = lock.lock();
            st.shutdown = true;
            cv.notify_all();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for IoReactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn reactor_loop(state: Arc<(Mutex<ReactorState>, Condvar)>) {
    let (lock, cv) = &*state;
    loop {
        let due: Vec<PendingIo> = {
            let mut st = lock.lock();
            if st.shutdown {
                // Drain everything so no waiter hangs forever.
                return_all(&mut st);
                return;
            }
            let now = Instant::now();
            let mut due = Vec::new();
            while st.queue.peek().map(|p| p.deadline <= now).unwrap_or(false) {
                due.push(st.queue.pop().expect("peeked"));
            }
            if due.is_empty() {
                match st.queue.peek().map(|p| p.deadline) {
                    Some(deadline) => {
                        let wait = deadline.saturating_duration_since(now);
                        cv.wait_for(&mut st, wait.max(Duration::from_micros(10)));
                    }
                    None => {
                        cv.wait_for(&mut st, Duration::from_millis(5));
                    }
                }
            }
            due
        };
        for op in due {
            (op.complete)();
        }
    }
}

fn return_all(st: &mut ReactorState) {
    while let Some(op) = st.queue.pop() {
        (op.complete)();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_priority::PriorityDomain;

    fn prio() -> Priority {
        PriorityDomain::numeric(1).by_index(0)
    }

    #[test]
    fn io_completes_after_latency_without_blocking_submitter() {
        let reactor = IoReactor::start(LatencyModel::Constant { micros: 2_000 }, 1);
        let started = Instant::now();
        let f = reactor.submit(prio(), Duration::from_millis(2), || "payload".to_string());
        // Submission returns immediately.
        assert!(started.elapsed() < Duration::from_millis(2));
        assert_eq!(f.wait_clone(), "payload");
        assert!(started.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    fn many_operations_complete_in_any_order() {
        let reactor = IoReactor::start(LatencyModel::Uniform { lo: 100, hi: 2_000 }, 7);
        let futures: Vec<IFuture<usize>> = (0..32)
            .map(|i| reactor.submit_with_model_latency(prio(), move || i))
            .collect();
        for (i, f) in futures.iter().enumerate() {
            assert_eq!(f.wait_clone(), i);
        }
    }

    #[test]
    fn shutdown_completes_pending_operations() {
        let mut reactor = IoReactor::start(LatencyModel::Constant { micros: 200_000 }, 3);
        let f = reactor.submit(prio(), Duration::from_millis(200), || 9u32);
        reactor.shutdown();
        // The pending operation was force-completed at shutdown.
        assert_eq!(f.wait_clone_timeout(Duration::from_millis(100)), Some(9));
    }

    #[test]
    fn sampled_latency_matches_model() {
        let reactor = IoReactor::start(LatencyModel::Constant { micros: 123 }, 0);
        assert_eq!(reactor.sample_latency(), Duration::from_micros(123));
    }
}
