//! Latency-hiding I/O futures.
//!
//! I-Cilk provides `cilk_read` / `cilk_write`, which start an I/O operation
//! and return an `io_future` without occupying a processing core while the
//! operation is in flight.  In this reproduction the "I/O" is simulated: a
//! dedicated reactor thread completes each request after a latency drawn
//! from an [`rp_sim::latency::LatencyModel`], delivering the payload by
//! fulfilling an [`IFuture`].  No worker thread is blocked in the meantime,
//! which is exactly the latency-hiding property the paper relies on.

use crate::future::IFuture;
use parking_lot::{Condvar, Mutex};
use rp_priority::Priority;
use rp_sim::latency::{LatencyModel, LatencySampler};
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A pending simulated I/O operation.
struct PendingIo {
    deadline: Instant,
    seq: u64,
    complete: Box<dyn FnOnce() + Send + 'static>,
}

impl PartialEq for PendingIo {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for PendingIo {}
impl PartialOrd for PendingIo {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingIo {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse order so the earliest deadline is the max-heap root.
        other
            .deadline
            .cmp(&self.deadline)
            .then(other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct ReactorState {
    queue: BinaryHeap<PendingIo>,
    shutdown: bool,
    seq: u64,
    /// Loop iterations of the reactor thread, for the idle-wakeup
    /// regression test and diagnostics.
    wakeups: u64,
    /// Operations popped from the queue as due but whose completion
    /// closures have not finished running yet.  Without this, an operation
    /// being completed is invisible to [`IoReactor::pending_ops`] and a
    /// drain could declare the runtime idle mid-completion.
    in_flight: usize,
}

/// The simulated-I/O reactor: owns a background thread that completes
/// submitted operations at their deadlines.
pub struct IoReactor {
    state: Arc<(Mutex<ReactorState>, Condvar)>,
    sampler: Mutex<LatencySampler>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for IoReactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoReactor").finish_non_exhaustive()
    }
}

impl IoReactor {
    /// Starts the reactor with the given latency model and seed.
    pub fn start(model: LatencyModel, seed: u64) -> Self {
        let state: Arc<(Mutex<ReactorState>, Condvar)> =
            Arc::new((Mutex::new(ReactorState::default()), Condvar::new()));
        let thread_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("icilk-io-reactor".to_string())
            .spawn(move || reactor_loop(thread_state))
            .expect("spawning the I/O reactor");
        IoReactor {
            state,
            sampler: Mutex::new(LatencySampler::new(model, seed)),
            handle: Some(handle),
        }
    }

    /// Samples a latency from the reactor's model.
    pub fn sample_latency(&self) -> Duration {
        self.sampler.lock().sample_duration()
    }

    /// Submits a simulated I/O operation that produces a value of type `T`
    /// after `latency`, returning the future immediately.
    pub fn submit<T: Send + 'static>(
        &self,
        priority: Priority,
        latency: Duration,
        produce: impl FnOnce() -> T + Send + 'static,
    ) -> IFuture<T> {
        let future = IFuture::new(priority);
        let completion_handle = future.clone();
        let (lock, cv) = &*self.state;
        {
            let mut st = lock.lock();
            // After shutdown the reactor thread has exited (or is draining on
            // its way out), so a queued operation would never be completed
            // and its waiters would hang forever.  Complete it inline
            // instead, mirroring shutdown's drain-everything semantics.
            if st.shutdown {
                drop(st);
                completion_handle.complete(produce());
                return future;
            }
            st.seq += 1;
            let seq = st.seq;
            st.queue.push(PendingIo {
                deadline: Instant::now() + latency,
                seq,
                complete: Box::new(move || completion_handle.complete(produce())),
            });
        }
        cv.notify_one();
        future
    }

    /// Submits an operation whose latency is drawn from the reactor's model.
    pub fn submit_with_model_latency<T: Send + 'static>(
        &self,
        priority: Priority,
        produce: impl FnOnce() -> T + Send + 'static,
    ) -> IFuture<T> {
        let latency = self.sample_latency();
        self.submit(priority, latency, produce)
    }

    /// Number of loop iterations the reactor thread has performed.  An idle
    /// reactor should barely move this counter (it parks on the condvar with
    /// no timeout); exposed for the busy-wake regression test and
    /// diagnostics.
    pub fn loop_wakeups(&self) -> u64 {
        self.state.0.lock().wakeups
    }

    /// Number of submitted operations that have not completed yet: those
    /// still queued behind their deadlines plus those whose completion
    /// closures are currently running.  [`crate::runtime::Runtime::drain`]
    /// polls this so in-flight I/O counts as outstanding work.
    pub fn pending_ops(&self) -> usize {
        let st = self.state.0.lock();
        st.queue.len() + st.in_flight
    }

    /// Stops the reactor, completing any still-pending operations
    /// immediately.
    pub fn shutdown(&mut self) {
        {
            let (lock, cv) = &*self.state;
            let mut st = lock.lock();
            st.shutdown = true;
            cv.notify_all();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for IoReactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn reactor_loop(state: Arc<(Mutex<ReactorState>, Condvar)>) {
    let (lock, cv) = &*state;
    loop {
        let due: Vec<PendingIo> = {
            let mut st = lock.lock();
            st.wakeups += 1;
            if st.shutdown {
                // Drain everything so no waiter hangs forever.
                return_all(&mut st);
                return;
            }
            let now = Instant::now();
            let mut due = Vec::new();
            while st.queue.peek().map(|p| p.deadline <= now).unwrap_or(false) {
                due.push(st.queue.pop().expect("peeked"));
            }
            if due.is_empty() {
                match st.queue.peek().map(|p| p.deadline) {
                    Some(deadline) => {
                        let wait = deadline.saturating_duration_since(now);
                        cv.wait_for(&mut st, wait.max(Duration::from_micros(10)));
                    }
                    None => {
                        // Nothing queued: wait until `submit` or `shutdown`
                        // notifies, with no timeout — both always signal the
                        // condvar, so a 5 ms poll here was ~200 pure-overhead
                        // wakeups/sec per idle reactor.
                        cv.wait(&mut st);
                    }
                }
            }
            // Popped operations stay visible to `pending_ops` until their
            // completion closures have run.
            st.in_flight = due.len();
            due
        };
        if !due.is_empty() {
            for op in due {
                (op.complete)();
            }
            lock.lock().in_flight = 0;
        }
    }
}

fn return_all(st: &mut ReactorState) {
    while let Some(op) = st.queue.pop() {
        (op.complete)();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_priority::PriorityDomain;

    fn prio() -> Priority {
        PriorityDomain::numeric(1).by_index(0)
    }

    #[test]
    fn io_completes_after_latency_without_blocking_submitter() {
        let reactor = IoReactor::start(LatencyModel::Constant { micros: 2_000 }, 1);
        let started = Instant::now();
        let f = reactor.submit(prio(), Duration::from_millis(2), || "payload".to_string());
        // Submission returns immediately.
        assert!(started.elapsed() < Duration::from_millis(2));
        assert_eq!(f.wait_clone(), "payload");
        assert!(started.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    fn many_operations_complete_in_any_order() {
        let reactor = IoReactor::start(LatencyModel::Uniform { lo: 100, hi: 2_000 }, 7);
        let futures: Vec<IFuture<usize>> = (0..32)
            .map(|i| reactor.submit_with_model_latency(prio(), move || i))
            .collect();
        for (i, f) in futures.iter().enumerate() {
            assert_eq!(f.wait_clone(), i);
        }
    }

    #[test]
    fn shutdown_completes_pending_operations() {
        let mut reactor = IoReactor::start(LatencyModel::Constant { micros: 200_000 }, 3);
        let f = reactor.submit(prio(), Duration::from_millis(200), || 9u32);
        reactor.shutdown();
        // The pending operation was force-completed at shutdown.
        assert_eq!(f.wait_clone_timeout(Duration::from_millis(100)), Some(9));
    }

    #[test]
    fn sampled_latency_matches_model() {
        let reactor = IoReactor::start(LatencyModel::Constant { micros: 123 }, 0);
        assert_eq!(reactor.sample_latency(), Duration::from_micros(123));
    }

    /// Regression test: `submit` after `shutdown` used to push onto the
    /// queue of the already-exited reactor thread, so the future never
    /// completed and `wait_clone` hung forever.
    #[test]
    fn submit_after_shutdown_completes_inline() {
        let mut reactor = IoReactor::start(LatencyModel::Constant { micros: 100 }, 2);
        reactor.shutdown();
        let f = reactor.submit(prio(), Duration::from_millis(1), || 7u32);
        assert_eq!(
            f.wait_clone_timeout(Duration::from_millis(500)),
            Some(7),
            "post-shutdown submission must still complete"
        );
    }

    /// Regression test: with nothing queued the reactor used to wake every
    /// 5 ms for no reason (~200 spurious wakeups/sec).  It now parks on the
    /// condvar without a timeout, so an idle quarter second costs at most a
    /// handful of iterations.
    #[test]
    fn idle_reactor_does_not_busy_wake() {
        let reactor = IoReactor::start(LatencyModel::Constant { micros: 100 }, 4);
        // Let startup settle, then measure an idle window.
        std::thread::sleep(Duration::from_millis(20));
        let before = reactor.loop_wakeups();
        std::thread::sleep(Duration::from_millis(250));
        let wakeups = reactor.loop_wakeups() - before;
        // The 5 ms poll produced ~50 wakeups here; parking produces none.
        assert!(
            wakeups <= 5,
            "idle reactor woke {wakeups} times in 250 ms — busy-wake regression"
        );
    }

    /// Regression test: a submitted operation must count as pending until
    /// its completion closure has run.  `Runtime::drain` polls
    /// `pending_ops`, so this is what keeps a drain from declaring the
    /// runtime idle while I/O is still in flight.
    #[test]
    fn pending_ops_counts_submitted_until_completed() {
        let reactor = IoReactor::start(LatencyModel::Constant { micros: 100 }, 6);
        assert_eq!(reactor.pending_ops(), 0);
        let f = reactor.submit(prio(), Duration::from_millis(20), || 1u32);
        assert_eq!(
            reactor.pending_ops(),
            1,
            "submission must be visible immediately"
        );
        assert_eq!(f.wait_clone(), 1);
        // The completion closure has run; the counter settles to zero (the
        // reactor zeroes `in_flight` right after completing the batch).
        let deadline = Instant::now() + Duration::from_secs(1);
        while reactor.pending_ops() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_micros(100));
        }
        assert_eq!(reactor.pending_ops(), 0);
    }

    /// An idle (parked) reactor must still pick up new submissions promptly:
    /// `submit` notifies the condvar, so parking without a timeout cannot
    /// delay completion.
    #[test]
    fn idle_reactor_accepts_and_completes_submissions_promptly() {
        let reactor = IoReactor::start(LatencyModel::Constant { micros: 100 }, 5);
        std::thread::sleep(Duration::from_millis(50)); // deep idle
        let started = Instant::now();
        let f = reactor.submit(prio(), Duration::from_millis(1), || 11u32);
        assert_eq!(
            f.wait_clone_timeout(Duration::from_millis(500)),
            Some(11),
            "submission to an idle reactor must complete"
        );
        assert!(
            started.elapsed() < Duration::from_millis(200),
            "completion took {:?} — the idle reactor reacted too slowly",
            started.elapsed()
        );
    }
}
