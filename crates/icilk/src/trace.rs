//! The runtime cost-graph tracer.
//!
//! When tracing is enabled ([`crate::runtime::RuntimeConfig::with_tracing`])
//! the runtime records an event log of everything it executes — task spawns,
//! run spans, steals, touches, and I/O submissions/completions — in the
//! event vocabulary of [`rp_core::trace`].  After a drain,
//! [`crate::runtime::Runtime::trace_snapshot`] merges the log into an
//! [`ExecutionTrace`], which `rp_core` reconstructs into a cost graph and a
//! concrete schedule so the Theorem 2.3 response-time bound can be checked
//! against the real execution.
//!
//! # Sharding
//!
//! Recording happens on every spawn, touch, and task completion, so it uses
//! the same pattern as [`crate::metrics::MetricsCollector`]: one
//! cache-line-padded shard per recording thread (round-robin by the shared
//! thread ordinal), each behind its own mutex.  A worker only ever locks its
//! own shard, so recording never takes a global lock; shards are merged only
//! by [`TraceCollector::snapshot`] or [`TraceCollector::drain`].  Task keys
//! come from one relaxed atomic counter — the only cross-thread traffic on
//! the hot path.
//!
//! # Bounded buffers and draining
//!
//! Each shard is a *bounded* buffer ([`DEFAULT_TRACE_CAPACITY`] events by
//! default, configurable per runtime).  A full shard drops new events and
//! counts them in [`TraceStats::dropped_events`] — loss is never silent.  Long-running
//! services keep the buffers small by periodically calling
//! [`TraceCollector::drain`], which empties the shards and hands back only
//! the events recorded since the previous drain as a [`TraceBatch`]; the
//! streaming reconstructor (`rp_core::stream`) consumes those batches.
//! Post-hoc consumers keep using [`TraceCollector::snapshot`], which copies
//! without consuming — the two styles should not be mixed on one run.

use crate::metrics::thread_ordinal;
use parking_lot::Mutex;
use rp_core::trace::{ExecutionTrace, TraceEvent};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default number of trace shards; recording threads beyond this many share
/// shards round-robin.
pub const DEFAULT_TRACE_SHARDS: usize = 16;

/// Default per-shard event capacity.  With [`DEFAULT_TRACE_SHARDS`] shards
/// this bounds an undrained collector at ~1M events; drained collectors stay
/// far below it.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Distinguishes collectors so a thread executing tasks of one runtime never
/// mis-attributes parents or touchers to another runtime's collector.
static NEXT_COLLECTOR_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Task keys are drawn from one process-wide counter rather than
/// per-collector ones: a future can be touched through a *different* traced
/// runtime than the one that created it (the public API permits it), and
/// with per-collector counters the recorded key would collide with an
/// unrelated task of the touching runtime, fabricating an edge.  Globally
/// unique keys make such a cross-runtime touch record a key unknown to the
/// touching collector's log, which reconstruction drops harmlessly.
static NEXT_TASK_KEY: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The `(collector token, task key)` of the task currently executing on
    /// this thread, if any.  Saved and restored by [`TaskScope`], so nested
    /// execution (a worker helping inside `ftouch`) attributes events to the
    /// innermost task.
    static CURRENT_TASK: Cell<Option<(u64, u64)>> = const { Cell::new(None) };
}

/// One shard's bounded buffer plus its lifetime counters.
#[derive(Default)]
struct ShardBuf {
    events: Vec<TraceEvent>,
    /// Events accepted into this shard since collector creation.
    recorded: u64,
    /// Events rejected because the buffer was at capacity.
    dropped: u64,
}

/// One trace shard, padded to its own cache lines (see the module docs).
#[repr(align(128))]
struct Shard(Mutex<ShardBuf>);

/// Cumulative counters for one [`TraceCollector`], as of the moment
/// [`TraceCollector::stats`] was called.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Events accepted into shard buffers since collector creation.
    pub recorded_events: u64,
    /// Events handed out by [`TraceCollector::drain`] so far.
    pub drained_events: u64,
    /// Events dropped because a shard buffer was full.  A healthy drained
    /// run keeps this at zero; it is never silently reset.
    pub dropped_events: u64,
    /// Events currently sitting in shard buffers
    /// (`recorded_events - drained_events`).
    pub buffered_events: u64,
    /// The per-shard capacity this collector was built with.
    pub shard_capacity: usize,
}

/// One drained batch of trace events: everything recorded since the previous
/// [`TraceCollector::drain`], merged across shards and stably sorted by
/// timestamp.
///
/// Batches carry a monotone `seq` number plus the collector's cumulative
/// `recorded_events`/`dropped_events` counters at drain time, so a consumer
/// can detect loss without a side channel.  Note that a drain can race a recording
/// thread between its clock read and its buffer push: an event with
/// timestamp `t` may arrive in a *later* batch than events stamped after
/// `t`.  Streaming consumers tolerate this with a reorder window
/// (`rp_core::stream`).
#[derive(Debug, Clone)]
pub struct TraceBatch {
    /// Batch sequence number, starting at 0 for the first drain.
    pub seq: u64,
    /// The drained events, stably sorted by [`TraceEvent::at`].
    pub events: Vec<TraceEvent>,
    /// Cumulative events accepted by the collector at drain time.
    pub recorded_events: u64,
    /// Cumulative events dropped by the collector at drain time.
    pub dropped_events: u64,
}

/// Sharded, per-runtime recorder of [`TraceEvent`]s.
pub struct TraceCollector {
    token: u64,
    epoch: Instant,
    shards: Vec<Shard>,
    shard_mask: usize,
    level_names: Vec<String>,
    num_workers: usize,
    shard_capacity: usize,
    drained: AtomicU64,
    next_batch: AtomicU64,
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCollector")
            .field("shards", &self.shards.len())
            .field("num_workers", &self.num_workers)
            .finish_non_exhaustive()
    }
}

impl TraceCollector {
    /// A collector for a runtime with the given level names (lowest first)
    /// and worker count, using [`DEFAULT_TRACE_SHARDS`] shards of
    /// [`DEFAULT_TRACE_CAPACITY`] events each.
    pub fn new(level_names: Vec<String>, num_workers: usize) -> Self {
        Self::with_capacity(level_names, num_workers, DEFAULT_TRACE_CAPACITY)
    }

    /// Like [`TraceCollector::new`] but with an explicit per-shard event
    /// capacity (minimum 1).  Once a shard is full, further events recorded
    /// through it are dropped and counted in [`TraceStats::dropped_events`].
    pub fn with_capacity(
        level_names: Vec<String>,
        num_workers: usize,
        shard_capacity: usize,
    ) -> Self {
        let shards = DEFAULT_TRACE_SHARDS.next_power_of_two();
        TraceCollector {
            token: NEXT_COLLECTOR_TOKEN.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            shards: (0..shards)
                .map(|_| Shard(Mutex::new(ShardBuf::default())))
                .collect(),
            shard_mask: shards - 1,
            level_names,
            num_workers,
            shard_capacity: shard_capacity.max(1),
            drained: AtomicU64::new(0),
            next_batch: AtomicU64::new(0),
        }
    }

    /// The level names this collector was built with (lowest first).
    pub fn level_names(&self) -> &[String] {
        &self.level_names
    }

    /// The worker count this collector was built with.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn record(&self, event: TraceEvent) {
        let shard = &self.shards[thread_ordinal() & self.shard_mask];
        let mut buf = shard.0.lock();
        if buf.events.len() < self.shard_capacity {
            buf.events.push(event);
            buf.recorded += 1;
        } else {
            buf.dropped += 1;
        }
    }

    /// The task currently executing on this thread, if it belongs to this
    /// collector's runtime.
    fn current_task(&self) -> Option<u64> {
        CURRENT_TASK
            .with(Cell::get)
            .and_then(|(token, key)| (token == self.token).then_some(key))
    }

    /// Records an `fcreate` and returns the new task's key.
    pub(crate) fn record_spawn(&self, level: usize) -> u64 {
        let task = NEXT_TASK_KEY.fetch_add(1, Ordering::Relaxed);
        self.record(TraceEvent::Spawn {
            task,
            parent: self.current_task(),
            level,
            at: self.now(),
        });
        task
    }

    /// Records a simulated-I/O submission and returns the future's key.
    pub(crate) fn record_io_submit(&self, level: usize) -> u64 {
        let task = NEXT_TASK_KEY.fetch_add(1, Ordering::Relaxed);
        self.record(TraceEvent::IoSubmit {
            task,
            parent: self.current_task(),
            level,
            at: self.now(),
        });
        task
    }

    /// Records a simulated-I/O completion.
    pub(crate) fn record_io_complete(&self, task: u64) {
        self.record(TraceEvent::IoComplete {
            task,
            at: self.now(),
        });
    }

    /// Records an `ftouch` of the given task's future by whatever task is
    /// currently executing on this thread (`None` for external threads).
    pub(crate) fn record_touch(&self, touched: u64) {
        self.record(TraceEvent::Touch {
            toucher: self.current_task(),
            touched,
            at: self.now(),
        });
    }

    /// Records a steal of the given task by this thread.
    pub(crate) fn record_steal(&self, task: u64) {
        self.record(TraceEvent::Steal {
            task,
            thief: thread_ordinal(),
            at: self.now(),
        });
    }

    /// Merges the shards into a time-ordered [`ExecutionTrace`].  The sort
    /// is stable, so events recorded by one thread keep their relative order
    /// even when the clock ties.
    ///
    /// Copies without consuming — the post-hoc path.  On a run that also
    /// [`drain`](TraceCollector::drain)s, a snapshot only sees the not yet
    /// drained remainder.
    pub fn snapshot(&self) -> ExecutionTrace {
        let mut events: Vec<TraceEvent> = Vec::new();
        for shard in &self.shards {
            events.extend(shard.0.lock().events.iter().copied());
        }
        events.sort_by_key(TraceEvent::at);
        ExecutionTrace {
            events,
            num_workers: self.num_workers,
            level_names: self.level_names.clone(),
        }
    }

    /// Empties every shard and returns the events recorded since the
    /// previous drain as one stably time-sorted [`TraceBatch`].
    ///
    /// This is the streaming path: each call is O(events since last drain),
    /// independent of total run length, and frees the buffer space it
    /// consumed.  See [`TraceBatch`] for the ordering caveat near the drain
    /// boundary.
    pub fn drain(&self) -> TraceBatch {
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut recorded = 0;
        let mut dropped = 0;
        for shard in &self.shards {
            let mut buf = shard.0.lock();
            events.append(&mut buf.events);
            recorded += buf.recorded;
            dropped += buf.dropped;
        }
        events.sort_by_key(TraceEvent::at);
        self.drained
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        TraceBatch {
            seq: self.next_batch.fetch_add(1, Ordering::Relaxed),
            events,
            recorded_events: recorded,
            dropped_events: dropped,
        }
    }

    /// Current cumulative counters (recorded / drained / dropped /
    /// buffered).  Cheap enough for periodic gauges: it locks each shard
    /// once without copying events.
    pub fn stats(&self) -> TraceStats {
        let mut recorded = 0;
        let mut dropped = 0;
        for shard in &self.shards {
            let buf = shard.0.lock();
            recorded += buf.recorded;
            dropped += buf.dropped;
        }
        let drained = self.drained.load(Ordering::Relaxed);
        TraceStats {
            recorded_events: recorded,
            drained_events: drained,
            dropped_events: dropped,
            buffered_events: recorded.saturating_sub(drained),
            shard_capacity: self.shard_capacity,
        }
    }
}

/// RAII scope for one task's run span: records `Start` on entry, installs
/// the task as this thread's current task, and on drop records `End` and
/// restores the previous current task.  The task wrapper drops the scope
/// *before* fulfilling the task's future, so every touch of the value is
/// timestamped after the `End` event — which keeps all reconstructed edges
/// pointing forward in time.
pub(crate) struct TaskScope<'a> {
    collector: &'a TraceCollector,
    key: u64,
    previous: Option<(u64, u64)>,
}

impl<'a> TaskScope<'a> {
    /// Enters the scope, recording the start of the task's run span.
    pub(crate) fn enter(collector: &'a TraceCollector, key: u64) -> Self {
        collector.record(TraceEvent::Start {
            task: key,
            worker: thread_ordinal(),
            at: collector.now(),
        });
        let previous = CURRENT_TASK.with(|c| c.replace(Some((collector.token, key))));
        TaskScope {
            collector,
            key,
            previous,
        }
    }
}

impl Drop for TaskScope<'_> {
    fn drop(&mut self) {
        CURRENT_TASK.with(|c| c.set(self.previous));
        self.collector.record(TraceEvent::End {
            task: self.key,
            at: self.collector.now(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_unique_and_events_ordered() {
        let tc = TraceCollector::new(vec!["only".into()], 1);
        let a = tc.record_spawn(0);
        let b = tc.record_io_submit(0);
        assert_ne!(a, b);
        {
            let _scope = TaskScope::enter(&tc, a);
            let c = tc.record_spawn(0);
            assert_ne!(c, a);
        }
        tc.record_io_complete(b);
        tc.record_touch(b);
        let trace = tc.snapshot();
        assert_eq!(trace.level_names, vec!["only".to_string()]);
        assert_eq!(trace.num_workers, 1);
        assert!(trace.events.windows(2).all(|w| w[0].at() <= w[1].at()));
        // The nested spawn was attributed to the scoped task; the touch after
        // the scope ended was not.
        let nested_parent = trace.events.iter().find_map(|e| match e {
            TraceEvent::Spawn { task, parent, .. } if *task != a => Some(*parent),
            _ => None,
        });
        assert_eq!(nested_parent, Some(Some(a)));
        let toucher = trace.events.iter().find_map(|e| match e {
            TraceEvent::Touch { toucher, .. } => Some(*toucher),
            _ => None,
        });
        assert_eq!(toucher, Some(None));
    }

    #[test]
    fn scopes_nest_and_restore() {
        let tc = TraceCollector::new(vec!["only".into()], 1);
        let outer = tc.record_spawn(0);
        let inner = tc.record_spawn(0);
        {
            let _o = TaskScope::enter(&tc, outer);
            assert_eq!(tc.current_task(), Some(outer));
            {
                let _i = TaskScope::enter(&tc, inner);
                assert_eq!(tc.current_task(), Some(inner));
            }
            assert_eq!(tc.current_task(), Some(outer));
        }
        assert_eq!(tc.current_task(), None);
    }

    /// Task keys are globally unique, so a future created by one traced
    /// runtime but touched through another records a key the touching
    /// collector's log has never declared — reconstruction drops the touch
    /// instead of aliasing it onto an unrelated local task.
    #[test]
    fn cross_runtime_touch_cannot_alias_a_local_task() {
        let a = TraceCollector::new(vec!["only".into()], 1);
        let b = TraceCollector::new(vec!["only".into()], 1);
        let foreign = a.record_spawn(0);
        let local = b.record_spawn(0);
        assert_ne!(foreign, local, "keys never collide across collectors");
        {
            let _scope = TaskScope::enter(&b, local);
            // Inside b's task, touch a future whose key belongs to a.
            b.record_touch(foreign);
        }
        let run = b.snapshot().reconstruct().expect("b's log reconstructs");
        assert_eq!(run.dag.thread_count(), 1);
        assert_eq!(run.dag.touch_edges().len(), 0, "foreign touch dropped");
        assert_eq!(run.dag.weak_edges().len(), 0);
    }

    /// `drain` hands out exactly the events recorded since the previous
    /// drain — deltas, not history — and a quiet collector drains empty.
    #[test]
    fn drain_returns_deltas_and_empties_buffers() {
        let tc = TraceCollector::new(vec!["only".into()], 1);
        let a = tc.record_spawn(0);
        tc.record_touch(a);
        let first = tc.drain();
        assert_eq!(first.seq, 0);
        assert_eq!(first.events.len(), 2);
        assert_eq!(first.recorded_events, 2);
        assert_eq!(first.dropped_events, 0);
        assert!(first.events.windows(2).all(|w| w[0].at() <= w[1].at()));

        let quiet = tc.drain();
        assert_eq!(quiet.seq, 1);
        assert!(quiet.events.is_empty());

        let b = tc.record_spawn(0);
        tc.record_io_complete(b);
        let second = tc.drain();
        assert_eq!(second.seq, 2);
        assert_eq!(second.events.len(), 2, "only the new events");
        assert_eq!(second.recorded_events, 4, "counters stay cumulative");

        let stats = tc.stats();
        assert_eq!(stats.recorded_events, 4);
        assert_eq!(stats.drained_events, 4);
        assert_eq!(stats.buffered_events, 0);
        assert_eq!(stats.dropped_events, 0);
    }

    /// A full shard drops new events loudly: the counter moves, nothing is
    /// silently overwritten, and draining frees capacity again.
    #[test]
    fn capacity_overflow_drops_and_counts() {
        let tc = TraceCollector::with_capacity(vec!["only".into()], 1, 2);
        // All records from this one test thread land in the same shard.
        let a = tc.record_spawn(0);
        tc.record_touch(a);
        tc.record_touch(a); // shard is full: dropped
        let stats = tc.stats();
        assert_eq!(stats.recorded_events, 2);
        assert_eq!(stats.dropped_events, 1);
        assert_eq!(stats.shard_capacity, 2);

        let batch = tc.drain();
        assert_eq!(batch.events.len(), 2);
        assert_eq!(batch.dropped_events, 1, "drops are visible in the batch");
        tc.record_touch(a);
        assert_eq!(tc.stats().dropped_events, 1, "room again after the drain");
        assert_eq!(tc.stats().buffered_events, 1);
    }

    #[test]
    fn foreign_collector_tasks_are_not_attributed() {
        let a = TraceCollector::new(vec!["only".into()], 1);
        let b = TraceCollector::new(vec!["only".into()], 1);
        let key = a.record_spawn(0);
        let _scope = TaskScope::enter(&a, key);
        // Collector B must not see A's current task as a parent.
        assert_eq!(b.current_task(), None);
        let foreign = b.record_spawn(0);
        let trace = b.snapshot();
        let parent = trace.events.iter().find_map(|e| match e {
            TraceEvent::Spawn { task, parent, .. } if *task == foreign => Some(*parent),
            _ => None,
        });
        assert_eq!(parent, Some(None));
    }
}
