//! The runtime cost-graph tracer.
//!
//! When tracing is enabled ([`crate::runtime::RuntimeConfig::with_tracing`])
//! the runtime records an event log of everything it executes — task spawns,
//! run spans, steals, touches, and I/O submissions/completions — in the
//! event vocabulary of [`rp_core::trace`].  After a drain,
//! [`crate::runtime::Runtime::trace_snapshot`] merges the log into an
//! [`ExecutionTrace`], which `rp_core` reconstructs into a cost graph and a
//! concrete schedule so the Theorem 2.3 response-time bound can be checked
//! against the real execution.
//!
//! # Sharding
//!
//! Recording happens on every spawn, touch, and task completion, so it uses
//! the same pattern as [`crate::metrics::MetricsCollector`]: one
//! cache-line-padded shard per recording thread (round-robin by the shared
//! thread ordinal), each behind its own mutex.  A worker only ever locks its
//! own shard, so recording never takes a global lock; shards are merged only
//! by [`TraceCollector::snapshot`].  Task keys come from one relaxed atomic
//! counter — the only cross-thread traffic on the hot path.

use crate::metrics::thread_ordinal;
use parking_lot::Mutex;
use rp_core::trace::{ExecutionTrace, TraceEvent};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default number of trace shards; recording threads beyond this many share
/// shards round-robin.
pub const DEFAULT_TRACE_SHARDS: usize = 16;

/// Distinguishes collectors so a thread executing tasks of one runtime never
/// mis-attributes parents or touchers to another runtime's collector.
static NEXT_COLLECTOR_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Task keys are drawn from one process-wide counter rather than
/// per-collector ones: a future can be touched through a *different* traced
/// runtime than the one that created it (the public API permits it), and
/// with per-collector counters the recorded key would collide with an
/// unrelated task of the touching runtime, fabricating an edge.  Globally
/// unique keys make such a cross-runtime touch record a key unknown to the
/// touching collector's log, which reconstruction drops harmlessly.
static NEXT_TASK_KEY: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The `(collector token, task key)` of the task currently executing on
    /// this thread, if any.  Saved and restored by [`TaskScope`], so nested
    /// execution (a worker helping inside `ftouch`) attributes events to the
    /// innermost task.
    static CURRENT_TASK: Cell<Option<(u64, u64)>> = const { Cell::new(None) };
}

/// One trace shard, padded to its own cache lines (see the module docs).
#[repr(align(128))]
struct Shard(Mutex<Vec<TraceEvent>>);

/// Sharded, per-runtime recorder of [`TraceEvent`]s.
pub struct TraceCollector {
    token: u64,
    epoch: Instant,
    shards: Vec<Shard>,
    shard_mask: usize,
    level_names: Vec<String>,
    num_workers: usize,
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCollector")
            .field("shards", &self.shards.len())
            .field("num_workers", &self.num_workers)
            .finish_non_exhaustive()
    }
}

impl TraceCollector {
    /// A collector for a runtime with the given level names (lowest first)
    /// and worker count, using [`DEFAULT_TRACE_SHARDS`] shards.
    pub fn new(level_names: Vec<String>, num_workers: usize) -> Self {
        let shards = DEFAULT_TRACE_SHARDS.next_power_of_two();
        TraceCollector {
            token: NEXT_COLLECTOR_TOKEN.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            shards: (0..shards).map(|_| Shard(Mutex::new(Vec::new()))).collect(),
            shard_mask: shards - 1,
            level_names,
            num_workers,
        }
    }

    fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn record(&self, event: TraceEvent) {
        let shard = &self.shards[thread_ordinal() & self.shard_mask];
        shard.0.lock().push(event);
    }

    /// The task currently executing on this thread, if it belongs to this
    /// collector's runtime.
    fn current_task(&self) -> Option<u64> {
        CURRENT_TASK
            .with(Cell::get)
            .and_then(|(token, key)| (token == self.token).then_some(key))
    }

    /// Records an `fcreate` and returns the new task's key.
    pub(crate) fn record_spawn(&self, level: usize) -> u64 {
        let task = NEXT_TASK_KEY.fetch_add(1, Ordering::Relaxed);
        self.record(TraceEvent::Spawn {
            task,
            parent: self.current_task(),
            level,
            at: self.now(),
        });
        task
    }

    /// Records a simulated-I/O submission and returns the future's key.
    pub(crate) fn record_io_submit(&self, level: usize) -> u64 {
        let task = NEXT_TASK_KEY.fetch_add(1, Ordering::Relaxed);
        self.record(TraceEvent::IoSubmit {
            task,
            parent: self.current_task(),
            level,
            at: self.now(),
        });
        task
    }

    /// Records a simulated-I/O completion.
    pub(crate) fn record_io_complete(&self, task: u64) {
        self.record(TraceEvent::IoComplete {
            task,
            at: self.now(),
        });
    }

    /// Records an `ftouch` of the given task's future by whatever task is
    /// currently executing on this thread (`None` for external threads).
    pub(crate) fn record_touch(&self, touched: u64) {
        self.record(TraceEvent::Touch {
            toucher: self.current_task(),
            touched,
            at: self.now(),
        });
    }

    /// Records a steal of the given task by this thread.
    pub(crate) fn record_steal(&self, task: u64) {
        self.record(TraceEvent::Steal {
            task,
            thief: thread_ordinal(),
            at: self.now(),
        });
    }

    /// Merges the shards into a time-ordered [`ExecutionTrace`].  The sort
    /// is stable, so events recorded by one thread keep their relative order
    /// even when the clock ties.
    pub fn snapshot(&self) -> ExecutionTrace {
        let mut events: Vec<TraceEvent> = Vec::new();
        for shard in &self.shards {
            events.extend(shard.0.lock().iter().copied());
        }
        events.sort_by_key(TraceEvent::at);
        ExecutionTrace {
            events,
            num_workers: self.num_workers,
            level_names: self.level_names.clone(),
        }
    }
}

/// RAII scope for one task's run span: records `Start` on entry, installs
/// the task as this thread's current task, and on drop records `End` and
/// restores the previous current task.  The task wrapper drops the scope
/// *before* fulfilling the task's future, so every touch of the value is
/// timestamped after the `End` event — which keeps all reconstructed edges
/// pointing forward in time.
pub(crate) struct TaskScope<'a> {
    collector: &'a TraceCollector,
    key: u64,
    previous: Option<(u64, u64)>,
}

impl<'a> TaskScope<'a> {
    /// Enters the scope, recording the start of the task's run span.
    pub(crate) fn enter(collector: &'a TraceCollector, key: u64) -> Self {
        collector.record(TraceEvent::Start {
            task: key,
            worker: thread_ordinal(),
            at: collector.now(),
        });
        let previous = CURRENT_TASK.with(|c| c.replace(Some((collector.token, key))));
        TaskScope {
            collector,
            key,
            previous,
        }
    }
}

impl Drop for TaskScope<'_> {
    fn drop(&mut self) {
        CURRENT_TASK.with(|c| c.set(self.previous));
        self.collector.record(TraceEvent::End {
            task: self.key,
            at: self.collector.now(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_unique_and_events_ordered() {
        let tc = TraceCollector::new(vec!["only".into()], 1);
        let a = tc.record_spawn(0);
        let b = tc.record_io_submit(0);
        assert_ne!(a, b);
        {
            let _scope = TaskScope::enter(&tc, a);
            let c = tc.record_spawn(0);
            assert_ne!(c, a);
        }
        tc.record_io_complete(b);
        tc.record_touch(b);
        let trace = tc.snapshot();
        assert_eq!(trace.level_names, vec!["only".to_string()]);
        assert_eq!(trace.num_workers, 1);
        assert!(trace.events.windows(2).all(|w| w[0].at() <= w[1].at()));
        // The nested spawn was attributed to the scoped task; the touch after
        // the scope ended was not.
        let nested_parent = trace.events.iter().find_map(|e| match e {
            TraceEvent::Spawn { task, parent, .. } if *task != a => Some(*parent),
            _ => None,
        });
        assert_eq!(nested_parent, Some(Some(a)));
        let toucher = trace.events.iter().find_map(|e| match e {
            TraceEvent::Touch { toucher, .. } => Some(*toucher),
            _ => None,
        });
        assert_eq!(toucher, Some(None));
    }

    #[test]
    fn scopes_nest_and_restore() {
        let tc = TraceCollector::new(vec!["only".into()], 1);
        let outer = tc.record_spawn(0);
        let inner = tc.record_spawn(0);
        {
            let _o = TaskScope::enter(&tc, outer);
            assert_eq!(tc.current_task(), Some(outer));
            {
                let _i = TaskScope::enter(&tc, inner);
                assert_eq!(tc.current_task(), Some(inner));
            }
            assert_eq!(tc.current_task(), Some(outer));
        }
        assert_eq!(tc.current_task(), None);
    }

    /// Task keys are globally unique, so a future created by one traced
    /// runtime but touched through another records a key the touching
    /// collector's log has never declared — reconstruction drops the touch
    /// instead of aliasing it onto an unrelated local task.
    #[test]
    fn cross_runtime_touch_cannot_alias_a_local_task() {
        let a = TraceCollector::new(vec!["only".into()], 1);
        let b = TraceCollector::new(vec!["only".into()], 1);
        let foreign = a.record_spawn(0);
        let local = b.record_spawn(0);
        assert_ne!(foreign, local, "keys never collide across collectors");
        {
            let _scope = TaskScope::enter(&b, local);
            // Inside b's task, touch a future whose key belongs to a.
            b.record_touch(foreign);
        }
        let run = b.snapshot().reconstruct().expect("b's log reconstructs");
        assert_eq!(run.dag.thread_count(), 1);
        assert_eq!(run.dag.touch_edges().len(), 0, "foreign touch dropped");
        assert_eq!(run.dag.weak_edges().len(), 0);
    }

    #[test]
    fn foreign_collector_tasks_are_not_attributed() {
        let a = TraceCollector::new(vec!["only".into()], 1);
        let b = TraceCollector::new(vec!["only".into()], 1);
        let key = a.record_spawn(0);
        let _scope = TaskScope::enter(&a, key);
        // Collector B must not see A's current task as a parent.
        assert_eq!(b.current_task(), None);
        let foreign = b.record_spawn(0);
        let trace = b.snapshot();
        let parent = trace.events.iter().find_map(|e| match e {
            TraceEvent::Spawn { task, parent, .. } if *task == foreign => Some(*parent),
            _ => None,
        });
        assert_eq!(parent, Some(None));
    }
}
