//! The Cilk-F baseline configuration.
//!
//! The paper compares I-Cilk against Cilk-F, the futures-capable runtime it
//! is built on: the same work-stealing machinery and the same latency-hiding
//! `io_future` library, but no notion of priority.  This module provides the
//! corresponding configuration helpers: the baseline runtime shares every
//! component with the I-Cilk runtime except that all tasks flow through a
//! single FIFO pool and no master scheduler runs.
//!
//! Keeping the comparison inside one code base mirrors the paper's
//! methodology ("for fair comparison, Cilk-F is also equipped with the same
//! io_future library").

use crate::master::MasterConfig;
use crate::runtime::{Runtime, RuntimeConfig, SchedulerKind};
use rp_sim::latency::LatencyModel;

/// A baseline (priority-oblivious) configuration with the same parameters as
/// the given I-Cilk configuration.
pub fn baseline_of(config: &RuntimeConfig) -> RuntimeConfig {
    let mut c = config.clone();
    c.scheduler = SchedulerKind::Baseline;
    c
}

/// Starts a matched pair of runtimes — I-Cilk and the baseline — with
/// identical workers, levels, and I/O latency model, for side-by-side
/// experiments.
pub fn matched_pair(
    workers: usize,
    level_names: &[&str],
    io: LatencyModel,
    seed: u64,
    master: MasterConfig,
) -> (Runtime, Runtime) {
    let base = RuntimeConfig::new(workers, level_names.len())
        .with_level_names(level_names.to_vec())
        .with_io_latency(io, seed)
        .with_master(master);
    let icilk = Runtime::start(base.clone());
    let cilk_f = Runtime::start(baseline_of(&base));
    (icilk, cilk_f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn baseline_of_only_changes_the_scheduler() {
        let a = RuntimeConfig::new(3, 2).with_level_names(["lo", "hi"]);
        let b = baseline_of(&a);
        assert_eq!(b.scheduler, SchedulerKind::Baseline);
        assert_eq!(b.workers, a.workers);
        assert_eq!(b.levels, a.levels);
        assert_eq!(b.level_names, a.level_names);
    }

    #[test]
    fn matched_pair_runs_the_same_workload() {
        let (icilk, cilk_f) = matched_pair(
            2,
            &["bg", "ui"],
            LatencyModel::Constant { micros: 100 },
            7,
            MasterConfig::default(),
        );
        for rt in [&icilk, &cilk_f] {
            let ui = rt.priority_by_name("ui").unwrap();
            let f = rt.fcreate(ui, || 2 + 2);
            assert_eq!(rt.ftouch_blocking(&f), 4);
            assert!(rt.drain(Duration::from_secs(1)));
        }
        icilk.shutdown();
        cilk_f.shutdown();
    }
}
