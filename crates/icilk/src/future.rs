//! Prioritized futures.
//!
//! An [`IFuture`] is the handle returned by `fcreate`: a write-once cell that
//! the spawned task fills in and that `ftouch` waits on.  The typed wrapper
//! [`TypedFuture`] additionally carries the priority level in its type so
//! that touching it from lower-priority code can be rejected at compile time
//! (see [`crate::priority`]).

use crate::priority::PriorityLevel;
use parking_lot::{Condvar, Mutex};
use rp_priority::Priority;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The shared state behind an [`IFuture`].
#[derive(Debug)]
pub(crate) struct FutureInner<T> {
    state: Mutex<Option<T>>,
    ready: Condvar,
    priority: Priority,
    created_at: Instant,
    /// The backing task's trace key when the runtime records an execution
    /// trace (`0` = untraced).  Set once, before the handle is handed out.
    trace_key: AtomicU64,
}

/// A handle to a running prioritized task (the paper's thread handle /
/// future reference).
///
/// Cloning the handle is cheap; all clones refer to the same task.
#[derive(Debug)]
pub struct IFuture<T> {
    inner: Arc<FutureInner<T>>,
}

impl<T> Clone for IFuture<T> {
    fn clone(&self) -> Self {
        IFuture {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> IFuture<T> {
    /// Creates an unfulfilled future at the given priority.
    pub(crate) fn new(priority: Priority) -> Self {
        IFuture {
            inner: Arc::new(FutureInner {
                state: Mutex::new(None),
                ready: Condvar::new(),
                priority,
                created_at: Instant::now(),
                trace_key: AtomicU64::new(0),
            }),
        }
    }

    /// Tags the future with its backing task's trace key.  Called by the
    /// runtime before the handle is returned to the caller, so every
    /// `ftouch` through the handle sees the key.
    pub(crate) fn set_trace_key(&self, key: u64) {
        self.inner.trace_key.store(key, Ordering::Relaxed);
    }

    /// The backing task's trace key, if the future was created by a tracing
    /// runtime.
    pub(crate) fn trace_key(&self) -> Option<u64> {
        match self.inner.trace_key.load(Ordering::Relaxed) {
            0 => None,
            k => Some(k),
        }
    }

    /// The priority the task was created at.
    pub fn priority(&self) -> Priority {
        self.inner.priority
    }

    /// When the future was created (used for response-time accounting).
    pub fn created_at(&self) -> Instant {
        self.inner.created_at
    }

    /// Whether the task has completed.
    pub fn is_ready(&self) -> bool {
        self.inner.state.lock().is_some()
    }

    /// Creates a future that is not backed by a spawned task; the caller is
    /// responsible for fulfilling it exactly once with
    /// [`fulfill`](Self::fulfill).  Used for hand-rolled coordination
    /// patterns such as the email case study's print/compress slot.
    pub fn detached(priority: Priority) -> Self {
        Self::new(priority)
    }

    /// Fulfils a future created with [`detached`](Self::detached).
    ///
    /// Returns `false` (and leaves the existing value in place) if the future
    /// had already been fulfilled.
    pub fn fulfill(&self, value: T) -> bool {
        let mut guard = self.inner.state.lock();
        if guard.is_some() {
            return false;
        }
        *guard = Some(value);
        self.inner.ready.notify_all();
        true
    }

    /// Fulfils the future.  Called exactly once, by the task body wrapper.
    pub(crate) fn complete(&self, value: T) {
        let mut guard = self.inner.state.lock();
        debug_assert!(guard.is_none(), "a future is completed exactly once");
        *guard = Some(value);
        self.inner.ready.notify_all();
    }

    /// Blocks the calling thread until the value is available and clones it
    /// out.  Prefer [`crate::runtime::Runtime::ftouch`] from inside tasks —
    /// it helps execute other ready work instead of blocking a worker.
    pub fn wait_clone(&self) -> T
    where
        T: Clone,
    {
        let mut guard = self.inner.state.lock();
        while guard.is_none() {
            self.inner.ready.wait(&mut guard);
        }
        guard.as_ref().expect("just checked").clone()
    }

    /// Blocks with a timeout; returns `None` on timeout.
    pub fn wait_clone_timeout(&self, timeout: Duration) -> Option<T>
    where
        T: Clone,
    {
        let deadline = Instant::now() + timeout;
        let mut guard = self.inner.state.lock();
        while guard.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.inner.ready.wait_for(&mut guard, deadline - now);
        }
        Some(guard.as_ref().expect("just checked").clone())
    }

    /// Returns the value if already available, without blocking.
    pub fn try_get(&self) -> Option<T>
    where
        T: Clone,
    {
        self.inner.state.lock().clone()
    }
}

/// A future whose priority level is tracked in the type system.
///
/// Obtained from [`crate::runtime::Runtime::fcreate_typed`]; touching it via
/// [`crate::runtime::Runtime::ftouch_typed`] requires the touched level to
/// outrank (or equal) the toucher's level, so priority inversions do not
/// compile.
#[derive(Debug)]
pub struct TypedFuture<T, P: PriorityLevel> {
    future: IFuture<T>,
    _level: PhantomData<P>,
}

impl<T, P: PriorityLevel> Clone for TypedFuture<T, P> {
    fn clone(&self) -> Self {
        TypedFuture {
            future: self.future.clone(),
            _level: PhantomData,
        }
    }
}

impl<T, P: PriorityLevel> TypedFuture<T, P> {
    /// Wraps an untyped future.  The caller asserts that the future really
    /// was created at level `P` (the runtime's `fcreate_typed` is the only
    /// intended caller).
    pub(crate) fn wrap(future: IFuture<T>) -> Self {
        TypedFuture {
            future,
            _level: PhantomData,
        }
    }

    /// The untyped handle.
    pub fn untyped(&self) -> &IFuture<T> {
        &self.future
    }

    /// The compile-time level's index.
    pub fn level_index(&self) -> usize {
        P::INDEX
    }
}

/// A zero-sized witness that the holder is running at priority level `P`.
///
/// `ftouch_typed` takes the witness of the *calling* code's priority, so the
/// `OutranksOrEqual` bound relates the touched future's level to it.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityCtx<P: PriorityLevel> {
    _level: PhantomData<P>,
}

impl<P: PriorityLevel> PriorityCtx<P> {
    /// Creates the witness.  (There is nothing to check at runtime; the value
    /// only exists to carry `P` to touch sites.)
    pub fn new() -> Self {
        PriorityCtx {
            _level: PhantomData,
        }
    }

    /// The level's index.
    pub fn level_index(&self) -> usize {
        P::INDEX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_priority::PriorityDomain;
    use std::thread;

    fn prio() -> Priority {
        PriorityDomain::numeric(1).by_index(0)
    }

    #[test]
    fn complete_then_wait() {
        let f = IFuture::new(prio());
        assert!(!f.is_ready());
        assert_eq!(f.try_get(), None);
        f.complete(5);
        assert!(f.is_ready());
        assert_eq!(f.try_get(), Some(5));
        assert_eq!(f.wait_clone(), 5);
    }

    #[test]
    fn wait_across_threads() {
        let f: IFuture<String> = IFuture::new(prio());
        let g = f.clone();
        let h = thread::spawn(move || g.wait_clone());
        thread::sleep(Duration::from_millis(5));
        f.complete("done".to_string());
        assert_eq!(h.join().unwrap(), "done");
    }

    #[test]
    fn wait_timeout_expires() {
        let f: IFuture<u32> = IFuture::new(prio());
        assert_eq!(f.wait_clone_timeout(Duration::from_millis(5)), None);
        f.complete(1);
        assert_eq!(f.wait_clone_timeout(Duration::from_millis(5)), Some(1));
    }

    #[test]
    fn metadata_accessors() {
        let f: IFuture<u32> = IFuture::new(prio());
        assert_eq!(f.priority(), prio());
        assert!(f.created_at() <= Instant::now());
    }
}
