//! The two-level adaptive master scheduler (Section 4.3).
//!
//! Every scheduling quantum the master:
//!
//! 1. computes each priority level's *utilization* over the quantum —
//!    useful work performed divided by the capacity it was allotted;
//! 2. updates each level's *desire*: multiply by the growth parameter γ when
//!    utilization exceeded the threshold and the previous desire was
//!    satisfied, keep it when utilization was high but the desire was not
//!    met, and divide by γ otherwise;
//! 3. hands out cores in priority order, highest first, each level receiving
//!    `min(desire, remaining)` cores, and maps workers to levels
//!    accordingly (left-over cores go to the lowest level so they are never
//!    parked while work exists).

use crate::pool::SharedState;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunable parameters of the master scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MasterConfig {
    /// The scheduling quantum (the paper uses 500µs).
    pub quantum: Duration,
    /// The utilization threshold above which a level's desire grows
    /// (the paper uses 90%).
    pub utilization_threshold: f64,
    /// The multiplicative growth parameter γ (the paper uses 2).
    pub growth: f64,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            quantum: Duration::from_micros(500),
            utilization_threshold: 0.9,
            growth: 2.0,
        }
    }
}

/// One master re-evaluation: reads and resets the per-level busy counters,
/// updates desires, and recomputes allotments and the worker→level
/// assignment.  Extracted from the master loop so it can be unit-tested
/// without threads.
pub fn rebalance(shared: &SharedState, config: &MasterConfig) {
    let quantum_nanos = config.quantum.as_nanos().max(1) as f64;
    let num_levels = shared.levels.len();
    let num_workers = shared.num_workers;

    // Step 1 & 2: utilization and desire updates.
    for level in shared.levels.iter() {
        let busy = level.busy_nanos.swap(0, Ordering::Relaxed) as f64;
        let allotment = level.allotment.load(Ordering::Relaxed);
        let desire = level.desire.load(Ordering::Relaxed).max(1);
        let pending = level.pending.load(Ordering::Relaxed);
        let capacity = (allotment.max(1) as f64) * quantum_nanos;
        let utilization = (busy / capacity).min(1.0);
        let satisfied = allotment >= desire;
        let new_desire = if pending == 0 && busy == 0.0 {
            // Nothing queued and nothing ran: shrink toward one core.
            ((desire as f64) / config.growth).floor().max(1.0) as usize
        } else if utilization >= config.utilization_threshold && satisfied {
            (((desire as f64) * config.growth).ceil() as usize).min(num_workers)
        } else if utilization >= config.utilization_threshold {
            desire
        } else {
            ((desire as f64) / config.growth).floor().max(1.0) as usize
        };
        level.desire.store(new_desire, Ordering::Relaxed);
    }

    // Step 3: allot cores from the highest priority downward.
    let mut remaining = num_workers;
    let mut allotments = vec![0usize; num_levels];
    for level_ix in (0..num_levels).rev() {
        let desire = shared.levels[level_ix].desire.load(Ordering::Relaxed);
        let grant = desire.min(remaining);
        allotments[level_ix] = grant;
        remaining -= grant;
    }
    // Left-over cores go to the lowest level so no core idles by fiat.
    allotments[0] += remaining;
    for (level_ix, &a) in allotments.iter().enumerate() {
        shared.levels[level_ix]
            .allotment
            .store(a, Ordering::Relaxed);
    }

    // Map workers to levels: highest priority levels get the first workers.
    let mut worker = 0usize;
    for level_ix in (0..num_levels).rev() {
        for _ in 0..allotments[level_ix] {
            if worker < shared.assignment.len() {
                shared.assignment[worker].store(level_ix, Ordering::Relaxed);
                worker += 1;
            }
        }
    }
    while worker < shared.assignment.len() {
        shared.assignment[worker].store(0, Ordering::Relaxed);
        worker += 1;
    }
}

/// The master thread: rebalances every quantum until shutdown.
pub fn master_loop(shared: Arc<SharedState>, config: MasterConfig) {
    while !shared.is_shutting_down() {
        std::thread::sleep(config.quantum);
        rebalance(&shared, &config);
    }
}

/// Spawns the master scheduler thread.
pub fn spawn_master(shared: &Arc<SharedState>, config: MasterConfig) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name("icilk-master".to_string())
        .spawn(move || master_loop(shared, config))
        .expect("spawning the master thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{PoolKind, SharedState};
    use crate::priority::PrioritySet;

    fn shared(workers: usize) -> Arc<SharedState> {
        SharedState::new(
            PrioritySet::new(["lo", "mid", "hi"]),
            workers,
            PoolKind::Prioritized,
        )
    }

    #[test]
    fn high_priority_levels_get_cores_first() {
        let s = shared(4);
        let config = MasterConfig::default();
        // Pretend the high level was fully busy and wants more.
        s.levels[2].desire.store(3, Ordering::Relaxed);
        s.levels[2].allotment.store(3, Ordering::Relaxed);
        s.levels[2]
            .busy_nanos
            .store(3 * config.quantum.as_nanos() as u64, Ordering::Relaxed);
        s.levels[2].pending.store(5, Ordering::Relaxed);
        // The low level also wants everything.
        s.levels[0].desire.store(4, Ordering::Relaxed);
        s.levels[0].allotment.store(1, Ordering::Relaxed);
        s.levels[0]
            .busy_nanos
            .store(config.quantum.as_nanos() as u64, Ordering::Relaxed);
        s.levels[0].pending.store(5, Ordering::Relaxed);
        rebalance(&s, &config);
        let hi = s.levels[2].allotment.load(Ordering::Relaxed);
        let lo = s.levels[0].allotment.load(Ordering::Relaxed);
        assert!(hi >= 3, "high level keeps or grows its cores, got {hi}");
        assert!(hi + lo <= 4, "allotments never exceed the worker count");
        // Workers 0.. are assigned to the high level first.
        assert_eq!(s.assignment[0].load(Ordering::Relaxed), 2);
    }

    #[test]
    fn desire_grows_when_utilized_and_satisfied() {
        let s = shared(4);
        let config = MasterConfig::default();
        s.levels[1].desire.store(1, Ordering::Relaxed);
        s.levels[1].allotment.store(1, Ordering::Relaxed);
        s.levels[1]
            .busy_nanos
            .store(config.quantum.as_nanos() as u64, Ordering::Relaxed);
        s.levels[1].pending.store(3, Ordering::Relaxed);
        rebalance(&s, &config);
        assert_eq!(
            s.levels[1].desire.load(Ordering::Relaxed),
            2,
            "γ = 2 doubles"
        );
    }

    #[test]
    fn desire_shrinks_when_idle() {
        let s = shared(4);
        let config = MasterConfig::default();
        s.levels[2].desire.store(4, Ordering::Relaxed);
        s.levels[2].allotment.store(4, Ordering::Relaxed);
        // No busy time, nothing pending.
        rebalance(&s, &config);
        assert_eq!(s.levels[2].desire.load(Ordering::Relaxed), 2);
        rebalance(&s, &config);
        assert_eq!(s.levels[2].desire.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn leftover_cores_go_to_the_lowest_level() {
        let s = shared(8);
        let config = MasterConfig::default();
        // Every level wants one core; 8 − 3 = 5 left over.
        rebalance(&s, &config);
        let total: usize = (0..3)
            .map(|i| s.levels[i].allotment.load(Ordering::Relaxed))
            .sum();
        assert_eq!(total, 8, "all cores are assigned");
        assert!(s.levels[0].allotment.load(Ordering::Relaxed) >= 5);
    }

    #[test]
    fn desire_never_exceeds_worker_count_nor_drops_below_one() {
        let s = shared(2);
        let config = MasterConfig {
            growth: 4.0,
            ..MasterConfig::default()
        };
        s.levels[2].desire.store(2, Ordering::Relaxed);
        s.levels[2].allotment.store(2, Ordering::Relaxed);
        s.levels[2]
            .busy_nanos
            .store(2 * config.quantum.as_nanos() as u64, Ordering::Relaxed);
        s.levels[2].pending.store(1, Ordering::Relaxed);
        rebalance(&s, &config);
        assert!(s.levels[2].desire.load(Ordering::Relaxed) <= 2);
        for _ in 0..5 {
            rebalance(&s, &config);
        }
        for l in &s.levels {
            assert!(l.desire.load(Ordering::Relaxed) >= 1);
        }
    }
}
