//! The public I-Cilk runtime.

use crate::future::{IFuture, PriorityCtx, TypedFuture};
use crate::io_future::IoReactor;
use crate::master::{spawn_master, MasterConfig};
use crate::metrics::MetricsSnapshot;
use crate::pool::{PoolKind, SharedState, Task};
use crate::priority::{OutranksOrEqual, PriorityLevel, PrioritySet};
use crate::trace::{TaskScope, TraceBatch, TraceCollector, TraceStats};
use crate::worker::{execute_task, spawn_workers};
use rp_core::trace::ExecutionTrace;
use rp_priority::Priority;
use rp_sim::latency::LatencyModel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which scheduler the runtime uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The full I-Cilk scheduler: per-level pools plus the two-level adaptive
    /// master.
    ICilk,
    /// The priority-oblivious baseline standing in for Cilk-F: a single FIFO
    /// pool, no master.
    Baseline,
}

/// Configuration of a [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Number of priority levels (lowest = 0).
    pub levels: usize,
    /// Optional names for the levels, lowest first.
    pub level_names: Option<Vec<String>>,
    /// Scheduler flavour.
    pub scheduler: SchedulerKind,
    /// Master scheduler parameters (quantum, utilization threshold, γ).
    pub master: MasterConfig,
    /// Latency model for simulated I/O.
    pub io_latency: LatencyModel,
    /// Seed for the I/O latency sampler.
    pub io_seed: u64,
    /// Whether to record an execution trace (see [`crate::trace`]).
    pub tracing: bool,
    /// Per-shard event capacity of the trace collector (see
    /// [`crate::trace::DEFAULT_TRACE_CAPACITY`]).  Overflowing events are
    /// dropped and counted, never silently lost.
    pub trace_capacity: usize,
}

impl RuntimeConfig {
    /// A configuration with the given number of workers and priority levels,
    /// using the I-Cilk scheduler and the paper's default master parameters
    /// (500µs quantum, 90% utilization threshold, γ = 2).
    pub fn new(workers: usize, levels: usize) -> Self {
        RuntimeConfig {
            workers: workers.max(1),
            levels: levels.max(1),
            level_names: None,
            scheduler: SchedulerKind::ICilk,
            master: MasterConfig::default(),
            io_latency: LatencyModel::Uniform { lo: 200, hi: 2_000 },
            io_seed: 0xC11F,
            tracing: false,
            trace_capacity: crate::trace::DEFAULT_TRACE_CAPACITY,
        }
    }

    /// A configuration whose levels mirror a λ⁴ᵢ
    /// [`PriorityDomain`](rp_priority::PriorityDomain): one
    /// runtime level per domain level, named after it, ordered by a
    /// topological sort of the domain's `⪯` (lowest first).
    ///
    /// This is the compilation hook for language front ends: a partial
    /// order is linearised (the runtime's pools are totally ordered), which
    /// is a legal scheduling refinement — every `⪯` fact of the domain is
    /// preserved by the embedding.  The caller maps a domain handle to the
    /// runtime level via the topological position.
    pub fn for_domain(workers: usize, domain: &rp_priority::PriorityDomain) -> Self {
        let names: Vec<String> = domain
            .topo_sorted()
            .into_iter()
            .map(|p| domain.name(p).to_string())
            .collect();
        RuntimeConfig::new(workers, names.len()).with_level_names(names)
    }

    /// Names the priority levels, lowest first.
    ///
    /// # Panics
    ///
    /// Panics if the number of names differs from `levels`.
    pub fn with_level_names<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert_eq!(names.len(), self.levels, "one name per priority level");
        self.level_names = Some(names);
        self
    }

    /// Selects the scheduler flavour.
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Overrides the master scheduler parameters.
    pub fn with_master(mut self, master: MasterConfig) -> Self {
        self.master = master;
        self
    }

    /// Overrides the simulated I/O latency model.
    pub fn with_io_latency(mut self, model: LatencyModel, seed: u64) -> Self {
        self.io_latency = model;
        self.io_seed = seed;
        self
    }

    /// Enables or disables execution tracing.  Traced runtimes record every
    /// spawn, run span, steal, touch, and I/O event;
    /// [`Runtime::trace_snapshot`] returns the merged log.
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// Sets the per-shard event capacity of the trace collector (minimum 1).
    /// Post-hoc runs may want it large; drained streaming runs keep buffers
    /// small and can afford less.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity.max(1);
        self
    }
}

/// The I-Cilk runtime: a fixed set of workers, per-priority pools, the
/// adaptive master (unless running the baseline), and the simulated-I/O
/// reactor.
#[derive(Debug)]
pub struct Runtime {
    shared: Arc<SharedState>,
    reactor: IoReactor,
    workers: Vec<JoinHandle<()>>,
    master: Option<JoinHandle<()>>,
    started_at: Instant,
}

impl Runtime {
    /// Starts the runtime.
    ///
    /// # Example
    ///
    /// Two priority levels, background below interactive — the paper's
    /// motivating server shape:
    ///
    /// ```
    /// use rp_icilk::runtime::{Runtime, RuntimeConfig};
    ///
    /// let rt = Runtime::start(
    ///     RuntimeConfig::new(2, 2).with_level_names(["background", "interactive"]),
    /// );
    /// assert_eq!(rt.priorities().len(), 2);
    /// rt.shutdown();
    /// ```
    pub fn start(config: RuntimeConfig) -> Self {
        let priorities = match &config.level_names {
            Some(names) => PrioritySet::new(names.clone()),
            None => PrioritySet::numeric(config.levels),
        };
        let kind = match config.scheduler {
            SchedulerKind::ICilk => PoolKind::Prioritized,
            SchedulerKind::Baseline => PoolKind::Oblivious,
        };
        let trace = config.tracing.then(|| {
            let names = (0..priorities.len())
                .map(|i| priorities.domain().name(priorities.by_index(i)).to_string())
                .collect();
            Arc::new(TraceCollector::with_capacity(
                names,
                config.workers,
                config.trace_capacity,
            ))
        });
        let shared = SharedState::new_with_trace(priorities, config.workers, kind, trace);
        let workers = spawn_workers(&shared);
        let master = match config.scheduler {
            SchedulerKind::ICilk => Some(spawn_master(&shared, config.master)),
            SchedulerKind::Baseline => None,
        };
        let reactor = IoReactor::start(config.io_latency, config.io_seed);
        Runtime {
            shared,
            reactor,
            workers,
            master,
            started_at: Instant::now(),
        }
    }

    /// The runtime's priority levels.
    pub fn priorities(&self) -> &PrioritySet {
        &self.shared.priorities
    }

    /// Looks up a priority level by name.
    pub fn priority_by_name(&self, name: &str) -> Option<Priority> {
        self.shared.priorities.by_name(name)
    }

    /// The priority level with the given index (0 = lowest), or `None` when
    /// the index is out of range.
    pub fn priority_by_index(&self, index: usize) -> Option<Priority> {
        self.shared.priorities.get(index)
    }

    /// `fcreate`: spawns `body` as a task at `priority` and returns its
    /// future.
    ///
    /// # Example
    ///
    /// A background task publishes progress through shared state while an
    /// interactive request reads it and answers immediately — communication
    /// through mutable state, no touch of the low-priority future:
    ///
    /// ```
    /// use rp_icilk::runtime::{Runtime, RuntimeConfig};
    /// use std::sync::{Arc, Mutex};
    ///
    /// let rt = Runtime::start(
    ///     RuntimeConfig::new(2, 2).with_level_names(["background", "interactive"]),
    /// );
    /// let background = rt.priority_by_name("background").unwrap();
    /// let interactive = rt.priority_by_name("interactive").unwrap();
    ///
    /// let progress = Arc::new(Mutex::new(0u64));
    /// let progress_bg = Arc::clone(&progress);
    /// let _optimizer = rt.fcreate(background, move || {
    ///     *progress_bg.lock().unwrap() = 42;
    /// });
    /// let progress_fg = Arc::clone(&progress);
    /// let request = rt.fcreate(interactive, move || *progress_fg.lock().unwrap());
    /// // The request answers regardless of how far the optimizer got.
    /// let _seen = rt.ftouch_blocking(&request);
    ///
    /// // Touching the *background* future from interactive code would be a
    /// // priority inversion; the dynamically-checked API refuses it:
    /// let low = rt.fcreate(background, || 7);
    /// assert!(rt.try_ftouch(interactive, &low).is_err());
    /// assert_eq!(rt.try_ftouch(background, &low).unwrap(), 7);
    /// rt.shutdown();
    /// ```
    pub fn fcreate<T, F>(&self, priority: Priority, body: F) -> IFuture<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let future = IFuture::new(priority);
        let completion = future.clone();
        let level = priority.index();
        let run: Box<dyn FnOnce() + Send + 'static> = match &self.shared.trace {
            Some(tc) => {
                let key = tc.record_spawn(level);
                future.set_trace_key(key);
                let tc = Arc::clone(tc);
                Box::new(move || {
                    let scope = TaskScope::enter(&tc, key);
                    let value = body();
                    // End the run span before fulfilling the future, so
                    // every recorded touch of the value is timestamped after
                    // the task's end event.
                    drop(scope);
                    completion.complete(value);
                })
            }
            None => Box::new(move || completion.complete(body())),
        };
        let trace = future.trace_key();
        self.shared.push_task(Task {
            run,
            level,
            enqueued_at: Instant::now(),
            trace,
        });
        future
    }

    /// `fcreate` with a compile-time priority level: the returned
    /// [`TypedFuture`] can only be touched from code whose level it outranks
    /// or equals.
    pub fn fcreate_typed<T, P, F>(&self, body: F) -> TypedFuture<T, P>
    where
        T: Send + 'static,
        P: PriorityLevel,
        F: FnOnce() -> T + Send + 'static,
    {
        let priority = self
            .shared
            .priorities
            .by_index(P::INDEX.min(self.shared.priorities.len() - 1));
        TypedFuture::wrap(self.fcreate(priority, body))
    }

    /// `ftouch` from inside a task: waits for the future, executing other
    /// ready tasks while it is not yet available (so the worker never idles
    /// on a join — the analogue of proactive work stealing's non-blocking
    /// joins).
    ///
    /// # Example
    ///
    /// A fork–join inside a task: the outer task helps run other work while
    /// waiting on its child (threads outside the runtime use
    /// [`Runtime::ftouch_blocking`] instead):
    ///
    /// ```
    /// use rp_icilk::runtime::{Runtime, RuntimeConfig};
    /// use std::sync::Arc;
    ///
    /// let rt = Arc::new(Runtime::start(RuntimeConfig::new(2, 1)));
    /// let p = rt.priority_by_index(0).unwrap();
    /// let rt2 = Arc::clone(&rt);
    /// let outer = rt.fcreate(p, move || {
    ///     let inner = rt2.fcreate(p, || 21u64);
    ///     rt2.ftouch(&inner) * 2
    /// });
    /// assert_eq!(rt.ftouch_blocking(&outer), 42);
    /// // The task closure drops its clone of `rt` shortly after completing.
    /// let mut rt = rt;
    /// loop {
    ///     match Arc::try_unwrap(rt) {
    ///         Ok(owned) => break owned.shutdown(),
    ///         Err(shared) => {
    ///             rt = shared;
    ///             std::thread::sleep(std::time::Duration::from_millis(1));
    ///         }
    ///     }
    /// }
    /// ```
    pub fn ftouch<T: Clone + Send + 'static>(&self, future: &IFuture<T>) -> T {
        let value = loop {
            if let Some(v) = future.try_get() {
                break v;
            }
            // Help: run someone else's task, preferring the highest levels.
            let top = self.shared.priorities.len() - 1;
            match self.shared.pop_task(top) {
                Some(task) => execute_task(&self.shared, task),
                None => {
                    if let Some(v) = future.wait_clone_timeout(Duration::from_micros(200)) {
                        break v;
                    }
                }
            }
        };
        self.record_touch(future);
        value
    }

    /// `ftouch` with the compile-time priority-inversion check: only
    /// compiles when the touched level outranks or equals the toucher's
    /// level (`Touched: OutranksOrEqual<Toucher>`), the Rust rendering of the
    /// paper's `static_assert(is_base_of<...>)`.
    pub fn ftouch_typed<T, Touched, Toucher>(
        &self,
        _at: PriorityCtx<Toucher>,
        future: &TypedFuture<T, Touched>,
    ) -> T
    where
        T: Clone + Send + 'static,
        Toucher: PriorityLevel,
        Touched: OutranksOrEqual<Toucher>,
    {
        self.ftouch(future.untyped())
    }

    /// Runtime-checked `ftouch`: returns an error instead of touching when
    /// the touch would invert priorities.  This is the dynamically-checked
    /// fallback for call sites where the priority is not statically known.
    pub fn try_ftouch<T: Clone + Send + 'static>(
        &self,
        at: Priority,
        future: &IFuture<T>,
    ) -> Result<T, PriorityInversion> {
        if !self.shared.priorities.touch_allowed(at, future.priority()) {
            return Err(PriorityInversion {
                toucher: at,
                touched: future.priority(),
            });
        }
        Ok(self.ftouch(future))
    }

    /// Blocking `ftouch` for threads outside the runtime (e.g. the test
    /// driver): parks the calling thread until the value is ready.
    pub fn ftouch_blocking<T: Clone + Send + 'static>(&self, future: &IFuture<T>) -> T {
        let value = future.wait_clone();
        self.record_touch(future);
        value
    }

    /// Records an `ftouch` event when tracing is on and the future belongs
    /// to a traced task.
    fn record_touch<T>(&self, future: &IFuture<T>) {
        if let (Some(tc), Some(key)) = (&self.shared.trace, future.trace_key()) {
            tc.record_touch(key);
        }
    }

    /// Starts a simulated I/O operation (`cilk_read` / `cilk_write`): the
    /// payload is produced after a latency drawn from the configured model,
    /// without occupying any worker.
    pub fn submit_io<T, F>(&self, priority: Priority, produce: F) -> IFuture<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let latency = self.reactor.sample_latency();
        self.submit_io_with_latency(priority, latency, produce)
    }

    /// Starts a simulated I/O operation with an explicit latency.
    pub fn submit_io_with_latency<T, F>(
        &self,
        priority: Priority,
        latency: Duration,
        produce: F,
    ) -> IFuture<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        match &self.shared.trace {
            Some(tc) => {
                let key = tc.record_io_submit(priority.index());
                let tc = Arc::clone(tc);
                let future = self.reactor.submit(priority, latency, move || {
                    let value = produce();
                    // Recorded before the future is fulfilled, so touches of
                    // the payload are timestamped after the completion.
                    tc.record_io_complete(key);
                    value
                });
                future.set_trace_key(key);
                future
            }
            None => self.reactor.submit(priority, latency, produce),
        }
    }

    /// Starts an I/O operation that the reactor performs **as soon as
    /// possible** (zero simulated latency): `produce` runs on the reactor
    /// thread, not on a worker, and its cost is whatever the real side
    /// effect costs.
    ///
    /// This is the hook for *real* I/O back ends: `rp_net` fulfils network
    /// responses through it, so the socket write happens off the workers and
    /// a traced run reconstructs the round-trip as an I/O thread in the cost
    /// DAG (exactly like the simulated `cilk_read` / `cilk_write` paths).
    ///
    /// Keep `produce` short — the reactor is a single thread, so a slow
    /// completion delays every other pending I/O behind it.
    pub fn submit_io_now<T, F>(&self, priority: Priority, produce: F) -> IFuture<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.submit_io_with_latency(priority, Duration::ZERO, produce)
    }

    /// A snapshot of the per-level response/compute statistics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// A snapshot of the execution trace, or `None` when the runtime was
    /// started without tracing.  Take it after [`Runtime::drain`] so every
    /// spawned task has completed and reconstruction skips nothing.
    pub fn trace_snapshot(&self) -> Option<ExecutionTrace> {
        self.shared.trace.as_ref().map(|tc| tc.snapshot())
    }

    /// Drains the trace buffers, returning only the events recorded since
    /// the previous drain, or `None` when the runtime was started without
    /// tracing.  This is the streaming counterpart of
    /// [`Runtime::trace_snapshot`]: each call is O(new events) and frees the
    /// buffer space it consumed, so a long-running service can trace forever
    /// in bounded memory.  Don't mix the two styles on one run — a snapshot
    /// taken after a drain only sees the not yet drained remainder.
    pub fn drain_trace_events(&self) -> Option<TraceBatch> {
        self.shared.trace.as_ref().map(|tc| tc.drain())
    }

    /// The trace collector's cumulative counters (recorded / drained /
    /// dropped / buffered), or `None` when tracing is off.
    pub fn trace_stats(&self) -> Option<TraceStats> {
        self.shared.trace.as_ref().map(|tc| tc.stats())
    }

    /// The traced runtime's `(level names, worker count)` — what a streaming
    /// consumer needs to configure its reconstructor without snapshotting
    /// the event buffers.  `None` when tracing is off.
    pub fn trace_topology(&self) -> Option<(Vec<String>, usize)> {
        self.shared
            .trace
            .as_ref()
            .map(|tc| (tc.level_names().to_vec(), tc.num_workers()))
    }

    /// Time since the runtime started.
    pub fn uptime(&self) -> Duration {
        self.started_at.elapsed()
    }

    /// Waits (bounded by `timeout`) until no tasks are pending **and** no
    /// simulated-I/O operations are still in flight.  Returns whether the
    /// runtime drained in time.
    ///
    /// I/O futures never occupy a worker, so they are not counted by the
    /// per-level pending counters; draining used to ignore them and could
    /// report an empty runtime while submitted operations were still waiting
    /// on the reactor — see the `drain_waits_for_in_flight_io` regression
    /// test.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.shared.any_pending() || self.reactor.pending_ops() > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        true
    }

    /// Shuts the runtime down, joining all of its threads.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shared.request_shutdown();
        self.reactor.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.master.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        if !self.shared.is_shutting_down() {
            self.shutdown_in_place();
        }
    }
}

/// The error returned by [`Runtime::try_ftouch`] when the touch would invert
/// priorities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriorityInversion {
    /// The priority of the code performing the touch.
    pub toucher: Priority,
    /// The (lower) priority of the touched future.
    pub touched: Priority,
}

impl std::fmt::Display for PriorityInversion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "priority inversion: code at {} may not ftouch a future at {}",
            self.toucher, self.touched
        )
    }
}

impl std::error::Error for PriorityInversion {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::define_priorities;
    use crate::future::PriorityCtx;

    define_priorities!(Bg, Ui);

    fn runtime(kind: SchedulerKind) -> Runtime {
        Runtime::start(
            RuntimeConfig::new(2, 2)
                .with_level_names(["bg", "ui"])
                .with_scheduler(kind)
                .with_io_latency(LatencyModel::Constant { micros: 500 }, 1),
        )
    }

    #[test]
    fn fcreate_and_ftouch_roundtrip() {
        let rt = runtime(SchedulerKind::ICilk);
        let ui = rt.priority_by_name("ui").unwrap();
        let f = rt.fcreate(ui, || (1..=10).sum::<u64>());
        assert_eq!(rt.ftouch_blocking(&f), 55);
        rt.shutdown();
    }

    #[test]
    fn nested_spawns_and_helping_touch() {
        let rt = Arc::new(runtime(SchedulerKind::ICilk));
        let ui = rt.priority_by_name("ui").unwrap();
        let rt2 = Arc::clone(&rt);
        let outer = rt.fcreate(ui, move || {
            let inner = rt2.fcreate(ui, || 21u64);
            rt2.ftouch(&inner) * 2
        });
        assert_eq!(rt.ftouch_blocking(&outer), 42);
        Arc::try_unwrap(rt).expect("sole owner").shutdown();
    }

    #[test]
    fn typed_api_compiles_for_legal_touches() {
        let rt = runtime(SchedulerKind::ICilk);
        let f: TypedFuture<u32, Ui> = rt.fcreate_typed(|| 7);
        // Background code touching UI work is allowed (Ui outranks Bg)...
        let v = rt.ftouch_typed(PriorityCtx::<Bg>::new(), &f);
        assert_eq!(v, 7);
        // ...and UI touching UI is allowed too.
        let g: TypedFuture<u32, Ui> = rt.fcreate_typed(|| 9);
        assert_eq!(rt.ftouch_typed(PriorityCtx::<Ui>::new(), &g), 9);
        // `rt.ftouch_typed(PriorityCtx::<Ui>::new(), &bg_future)` would be a
        // compile error — the inversion the type system prevents.
        rt.shutdown();
    }

    #[test]
    fn dynamic_priority_check_rejects_inversion() {
        let rt = runtime(SchedulerKind::ICilk);
        let bg = rt.priority_by_name("bg").unwrap();
        let ui = rt.priority_by_name("ui").unwrap();
        let low = rt.fcreate(bg, || 1u32);
        let err = rt.try_ftouch(ui, &low).unwrap_err();
        assert_eq!(err.toucher, ui);
        assert!(err.to_string().contains("priority inversion"));
        // The legal direction succeeds.
        let hi = rt.fcreate(ui, || 2u32);
        assert_eq!(rt.try_ftouch(bg, &hi).unwrap(), 2);
        rt.shutdown();
    }

    #[test]
    fn io_futures_do_not_occupy_workers() {
        let rt = runtime(SchedulerKind::ICilk);
        let ui = rt.priority_by_name("ui").unwrap();
        // Start an I/O with a long latency, then immediately get CPU work
        // done: the workers are not blocked by the in-flight I/O.
        let io = rt.submit_io_with_latency(ui, Duration::from_millis(50), || 99u64);
        let cpu = rt.fcreate(ui, || 123u64);
        let started = Instant::now();
        assert_eq!(rt.ftouch_blocking(&cpu), 123);
        assert!(started.elapsed() < Duration::from_millis(40));
        assert_eq!(rt.ftouch_blocking(&io), 99);
        rt.shutdown();
    }

    #[test]
    fn metrics_accumulate_per_level() {
        let rt = runtime(SchedulerKind::ICilk);
        let bg = rt.priority_by_name("bg").unwrap();
        let ui = rt.priority_by_name("ui").unwrap();
        let fs: Vec<_> = (0..8)
            .map(|i| {
                let p = if i % 2 == 0 { bg } else { ui };
                rt.fcreate(p, move || i)
            })
            .collect();
        for f in &fs {
            let _ = rt.ftouch_blocking(f);
        }
        assert!(rt.drain(Duration::from_secs(2)));
        let m = rt.metrics();
        assert_eq!(m.total_completed(), 8);
        assert_eq!(m.completed, vec![4, 4]);
        assert!(m.mean_response_micros(1).is_some());
        rt.shutdown();
    }

    /// Regression test: `priority_by_index` used to panic on an
    /// out-of-range index; it now returns `None`.
    #[test]
    fn priority_by_index_is_checked() {
        let rt = runtime(SchedulerKind::ICilk);
        assert_eq!(rt.priority_by_index(0), rt.priority_by_name("bg"));
        assert_eq!(rt.priority_by_index(1), rt.priority_by_name("ui"));
        assert_eq!(rt.priority_by_index(2), None);
        assert_eq!(rt.priority_by_index(usize::MAX), None);
        rt.shutdown();
    }

    /// `submit_io_now` completes promptly, off the workers, and is visible
    /// to `drain` like any other I/O.
    #[test]
    fn submit_io_now_completes_promptly_on_the_reactor() {
        let rt = runtime(SchedulerKind::ICilk);
        let ui = rt.priority_by_name("ui").unwrap();
        let ran_on = Arc::new(parking_lot::Mutex::new(String::new()));
        let ran_on2 = Arc::clone(&ran_on);
        let started = Instant::now();
        let f = rt.submit_io_now(ui, move || {
            *ran_on2.lock() = std::thread::current().name().unwrap_or("?").to_string();
            17u32
        });
        assert_eq!(rt.ftouch_blocking(&f), 17);
        assert!(
            started.elapsed() < Duration::from_millis(100),
            "zero-latency I/O took {:?}",
            started.elapsed()
        );
        assert_eq!(&*ran_on.lock(), "icilk-io-reactor");
        assert!(rt.drain(Duration::from_secs(2)));
        rt.shutdown();
    }

    /// Regression test: I/O futures never occupy a worker, so `drain` used
    /// to ignore them entirely — it returned `true` immediately while a
    /// just-submitted operation was still waiting on the reactor.  A
    /// successful drain must now imply every submitted I/O has completed.
    #[test]
    fn drain_waits_for_in_flight_io() {
        let rt = runtime(SchedulerKind::ICilk);
        let ui = rt.priority_by_name("ui").unwrap();
        let io = rt.submit_io_with_latency(ui, Duration::from_millis(50), || 5u32);
        let started = Instant::now();
        assert!(rt.drain(Duration::from_secs(5)), "drain must finish");
        assert!(
            io.is_ready(),
            "a drained runtime has no I/O still in flight"
        );
        assert!(
            started.elapsed() >= Duration::from_millis(45),
            "drain returned in {:?}, before the 50 ms I/O completed",
            started.elapsed()
        );
        rt.shutdown();
    }

    /// Tracing end-to-end: a traced runtime's snapshot reconstructs into a
    /// well-formed cost graph whose bound reports carry no counterexample.
    #[test]
    fn traced_runtime_reconstructs_cost_dag() {
        let rt = Arc::new(Runtime::start(
            RuntimeConfig::new(1, 2)
                .with_level_names(["bg", "ui"])
                .with_tracing(true)
                .with_io_latency(LatencyModel::Constant { micros: 300 }, 9),
        ));
        let ui = rt.priority_by_name("ui").unwrap();
        let rt2 = Arc::clone(&rt);
        let outer = rt.fcreate(ui, move || {
            let inner = rt2.fcreate(ui, || 2u64);
            let io = rt2.submit_io(ui, || 3u64);
            rt2.ftouch(&inner) + rt2.ftouch(&io)
        });
        assert_eq!(rt.ftouch_blocking(&outer), 5);
        assert!(rt.drain(Duration::from_secs(5)));
        let trace = rt.trace_snapshot().expect("tracing was enabled");
        assert!(!trace.events.is_empty());
        assert_eq!(trace.level_names, vec!["bg".to_string(), "ui".to_string()]);
        let run = trace.reconstruct().expect("trace reconstructs");
        // outer + inner + the I/O future.
        assert_eq!(run.dag.thread_count(), 3);
        assert_eq!(run.skipped, 0);
        assert!(rp_core::wellformed::check_well_formed(&run.dag).is_ok());
        run.schedule
            .validate(&run.dag)
            .expect("observed schedule valid");
        assert!(run.schedule.is_admissible(&run.dag));
        for report in run.check_observed() {
            assert!(!report.report.is_counterexample(), "{report:?}");
        }
        // An untraced runtime has no snapshot.
        let plain = runtime(SchedulerKind::ICilk);
        assert!(plain.trace_snapshot().is_none());
        plain.shutdown();
        // Task closures drop their runtime handles shortly after the drain;
        // wait to be the sole owner before shutting down.
        let mut rt = rt;
        loop {
            match Arc::try_unwrap(rt) {
                Ok(owned) => {
                    owned.shutdown();
                    break;
                }
                Err(shared) => {
                    rt = shared;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }

    #[test]
    fn baseline_scheduler_also_completes_work() {
        let rt = runtime(SchedulerKind::Baseline);
        let ui = rt.priority_by_name("ui").unwrap();
        let bg = rt.priority_by_name("bg").unwrap();
        let a = rt.fcreate(bg, || 3u64);
        let b = rt.fcreate(ui, || 4u64);
        assert_eq!(rt.ftouch_blocking(&a) + rt.ftouch_blocking(&b), 7);
        assert!(rt.uptime() > Duration::ZERO);
        rt.shutdown();
    }
}
