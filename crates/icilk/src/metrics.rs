//! Per-priority-level task metrics.
//!
//! The evaluation (Section 5.2) reports, per priority level, the *response
//! time* (request sent → handled) and the *compute time* (task start →
//! finish), as averages and 95th percentiles.  [`MetricsCollector`] gathers
//! both for every task the runtime executes.

use parking_lot::Mutex;
use rp_sim::stats::LatencyStats;
use std::time::Duration;

/// Thread-safe collector of per-level task statistics.
#[derive(Debug)]
pub struct MetricsCollector {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    response: Vec<LatencyStats>,
    compute: Vec<LatencyStats>,
    completed: Vec<u64>,
}

/// An immutable snapshot of the collected statistics.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Response time (creation → completion) per level, lowest level first.
    pub response: Vec<LatencyStats>,
    /// Compute time (start → completion) per level, lowest level first.
    pub compute: Vec<LatencyStats>,
    /// Number of completed tasks per level.
    pub completed: Vec<u64>,
}

impl MetricsSnapshot {
    /// Mean response time in microseconds for a level, if any task completed.
    pub fn mean_response_micros(&self, level: usize) -> Option<f64> {
        self.response.get(level).and_then(|s| s.mean_micros())
    }

    /// 95th-percentile response time in microseconds for a level.
    pub fn p95_response_micros(&self, level: usize) -> Option<f64> {
        self.response.get(level).and_then(|s| s.p95_micros())
    }

    /// Mean compute time in microseconds for a level.
    pub fn mean_compute_micros(&self, level: usize) -> Option<f64> {
        self.compute.get(level).and_then(|s| s.mean_micros())
    }

    /// 95th-percentile compute time in microseconds for a level.
    pub fn p95_compute_micros(&self, level: usize) -> Option<f64> {
        self.compute.get(level).and_then(|s| s.p95_micros())
    }

    /// Total tasks completed across all levels.
    pub fn total_completed(&self) -> u64 {
        self.completed.iter().sum()
    }
}

impl MetricsCollector {
    /// A collector for `levels` priority levels.
    pub fn new(levels: usize) -> Self {
        MetricsCollector {
            inner: Mutex::new(Inner {
                response: vec![LatencyStats::new(); levels],
                compute: vec![LatencyStats::new(); levels],
                completed: vec![0; levels],
            }),
        }
    }

    /// Records one completed task at the given level.
    pub fn record_task(&self, level: usize, response: Duration, compute: Duration) {
        let mut inner = self.inner.lock();
        if level < inner.response.len() {
            inner.response[level].record(response);
            inner.compute[level].record(compute);
            inner.completed[level] += 1;
        }
    }

    /// Takes a snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            response: inner.response.clone(),
            compute: inner.compute.clone(),
            completed: inner.completed.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_level() {
        let m = MetricsCollector::new(2);
        m.record_task(0, Duration::from_micros(100), Duration::from_micros(40));
        m.record_task(1, Duration::from_micros(10), Duration::from_micros(5));
        m.record_task(1, Duration::from_micros(30), Duration::from_micros(15));
        let snap = m.snapshot();
        assert_eq!(snap.completed, vec![1, 2]);
        assert_eq!(snap.total_completed(), 3);
        assert!((snap.mean_response_micros(0).unwrap() - 100.0).abs() < 1.0);
        assert!((snap.mean_response_micros(1).unwrap() - 20.0).abs() < 1.0);
        assert!((snap.mean_compute_micros(1).unwrap() - 10.0).abs() < 1.0);
        assert!(snap.p95_response_micros(1).unwrap() >= 29.0);
        assert!(snap.p95_compute_micros(0).is_some());
    }

    #[test]
    fn out_of_range_level_is_ignored() {
        let m = MetricsCollector::new(1);
        m.record_task(7, Duration::from_micros(1), Duration::from_micros(1));
        assert_eq!(m.snapshot().total_completed(), 0);
    }

    #[test]
    fn empty_levels_report_none() {
        let m = MetricsCollector::new(2);
        let snap = m.snapshot();
        assert!(snap.mean_response_micros(0).is_none());
        assert!(snap.p95_response_micros(1).is_none());
    }
}
