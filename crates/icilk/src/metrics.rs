//! Per-priority-level task metrics.
//!
//! The evaluation (Section 5.2) reports, per priority level, the *response
//! time* (request sent → handled) and the *compute time* (task start →
//! finish), as averages and 95th percentiles.  [`MetricsCollector`] gathers
//! both for every task the runtime executes.
//!
//! # Sharding
//!
//! Every task completion on every worker goes through
//! [`MetricsCollector::record_task`], so under an open-loop flood this is a
//! hot path.  The collector therefore keeps one shard per recording thread
//! (threads are assigned to shards round-robin on first use): a worker only
//! ever locks its own shard, which is uncontended in the common case of at
//! most [`DEFAULT_SHARDS`] recording threads.  Shards are merged only when
//! [`MetricsCollector::snapshot`] is called — a cheap bucket-wise histogram
//! addition thanks to the fixed-size [`LatencyStats`] backing.  The previous
//! single-global-mutex implementation is retained as
//! [`reference::MutexMetricsCollector`] so benchmarks can quantify the win.

use parking_lot::Mutex;
use rp_sim::stats::LatencyStats;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Default number of metrics shards; recording threads beyond this many
/// share shards (round-robin), trading a little contention for fixed memory.
pub const DEFAULT_SHARDS: usize = 16;

/// A process-wide ordinal for each recording thread, assigned on the
/// thread's first record and reused for every collector: thread → shard
/// assignment stays stable and contention-free without per-collector
/// registration.
static NEXT_THREAD_ORDINAL: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_ORDINAL: Cell<usize> = const { Cell::new(usize::MAX) };
}

pub(crate) fn thread_ordinal() -> usize {
    THREAD_ORDINAL.with(|slot| {
        let mut ord = slot.get();
        if ord == usize::MAX {
            ord = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
            slot.set(ord);
        }
        ord
    })
}

#[derive(Debug, Default)]
struct Inner {
    response: Vec<LatencyStats>,
    compute: Vec<LatencyStats>,
    completed: Vec<u64>,
}

impl Inner {
    fn new(levels: usize) -> Self {
        Inner {
            response: vec![LatencyStats::new(); levels],
            compute: vec![LatencyStats::new(); levels],
            completed: vec![0; levels],
        }
    }

    fn record(&mut self, level: usize, response: Duration, compute: Duration) {
        if level < self.response.len() {
            self.response[level].record(response);
            self.compute[level].record(compute);
            self.completed[level] += 1;
        }
    }
}

/// One metrics shard, padded to its own cache lines so concurrent workers
/// recording into adjacent shards never false-share a line.
#[derive(Debug)]
#[repr(align(128))]
struct Shard(Mutex<Inner>);

/// Thread-safe collector of per-level task statistics, sharded per
/// recording thread (see the module docs).
#[derive(Debug)]
pub struct MetricsCollector {
    shards: Vec<Shard>,
    /// `shards.len() - 1`; the shard count is a power of two so shard
    /// selection is a mask, not a division, on the hot path.
    shard_mask: usize,
    levels: usize,
}

/// An immutable snapshot of the collected statistics.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Response time (creation → completion) per level, lowest level first.
    pub response: Vec<LatencyStats>,
    /// Compute time (start → completion) per level, lowest level first.
    pub compute: Vec<LatencyStats>,
    /// Number of completed tasks per level.
    pub completed: Vec<u64>,
}

impl MetricsSnapshot {
    /// Mean response time in microseconds for a level, if any task completed.
    pub fn mean_response_micros(&self, level: usize) -> Option<f64> {
        self.response.get(level).and_then(|s| s.mean_micros())
    }

    /// 95th-percentile response time in microseconds for a level.
    pub fn p95_response_micros(&self, level: usize) -> Option<f64> {
        self.response.get(level).and_then(|s| s.p95_micros())
    }

    /// Mean compute time in microseconds for a level.
    pub fn mean_compute_micros(&self, level: usize) -> Option<f64> {
        self.compute.get(level).and_then(|s| s.mean_micros())
    }

    /// 95th-percentile compute time in microseconds for a level.
    pub fn p95_compute_micros(&self, level: usize) -> Option<f64> {
        self.compute.get(level).and_then(|s| s.p95_micros())
    }

    /// Total tasks completed across all levels.
    pub fn total_completed(&self) -> u64 {
        self.completed.iter().sum()
    }
}

impl MetricsCollector {
    /// A collector for `levels` priority levels with [`DEFAULT_SHARDS`]
    /// shards.
    pub fn new(levels: usize) -> Self {
        Self::with_shards(levels, DEFAULT_SHARDS)
    }

    /// A collector with an explicit shard count (≥ 1; rounded up to the
    /// next power of two so shard selection stays a mask).
    pub fn with_shards(levels: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        MetricsCollector {
            shards: (0..shards)
                .map(|_| Shard(Mutex::new(Inner::new(levels))))
                .collect(),
            shard_mask: shards - 1,
            levels,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Records one completed task at the given level.
    ///
    /// Hot path: locks only the calling thread's shard, so concurrent
    /// workers never contend with each other (up to the shard count).
    pub fn record_task(&self, level: usize, response: Duration, compute: Duration) {
        let shard = &self.shards[thread_ordinal() & self.shard_mask];
        shard.0.lock().record(level, response, compute);
    }

    /// Takes a snapshot of everything recorded so far, merging the shards.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut merged = Inner::new(self.levels);
        for shard in &self.shards {
            let inner = shard.0.lock();
            for level in 0..self.levels {
                merged.response[level].merge(&inner.response[level]);
                merged.compute[level].merge(&inner.compute[level]);
                merged.completed[level] += inner.completed[level];
            }
        }
        MetricsSnapshot {
            response: merged.response,
            compute: merged.compute,
            completed: merged.completed,
        }
    }
}

/// The pre-sharding implementation, retained as the benchmark baseline.
pub mod reference {
    use super::{Inner, MetricsSnapshot};
    use parking_lot::Mutex;
    use std::time::Duration;

    /// The original collector: one global mutex on the task-completion hot
    /// path.  Kept so `bench_server` / the `metrics` bench can measure the
    /// sharded path against it; not used by the runtime.
    #[derive(Debug)]
    pub struct MutexMetricsCollector {
        inner: Mutex<Inner>,
    }

    impl MutexMetricsCollector {
        /// A collector for `levels` priority levels.
        pub fn new(levels: usize) -> Self {
            MutexMetricsCollector {
                inner: Mutex::new(Inner::new(levels)),
            }
        }

        /// Records one completed task at the given level (all threads
        /// funnel through the one mutex).
        pub fn record_task(&self, level: usize, response: Duration, compute: Duration) {
            self.inner.lock().record(level, response, compute);
        }

        /// Takes a snapshot of everything recorded so far.
        pub fn snapshot(&self) -> MetricsSnapshot {
            let inner = self.inner.lock();
            MetricsSnapshot {
                response: inner.response.clone(),
                compute: inner.compute.clone(),
                completed: inner.completed.clone(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_per_level() {
        let m = MetricsCollector::new(2);
        m.record_task(0, Duration::from_micros(100), Duration::from_micros(40));
        m.record_task(1, Duration::from_micros(10), Duration::from_micros(5));
        m.record_task(1, Duration::from_micros(30), Duration::from_micros(15));
        let snap = m.snapshot();
        assert_eq!(snap.completed, vec![1, 2]);
        assert_eq!(snap.total_completed(), 3);
        assert!((snap.mean_response_micros(0).unwrap() - 100.0).abs() < 1.0);
        assert!((snap.mean_response_micros(1).unwrap() - 20.0).abs() < 1.0);
        assert!((snap.mean_compute_micros(1).unwrap() - 10.0).abs() < 1.0);
        assert!(snap.p95_response_micros(1).unwrap() >= 29.0);
        assert!(snap.p95_compute_micros(0).is_some());
    }

    #[test]
    fn out_of_range_level_is_ignored() {
        let m = MetricsCollector::new(1);
        m.record_task(7, Duration::from_micros(1), Duration::from_micros(1));
        assert_eq!(m.snapshot().total_completed(), 0);
    }

    #[test]
    fn empty_levels_report_none() {
        let m = MetricsCollector::new(2);
        let snap = m.snapshot();
        assert!(snap.mean_response_micros(0).is_none());
        assert!(snap.p95_response_micros(1).is_none());
    }

    #[test]
    fn snapshot_merges_records_from_many_threads() {
        let m = Arc::new(MetricsCollector::with_shards(3, 4));
        let per_thread = 500usize;
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let level = (t + i) % 3;
                        m.record_task(
                            level,
                            Duration::from_micros(100 + i as u64),
                            Duration::from_micros(50),
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = m.snapshot();
        assert_eq!(snap.total_completed(), 8 * per_thread as u64);
        for level in 0..3 {
            assert!(snap.completed[level] > 0);
            assert!(snap.mean_response_micros(level).is_some());
        }
    }

    #[test]
    fn sharded_and_reference_agree_on_totals() {
        let sharded = MetricsCollector::new(2);
        let mutexed = reference::MutexMetricsCollector::new(2);
        for i in 0..100u64 {
            let (r, c) = (Duration::from_micros(i + 1), Duration::from_micros(i / 2));
            sharded.record_task((i % 2) as usize, r, c);
            mutexed.record_task((i % 2) as usize, r, c);
        }
        let a = sharded.snapshot();
        let b = mutexed.snapshot();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_response_micros(0), b.mean_response_micros(0));
        assert_eq!(a.p95_response_micros(1), b.p95_response_micros(1));
    }

    #[test]
    fn single_shard_still_works() {
        let m = MetricsCollector::with_shards(1, 1);
        assert_eq!(m.shard_count(), 1);
        m.record_task(0, Duration::from_micros(5), Duration::from_micros(5));
        assert_eq!(m.snapshot().total_completed(), 1);
    }
}
