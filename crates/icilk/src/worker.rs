//! Worker threads.
//!
//! Each worker repeatedly asks the shared state for a task — preferring its
//! master-assigned priority level — executes it, and records its compute and
//! response times.  When no work is available the worker sleeps briefly
//! (an idle tick), which the master observes as low utilization.

use crate::pool::SharedState;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long an idle worker sleeps before re-checking for work.
pub const IDLE_SLEEP: Duration = Duration::from_micros(100);

/// Runs one task to completion, recording metrics and counters.
///
/// Shared by the worker loop and by `ftouch`'s helping path, so that a task
/// executed while waiting is accounted identically.
pub fn execute_task(shared: &SharedState, task: crate::pool::Task) {
    let level = task.level;
    let started = Instant::now();
    (task.run)();
    let finished = Instant::now();
    let compute = finished - started;
    let response = finished - task.enqueued_at;
    shared.record_busy(level, compute.as_nanos() as u64);
    shared.metrics.record_task(level, response, compute);
    shared.task_finished(level);
}

/// The body of a worker thread.
///
/// The worker claims its private work-stealing deque on entry; spawns it
/// performs at its assigned level then bypass the shared injectors entirely
/// (see [`SharedState::push_task`]).  On exit the deque's remaining tasks
/// flow back to the injectors.
pub fn worker_loop(shared: Arc<SharedState>, worker_id: usize) {
    /// Drains the worker's deque back to the injectors even when a task
    /// panics and unwinds the loop — queued tasks must survive a dying
    /// worker, as they did when they lived in the shared injectors.
    struct DequeGuard<'a>(&'a SharedState);
    impl Drop for DequeGuard<'_> {
        fn drop(&mut self) {
            self.0.unregister_current_worker();
        }
    }

    shared.register_current_worker(worker_id);
    let _guard = DequeGuard(&shared);
    while !shared.is_shutting_down() {
        match shared.pop_for_worker(worker_id) {
            Some(task) => execute_task(&shared, task),
            None => std::thread::sleep(IDLE_SLEEP),
        }
    }
}

/// Spawns the worker threads.
pub fn spawn_workers(shared: &Arc<SharedState>) -> Vec<JoinHandle<()>> {
    (0..shared.num_workers)
        .map(|id| {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("icilk-worker-{id}"))
                .spawn(move || worker_loop(shared, id))
                .expect("spawning a worker thread")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{PoolKind, Task};
    use crate::priority::PrioritySet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn execute_task_records_metrics_and_counters() {
        let shared = SharedState::new(PrioritySet::new(["lo", "hi"]), 1, PoolKind::Prioritized);
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = ran.clone();
        let task = Task {
            run: Box::new(move || {
                ran2.fetch_add(1, Ordering::SeqCst);
            }),
            level: 1,
            enqueued_at: Instant::now(),
            trace: None,
        };
        shared.push_task(task);
        let t = shared.pop_task(1).unwrap();
        execute_task(&shared, t);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        let snap = shared.metrics.snapshot();
        assert_eq!(snap.completed, vec![0, 1]);
        assert!(!shared.any_pending());
    }

    #[test]
    fn workers_drain_the_queue_and_shut_down() {
        let shared = SharedState::new(PrioritySet::new(["only"]), 2, PoolKind::Prioritized);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let c = counter.clone();
            shared.push_task(Task {
                run: Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }),
                level: 0,
                enqueued_at: Instant::now(),
                trace: None,
            });
        }
        let handles = spawn_workers(&shared);
        let deadline = Instant::now() + Duration::from_secs(5);
        while shared.any_pending() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        shared.request_shutdown();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }
}
