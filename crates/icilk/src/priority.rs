//! Priorities for I-Cilk tasks: a compile-time encoding and a runtime
//! representation.
//!
//! The paper encodes priorities as C++ classes whose inheritance hierarchy
//! mirrors the priority order and checks `is_base_of` at `ftouch` sites.
//! The Rust analogue: each priority level is a zero-sized type implementing
//! [`PriorityLevel`]; the ordering is expressed by implementations of the
//! marker trait [`OutranksOrEqual`].  The typed API
//! ([`crate::runtime::Runtime::fcreate_typed`] /
//! [`crate::runtime::Runtime::ftouch_typed`]) requires
//! `Touched: OutranksOrEqual<Toucher>`, so a priority inversion is a compile
//! error, exactly like the paper's `static_assert`.
//!
//! The [`define_priorities!`](crate::define_priorities) macro declares a
//! totally ordered family of levels and all the `OutranksOrEqual`
//! implementations.
//!
//! The runtime side ([`PrioritySet`]) is a thin wrapper over
//! [`rp_priority::PriorityDomain`] mapping level indices to scheduler pools.

use rp_priority::{Priority, PriorityDomain};

/// A compile-time priority level (a zero-sized marker type).
pub trait PriorityLevel: Send + Sync + 'static {
    /// The level's index, 0 = lowest.
    const INDEX: usize;
    /// The level's human-readable name.
    const NAME: &'static str;
}

/// Marker trait: `Self` is higher than or equal to `Lower` in the priority
/// order.  `ftouch` of a thread at priority `Self` from code at priority
/// `Lower` is allowed exactly when this bound holds (the λ⁴ᵢ `Touch` rule).
pub trait OutranksOrEqual<Lower: PriorityLevel>: PriorityLevel {}

/// Declares a totally ordered set of priority levels, lowest first, and
/// implements [`PriorityLevel`] and [`OutranksOrEqual`] accordingly.
///
/// ```
/// use rp_icilk::define_priorities;
/// use rp_icilk::priority::{OutranksOrEqual, PriorityLevel};
///
/// define_priorities!(Background, Logging, Interactive);
///
/// fn requires_no_inversion<Touched, Toucher>()
/// where
///     Toucher: PriorityLevel,
///     Touched: OutranksOrEqual<Toucher>,
/// {
/// }
///
/// // Interactive code may touch interactive work; background code may touch
/// // anything.
/// requires_no_inversion::<Interactive, Background>();
/// requires_no_inversion::<Interactive, Interactive>();
/// // `requires_no_inversion::<Background, Interactive>()` would not compile:
/// // that is the priority inversion the type system rules out.
/// assert_eq!(Background::INDEX, 0);
/// assert_eq!(Interactive::NAME, "Interactive");
/// ```
#[macro_export]
macro_rules! define_priorities {
    ($($name:ident),+ $(,)?) => {
        $crate::define_priorities!(@declare 0usize; $($name),+);
        $crate::define_priorities!(@order ; $($name),+);
    };
    (@declare $idx:expr; $name:ident $(, $rest:ident)*) => {
        /// A priority level declared by `define_priorities!`.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct $name;
        impl $crate::priority::PriorityLevel for $name {
            const INDEX: usize = $idx;
            const NAME: &'static str = stringify!($name);
        }
        // Every level outranks-or-equals itself (reflexivity of ⪯).
        impl $crate::priority::OutranksOrEqual<$name> for $name {}
        $crate::define_priorities!(@declare $idx + 1usize; $($rest),*);
    };
    (@declare $idx:expr;) => {};
    // For each level, make every *later* (higher) level outrank it.
    (@order $($lower:ident),*; $name:ident $(, $rest:ident)*) => {
        $(
            impl $crate::priority::OutranksOrEqual<$lower> for $name {}
        )*
        $crate::define_priorities!(@order $($lower,)* $name; $($rest),*);
    };
    (@order $($lower:ident),*;) => {};
}

/// The runtime representation of a program's priority levels: a total order
/// with named levels, convertible to scheduler pool indices.
#[derive(Debug, Clone)]
pub struct PrioritySet {
    domain: PriorityDomain,
}

impl PrioritySet {
    /// A totally ordered set with the given names, lowest first.
    ///
    /// # Panics
    ///
    /// Panics if names are duplicated or empty.
    pub fn new<I, S>(names_low_to_high: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PrioritySet {
            domain: PriorityDomain::total_order(names_low_to_high)
                .expect("priority level names must be distinct and non-empty"),
        }
    }

    /// A set with `n` anonymous levels.
    pub fn numeric(n: usize) -> Self {
        PrioritySet {
            domain: PriorityDomain::numeric(n),
        }
    }

    /// The underlying domain.
    pub fn domain(&self) -> &PriorityDomain {
        &self.domain
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.domain.len()
    }

    /// Whether the set is empty (never true).
    pub fn is_empty(&self) -> bool {
        self.domain.is_empty()
    }

    /// Looks up a level by name.
    pub fn by_name(&self, name: &str) -> Option<Priority> {
        self.domain.priority(name)
    }

    /// The level with the given index (0 = lowest).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn by_index(&self, index: usize) -> Priority {
        self.domain.by_index(index)
    }

    /// The level with the given index (0 = lowest), or `None` when the
    /// index is out of range — the checked variant of
    /// [`by_index`](Self::by_index).
    pub fn get(&self, index: usize) -> Option<Priority> {
        (index < self.domain.len()).then(|| self.domain.by_index(index))
    }

    /// The runtime check corresponding to `Touched: OutranksOrEqual<Toucher>`:
    /// does code at `toucher` touching a future at `touched` avoid a priority
    /// inversion?
    pub fn touch_allowed(&self, toucher: Priority, touched: Priority) -> bool {
        self.domain.leq(toucher, touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    define_priorities!(Low, Mid, High);

    fn assert_outranks<A, B>()
    where
        B: PriorityLevel,
        A: OutranksOrEqual<B>,
    {
    }

    #[test]
    fn macro_generates_indices_and_names() {
        assert_eq!(Low::INDEX, 0);
        assert_eq!(Mid::INDEX, 1);
        assert_eq!(High::INDEX, 2);
        assert_eq!(Low::NAME, "Low");
        assert_eq!(High::NAME, "High");
    }

    #[test]
    fn macro_generates_order() {
        assert_outranks::<Low, Low>();
        assert_outranks::<Mid, Low>();
        assert_outranks::<High, Low>();
        assert_outranks::<High, Mid>();
        assert_outranks::<High, High>();
        // assert_outranks::<Low, High>() must not compile; see the
        // compile-fail style doc in the macro's example.
    }

    #[test]
    fn priority_set_runtime_checks() {
        let set = PrioritySet::new(["bg", "ui"]);
        let bg = set.by_name("bg").unwrap();
        let ui = set.by_name("ui").unwrap();
        assert!(set.touch_allowed(bg, ui));
        assert!(set.touch_allowed(ui, ui));
        assert!(!set.touch_allowed(ui, bg), "inversion is rejected");
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.by_index(1), ui);
    }

    #[test]
    fn numeric_set() {
        let set = PrioritySet::numeric(4);
        assert_eq!(set.len(), 4);
        assert!(set.touch_allowed(set.by_index(0), set.by_index(3)));
    }
}
