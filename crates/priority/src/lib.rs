//! Partially ordered priority domains for responsive parallelism.
//!
//! The paper *Responsive Parallelism with Futures and State* (PLDI 2020)
//! assigns every thread a priority `ρ` drawn from a partially ordered set
//! `R`, where `ρ₁ ⪯ ρ₂` means `ρ₁` is lower than (or equal to) `ρ₂`.  This
//! crate provides:
//!
//! * [`PriorityDomain`] — an explicit, finite, partially ordered set of
//!   priorities with named levels, reflexive-transitive ordering queries, and
//!   builders for total orders, trees, and arbitrary DAG-shaped orders
//!   (module [`domain`]).
//! * [`Priority`] — a cheap copyable handle to a priority level of a domain.
//! * [`PrioTerm`] and [`PrioVar`] — priority *terms* that may mention
//!   priority variables, as used by λ⁴ᵢ's priority-polymorphic types
//!   (module [`var`]).
//! * [`Constraint`] and [`ConstraintCtx`] — the constraint language
//!   `C ::= ρ ⪯ ρ | C ∧ C` of Figure 4 and the entailment judgment
//!   `Γ ⊢^R C` of Figure 7 (module [`constraint`]).
//! * [`mod@solve`] — the other direction: a least-fixpoint solver that *infers*
//!   satisfying assignments of priority variables to levels of the poset,
//!   reporting unsatisfiable cores (module [`mod@solve`]).
//!
//! # Example
//!
//! ```
//! use rp_priority::{PriorityDomain, Constraint};
//!
//! // A total order with four levels, from lowest to highest.
//! let dom = PriorityDomain::total_order(["background", "logging", "fetch", "ui"]).unwrap();
//! let background = dom.priority("background").unwrap();
//! let ui = dom.priority("ui").unwrap();
//!
//! assert!(dom.leq(background, ui));
//! assert!(!dom.leq(ui, background));
//!
//! // Entailment of constraints with no hypotheses.
//! let c = Constraint::leq(background, ui);
//! assert!(dom.entails_closed(&c));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod constraint;
pub mod domain;
pub mod solve;
pub mod var;

pub use constraint::{Constraint, ConstraintCtx, EntailmentError};
pub use domain::{DomainBuildError, Priority, PriorityDomain, PriorityDomainBuilder};
pub use solve::{solve, Solution, UnsatCore};
pub use var::{PrioSubst, PrioTerm, PrioVar};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Priority>();
        assert_send_sync::<PriorityDomain>();
        assert_send_sync::<Constraint>();
        assert_send_sync::<ConstraintCtx>();
        assert_send_sync::<PrioTerm>();
        assert_send_sync::<PrioVar>();
    }
}
