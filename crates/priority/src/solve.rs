//! A solver for priority-constraint systems: inferring assignments of
//! priority variables to concrete levels.
//!
//! [`ConstraintCtx::entails`](crate::ConstraintCtx::entails) *checks* a
//! constraint against hypotheses — the Figure 7 judgment, which is all the
//! declarative type system needs because λ⁴ᵢ programs annotate every
//! priority instantiation.  A front end that wants to *infer* those
//! instantiations needs the other direction: given a conjunction of
//! `ρ ⪯ ρ` atoms over a finite poset `R` and a set of unknowns, find a
//! satisfying assignment of the unknowns to levels of `R`, or explain why
//! none exists.
//!
//! [`solve`] implements this as a least-fixpoint computation over the
//! (finite) poset:
//!
//! 1. every variable starts with the full level set as its **candidates**;
//! 2. each atom prunes candidates — `π ⪯ ρ` removes levels not `⪯ ρ`,
//!    `ρ ⪯ π` removes levels not `⪰ ρ`, and `π₁ ⪯ π₂` removes levels of
//!    either side with no partner in the other — repeated to a fixpoint
//!    (pruning is monotone, so the iteration terminates);
//! 3. the solver then assigns each variable a *minimal* remaining candidate
//!    and verifies the full conjunction; because candidate filtering is arc
//!    consistency (complete for total orders but not for every poset), a
//!    failed verification falls back to an exhaustive search over the
//!    pruned candidate sets, in minimal-first order, so the result is still
//!    the least satisfying assignment under the poset's height order.
//!
//! When a candidate set empties — or the search exhausts — the solver
//! reports an [`UnsatCore`]: the subset of atoms that participated in
//! pruning the contradicted variable, which is what a type checker wants to
//! show the programmer.

use crate::constraint::Constraint;
use crate::domain::{Priority, PriorityDomain};
use crate::var::{PrioSubst, PrioTerm, PrioVar};
use std::collections::HashMap;
use std::fmt;

/// An atomic inequality `lhs ⪯ rhs`, the unit the solver works over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The lower side.
    pub lhs: PrioTerm,
    /// The upper side.
    pub rhs: PrioTerm,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ⪯ {}", self.lhs, self.rhs)
    }
}

/// Why a constraint system has no solution: the contradicted variable (if
/// the contradiction localised to one) and the atoms that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsatCore {
    /// The variable whose candidate set emptied, when the contradiction is
    /// attributable to a single unknown (`None` for a closed contradiction
    /// or an exhausted global search).
    pub var: Option<PrioVar>,
    /// The atoms that participated in the contradiction, in input order.
    pub atoms: Vec<Atom>,
}

impl fmt::Display for UnsatCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.var {
            Some(v) => write!(f, "no priority level satisfies `{v}` under ")?,
            None => write!(f, "unsatisfiable priority constraints: ")?,
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl std::error::Error for UnsatCore {}

/// A satisfying assignment together with solve diagnostics.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The inferred assignment: every unknown is mapped to a concrete
    /// priority ([`PrioTerm::Const`]).
    pub assignment: PrioSubst,
    /// Number of fixpoint pruning rounds performed.
    pub rounds: usize,
    /// Whether the fallback search ran (arc consistency alone did not
    /// produce a verified assignment — only possible on partial orders).
    pub searched: bool,
}

impl Solution {
    /// The assigned level of a variable, if it was an unknown of the solve.
    pub fn level_of(&self, var: &PrioVar) -> Option<Priority> {
        self.assignment.get(var).and_then(PrioTerm::as_const)
    }
}

/// Flattens constraints into solver atoms.
fn atoms_of(constraints: &[Constraint]) -> Vec<Atom> {
    let mut out = Vec::new();
    for c in constraints {
        for (l, r) in c.conjuncts() {
            out.push(Atom {
                lhs: l.clone(),
                rhs: r.clone(),
            });
        }
    }
    out
}

/// Solves a system of priority constraints for the given unknowns over a
/// finite poset, returning the least satisfying assignment.
///
/// Variables mentioned by the constraints but not listed in `vars` are also
/// treated as unknowns (so callers may pass just the declared unknowns and
/// let the solver pick up stragglers).  Closed atoms are checked against the
/// ambient order directly.
///
/// # Errors
///
/// Returns an [`UnsatCore`] naming the contradicted variable (when one is
/// identifiable) and the atoms involved.
///
/// # Example
///
/// ```
/// use rp_priority::{solve, Constraint, PrioTerm, PrioVar, PriorityDomain};
/// let dom = PriorityDomain::total_order(["lo", "mid", "hi"]).unwrap();
/// let pi = PrioVar::new("pi");
/// // mid ⪯ π: the least solution is π = mid.
/// let c = Constraint::leq(dom.priority("mid").unwrap(), PrioTerm::Var(pi.clone()));
/// let sol = solve(&dom, &[pi.clone()], &[c]).unwrap();
/// assert_eq!(sol.level_of(&pi), dom.priority("mid"));
/// ```
pub fn solve(
    domain: &PriorityDomain,
    vars: &[PrioVar],
    constraints: &[Constraint],
) -> Result<Solution, UnsatCore> {
    let atoms = atoms_of(constraints);

    // The unknowns: the declared variables plus any the atoms mention.
    let mut unknowns: Vec<PrioVar> = vars.to_vec();
    for a in &atoms {
        for t in [&a.lhs, &a.rhs] {
            if let PrioTerm::Var(v) = t {
                if !unknowns.contains(v) {
                    unknowns.push(v.clone());
                }
            }
        }
    }
    let var_ix: HashMap<&PrioVar, usize> =
        unknowns.iter().enumerate().map(|(i, v)| (v, i)).collect();

    // Closed atoms are facts about the ambient order; a false one is an
    // immediate (variable-free) contradiction.
    for a in &atoms {
        if let (Some(l), Some(r)) = (a.lhs.as_const(), a.rhs.as_const()) {
            if !domain.leq(l, r) {
                return Err(UnsatCore {
                    var: None,
                    atoms: vec![a.clone()],
                });
            }
        }
    }

    let levels: Vec<Priority> = domain.iter().collect();
    // candidates[i] = levels still possible for unknowns[i].
    let mut candidates: Vec<Vec<bool>> = vec![vec![true; levels.len()]; unknowns.len()];
    // involved[i] = indices into `atoms` that pruned unknowns[i] at least
    // once (the per-variable core).
    let mut involved: Vec<Vec<usize>> = vec![Vec::new(); unknowns.len()];

    let count = |cand: &[bool]| cand.iter().filter(|b| **b).count();

    // Least fixpoint: prune until no atom removes anything.
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut changed = false;
        for (ai, a) in atoms.iter().enumerate() {
            match (&a.lhs, &a.rhs) {
                (PrioTerm::Var(x), PrioTerm::Const(c)) => {
                    let xi = var_ix[x];
                    for (li, &l) in levels.iter().enumerate() {
                        if candidates[xi][li] && !domain.leq(l, *c) {
                            candidates[xi][li] = false;
                            changed = true;
                            if !involved[xi].contains(&ai) {
                                involved[xi].push(ai);
                            }
                        }
                    }
                }
                (PrioTerm::Const(c), PrioTerm::Var(x)) => {
                    let xi = var_ix[x];
                    for (li, &l) in levels.iter().enumerate() {
                        if candidates[xi][li] && !domain.leq(*c, l) {
                            candidates[xi][li] = false;
                            changed = true;
                            if !involved[xi].contains(&ai) {
                                involved[xi].push(ai);
                            }
                        }
                    }
                }
                (PrioTerm::Var(x), PrioTerm::Var(y)) if x != y => {
                    let xi = var_ix[x];
                    let yi = var_ix[y];
                    // x keeps levels with some partner above in y.
                    for (li, &l) in levels.iter().enumerate() {
                        if candidates[xi][li]
                            && !levels
                                .iter()
                                .enumerate()
                                .any(|(mi, &m)| candidates[yi][mi] && domain.leq(l, m))
                        {
                            candidates[xi][li] = false;
                            changed = true;
                            if !involved[xi].contains(&ai) {
                                involved[xi].push(ai);
                            }
                        }
                    }
                    // y keeps levels with some partner below in x.
                    for (mi, &m) in levels.iter().enumerate() {
                        if candidates[yi][mi]
                            && !levels
                                .iter()
                                .enumerate()
                                .any(|(li, &l)| candidates[xi][li] && domain.leq(l, m))
                        {
                            candidates[yi][mi] = false;
                            changed = true;
                            if !involved[yi].contains(&ai) {
                                involved[yi].push(ai);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        // Report the first emptied variable with its pruning atoms.
        for (xi, cand) in candidates.iter().enumerate() {
            if count(cand) == 0 {
                let mut core_atoms: Vec<Atom> =
                    involved[xi].iter().map(|&ai| atoms[ai].clone()).collect();
                core_atoms.dedup();
                return Err(UnsatCore {
                    var: Some(unknowns[xi].clone()),
                    atoms: core_atoms,
                });
            }
        }
        if !changed {
            break;
        }
    }

    // Candidate levels per variable, minimal-first (by poset height, then
    // declaration index for determinism).
    let ordered: Vec<Vec<Priority>> = candidates
        .iter()
        .map(|cand| {
            let mut ls: Vec<Priority> = levels
                .iter()
                .enumerate()
                .filter(|(li, _)| cand[*li])
                .map(|(_, &l)| l)
                .collect();
            ls.sort_by_key(|&l| (domain.count_strictly_below(l), l.index()));
            ls
        })
        .collect();

    let verify = |assign: &[Priority]| -> bool {
        let resolve = |t: &PrioTerm| -> Priority {
            match t {
                PrioTerm::Const(p) => *p,
                PrioTerm::Var(v) => assign[var_ix[v]],
            }
        };
        atoms
            .iter()
            .all(|a| domain.leq(resolve(&a.lhs), resolve(&a.rhs)))
    };

    // First try the all-minimal assignment (exact for total orders, where
    // arc consistency is complete and minima are unique).
    let minimal: Vec<Priority> = ordered.iter().map(|ls| ls[0]).collect();
    let (assign, searched) = if verify(&minimal) {
        (minimal, false)
    } else {
        // Partial-order fallback: exhaustive search over the pruned
        // candidate sets in minimal-first order.  Domains are small (the
        // paper's largest case study has six levels) and pruning has
        // already cut the space, so this is cheap in practice.
        match search(&ordered, &verify) {
            Some(a) => (a, true),
            None => {
                return Err(UnsatCore {
                    var: None,
                    atoms: atoms
                        .iter()
                        .filter(|a| !a.lhs.is_const() || !a.rhs.is_const())
                        .cloned()
                        .collect(),
                })
            }
        }
    };

    let mut assignment = PrioSubst::new();
    for (xi, v) in unknowns.iter().enumerate() {
        assignment.bind(v.clone(), PrioTerm::Const(assign[xi]));
    }
    Ok(Solution {
        assignment,
        rounds,
        searched,
    })
}

/// Depth-first product search over per-variable candidate lists (each
/// minimal-first), returning the first verified assignment.
fn search(
    ordered: &[Vec<Priority>],
    verify: &dyn Fn(&[Priority]) -> bool,
) -> Option<Vec<Priority>> {
    let mut cursor = vec![0usize; ordered.len()];
    if ordered.is_empty() {
        return None;
    }
    loop {
        let assign: Vec<Priority> = cursor.iter().zip(ordered).map(|(&c, ls)| ls[c]).collect();
        if verify(&assign) {
            return Some(assign);
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            cursor[i] += 1;
            if cursor[i] < ordered[i].len() {
                break;
            }
            cursor[i] = 0;
            i += 1;
            if i == ordered.len() {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintCtx;

    fn total() -> PriorityDomain {
        PriorityDomain::total_order(["lo", "mid", "hi"]).unwrap()
    }

    fn diamond() -> PriorityDomain {
        PriorityDomain::builder()
            .level("bot")
            .level("l")
            .level("r")
            .level("top")
            .lt("bot", "l")
            .lt("bot", "r")
            .lt("l", "top")
            .lt("r", "top")
            .build()
            .unwrap()
    }

    fn v(name: &str) -> PrioVar {
        PrioVar::new(name)
    }

    #[test]
    fn unconstrained_variable_gets_minimal_level() {
        let d = total();
        let sol = solve(&d, &[v("pi")], &[]).unwrap();
        assert_eq!(sol.level_of(&v("pi")), d.priority("lo"));
        assert!(!sol.searched);
    }

    #[test]
    fn lower_bound_raises_least_solution() {
        let d = total();
        let c = Constraint::leq(d.priority("mid").unwrap(), PrioTerm::Var(v("pi")));
        let sol = solve(&d, &[v("pi")], &[c]).unwrap();
        assert_eq!(sol.level_of(&v("pi")), d.priority("mid"));
    }

    #[test]
    fn upper_bound_keeps_minimum() {
        let d = total();
        let c = Constraint::leq(PrioTerm::Var(v("pi")), d.priority("mid").unwrap());
        let sol = solve(&d, &[v("pi")], &[c]).unwrap();
        assert_eq!(sol.level_of(&v("pi")), d.priority("lo"));
    }

    #[test]
    fn chained_variables_propagate_bounds() {
        // mid ⪯ a, a ⪯ b: least solution a = b = mid.
        let d = total();
        let cs = vec![
            Constraint::leq(d.priority("mid").unwrap(), PrioTerm::Var(v("a"))),
            Constraint::leq(PrioTerm::Var(v("a")), PrioTerm::Var(v("b"))),
        ];
        let sol = solve(&d, &[v("a"), v("b")], &cs).unwrap();
        assert_eq!(sol.level_of(&v("a")), d.priority("mid"));
        assert_eq!(sol.level_of(&v("b")), d.priority("mid"));
        // The fixpoint's var–var pruning alone must resolve the chain — if
        // it silently stops pruning, the brute-force search fallback would
        // still find the right levels and mask the regression.
        assert!(!sol.searched, "var–var chain should not need the search");
    }

    #[test]
    fn contradictory_bounds_report_core_with_variable() {
        // hi ⪯ π and π ⪯ lo cannot both hold.
        let d = total();
        let cs = vec![
            Constraint::leq(d.priority("hi").unwrap(), PrioTerm::Var(v("pi"))),
            Constraint::leq(PrioTerm::Var(v("pi")), d.priority("lo").unwrap()),
        ];
        let err = solve(&d, &[v("pi")], &cs).unwrap_err();
        assert_eq!(err.var, Some(v("pi")));
        assert_eq!(err.atoms.len(), 2);
        let msg = err.to_string();
        assert!(msg.contains("pi") && msg.contains("⪯"), "{msg}");
    }

    #[test]
    fn closed_contradiction_reported_without_variable() {
        let d = total();
        let c = Constraint::leq(d.priority("hi").unwrap(), d.priority("lo").unwrap());
        let err = solve(&d, &[], &[c]).unwrap_err();
        assert_eq!(err.var, None);
        assert_eq!(err.atoms.len(), 1);
    }

    #[test]
    fn undeclared_variables_are_picked_up() {
        let d = total();
        let c = Constraint::leq(d.priority("hi").unwrap(), PrioTerm::Var(v("rho")));
        let sol = solve(&d, &[], &[c]).unwrap();
        assert_eq!(sol.level_of(&v("rho")), d.priority("hi"));
    }

    #[test]
    fn diamond_incomparable_bounds_force_top() {
        // l ⪯ π and r ⪯ π: the only level above both is top.
        let d = diamond();
        let cs = vec![
            Constraint::leq(d.priority("l").unwrap(), PrioTerm::Var(v("pi"))),
            Constraint::leq(d.priority("r").unwrap(), PrioTerm::Var(v("pi"))),
        ];
        let sol = solve(&d, &[v("pi")], &cs).unwrap();
        assert_eq!(sol.level_of(&v("pi")), d.priority("top"));
    }

    #[test]
    fn diamond_unsat_between_incomparable_levels() {
        // l ⪯ π and π ⪯ r: nothing sits between two incomparable levels.
        let d = diamond();
        let cs = vec![
            Constraint::leq(d.priority("l").unwrap(), PrioTerm::Var(v("pi"))),
            Constraint::leq(PrioTerm::Var(v("pi")), d.priority("r").unwrap()),
        ];
        let err = solve(&d, &[v("pi")], &cs).unwrap_err();
        assert_eq!(err.var, Some(v("pi")));
    }

    #[test]
    fn partial_order_search_fallback_finds_solution() {
        // a ⪯ b with a ⪰ l and b ⪯ ... chains that arc consistency alone
        // can leave unresolved on a poset: l ⪯ a, r ⪯ b, a ⪯ b.
        // a ∈ {l, top}, b ∈ {r, top} after pruning; a ⪯ b forces a = l? No:
        // l ⪯ r fails, l ⪯ top holds — least verified pair is (l, top).
        let d = diamond();
        let cs = vec![
            Constraint::leq(d.priority("l").unwrap(), PrioTerm::Var(v("a"))),
            Constraint::leq(d.priority("r").unwrap(), PrioTerm::Var(v("b"))),
            Constraint::leq(PrioTerm::Var(v("a")), PrioTerm::Var(v("b"))),
        ];
        let sol = solve(&d, &[v("a"), v("b")], &cs).unwrap();
        let a = sol.level_of(&v("a")).unwrap();
        let b = sol.level_of(&v("b")).unwrap();
        assert!(d.leq(d.priority("l").unwrap(), a));
        assert!(d.leq(d.priority("r").unwrap(), b));
        assert!(d.leq(a, b));
    }

    #[test]
    fn solutions_entail_the_constraints() {
        // Property: for a grid of small systems, a returned assignment makes
        // every constraint hold under the empty context.
        let d = total();
        let lo = d.priority("lo").unwrap();
        let mid = d.priority("mid").unwrap();
        let hi = d.priority("hi").unwrap();
        let terms = [
            PrioTerm::Const(lo),
            PrioTerm::Const(mid),
            PrioTerm::Const(hi),
            PrioTerm::Var(v("a")),
            PrioTerm::Var(v("b")),
        ];
        let mut solved = 0;
        for l1 in &terms {
            for r1 in &terms {
                for l2 in &terms {
                    for r2 in &terms {
                        let cs = vec![
                            Constraint::leq(l1.clone(), r1.clone()),
                            Constraint::leq(l2.clone(), r2.clone()),
                        ];
                        if let Ok(sol) = solve(&d, &[], &cs) {
                            solved += 1;
                            for c in &cs {
                                let closed = c.subst(&sol.assignment);
                                assert!(
                                    ConstraintCtx::new().entails(&d, &closed),
                                    "assignment {:?} does not satisfy {c}",
                                    sol.assignment
                                );
                            }
                        }
                    }
                }
            }
        }
        assert!(solved > 100, "grid should be mostly satisfiable: {solved}");
    }

    #[test]
    fn display_forms_are_informative() {
        let d = total();
        let a = Atom {
            lhs: PrioTerm::Const(d.priority("hi").unwrap()),
            rhs: PrioTerm::Var(v("pi")),
        };
        assert!(a.to_string().contains("⪯"));
        let core = UnsatCore {
            var: None,
            atoms: vec![a],
        };
        assert!(core.to_string().contains("unsatisfiable"));
    }
}
