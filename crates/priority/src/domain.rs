//! Finite, partially ordered priority domains.
//!
//! A [`PriorityDomain`] is an explicit representation of the partially
//! ordered set `R` from which thread priorities are drawn (Section 2.1 of the
//! paper).  Every priority level has a human-readable name and an index; the
//! reflexive-transitive order relation `⪯` is precomputed as a reachability
//! matrix so ordering queries are `O(1)`.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A handle to one priority level of a [`PriorityDomain`].
///
/// `Priority` is a plain index; it is only meaningful relative to the domain
/// that produced it.  Handles are `Copy` and order-agnostic: comparing two
/// `Priority` values with `<` compares indices, not the domain's `⪯`
/// relation — always use [`PriorityDomain::leq`] / [`PriorityDomain::lt`]
/// for the semantic order.
///
/// # Example
///
/// ```
/// use rp_priority::PriorityDomain;
/// let dom = PriorityDomain::total_order(["lo", "hi"]).unwrap();
/// let lo = dom.priority("lo").unwrap();
/// assert_eq!(dom.name(lo), "lo");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Priority(pub(crate) u32);

impl Priority {
    /// The raw index of this priority within its domain.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a priority handle from a raw index.
    ///
    /// This is mostly useful for serialization round-trips; passing an index
    /// that is out of range for the domain it is later used with causes the
    /// domain's query methods to panic.
    pub fn from_index(index: usize) -> Self {
        Priority(index as u32)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ρ{}", self.0)
    }
}

/// Errors produced while building a [`PriorityDomain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainBuildError {
    /// Two levels were declared with the same name.
    DuplicateName(String),
    /// An ordering edge referred to a level name that was never declared.
    UnknownLevel(String),
    /// The declared order contains a cycle through the named level, so it is
    /// not a partial order.
    CyclicOrder(String),
    /// The domain has no levels at all.
    Empty,
}

impl fmt::Display for DomainBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainBuildError::DuplicateName(n) => write!(f, "duplicate priority level name `{n}`"),
            DomainBuildError::UnknownLevel(n) => write!(f, "unknown priority level `{n}`"),
            DomainBuildError::CyclicOrder(n) => {
                write!(f, "priority order contains a cycle through `{n}`")
            }
            DomainBuildError::Empty => write!(f, "priority domain has no levels"),
        }
    }
}

impl std::error::Error for DomainBuildError {}

/// Builder for [`PriorityDomain`] values with an arbitrary partial order.
///
/// Declare levels with [`level`](Self::level), declare ordering facts
/// `lo ≺ hi` with [`lt`](Self::lt), and finish with
/// [`build`](Self::build), which computes the reflexive-transitive closure
/// and rejects cyclic declarations.
///
/// # Example
///
/// ```
/// use rp_priority::PriorityDomainBuilder;
///
/// // A diamond: bottom ≺ {left, right} ≺ top, with left and right incomparable.
/// let dom = PriorityDomainBuilder::new()
///     .level("bottom")
///     .level("left")
///     .level("right")
///     .level("top")
///     .lt("bottom", "left")
///     .lt("bottom", "right")
///     .lt("left", "top")
///     .lt("right", "top")
///     .build()
///     .unwrap();
/// let l = dom.priority("left").unwrap();
/// let r = dom.priority("right").unwrap();
/// assert!(!dom.leq(l, r) && !dom.leq(r, l));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PriorityDomainBuilder {
    names: Vec<String>,
    index: HashMap<String, u32>,
    duplicates: Vec<String>,
    edges: Vec<(String, String)>,
}

impl PriorityDomainBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a priority level with the given name.
    pub fn level(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        if self.index.contains_key(&name) {
            self.duplicates.push(name);
        } else {
            self.index.insert(name.clone(), self.names.len() as u32);
            self.names.push(name);
        }
        self
    }

    /// Declares the strict ordering fact `lo ≺ hi`.
    pub fn lt(mut self, lo: impl Into<String>, hi: impl Into<String>) -> Self {
        self.edges.push((lo.into(), hi.into()));
        self
    }

    /// Finishes the builder, computing the reflexive-transitive closure of
    /// the declared order.
    ///
    /// # Errors
    ///
    /// Returns [`DomainBuildError`] if a level name was duplicated, an edge
    /// mentions an undeclared level, the order has a cycle, or no level was
    /// declared.
    // Index loops keep the Floyd–Warshall closure and the antisymmetry
    // check readable; iterator forms need row splitting for no gain.
    #[allow(clippy::needless_range_loop)]
    pub fn build(self) -> Result<PriorityDomain, DomainBuildError> {
        if let Some(dup) = self.duplicates.into_iter().next() {
            return Err(DomainBuildError::DuplicateName(dup));
        }
        if self.names.is_empty() {
            return Err(DomainBuildError::Empty);
        }
        let n = self.names.len();
        // leq[i][j] == true  iff  i ⪯ j.
        let mut leq = vec![vec![false; n]; n];
        for (i, row) in leq.iter_mut().enumerate() {
            row[i] = true;
        }
        for (lo, hi) in &self.edges {
            let &lo_ix = self
                .index
                .get(lo)
                .ok_or_else(|| DomainBuildError::UnknownLevel(lo.clone()))?;
            let &hi_ix = self
                .index
                .get(hi)
                .ok_or_else(|| DomainBuildError::UnknownLevel(hi.clone()))?;
            leq[lo_ix as usize][hi_ix as usize] = true;
        }
        // Floyd–Warshall style transitive closure.
        for k in 0..n {
            for i in 0..n {
                if leq[i][k] {
                    for j in 0..n {
                        if leq[k][j] {
                            leq[i][j] = true;
                        }
                    }
                }
            }
        }
        // Antisymmetry check: i ⪯ j and j ⪯ i with i ≠ j means the declared
        // strict order has a cycle.
        for i in 0..n {
            for j in 0..n {
                if i != j && leq[i][j] && leq[j][i] {
                    return Err(DomainBuildError::CyclicOrder(self.names[i].clone()));
                }
            }
        }
        Ok(PriorityDomain {
            names: self.names,
            index: self.index,
            leq,
        })
    }
}

/// A finite, partially ordered set of priorities.
///
/// The domain owns the level names and the precomputed `⪯` relation.
/// Priority handles ([`Priority`]) index into it.
///
/// # Example
///
/// ```
/// use rp_priority::PriorityDomain;
/// let dom = PriorityDomain::total_order(["low", "mid", "high"]).unwrap();
/// assert_eq!(dom.len(), 3);
/// let low = dom.priority("low").unwrap();
/// let high = dom.priority("high").unwrap();
/// assert!(dom.lt(low, high));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PriorityDomain {
    names: Vec<String>,
    index: HashMap<String, u32>,
    /// `leq[i][j]` iff priority `i ⪯ j` (reflexive and transitive).
    leq: Vec<Vec<bool>>,
}

impl PriorityDomain {
    /// Builds a totally ordered domain from level names listed from lowest to
    /// highest.
    ///
    /// # Errors
    ///
    /// Returns an error if names are duplicated or the list is empty.
    pub fn total_order<I, S>(names_low_to_high: I) -> Result<Self, DomainBuildError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names_low_to_high.into_iter().map(Into::into).collect();
        let mut b = PriorityDomainBuilder::new();
        for name in &names {
            b = b.level(name.clone());
        }
        for pair in names.windows(2) {
            b = b.lt(pair[0].clone(), pair[1].clone());
        }
        b.build()
    }

    /// Builds a totally ordered domain with `n` anonymous levels named
    /// `"p0" .. "p{n-1}"`, from lowest (`p0`) to highest.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn numeric(n: usize) -> Self {
        assert!(n > 0, "a priority domain must have at least one level");
        Self::total_order((0..n).map(|i| format!("p{i}")))
            .expect("numeric names are unique and non-empty")
    }

    /// Builds a single-level domain (every thread shares one priority).
    pub fn single() -> Self {
        Self::numeric(1)
    }

    /// Starts a builder for an arbitrary partial order.
    pub fn builder() -> PriorityDomainBuilder {
        PriorityDomainBuilder::new()
    }

    /// Number of priority levels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the domain has no levels (never true for a built domain).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Looks up a priority level by name.
    pub fn priority(&self, name: &str) -> Option<Priority> {
        self.index.get(name).map(|&i| Priority(i))
    }

    /// The priority with the given raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn by_index(&self, index: usize) -> Priority {
        assert!(index < self.len(), "priority index {index} out of range");
        Priority(index as u32)
    }

    /// The name of a priority level.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this domain (index out of
    /// range).
    pub fn name(&self, p: Priority) -> &str {
        &self.names[p.index()]
    }

    /// Iterates over every priority of the domain, in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = Priority> + '_ {
        (0..self.names.len() as u32).map(Priority)
    }

    /// `ρ₁ ⪯ ρ₂`: is `a` lower than or equal to `b`?
    ///
    /// # Panics
    ///
    /// Panics if either handle is out of range for this domain.
    pub fn leq(&self, a: Priority, b: Priority) -> bool {
        self.leq[a.index()][b.index()]
    }

    /// `ρ₁ ≺ ρ₂`: is `a` strictly lower than `b`?
    pub fn lt(&self, a: Priority, b: Priority) -> bool {
        a != b && self.leq(a, b)
    }

    /// `¬(ρ₁ ≺ ρ₂)`: `a` is *not* strictly lower than `b` — i.e. `a ⊀ b`.
    ///
    /// This is the relation used to define competitor work
    /// `W_{⊀ρ}`: work at priority `ρ'` competes with a thread at priority
    /// `ρ` exactly when `ρ' ⊀ ρ`.
    pub fn not_lt(&self, a: Priority, b: Priority) -> bool {
        !self.lt(a, b)
    }

    /// Are `a` and `b` incomparable under `⪯`?
    pub fn incomparable(&self, a: Priority, b: Priority) -> bool {
        !self.leq(a, b) && !self.leq(b, a)
    }

    /// Returns the maximal elements of the domain (no other level is strictly
    /// above them).
    pub fn maximal(&self) -> Vec<Priority> {
        self.iter()
            .filter(|&p| self.iter().all(|q| !self.lt(p, q)))
            .collect()
    }

    /// Returns the minimal elements of the domain.
    pub fn minimal(&self) -> Vec<Priority> {
        self.iter()
            .filter(|&p| self.iter().all(|q| !self.lt(q, p)))
            .collect()
    }

    /// Whether the domain's order is total.
    pub fn is_total(&self) -> bool {
        self.iter()
            .all(|a| self.iter().all(|b| self.leq(a, b) || self.leq(b, a)))
    }

    /// Returns the priorities sorted by a topological order of `⪯`
    /// (lowest first); within incomparable groups, declaration order is kept.
    pub fn topo_sorted(&self) -> Vec<Priority> {
        let mut ps: Vec<Priority> = self.iter().collect();
        // Count of strictly-lower levels is a valid topological key.
        ps.sort_by_key(|&p| self.iter().filter(|&q| self.lt(q, p)).count());
        ps
    }

    /// Number of levels strictly above `p`.
    pub fn count_strictly_above(&self, p: Priority) -> usize {
        self.iter().filter(|&q| self.lt(p, q)).count()
    }

    /// Number of levels strictly below `p`.
    pub fn count_strictly_below(&self, p: Priority) -> usize {
        self.iter().filter(|&q| self.lt(q, p)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_basic() {
        let d = PriorityDomain::total_order(["a", "b", "c"]).unwrap();
        let a = d.priority("a").unwrap();
        let b = d.priority("b").unwrap();
        let c = d.priority("c").unwrap();
        assert!(d.leq(a, a) && d.leq(b, b) && d.leq(c, c));
        assert!(d.leq(a, b) && d.leq(b, c) && d.leq(a, c));
        assert!(!d.leq(c, a) && !d.leq(b, a));
        assert!(d.lt(a, c) && !d.lt(a, a));
        assert!(d.is_total());
    }

    #[test]
    fn numeric_and_single() {
        let d = PriorityDomain::numeric(4);
        assert_eq!(d.len(), 4);
        assert!(d.lt(d.by_index(0), d.by_index(3)));
        let s = PriorityDomain::single();
        assert_eq!(s.len(), 1);
        assert!(s.leq(s.by_index(0), s.by_index(0)));
    }

    #[test]
    fn partial_order_diamond() {
        let d = PriorityDomain::builder()
            .level("bot")
            .level("l")
            .level("r")
            .level("top")
            .lt("bot", "l")
            .lt("bot", "r")
            .lt("l", "top")
            .lt("r", "top")
            .build()
            .unwrap();
        let l = d.priority("l").unwrap();
        let r = d.priority("r").unwrap();
        let bot = d.priority("bot").unwrap();
        let top = d.priority("top").unwrap();
        assert!(d.incomparable(l, r));
        assert!(d.leq(bot, top));
        assert!(!d.is_total());
        assert_eq!(d.maximal(), vec![top]);
        assert_eq!(d.minimal(), vec![bot]);
    }

    #[test]
    fn duplicate_name_rejected() {
        let err = PriorityDomain::total_order(["a", "a"]).unwrap_err();
        assert_eq!(err, DomainBuildError::DuplicateName("a".into()));
    }

    #[test]
    fn unknown_level_rejected() {
        let err = PriorityDomain::builder()
            .level("a")
            .lt("a", "zzz")
            .build()
            .unwrap_err();
        assert_eq!(err, DomainBuildError::UnknownLevel("zzz".into()));
    }

    #[test]
    fn cycle_rejected() {
        let err = PriorityDomain::builder()
            .level("a")
            .level("b")
            .lt("a", "b")
            .lt("b", "a")
            .build()
            .unwrap_err();
        assert!(matches!(err, DomainBuildError::CyclicOrder(_)));
    }

    #[test]
    fn empty_rejected() {
        let err = PriorityDomainBuilder::new().build().unwrap_err();
        assert_eq!(err, DomainBuildError::Empty);
    }

    #[test]
    fn not_lt_matches_definition() {
        let d = PriorityDomain::numeric(3);
        let p0 = d.by_index(0);
        let p2 = d.by_index(2);
        // p2 ⊀ p0 is false only if p2 ≺ p0; here p2 ≻ p0 so not_lt(p2, p0) is true.
        assert!(d.not_lt(p2, p0));
        assert!(!d.not_lt(p0, p2));
        assert!(d.not_lt(p0, p0));
    }

    #[test]
    fn topo_sorted_respects_order() {
        let d = PriorityDomain::builder()
            .level("hi")
            .level("lo")
            .lt("lo", "hi")
            .build()
            .unwrap();
        let sorted = d.topo_sorted();
        assert_eq!(d.name(sorted[0]), "lo");
        assert_eq!(d.name(sorted[1]), "hi");
    }

    #[test]
    fn counts_above_below() {
        let d = PriorityDomain::numeric(5);
        let p2 = d.by_index(2);
        assert_eq!(d.count_strictly_above(p2), 2);
        assert_eq!(d.count_strictly_below(p2), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let d = PriorityDomain::numeric(3);
        let json = serde_json_like(&d);
        assert!(json.contains("p0"));
    }

    // serde_json is not an allowed dependency; exercise Serialize via the
    // Debug-level check that the derive exists by serializing to a simple
    // in-memory format provided by serde's test-friendly `to_string` on
    // `serde::Serialize`. We emulate by using `format!` on Debug which is
    // enough to ensure the fields exist; the derive itself is compile-checked.
    fn serde_json_like(d: &PriorityDomain) -> String {
        format!("{d:?}")
    }
}
