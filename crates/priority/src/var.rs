//! Priority variables and priority terms.
//!
//! λ⁴ᵢ supports priority polymorphism: an expression `Λπ ∼ C. e` abstracts
//! over a priority variable `π` subject to constraints `C`, and the
//! elimination form `v[ρ′]` instantiates it (rules ∀I / ∀E of Figure 5).
//! A [`PrioTerm`] is therefore either a concrete [`Priority`] of a domain or
//! a [`PrioVar`]; substitutions ([`PrioSubst`]) map variables to terms.

use crate::domain::Priority;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A priority variable `π`, identified by name.
///
/// # Example
///
/// ```
/// use rp_priority::PrioVar;
/// let pi = PrioVar::new("pi");
/// assert_eq!(pi.name(), "pi");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PrioVar(String);

impl PrioVar {
    /// Creates a priority variable with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        PrioVar(name.into())
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PrioVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for PrioVar {
    fn from(s: &str) -> Self {
        PrioVar::new(s)
    }
}

/// A priority term: either a concrete priority or a priority variable.
///
/// # Example
///
/// ```
/// use rp_priority::{PrioTerm, PrioVar, PriorityDomain};
/// let dom = PriorityDomain::numeric(2);
/// let hi = dom.by_index(1);
/// let t1 = PrioTerm::Const(hi);
/// let t2 = PrioTerm::Var(PrioVar::new("pi"));
/// assert!(t1.is_const());
/// assert!(!t2.is_const());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrioTerm {
    /// A concrete priority level of the ambient domain.
    Const(Priority),
    /// A priority variable bound by a `Λπ ∼ C` abstraction.
    Var(PrioVar),
}

impl PrioTerm {
    /// Convenience constructor for a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        PrioTerm::Var(PrioVar::new(name))
    }

    /// Whether this term is a concrete priority.
    pub fn is_const(&self) -> bool {
        matches!(self, PrioTerm::Const(_))
    }

    /// Returns the concrete priority if this term is constant.
    pub fn as_const(&self) -> Option<Priority> {
        match self {
            PrioTerm::Const(p) => Some(*p),
            PrioTerm::Var(_) => None,
        }
    }

    /// Returns the variable if this term is a variable.
    pub fn as_var(&self) -> Option<&PrioVar> {
        match self {
            PrioTerm::Const(_) => None,
            PrioTerm::Var(v) => Some(v),
        }
    }

    /// Applies a substitution to this term.
    pub fn subst(&self, s: &PrioSubst) -> PrioTerm {
        match self {
            PrioTerm::Const(p) => PrioTerm::Const(*p),
            PrioTerm::Var(v) => s.get(v).cloned().unwrap_or_else(|| self.clone()),
        }
    }

    /// Collects the free priority variables of this term into `out`.
    pub fn free_vars(&self, out: &mut Vec<PrioVar>) {
        if let PrioTerm::Var(v) = self {
            if !out.contains(v) {
                out.push(v.clone());
            }
        }
    }
}

impl fmt::Display for PrioTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrioTerm::Const(p) => write!(f, "{p}"),
            PrioTerm::Var(v) => write!(f, "{v}"),
        }
    }
}

impl From<Priority> for PrioTerm {
    fn from(p: Priority) -> Self {
        PrioTerm::Const(p)
    }
}

impl From<PrioVar> for PrioTerm {
    fn from(v: PrioVar) -> Self {
        PrioTerm::Var(v)
    }
}

/// A substitution `[ρ′/π]` mapping priority variables to priority terms.
///
/// Substitutions compose left-to-right: applying `s` to a term first replaces
/// each variable by its image under `s`; images are *not* re-substituted, so
/// build the substitution in already-resolved form (as the λ⁴ᵢ typing rules
/// do: the ∀E rule substitutes a single concrete priority).
///
/// # Example
///
/// ```
/// use rp_priority::{PrioSubst, PrioTerm, PrioVar, PriorityDomain};
/// let dom = PriorityDomain::numeric(2);
/// let mut s = PrioSubst::new();
/// s.bind(PrioVar::new("pi"), PrioTerm::Const(dom.by_index(1)));
/// let t = PrioTerm::var("pi").subst(&s);
/// assert_eq!(t.as_const(), Some(dom.by_index(1)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrioSubst {
    map: HashMap<PrioVar, PrioTerm>,
}

impl PrioSubst {
    /// Creates an empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a substitution binding a single variable.
    pub fn single(var: PrioVar, term: impl Into<PrioTerm>) -> Self {
        let mut s = Self::new();
        s.bind(var, term);
        s
    }

    /// Adds (or replaces) a binding.
    pub fn bind(&mut self, var: PrioVar, term: impl Into<PrioTerm>) {
        self.map.insert(var, term.into());
    }

    /// Looks up the image of a variable.
    pub fn get(&self, var: &PrioVar) -> Option<&PrioTerm> {
        self.map.get(var)
    }

    /// Whether the substitution binds no variables.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterates over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&PrioVar, &PrioTerm)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::PriorityDomain;

    #[test]
    fn subst_replaces_bound_var_only() {
        let dom = PriorityDomain::numeric(3);
        let hi = dom.by_index(2);
        let s = PrioSubst::single(PrioVar::new("pi"), PrioTerm::Const(hi));
        assert_eq!(PrioTerm::var("pi").subst(&s), PrioTerm::Const(hi));
        assert_eq!(PrioTerm::var("rho").subst(&s), PrioTerm::var("rho"));
        assert_eq!(
            PrioTerm::Const(dom.by_index(0)).subst(&s),
            PrioTerm::Const(dom.by_index(0))
        );
    }

    #[test]
    fn free_vars_dedup() {
        let mut out = Vec::new();
        PrioTerm::var("a").free_vars(&mut out);
        PrioTerm::var("a").free_vars(&mut out);
        PrioTerm::var("b").free_vars(&mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn display_forms() {
        let dom = PriorityDomain::numeric(1);
        assert_eq!(format!("{}", PrioTerm::Const(dom.by_index(0))), "ρ0");
        assert_eq!(format!("{}", PrioTerm::var("pi")), "pi");
    }

    #[test]
    fn subst_accessors() {
        let mut s = PrioSubst::new();
        assert!(s.is_empty());
        s.bind(PrioVar::new("x"), PrioTerm::var("y"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().count(), 1);
        assert_eq!(s.get(&PrioVar::new("x")), Some(&PrioTerm::var("y")));
    }

    #[test]
    fn conversions() {
        let dom = PriorityDomain::numeric(1);
        let p = dom.by_index(0);
        let t: PrioTerm = p.into();
        assert_eq!(t.as_const(), Some(p));
        let v: PrioTerm = PrioVar::new("pi").into();
        assert_eq!(v.as_var().unwrap().name(), "pi");
        let from_str: PrioVar = "q".into();
        assert_eq!(from_str.name(), "q");
    }
}
