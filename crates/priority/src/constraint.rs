//! Priority constraints and the entailment judgment `Γ ⊢^R C`.
//!
//! Figure 4 of the paper defines the constraint language
//! `C ::= ρ ⪯ ρ | C ∧ C`, and Figure 7 defines when a context `Γ` (a set of
//! hypothesised constraints over priority variables) entails a constraint:
//!
//! * **hyp** — the constraint literally appears among the hypotheses;
//! * **assume** — the constraint is between two concrete priorities and holds
//!   in the ambient ordered set `R`;
//! * **refl** — `ρ ⪯ ρ`;
//! * **trans** — `ρ₁ ⪯ ρ₂` and `ρ₂ ⪯ ρ₃` entail `ρ₁ ⪯ ρ₃`;
//! * **conj** — both conjuncts are entailed.
//!
//! [`ConstraintCtx::entails`] implements this judgment by saturating the set
//! of known `⪯` facts over the (finite) set of terms mentioned anywhere in
//! the hypotheses, the ambient domain, and the goal.

use crate::domain::PriorityDomain;
use crate::var::{PrioSubst, PrioTerm, PrioVar};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A priority constraint `C ::= ρ ⪯ ρ | C ∧ C`.
///
/// # Example
///
/// ```
/// use rp_priority::{Constraint, PrioTerm, PriorityDomain};
/// let dom = PriorityDomain::numeric(3);
/// let c = Constraint::leq(dom.by_index(0), dom.by_index(2))
///     .and(Constraint::leq(dom.by_index(1), dom.by_index(2)));
/// assert_eq!(c.conjuncts().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Constraint {
    /// `lhs ⪯ rhs`.
    Leq {
        /// The lower side of the constraint.
        lhs: PrioTerm,
        /// The upper side of the constraint.
        rhs: PrioTerm,
    },
    /// Conjunction of two constraints.
    And(Box<Constraint>, Box<Constraint>),
    /// The trivially true constraint (empty conjunction).
    ///
    /// Not part of the paper's grammar, but convenient as the constraint of a
    /// monomorphic abstraction; it is entailed by every context.
    True,
}

impl Constraint {
    /// Builds the atomic constraint `lhs ⪯ rhs`.
    pub fn leq(lhs: impl Into<PrioTerm>, rhs: impl Into<PrioTerm>) -> Self {
        Constraint::Leq {
            lhs: lhs.into(),
            rhs: rhs.into(),
        }
    }

    /// Conjoins two constraints.
    pub fn and(self, other: Constraint) -> Self {
        Constraint::And(Box::new(self), Box::new(other))
    }

    /// Builds the conjunction of an iterator of constraints ([`Constraint::True`]
    /// if empty).
    pub fn all(cs: impl IntoIterator<Item = Constraint>) -> Self {
        let mut iter = cs.into_iter();
        match iter.next() {
            None => Constraint::True,
            Some(first) => iter.fold(first, |acc, c| acc.and(c)),
        }
    }

    /// Flattens the constraint into its atomic `⪯` conjuncts.
    pub fn conjuncts(&self) -> Vec<(&PrioTerm, &PrioTerm)> {
        let mut out = Vec::new();
        self.collect_conjuncts(&mut out);
        out
    }

    fn collect_conjuncts<'a>(&'a self, out: &mut Vec<(&'a PrioTerm, &'a PrioTerm)>) {
        match self {
            Constraint::Leq { lhs, rhs } => out.push((lhs, rhs)),
            Constraint::And(a, b) => {
                a.collect_conjuncts(out);
                b.collect_conjuncts(out);
            }
            Constraint::True => {}
        }
    }

    /// Applies a priority substitution to every term in the constraint.
    pub fn subst(&self, s: &PrioSubst) -> Constraint {
        match self {
            Constraint::Leq { lhs, rhs } => Constraint::Leq {
                lhs: lhs.subst(s),
                rhs: rhs.subst(s),
            },
            Constraint::And(a, b) => Constraint::And(Box::new(a.subst(s)), Box::new(b.subst(s))),
            Constraint::True => Constraint::True,
        }
    }

    /// Collects the free priority variables of the constraint.
    pub fn free_vars(&self) -> Vec<PrioVar> {
        let mut out = Vec::new();
        for (l, r) in self.conjuncts() {
            l.free_vars(&mut out);
            r.free_vars(&mut out);
        }
        out
    }

    /// Whether the constraint mentions no priority variables.
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Leq { lhs, rhs } => write!(f, "{lhs} ⪯ {rhs}"),
            Constraint::And(a, b) => write!(f, "{a} ∧ {b}"),
            Constraint::True => write!(f, "⊤"),
        }
    }
}

/// Errors reported by entailment checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntailmentError {
    /// The goal constraint is not entailed; carries the first failing atomic
    /// conjunct rendered as text.
    NotEntailed(String),
}

impl fmt::Display for EntailmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntailmentError::NotEntailed(c) => write!(f, "constraint not entailed: {c}"),
        }
    }
}

impl std::error::Error for EntailmentError {}

/// A constraint context `Γ` restricted to its priority hypotheses: the
/// declared priority variables (`π prio`) and the hypothesised constraints.
///
/// # Example
///
/// ```
/// use rp_priority::{Constraint, ConstraintCtx, PrioTerm, PrioVar, PriorityDomain};
/// let dom = PriorityDomain::numeric(3);
/// let mut ctx = ConstraintCtx::new();
/// ctx.declare(PrioVar::new("pi"));
/// // Hypothesis: p1 ⪯ pi.
/// ctx.assume(Constraint::leq(dom.by_index(1), PrioTerm::var("pi")));
/// // Goal p0 ⪯ pi follows by trans through the ambient order p0 ⪯ p1.
/// let goal = Constraint::leq(dom.by_index(0), PrioTerm::var("pi"));
/// assert!(ctx.entails(&dom, &goal));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstraintCtx {
    vars: Vec<PrioVar>,
    hyps: Vec<Constraint>,
}

impl ConstraintCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a priority variable (`π prio`).
    pub fn declare(&mut self, var: PrioVar) {
        if !self.vars.contains(&var) {
            self.vars.push(var);
        }
    }

    /// Whether a priority variable has been declared.
    pub fn is_declared(&self, var: &PrioVar) -> bool {
        self.vars.contains(var)
    }

    /// Adds a hypothesised constraint.
    pub fn assume(&mut self, c: Constraint) {
        self.hyps.push(c);
    }

    /// The declared priority variables.
    pub fn vars(&self) -> &[PrioVar] {
        &self.vars
    }

    /// The hypothesised constraints.
    pub fn hypotheses(&self) -> &[Constraint] {
        &self.hyps
    }

    /// The entailment judgment `Γ ⊢^R C` (Figure 7).
    ///
    /// Returns `true` iff every atomic conjunct of `goal` follows from the
    /// hypotheses of this context, the order of `domain`, reflexivity, and
    /// transitivity.
    pub fn entails(&self, domain: &PriorityDomain, goal: &Constraint) -> bool {
        self.check(domain, goal).is_ok()
    }

    /// Like [`entails`](Self::entails) but reports which conjunct failed.
    ///
    /// # Errors
    ///
    /// Returns [`EntailmentError::NotEntailed`] describing the first atomic
    /// conjunct that could not be derived.
    // Index loops keep the transitive closure readable (see
    // `PriorityDomainBuilder::build`).
    #[allow(clippy::needless_range_loop)]
    pub fn check(&self, domain: &PriorityDomain, goal: &Constraint) -> Result<(), EntailmentError> {
        // Universe of terms: everything mentioned in hypotheses or the goal,
        // plus every concrete priority of the domain (so `assume` and
        // transitivity through concrete priorities work).
        let mut universe: Vec<PrioTerm> = Vec::new();
        let push = |t: &PrioTerm, universe: &mut Vec<PrioTerm>| {
            if !universe.contains(t) {
                universe.push(t.clone());
            }
        };
        for p in domain.iter() {
            push(&PrioTerm::Const(p), &mut universe);
        }
        for h in &self.hyps {
            for (l, r) in h.conjuncts() {
                push(l, &mut universe);
                push(r, &mut universe);
            }
        }
        for (l, r) in goal.conjuncts() {
            push(l, &mut universe);
            push(r, &mut universe);
        }

        let n = universe.len();
        let ix = |t: &PrioTerm| universe.iter().position(|u| u == t).expect("in universe");

        // leq[i][j] = i ⪯ j is known.
        let mut leq = vec![vec![false; n]; n];
        // refl
        for (i, row) in leq.iter_mut().enumerate() {
            row[i] = true;
        }
        // assume: ambient order between concrete priorities.
        for (i, ti) in universe.iter().enumerate() {
            for (j, tj) in universe.iter().enumerate() {
                if let (Some(pi), Some(pj)) = (ti.as_const(), tj.as_const()) {
                    if domain.leq(pi, pj) {
                        leq[i][j] = true;
                    }
                }
            }
        }
        // hyp
        for h in &self.hyps {
            for (l, r) in h.conjuncts() {
                leq[ix(l)][ix(r)] = true;
            }
        }
        // trans: transitive closure.
        for k in 0..n {
            for i in 0..n {
                if leq[i][k] {
                    for j in 0..n {
                        if leq[k][j] {
                            leq[i][j] = true;
                        }
                    }
                }
            }
        }
        // conj: every conjunct of the goal must hold.
        for (l, r) in goal.conjuncts() {
            if !leq[ix(l)][ix(r)] {
                return Err(EntailmentError::NotEntailed(format!("{l} ⪯ {r}")));
            }
        }
        Ok(())
    }
}

/// Entailment with an empty context; only closed constraints can hold.
impl PriorityDomain {
    /// `· ⊢^R C` for a closed constraint `C`: every conjunct holds in the
    /// ambient order.
    ///
    /// Open constraints (mentioning priority variables) are never entailed by
    /// the empty context unless they are instances of reflexivity.
    pub fn entails_closed(&self, goal: &Constraint) -> bool {
        ConstraintCtx::new().entails(self, goal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom() -> PriorityDomain {
        PriorityDomain::total_order(["lo", "mid", "hi"]).unwrap()
    }

    #[test]
    fn assume_rule_concrete_order() {
        let d = dom();
        let lo = d.priority("lo").unwrap();
        let hi = d.priority("hi").unwrap();
        assert!(d.entails_closed(&Constraint::leq(lo, hi)));
        assert!(!d.entails_closed(&Constraint::leq(hi, lo)));
    }

    #[test]
    fn refl_rule() {
        let d = dom();
        let mid = d.priority("mid").unwrap();
        assert!(d.entails_closed(&Constraint::leq(mid, mid)));
        // Reflexivity also holds for variables, even undeclared ones.
        let ctx = ConstraintCtx::new();
        assert!(ctx.entails(
            &d,
            &Constraint::leq(PrioTerm::var("pi"), PrioTerm::var("pi"))
        ));
    }

    #[test]
    fn hyp_rule() {
        let d = dom();
        let mut ctx = ConstraintCtx::new();
        ctx.declare(PrioVar::new("pi"));
        let hyp = Constraint::leq(PrioTerm::var("pi"), d.priority("mid").unwrap());
        ctx.assume(hyp.clone());
        assert!(ctx.entails(&d, &hyp));
    }

    #[test]
    fn trans_rule_through_variable() {
        let d = dom();
        let mut ctx = ConstraintCtx::new();
        ctx.declare(PrioVar::new("pi"));
        ctx.assume(Constraint::leq(
            PrioTerm::var("pi"),
            d.priority("mid").unwrap(),
        ));
        // pi ⪯ mid and mid ⪯ hi (ambient) gives pi ⪯ hi.
        assert!(ctx.entails(
            &d,
            &Constraint::leq(PrioTerm::var("pi"), d.priority("hi").unwrap())
        ));
        // But not pi ⪯ lo.
        assert!(!ctx.entails(
            &d,
            &Constraint::leq(PrioTerm::var("pi"), d.priority("lo").unwrap())
        ));
    }

    #[test]
    fn conj_rule() {
        let d = dom();
        let lo = d.priority("lo").unwrap();
        let mid = d.priority("mid").unwrap();
        let hi = d.priority("hi").unwrap();
        let both = Constraint::leq(lo, mid).and(Constraint::leq(mid, hi));
        assert!(d.entails_closed(&both));
        let bad = Constraint::leq(lo, mid).and(Constraint::leq(hi, lo));
        assert!(!d.entails_closed(&bad));
    }

    #[test]
    fn true_constraint_always_entailed() {
        let d = dom();
        assert!(d.entails_closed(&Constraint::True));
        assert!(d.entails_closed(&Constraint::all(Vec::new())));
    }

    #[test]
    fn check_reports_failing_conjunct() {
        let d = dom();
        let hi = d.priority("hi").unwrap();
        let lo = d.priority("lo").unwrap();
        let err = ConstraintCtx::new()
            .check(&d, &Constraint::leq(hi, lo))
            .unwrap_err();
        assert!(matches!(err, EntailmentError::NotEntailed(_)));
        assert!(err.to_string().contains("⪯"));
    }

    #[test]
    fn subst_then_entail_models_forall_elim() {
        // (Λπ ∼ π ⪯ hi . e)[mid] requires · ⊢ mid ⪯ hi after substitution.
        let d = dom();
        let c = Constraint::leq(PrioTerm::var("pi"), d.priority("hi").unwrap());
        let subst = PrioSubst::single(PrioVar::new("pi"), d.priority("mid").unwrap());
        assert!(d.entails_closed(&c.subst(&subst)));
        let bad_subst = PrioSubst::single(PrioVar::new("pi"), d.priority("hi").unwrap());
        // hi ⪯ hi still fine (refl)…
        assert!(d.entails_closed(&c.subst(&bad_subst)));
        // …but the reverse constraint is not satisfied by mid.
        let c_rev = Constraint::leq(d.priority("hi").unwrap(), PrioTerm::var("pi"));
        assert!(!d.entails_closed(&c_rev.subst(&subst)));
    }

    #[test]
    fn free_vars_and_closed() {
        let d = dom();
        let c = Constraint::leq(PrioTerm::var("a"), d.priority("lo").unwrap())
            .and(Constraint::leq(PrioTerm::var("b"), PrioTerm::var("a")));
        let fv = c.free_vars();
        assert_eq!(fv.len(), 2);
        assert!(!c.is_closed());
        assert!(Constraint::leq(d.priority("lo").unwrap(), d.priority("hi").unwrap()).is_closed());
    }

    #[test]
    fn display_is_readable() {
        let d = dom();
        let c = Constraint::leq(d.priority("lo").unwrap(), d.priority("hi").unwrap())
            .and(Constraint::True);
        let s = format!("{c}");
        assert!(s.contains("⪯") && s.contains("∧"));
    }

    #[test]
    fn incomparable_levels_not_entailed_either_way() {
        let d = PriorityDomain::builder()
            .level("bot")
            .level("l")
            .level("r")
            .lt("bot", "l")
            .lt("bot", "r")
            .build()
            .unwrap();
        let l = d.priority("l").unwrap();
        let r = d.priority("r").unwrap();
        assert!(!d.entails_closed(&Constraint::leq(l, r)));
        assert!(!d.entails_closed(&Constraint::leq(r, l)));
    }
}
