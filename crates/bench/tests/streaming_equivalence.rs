//! Streaming vs post-hoc equivalence: the incremental reconstructor, fed the
//! same event log in arbitrary batch sizes, must retire exactly the request
//! subgraphs the post-hoc per-component path produces — same tasks, same
//! graphs, same observed schedules, and bit-identical Theorem 2.3 verdicts.
//!
//! The suite covers every trace source the repo has: the proxy case study in
//! closed and open loop, the email case study, a λ⁴ᵢ program through the
//! full pipeline, and a real socket run.  A final test exercises epoch-based
//! retirement live against a streaming [`NetServer`]: under wave-by-wave
//! load the reconstructor's working set must return to zero between waves
//! while the retired-subgraph gauge keeps growing.

use rp_apps::harness::{
    shutdown_runtime, take_socket_frame, write_socket_frame, ExperimentConfig, OpenLoopConfig,
};
use rp_apps::{email, proxy};
use rp_core::stream::{IncrementalReconstructor, StreamConfig, SubgraphReport};
use rp_core::trace::{ExecutionTrace, ReconstructedRun, TaskKey};
use rp_icilk::runtime::SchedulerKind;
use rp_lambda4i::compile::CompileConfig;
use rp_lambda4i::pipeline::{run_source, PipelineConfig};
use rp_net::protocol::{decode_response, encode_request};
use rp_net::{AppOp, NetServer, NetServerConfig, Request, Response};
use rp_sim::latency::LatencyModel;
use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Batch sizes used to chunk-feed the streaming reconstructor.  A small odd
/// size maximises drain-boundary splits, a medium size mimics real drains,
/// and `usize::MAX` degenerates to a single batch.
const CHUNK_SIZES: [usize; 3] = [23, 257, usize::MAX];

fn min_task_key(run: &ReconstructedRun) -> TaskKey {
    run.tasks.iter().map(|t| t.key).min().unwrap_or(0)
}

/// Feeds `trace` to an [`IncrementalReconstructor`] in `chunk` sized batches
/// and returns every retired subgraph, sorted by smallest task key.
fn stream_in_chunks(trace: &ExecutionTrace, chunk: usize) -> Vec<SubgraphReport> {
    let config = StreamConfig {
        // A tight window and short grace keep the test fast; correctness
        // must not depend on either because the input is already sorted.
        reorder_window_nanos: 100_000,
        grace_epochs: 1,
        ..StreamConfig::new(trace.level_names.clone(), trace.num_workers)
    };
    let mut recon = IncrementalReconstructor::new(config).expect("valid stream config");
    let mut reports = Vec::new();
    for batch in trace.events.chunks(chunk.min(trace.events.len().max(1))) {
        reports.extend(recon.ingest(batch).expect("ingest succeeds"));
    }
    reports.extend(recon.finalize().expect("finalize succeeds"));

    let counters = recon.counters();
    assert_eq!(counters.unresolved_events, 0, "no orphan was ever dropped");
    assert_eq!(counters.live_tasks, 0, "finalize retires every task");
    assert_eq!(counters.live_components, 0);
    assert_eq!(counters.pending_events, 0);
    assert_eq!(recon.aggregates().skipped_tasks, 0, "drained trace");

    reports.sort_by_key(SubgraphReport::min_key);
    reports
}

/// Asserts that streaming reconstruction of `trace` — at every chunk size —
/// retires exactly the components the post-hoc path produces, with
/// bit-identical Theorem 2.3 verdicts.
fn assert_streaming_matches_post_hoc(trace: &ExecutionTrace, label: &str) {
    let mut post_hoc = trace
        .reconstruct_components()
        .expect("post-hoc components reconstruct");
    // Retirement order is completion order, so align both sides on the
    // component's smallest task key before comparing.
    post_hoc.sort_by_key(min_task_key);

    for chunk in CHUNK_SIZES {
        let streamed = stream_in_chunks(trace, chunk);
        assert_eq!(
            streamed.len(),
            post_hoc.len(),
            "{label}/chunk={chunk}: component count"
        );
        for (s, p) in streamed.iter().zip(&post_hoc) {
            let key = min_task_key(p);
            assert_eq!(
                s.run.tasks, p.tasks,
                "{label}/chunk={chunk}/component={key}: task metadata"
            );
            assert_eq!(
                s.run.dag.vertex_count(),
                p.dag.vertex_count(),
                "{label}/chunk={chunk}/component={key}: vertex count"
            );
            assert_eq!(
                format!("{:?}", s.run.schedule.steps),
                format!("{:?}", p.schedule.steps),
                "{label}/chunk={chunk}/component={key}: observed schedule"
            );
            assert_eq!(s.run.skipped, p.skipped);
            // Verdicts must be bit-identical, floats included, which Debug
            // formatting captures exactly.
            assert_eq!(
                format!("{:?}", s.observed),
                format!("{:?}", p.check_observed()),
                "{label}/chunk={chunk}/component={key}: observed verdicts"
            );
            assert_eq!(
                format!("{:?}", s.replay),
                format!("{:?}", p.check_replay(trace.num_workers)),
                "{label}/chunk={chunk}/component={key}: replay verdicts"
            );
            assert_eq!(s.counterexamples(), 0, "{label}: Theorem 2.3 holds");
        }
    }
}

fn app_config() -> ExperimentConfig {
    ExperimentConfig {
        workers: 2,
        connections: 3,
        requests_per_connection: 3,
        io_latency: LatencyModel::Constant { micros: 200 },
        seed: 0x5EED_57EA,
        ..ExperimentConfig::default()
    }
    .traced()
}

/// Runs `drive` on a freshly started traced runtime and returns the drained
/// trace snapshot.
fn traced_app_run(
    config: &ExperimentConfig,
    levels: &[&str],
    drive: impl FnOnce(&Arc<rp_icilk::runtime::Runtime>),
) -> ExecutionTrace {
    let rt = Arc::new(config.start_runtime(SchedulerKind::ICilk, levels));
    drive(&rt);
    assert!(rt.drain(Duration::from_secs(10)), "runtime drains");
    let trace = rt.trace_snapshot().expect("tracing enabled");
    shutdown_runtime(rt, Duration::from_secs(10));
    trace
}

#[test]
fn proxy_closed_loop_streams_identically_to_post_hoc() {
    let config = app_config();
    let trace = traced_app_run(&config, &proxy::LEVELS, |rt| {
        let state = proxy::ProxyState::new();
        proxy::drive(rt, &state, &config);
    });
    assert_streaming_matches_post_hoc(&trace, "proxy-closed");
}

#[test]
fn proxy_open_loop_streams_identically_to_post_hoc() {
    let config = app_config().open_loop(OpenLoopConfig {
        arrival_rate_per_sec: 300.0,
        warmup_millis: 10,
        measure_millis: 60,
    });
    let trace = traced_app_run(&config, &proxy::LEVELS, |rt| {
        let state = proxy::ProxyState::new();
        proxy::drive(rt, &state, &config);
    });
    assert_streaming_matches_post_hoc(&trace, "proxy-open");
}

#[test]
fn email_closed_loop_streams_identically_to_post_hoc() {
    let config = app_config();
    let trace = traced_app_run(&config, &email::LEVELS, |rt| {
        let state = email::EmailState::generate(3, 3, config.seed);
        email::drive(rt, &state, &config);
    });
    assert_streaming_matches_post_hoc(&trace, "email-closed");
}

#[test]
fn lambda4i_pipeline_streams_identically_to_post_hoc() {
    let src = "\
priorities: bg < fg
program streamed : nat
main @ fg:
  a <- cmd[fg]{fcreate[p; nat]{ret 9}};
  b <- cmd[fg]{fcreate[q; nat]{ret 4}};
  x <- cmd[fg]{ftouch a};
  y <- cmd[fg]{ftouch b};
  ret (x + y)
";
    let config = PipelineConfig {
        runtime: CompileConfig {
            tracing: true,
            ..CompileConfig::default()
        },
        ..PipelineConfig::default()
    };
    let report = run_source(src, &config).expect("pipeline runs");
    let trace = report.runtime.trace.as_ref().expect("tracing enabled");
    assert_streaming_matches_post_hoc(trace, "lambda4i");
}

// ---------------------------------------------------------------------------
// Socket mode.
// ---------------------------------------------------------------------------

/// Sends `requests` over one connection and collects every response.
fn roundtrip(addr: SocketAddr, requests: &[Request]) -> Vec<Response> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_millis(10)))
        .expect("timeout");
    for (i, req) in requests.iter().enumerate() {
        write_socket_frame(&mut stream, i as u64, &encode_request(req)).expect("send");
    }
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut responses = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    while responses.len() < requests.len() {
        assert!(
            Instant::now() < deadline,
            "timed out with {}/{} responses",
            responses.len(),
            requests.len()
        );
        match stream.read(&mut chunk) {
            Ok(0) => panic!("server closed the connection"),
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                while let Some((_, body)) = take_socket_frame(&mut buf).expect("valid frames") {
                    responses.push(decode_response(&body).expect("valid response"));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("read: {e}"),
        }
    }
    responses
}

fn wave(seed: u64) -> Vec<Request> {
    vec![
        Request::App(AppOp::ProxyGet {
            url: format!("http://site/{seed}"),
            body_if_missed: bytes::Bytes::from(format!("body {seed}").into_bytes()),
        }),
        Request::App(AppOp::EmailCompress { user: 0, msg: 0 }),
        Request::App(AppOp::JserverJob {
            class: 1,
            seed: seed & 0x7,
        }),
        Request::App(AppOp::EmailPrint { user: 0, msg: 0 }),
    ]
}

#[test]
fn socket_run_streams_identically_to_post_hoc() {
    // Tracing on, streaming off: the server buffers the whole run so the
    // post-hoc snapshot sees every event, and we stream the same snapshot.
    let server = NetServer::start(NetServerConfig {
        shards: 2,
        workers: 2,
        tracing: true,
        io_latency: LatencyModel::Constant { micros: 200 },
        ..NetServerConfig::default()
    })
    .expect("server starts");
    let responses = roundtrip(server.addr(), &wave(7));
    assert_eq!(responses.len(), 4);
    assert!(server.drain(Duration::from_secs(10)));
    let trace = server.runtime().trace_snapshot().expect("tracing enabled");
    server.shutdown();
    assert_streaming_matches_post_hoc(&trace, "socket");
}

/// Epoch-based retirement live: under wave-by-wave socket load the
/// reconstructor's working set (live tasks, live components, pending
/// events) returns to zero between waves, while the retired-subgraph gauge
/// grows by at least one subgraph per request.  Memory is bounded by
/// in-flight work, not run length.
#[test]
fn streaming_server_working_set_plateaus_under_waves() {
    let server = NetServer::start(NetServerConfig {
        shards: 2,
        workers: 2,
        tracing: true,
        streaming_trace: true,
        io_latency: LatencyModel::Constant { micros: 200 },
        ..NetServerConfig::default()
    })
    .expect("server starts");

    const WAVES: u64 = 3;
    let per_wave = wave(0).len() as u64;
    let mut retired_after_wave = Vec::new();
    let mut max_live_tasks = 0;
    for w in 0..WAVES {
        let responses = roundtrip(server.addr(), &wave(w));
        assert_eq!(responses.len(), per_wave as usize);
        // Wait for the drain thread to flush and retire the whole wave.
        let deadline = Instant::now() + Duration::from_secs(30);
        let stats = loop {
            let s = server.stream_stats().expect("streaming is on");
            max_live_tasks = max_live_tasks.max(s.counters.live_tasks);
            if s.counters.live_components == 0
                && s.counters.pending_events == 0
                && s.aggregates.retired_subgraphs >= (w + 1) * per_wave
            {
                break s;
            }
            assert!(
                Instant::now() < deadline,
                "wave {w} never fully retired: {s:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(stats.counters.live_tasks, 0, "working set returns to zero");
        assert_eq!(stats.trace.dropped_events, 0, "no tracer overflow");
        assert_eq!(stats.ingest_errors, 0);
        assert_eq!(stats.aggregates.counterexamples, 0, "Theorem 2.3 holds");
        retired_after_wave.push(stats.aggregates.retired_subgraphs);
    }

    // The gauge is monotone and grows by at least one subgraph per request,
    // so memory (∝ live tasks) stays bounded while history keeps growing.
    for pair in retired_after_wave.windows(2) {
        assert!(
            pair[1] >= pair[0] + per_wave,
            "retired gauge stalled: {retired_after_wave:?}"
        );
    }
    // The peak working set is on the order of one wave of in-flight
    // requests, not the whole run: a very loose cap still proves the point
    // against unbounded accumulation.
    assert!(
        max_live_tasks <= 64 * per_wave,
        "live-task peak {max_live_tasks} suggests retirement is not keeping up"
    );
    server.shutdown();
}
