//! Criterion bench: ablations over the design choices DESIGN.md calls out —
//! the master scheduler's quantum length and growth parameter γ, measured by
//! how quickly a saturated high-priority level is granted cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rp_icilk::master::{rebalance, MasterConfig};
use rp_icilk::pool::{PoolKind, SharedState};
use rp_icilk::priority::PrioritySet;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Number of rebalance rounds until a fully-busy top level is granted all
/// cores, for a given master configuration.
fn rounds_until_saturated(config: &MasterConfig, workers: usize) -> usize {
    let shared = SharedState::new(PrioritySet::numeric(3), workers, PoolKind::Prioritized);
    for round in 1..=64 {
        // The top level is always fully busy on whatever it was allotted and
        // has a deep backlog.
        let top = &shared.levels[2];
        let allot = top.allotment.load(Ordering::Relaxed).max(1) as u64;
        top.busy_nanos
            .store(allot * config.quantum.as_nanos() as u64, Ordering::Relaxed);
        top.pending.store(64, Ordering::Relaxed);
        rebalance(&shared, config);
        if shared.levels[2].allotment.load(Ordering::Relaxed) >= workers {
            return round;
        }
    }
    64
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    for growth in [1.5f64, 2.0, 4.0] {
        let config = MasterConfig {
            growth,
            ..MasterConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("rebalance", format!("gamma-{growth}")),
            &config,
            |b, cfg| b.iter(|| rounds_until_saturated(cfg, 16)),
        );
    }
    for quantum_us in [100u64, 500, 2_000] {
        let config = MasterConfig {
            quantum: Duration::from_micros(quantum_us),
            ..MasterConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("rebalance", format!("quantum-{quantum_us}us")),
            &config,
            |b, cfg| b.iter(|| rounds_until_saturated(cfg, 16)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
