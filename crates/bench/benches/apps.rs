//! Criterion bench: end-to-end case-study runs (small configurations) on
//! I-Cilk vs the baseline — the benchmark-sized version of Figures 13/14.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rp_apps::harness::ExperimentConfig;
use rp_apps::{jserver, proxy};
use rp_sim::latency::LatencyModel;
use std::time::Duration;

fn small_config() -> ExperimentConfig {
    ExperimentConfig {
        workers: 2,
        connections: 4,
        requests_per_connection: 3,
        io_latency: LatencyModel::Constant { micros: 200 },
        ..ExperimentConfig::default()
    }
}

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    let config = small_config();
    group.bench_with_input(
        BenchmarkId::new("proxy", "both-schedulers"),
        &config,
        |b, cfg| b.iter(|| proxy::run_experiment(cfg)),
    );
    group.bench_with_input(
        BenchmarkId::new("jserver", "both-schedulers"),
        &config,
        |b, cfg| b.iter(|| jserver::run_experiment(cfg)),
    );
    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
