//! Criterion bench: cost of the Section 2 analyses (well-formedness,
//! a-strengthening, a-span, competitor work, the Theorem 2.3 bound) on
//! randomly generated well-formed DAGs of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rp_core::prelude::*;
use std::time::Duration;

fn dag_of_size(depth: usize, seed: u64) -> CostDag {
    let config = RandomDagConfig {
        priority_levels: 3,
        max_depth: depth,
        max_children: 3,
        max_thread_len: 5,
        touch_probability: 0.7,
        weak_edge_probability: 0.3,
    };
    RandomDagGenerator::new(config, seed).generate()
}

fn bench_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("bound");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for depth in [3usize, 4, 5] {
        let dag = dag_of_size(depth, 7);
        let main = dag.threads().next().expect("root thread");
        group.bench_with_input(
            BenchmarkId::new("well_formed", dag.vertex_count()),
            &dag,
            |b, dag| b.iter(|| check_well_formed(dag).is_ok()),
        );
        group.bench_with_input(
            BenchmarkId::new("response_time_bound", dag.vertex_count()),
            &dag,
            |b, dag| b.iter(|| response_time_bound(dag, main, 8)),
        );
        group.bench_with_input(
            BenchmarkId::new("bound_check_vs_prompt_schedule", dag.vertex_count()),
            &dag,
            |b, dag| {
                let sched = prompt_schedule(dag, 8);
                b.iter(|| check_response_time_bound(dag, &sched, main))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bound);
criterion_main!(benches);
