//! Criterion bench: the λ⁴ᵢ abstract machine — type checking and running the
//! example programs under the prompt and oblivious D-Par policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rp_lambda4i::policy::SelectionPolicy;
use rp_lambda4i::progs;
use rp_lambda4i::run::{run_program, RunConfig};
use rp_lambda4i::typecheck::typecheck_program;
use std::time::Duration;

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("lambda4i");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for prog in [progs::parallel_fib(5), progs::server_with_background(3, 6)] {
        group.bench_with_input(
            BenchmarkId::new("typecheck", &prog.name),
            &prog,
            |b, prog| b.iter(|| typecheck_program(prog).expect("type checks")),
        );
        for (policy, label) in [
            (SelectionPolicy::Prompt, "run-prompt"),
            (SelectionPolicy::Oblivious, "run-oblivious"),
        ] {
            let config = RunConfig {
                cores: 2,
                policy,
                max_steps: 1_000_000,
            };
            group.bench_with_input(BenchmarkId::new(label, &prog.name), &prog, |b, prog| {
                b.iter(|| run_program(prog, &config).expect("runs"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
