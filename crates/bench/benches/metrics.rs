//! Microbenchmark of the metrics-collection hot path: every task completion
//! on every worker calls `MetricsCollector::record_task`, so this compares
//! the sharded collector against the retained global-mutex reference under
//! 8-thread contention (the acceptance scenario of the open-loop harness
//! work) and single-threaded (the uncontended floor).

use criterion::{criterion_group, criterion_main, Criterion};
use rp_icilk::metrics::{reference::MutexMetricsCollector, MetricsCollector};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 20_000;

fn hammer<C, F>(collector: Arc<C>, record: F)
where
    C: Send + Sync + 'static,
    F: Fn(&C, usize) + Copy + Send + 'static,
{
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let collector = Arc::clone(&collector);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..OPS_PER_THREAD {
                    record(&collector, t + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("bench thread");
    }
}

fn record_sharded(c: &MetricsCollector, i: usize) {
    c.record_task(i % 4, Duration::from_micros(100), Duration::from_micros(50));
}

fn record_mutexed(c: &MutexMetricsCollector, i: usize) {
    c.record_task(i % 4, Duration::from_micros(100), Duration::from_micros(50));
}

fn bench_record_task(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_record_task");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("sharded_8_threads", |b| {
        b.iter(|| hammer(Arc::new(MetricsCollector::new(4)), record_sharded));
    });
    group.bench_function("global_mutex_8_threads", |b| {
        b.iter(|| hammer(Arc::new(MutexMetricsCollector::new(4)), record_mutexed));
    });
    group.bench_function("sharded_single_thread", |b| {
        let collector = MetricsCollector::new(4);
        b.iter(|| {
            for i in 0..OPS_PER_THREAD {
                record_sharded(&collector, i);
            }
        });
    });
    group.bench_function("global_mutex_single_thread", |b| {
        let collector = MutexMetricsCollector::new(4);
        b.iter(|| {
            for i in 0..OPS_PER_THREAD {
                record_mutexed(&collector, i);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_record_task);
criterion_main!(benches);
