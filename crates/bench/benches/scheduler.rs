//! Criterion bench: offline schedulers (prompt vs oblivious vs random) on
//! random well-formed DAGs, plus the 50k-vertex prompt-scheduling kernel
//! comparing the bucketed implementation against the retained naive
//! reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rp_core::prelude::*;
use rp_core::scheduler::reference;
use std::time::Duration;

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let dag = RandomDagGenerator::new(RandomDagConfig::default(), 11).generate();
    for cores in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("prompt", cores), &cores, |b, &cores| {
            b.iter(|| prompt_schedule(&dag, cores))
        });
        group.bench_with_input(BenchmarkId::new("oblivious", cores), &cores, |b, &cores| {
            b.iter(|| oblivious_schedule(&dag, cores))
        });
        group.bench_with_input(BenchmarkId::new("random", cores), &cores, |b, &cores| {
            b.iter(|| random_schedule(&dag, cores, 3))
        });
    }
    group.finish();
}

/// The acceptance kernel: a seeded 50k-vertex / 1k-thread / 8-level DAG at
/// P = 8.  `bucketed` is the production scheduler; `naive` is the retained
/// `O(ready²·P)`-per-step reference producing identical schedules.
fn bench_prompt_50k(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_50k");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    let dag = sized_dag(0x5EED_50C5, 1_000, 50, 8);
    group.bench_with_input(
        BenchmarkId::new("bucketed", dag.vertex_count()),
        &8usize,
        |b, &cores| b.iter(|| prompt_schedule(&dag, cores)),
    );
    group.bench_with_input(
        BenchmarkId::new("naive", dag.vertex_count()),
        &8usize,
        |b, &cores| b.iter(|| reference::prompt_schedule(&dag, cores)),
    );
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_prompt_50k);
criterion_main!(benches);
