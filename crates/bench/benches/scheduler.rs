//! Criterion bench: offline schedulers (prompt vs oblivious vs random) on
//! random well-formed DAGs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rp_core::prelude::*;
use std::time::Duration;

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let dag = RandomDagGenerator::new(RandomDagConfig::default(), 11).generate();
    for cores in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("prompt", cores), &cores, |b, &cores| {
            b.iter(|| prompt_schedule(&dag, cores))
        });
        group.bench_with_input(BenchmarkId::new("oblivious", cores), &cores, |b, &cores| {
            b.iter(|| oblivious_schedule(&dag, cores))
        });
        group.bench_with_input(BenchmarkId::new("random", cores), &cores, |b, &cores| {
            b.iter(|| random_schedule(&dag, cores, 3))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
