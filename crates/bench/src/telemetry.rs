//! Mid-sweep telemetry scraping for the bench binaries.
//!
//! While a bench drives load at the data plane, a [`Scraper`] polls the
//! same server's admin plane and checks, poll over poll, that the
//! telemetry it serves is *coherent*: every scrape is answered, the
//! wire counters are monotone, and the latency quantiles are ordered.
//! After the run drains, [`reconcile`] compares a final scrape against
//! the server's in-process snapshot — the wire view and the process
//! view must agree exactly.  The binaries fold the resulting
//! [`ScrapeTally`] into their JSON reports as a `telemetry` section and
//! exit non-zero on any violation, so CI catches a telemetry-plane
//! regression the same way it catches a Theorem 2.3 counterexample.

use rp_net::protocol::{AdminOp, MetricsFormat, RequestClass};
use rp_net::server::NetStatsSnapshot;
use rp_net::telemetry::scrape;
use rp_tools::prom::Exposition;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long one admin scrape may take before it counts as failed.
/// Generous: the admin plane bypasses the runtime, so even a drowning
/// server answers in microseconds — but CI boxes stall arbitrarily.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(5);

/// Counters that must never decrease from one scrape to the next.
const MONOTONE: &[&str] = &[
    "rp_frames_received_total",
    "rp_responses_sent_total",
    "rp_decode_errors_total",
    "rp_admin_requests_total",
    "rp_cache_hits_total",
    "rp_cache_misses_total",
];

/// What the scraper saw over one run.
#[derive(Debug, Default)]
pub struct ScrapeTally {
    /// Scrapes answered with a parseable exposition.
    pub scrapes: u64,
    /// Scrapes that errored or timed out.
    pub failures: u64,
    /// Counter decreases observed between consecutive scrapes.
    pub monotone_violations: u64,
    /// Quantile inversions (p50 > p95 or p95 > p99) in any scrape.
    pub quantile_violations: u64,
    /// The last successful scrape, parsed.
    pub last: Option<Exposition>,
}

impl ScrapeTally {
    /// Folds another tally into this one (the `last` of the later run
    /// wins).
    pub fn absorb(&mut self, other: ScrapeTally) {
        self.scrapes += other.scrapes;
        self.failures += other.failures;
        self.monotone_violations += other.monotone_violations;
        self.quantile_violations += other.quantile_violations;
        if other.last.is_some() {
            self.last = other.last;
        }
    }

    /// Whether every check passed.
    pub fn clean(&self) -> bool {
        self.failures == 0 && self.monotone_violations == 0 && self.quantile_violations == 0
    }
}

/// Checks p50 ≤ p95 ≤ p99 for every labelled series of `metric`.
fn quantile_inversions(exp: &Exposition, metric: &str, label: &str) -> u64 {
    let mut bad = 0;
    for value in exp.label_values(metric, label) {
        let q = |quantile: &str| exp.get(metric, &[(label, &value), ("quantile", quantile)]);
        if let (Some(p50), Some(p95), Some(p99)) = (q("0.5"), q("0.95"), q("0.99")) {
            if p50 > p95 || p95 > p99 {
                bad += 1;
            }
        }
    }
    bad
}

fn check_exposition(prev: Option<&Exposition>, cur: &Exposition, tally: &mut ScrapeTally) {
    if let Some(prev) = prev {
        for name in MONOTONE {
            if let (Some(before), Some(now)) = (prev.value(name), cur.value(name)) {
                if now < before {
                    tally.monotone_violations += 1;
                }
            }
        }
    }
    tally.quantile_violations += quantile_inversions(cur, "rp_request_latency_ns", "class");
    tally.quantile_violations += quantile_inversions(cur, "rp_level_response_ns", "level");
}

/// A background poller of a server's admin plane.
pub struct Scraper {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<ScrapeTally>,
}

impl Scraper {
    /// Starts polling `admin` every `interval` until [`stop`](Self::stop).
    pub fn start(admin: SocketAddr, interval: Duration) -> Scraper {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("bench-telemetry-scraper".into())
            .spawn(move || {
                let mut tally = ScrapeTally::default();
                while !stop2.load(Ordering::SeqCst) {
                    scrape_once(admin, &mut tally);
                    std::thread::sleep(interval);
                }
                // One parting scrape so even the shortest run tallies one.
                scrape_once(admin, &mut tally);
                tally
            })
            .expect("spawning the telemetry scraper");
        Scraper { stop, handle }
    }

    /// Stops the poller and returns what it saw.
    pub fn stop(self) -> ScrapeTally {
        self.stop.store(true, Ordering::SeqCst);
        self.handle.join().expect("telemetry scraper thread")
    }
}

fn scrape_once(admin: SocketAddr, tally: &mut ScrapeTally) {
    match scrape(
        admin,
        AdminOp::Metrics {
            format: MetricsFormat::Prometheus,
        },
        SCRAPE_TIMEOUT,
    ) {
        // A scrape that comes back malformed counts as a failure just like
        // one that never comes back: both mean the wire view is unusable.
        Ok(text) => match Exposition::parse(&text) {
            Ok(cur) => {
                let prev = tally.last.take();
                check_exposition(prev.as_ref(), &cur, tally);
                tally.scrapes += 1;
                tally.last = Some(cur);
            }
            Err(_) => tally.failures += 1,
        },
        Err(_) => tally.failures += 1,
    }
}

/// Compares the wire view (a post-drain scrape) against the process view
/// (`NetServer::stats`), returning one message per disagreement.  After a
/// drain both sides are quiescent, so the match must be exact.
pub fn reconcile(exp: &Exposition, stats: &NetStatsSnapshot) -> Vec<String> {
    let mut mismatches = Vec::new();
    let mut check = |name: &str, wire: Option<f64>, process: u64| match wire {
        Some(w) if w == process as f64 => {}
        Some(w) => mismatches.push(format!("{name}: wire {w} != process {process}")),
        None => mismatches.push(format!("{name}: missing from the exposition")),
    };
    check(
        "rp_frames_received_total",
        exp.value("rp_frames_received_total"),
        stats.frames_received,
    );
    check(
        "rp_responses_sent_total",
        exp.value("rp_responses_sent_total"),
        stats.responses_sent,
    );
    check(
        "rp_decode_errors_total",
        exp.value("rp_decode_errors_total"),
        stats.decode_errors,
    );
    for class in RequestClass::ALL {
        check(
            &format!("rp_requests_total{{class=\"{}\"}}", class.name()),
            exp.get("rp_requests_total", &[("class", class.name())]),
            stats.per_class[class.tag() as usize],
        );
    }
    mismatches
}

/// Renders the `telemetry` section of a bench JSON report.  `mismatches`
/// is the total wire/process reconciliation failures across the sweep.
pub fn telemetry_json(tally: &ScrapeTally, mismatches: u64) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "    \"scrapes\": {},", tally.scrapes);
    let _ = writeln!(json, "    \"scrape_failures\": {},", tally.failures);
    let _ = writeln!(
        json,
        "    \"monotone_violations\": {},",
        tally.monotone_violations
    );
    let _ = writeln!(
        json,
        "    \"quantile_violations\": {},",
        tally.quantile_violations
    );
    let _ = writeln!(json, "    \"reconcile_mismatches\": {mismatches},");
    json.push_str("    \"final_p95_latency_micros\": {");
    if let Some(exp) = &tally.last {
        let mut first = true;
        for class in RequestClass::ALL {
            let p95 = exp.get(
                "rp_request_latency_ns",
                &[("class", class.name()), ("quantile", "0.95")],
            );
            let _ = write!(
                json,
                "{}\"{}\": {}",
                if first { "" } else { ", " },
                class.name(),
                p95.map_or("null".to_string(), |ns| format!("{:.1}", ns / 1_000.0)),
            );
            first = false;
        }
    }
    json.push_str("}\n  }");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_inversions_are_counted_per_series() {
        let exp = Exposition::parse(
            "rp_request_latency_ns{class=\"app\",quantile=\"0.5\"} 100\n\
             rp_request_latency_ns{class=\"app\",quantile=\"0.95\"} 50\n\
             rp_request_latency_ns{class=\"app\",quantile=\"0.99\"} 200\n\
             rp_request_latency_ns{class=\"lambda\",quantile=\"0.5\"} 10\n\
             rp_request_latency_ns{class=\"lambda\",quantile=\"0.95\"} 20\n\
             rp_request_latency_ns{class=\"lambda\",quantile=\"0.99\"} 30\n",
        )
        .expect("fixture exposition scans");
        assert_eq!(
            quantile_inversions(&exp, "rp_request_latency_ns", "class"),
            1
        );
    }

    #[test]
    fn monotone_regressions_are_flagged() {
        let a = Exposition::parse("rp_frames_received_total 10\n").expect("scans");
        let b = Exposition::parse("rp_frames_received_total 9\n").expect("scans");
        let mut tally = ScrapeTally::default();
        check_exposition(Some(&a), &b, &mut tally);
        assert_eq!(tally.monotone_violations, 1);
    }
}
