//! Benchmark and figure-regeneration harness.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation section:
//!
//! * `table1` — Table 1: the cost of the priority layer at compile time,
//!   measured as λ⁴ᵢ type-checking time and judgment counts with and without
//!   priority checking on the three case-study encodings;
//! * `fig13` — Figure 13: responsiveness ratio (baseline / I-Cilk) for the
//!   proxy and email case studies across a sweep of connection counts;
//! * `fig14` — Figure 14: per-priority-level compute-time ratios for proxy,
//!   email, and jserver across the load sweep;
//! * `figures_dag` — Figures 1–3: the weak-edge example DAGs, their
//!   admissible/prompt schedules, well-formedness verdicts, and the
//!   a-strengthening, rendered as text and DOT.
//!
//! The Criterion benches in `benches/` measure the building blocks (bound
//! computation, schedulers, the λ⁴ᵢ machine, the runtime) and the ablations
//! over the master scheduler's parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod telemetry;

use rp_lambda4i::progs;
use rp_lambda4i::typecheck::{count_nodes, typecheck_program_with, CheckStats};
use std::time::{Duration, Instant};

/// One row of the Table 1 reproduction.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Case-study name.
    pub name: String,
    /// AST node count of the λ⁴ᵢ encoding (the "binary size" analogue).
    pub nodes: usize,
    /// Type-checking wall time without the priority layer.
    pub time_without: Duration,
    /// Type-checking wall time with the priority layer.
    pub time_with: Duration,
    /// Judgment statistics without priorities.
    pub stats_without: CheckStats,
    /// Judgment statistics with priorities.
    pub stats_with: CheckStats,
}

impl Table1Row {
    /// The compile-time overhead factor (with / without).
    pub fn time_overhead(&self) -> f64 {
        let w = self.time_with.as_secs_f64();
        let wo = self.time_without.as_secs_f64().max(1e-9);
        w / wo
    }

    /// The work overhead factor measured in entailment checks per judgment —
    /// the structural analogue of the paper's binary-size overhead.
    pub fn judgment_overhead(&self) -> f64 {
        let with = (self.stats_with.expr_judgments
            + self.stats_with.cmd_judgments
            + self.stats_with.entailment_checks) as f64;
        let without = (self.stats_without.expr_judgments + self.stats_without.cmd_judgments) as f64;
        with / without.max(1.0)
    }
}

/// Runs the Table 1 measurement for all three case studies.
///
/// Each configuration is checked `repeats` times and the minimum time is
/// kept (the paper reports the maximum of three compilations; the minimum is
/// the standard way to suppress noise for micro-measurements — both are
/// printed by the binary).
pub fn table1(repeats: usize) -> Vec<Table1Row> {
    progs::case_studies()
        .into_iter()
        .map(|prog| {
            let time = |with: bool| -> (Duration, CheckStats) {
                let mut best = Duration::MAX;
                let mut stats = CheckStats::default();
                for _ in 0..repeats.max(1) {
                    let start = Instant::now();
                    stats = typecheck_program_with(&prog, with).expect("case studies type check");
                    best = best.min(start.elapsed());
                }
                (best, stats)
            };
            let (time_without, stats_without) = time(false);
            let (time_with, stats_with) = time(true);
            Table1Row {
                name: prog.name.clone(),
                nodes: count_nodes(&prog),
                time_without,
                time_with,
                stats_without,
                stats_with,
            }
        })
        .collect()
}

/// Formats Table 1 in the paper's layout.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 1: type-checking cost of the priority layer (lambda-4i encodings)\n");
    out.push_str(
        "case study        nodes   check time w/o   with      overhead   judgment overhead\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>6}   {:>10.1}µs   {:>8.1}µs   {:>6.2}x   {:>6.2}x\n",
            r.name,
            r.nodes,
            r.time_without.as_secs_f64() * 1e6,
            r.time_with.as_secs_f64() * 1e6,
            r.time_overhead(),
            r.judgment_overhead(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_produces_three_rows_with_overheads() {
        let rows = table1(1);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.nodes > 100);
            assert!(r.time_overhead() > 0.0);
            assert!(
                r.judgment_overhead() >= 1.0,
                "priority checking only adds work"
            );
        }
        let rendered = format_table1(&rows);
        assert!(rendered.contains("proxy"));
        assert!(rendered.contains("email"));
        assert!(rendered.contains("jserver"));
    }
}
