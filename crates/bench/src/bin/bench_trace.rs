//! Traced-proxy bound check: runs the proxy case study under the runtime
//! cost-graph tracer, reconstructs a `CostDag` + `Schedule` from each run,
//! and checks the Theorem 2.3 response-time bound per thread against both
//! the observed execution and a replayed prompt admissible schedule.  Any
//! `is_counterexample()` report — hypotheses hold, bound fails — means the
//! scheduler, tracer, or bound analysis is buggy, so the binary prints the
//! offending reports and **exits non-zero**.
//!
//! Usage: `bench_trace [--quick] [--out PATH]`
//!
//! * `--quick` shrinks the sweep for CI smoke runs;
//! * `--out PATH` writes the JSON report (default `BENCH_trace.json`).
//!
//! The JSON records, per swept configuration, the reconstructed graph's
//! size, which hypotheses held, bound-slack percentiles (observed steps over
//! the adjusted bound, ≤ 1 when the bound holds), and wall-clock response
//! measurements; plus an A/B of the same closed-loop workload with tracing
//! off vs on.
//!
//! The binary also runs a **streaming sweep**: a traced socket server with
//! the incremental reconstructor on, driven at a constant request rate for
//! 30 s (2 s under `--quick`).  It fails on any Theorem 2.3 counterexample,
//! dropped trace event, or ingest error, and on a memory-bound violation —
//! the reconstructor's live working set must stay bounded by in-flight work
//! while retired subgraphs track completed requests.  A second A/B measures
//! the streaming drain loop against post-hoc reconstruction on the same
//! closed-loop workload (both timings include reconstruction).

use rp_apps::harness::{
    collect_trace, collect_trace_streaming, shutdown_runtime, take_socket_frame,
    write_socket_frame, ExperimentConfig, OpenLoopConfig, TraceRunReport,
};
use rp_apps::proxy;
use rp_icilk::runtime::{Runtime, RuntimeConfig, SchedulerKind};
use rp_net::protocol::encode_request;
use rp_net::{AppOp, NetServer, NetServerConfig, Request};
use rp_sim::latency::LatencyModel;
use std::fmt::Write as _;
use std::io::Read;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 0x7ACE_D00D;

fn base_config(workers: usize, connections: usize, requests: usize) -> ExperimentConfig {
    ExperimentConfig {
        workers,
        connections,
        requests_per_connection: requests,
        io_latency: LatencyModel::Uniform { lo: 200, hi: 1_200 },
        seed: SEED,
        ..ExperimentConfig::default()
    }
}

struct SweepRow {
    name: &'static str,
    workers: usize,
    mode: &'static str,
    rate_per_sec: Option<f64>,
    threads: usize,
    vertices: usize,
    edges: usize,
    skipped: usize,
    steals: u64,
    well_formed: bool,
    observed_admissible: bool,
    observed_prompt: bool,
    observed_hypotheses_held: usize,
    observed_counterexamples: usize,
    replay_counterexamples: usize,
    slack: Vec<f64>,
    measured_mean_micros: f64,
    measured_max_micros: f64,
}

fn summarise(
    name: &'static str,
    workers: usize,
    mode: &'static str,
    rate_per_sec: Option<f64>,
    report: &TraceRunReport,
) -> SweepRow {
    let (admissible, prompt, well_formed) = report
        .observed
        .first()
        .map(|r| (r.report.admissible, r.report.prompt, r.report.well_formed))
        .unwrap_or((false, false, false));
    // Bound slack over the replayed prompt schedule: the configuration the
    // theorem speaks about.  ≤ 1 everywhere unless something is broken.
    let mut slack: Vec<f64> = report
        .replay
        .iter()
        .filter(|r| r.report.hypotheses_hold())
        .filter_map(|r| r.slack_ratio())
        .collect();
    slack.sort_by(|a, b| a.partial_cmp(b).expect("slack ratios are finite"));
    let measured: Vec<f64> = report
        .run
        .tasks
        .iter()
        .filter(|t| !t.is_io)
        .map(|t| t.measured_response_nanos() as f64 / 1_000.0)
        .collect();
    let measured_mean_micros = if measured.is_empty() {
        0.0
    } else {
        measured.iter().sum::<f64>() / measured.len() as f64
    };
    let measured_max_micros = measured.iter().cloned().fold(0.0, f64::max);
    SweepRow {
        name,
        workers,
        mode,
        rate_per_sec,
        threads: report.run.dag.thread_count(),
        vertices: report.run.dag.vertex_count(),
        edges: report.run.dag.edges().len(),
        skipped: report.run.skipped,
        steals: report.run.steals,
        well_formed,
        observed_admissible: admissible,
        observed_prompt: prompt,
        observed_hypotheses_held: report.observed_hypotheses_held(),
        observed_counterexamples: report
            .observed
            .iter()
            .filter(|r| r.report.is_counterexample())
            .count(),
        replay_counterexamples: report
            .replay
            .iter()
            .filter(|r| r.report.is_counterexample())
            .count(),
        slack,
        measured_mean_micros,
        measured_max_micros,
    }
}

fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    Some(sorted[rank.min(sorted.len()) - 1])
}

/// A fully sequential spawn/touch/I-O chain on one worker and one priority
/// level.  With a single level and `P = 1` the observed schedule is prompt
/// by construction, so this is the configuration where Theorem 2.3 applies
/// to the observed execution *directly* (not just to the replay) — every
/// thread's hypotheses must hold and every bound must be respected.
fn run_chain_traced(links: u64) -> Result<TraceRunReport, String> {
    let rt = Arc::new(Runtime::start(
        RuntimeConfig::new(1, 1)
            .with_level_names(["only"])
            .with_tracing(true)
            .with_io_latency(LatencyModel::Constant { micros: 150 }, SEED),
    ));
    let p = rt.priority_by_name("only").expect("level exists");
    let rt2 = Arc::clone(&rt);
    let root = rt.fcreate(p, move || {
        let mut acc = 0u64;
        for i in 0..links {
            let child = rt2.fcreate(p, move || i);
            acc = acc.wrapping_add(rt2.ftouch(&child));
            let io = rt2.submit_io(p, move || i);
            acc = acc.wrapping_add(rt2.ftouch(&io));
        }
        acc
    });
    let _ = rt.ftouch_blocking(&root);
    let drained = rt.drain(Duration::from_secs(10));
    let report = collect_trace(&rt);
    shutdown_runtime(rt, Duration::from_secs(10));
    if !drained {
        // An undrained runtime leaves tasks mid-flight; the reconstruction
        // would skip them and the hypotheses check below would fail with a
        // misleading message.  Report the real cause instead.
        return Err("runtime did not drain within 10 s".to_string());
    }
    report.map_err(|e| format!("reconstruction failed: {e}"))
}

/// Wall time of one closed-loop proxy run (tracing per `config.trace`).
fn proxy_wall_time(config: &ExperimentConfig) -> Duration {
    let rt = Arc::new(config.start_runtime(SchedulerKind::ICilk, &proxy::LEVELS));
    let state = proxy::ProxyState::new();
    let started = Instant::now();
    let _ = proxy::drive(&rt, &state, config);
    let elapsed = started.elapsed();
    shutdown_runtime(rt, Duration::from_secs(10));
    elapsed
}

/// One batch of mixed app requests for the streaming sweep: two proxy
/// fetches (one unique URL forcing origin I/O, one repeat hitting the
/// cache), two email operations, and a CPU-heavy jserver job.
fn sweep_batch(round: u64) -> Vec<Request> {
    vec![
        Request::App(AppOp::ProxyGet {
            url: format!("http://origin/{round}"),
            body_if_missed: bytes::Bytes::from(format!("page {round}").into_bytes()),
        }),
        Request::App(AppOp::ProxyGet {
            url: "http://origin/hot".to_string(),
            body_if_missed: bytes::Bytes::from_static(b"hot page"),
        }),
        Request::App(AppOp::EmailCompress { user: 0, msg: 0 }),
        Request::App(AppOp::EmailPrint { user: 0, msg: 0 }),
        Request::App(AppOp::JserverJob {
            class: 1,
            seed: round & 0x7,
        }),
    ]
}

/// What the streaming sweep observed, for the JSON report.
struct StreamingSweep {
    duration_millis: f64,
    requests: u64,
    retired_subgraphs: u64,
    retired_threads: u64,
    retired_vertices: u64,
    counterexamples: u64,
    dropped_events: u64,
    ingest_errors: u64,
    unresolved_events: u64,
    max_live_tasks: u64,
    max_pending_events: u64,
    slack_max: f64,
    slack_samples: u64,
}

/// The reconstructor's live working set must be bounded by in-flight work.
/// One closed-loop connection keeps at most one batch in flight, so even a
/// very loose cap separates "bounded" from "retirement stopped keeping up".
const STREAM_LIVE_TASK_CAP: u64 = 1_024;

/// Drives a streaming-traced socket server closed-loop for `duration`,
/// sampling the live gauges per batch, then waits for quiescence and reads
/// the final aggregates.  Pushes one failure string per violated invariant.
fn run_streaming_sweep(duration: Duration, failures: &mut Vec<String>) -> Option<StreamingSweep> {
    let fail = |failures: &mut Vec<String>, msg: String| {
        failures.push(format!("streaming: {msg}"));
        None
    };
    let server = match NetServer::start(NetServerConfig {
        shards: 2,
        workers: 2,
        tracing: true,
        streaming_trace: true,
        io_latency: LatencyModel::Constant { micros: 200 },
        ..NetServerConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => return fail(failures, format!("server failed to start: {e:?}")),
    };

    let mut stream = match TcpStream::connect(server.addr()) {
        Ok(s) => s,
        Err(e) => return fail(failures, format!("connect: {e}")),
    };
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_millis(10)))
        .expect("timeout");

    let started = Instant::now();
    let hard_deadline = started + duration + Duration::from_secs(60);
    let mut id = 0u64;
    let mut responses = 0u64;
    let mut max_live_tasks = 0u64;
    let mut max_pending = 0u64;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    while started.elapsed() < duration {
        let batch = sweep_batch(id);
        for req in &batch {
            if let Err(e) = write_socket_frame(&mut stream, id, &encode_request(req)) {
                return fail(failures, format!("send: {e}"));
            }
            id += 1;
        }
        // Closed loop: wait for the whole batch before the next one.
        while responses < id {
            if Instant::now() > hard_deadline {
                return fail(failures, format!("stalled with {responses}/{id} responses"));
            }
            match stream.read(&mut chunk) {
                Ok(0) => return fail(failures, "server closed the connection".to_string()),
                Ok(n) => {
                    buf.extend_from_slice(&chunk[..n]);
                    while let Ok(Some(_)) = take_socket_frame(&mut buf) {
                        responses += 1;
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => return fail(failures, format!("read: {e}")),
            }
        }
        let live = server.stream_stats().expect("streaming is on");
        max_live_tasks = max_live_tasks.max(live.counters.live_tasks);
        max_pending = max_pending.max(live.counters.pending_events);
    }
    drop(stream);

    if !server.drain(Duration::from_secs(30)) {
        return fail(failures, "server did not drain".to_string());
    }
    // The drain thread flushes the reorder-window tail at quiescence; wait
    // for the working set to hit zero.
    let quiesce_deadline = Instant::now() + Duration::from_secs(30);
    let stats = loop {
        let s = server.stream_stats().expect("streaming is on");
        if s.counters.live_components == 0 && s.counters.pending_events == 0 {
            break s;
        }
        if Instant::now() > quiesce_deadline {
            return fail(failures, format!("never quiesced: {:?}", s.counters));
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let elapsed = started.elapsed();
    server.shutdown();

    let slack_max = stats
        .aggregates
        .levels
        .iter()
        .fold(0.0f64, |m, l| m.max(l.slack_max));
    let sweep = StreamingSweep {
        duration_millis: elapsed.as_secs_f64() * 1_000.0,
        requests: id,
        retired_subgraphs: stats.aggregates.retired_subgraphs,
        retired_threads: stats.aggregates.retired_threads,
        retired_vertices: stats.aggregates.retired_vertices,
        counterexamples: stats.aggregates.counterexamples,
        dropped_events: stats.trace.dropped_events,
        ingest_errors: stats.ingest_errors,
        unresolved_events: stats.counters.unresolved_events,
        max_live_tasks,
        max_pending_events: max_pending,
        slack_max,
        slack_samples: stats
            .aggregates
            .levels
            .iter()
            .map(|l| l.slack_samples)
            .sum(),
    };

    if sweep.counterexamples > 0 {
        failures.push(format!(
            "streaming: {} Theorem 2.3 counterexample(s) in retired subgraphs",
            sweep.counterexamples
        ));
    }
    if sweep.dropped_events > 0 {
        failures.push(format!(
            "streaming: tracer dropped {} event(s) — ring buffers overflowed",
            sweep.dropped_events
        ));
    }
    if sweep.ingest_errors > 0 {
        failures.push(format!(
            "streaming: {} drain-loop ingest error(s)",
            sweep.ingest_errors
        ));
    }
    if sweep.unresolved_events > 0 {
        failures.push(format!(
            "streaming: {} orphan event(s) dropped past grace",
            sweep.unresolved_events
        ));
    }
    if sweep.retired_subgraphs < sweep.requests {
        failures.push(format!(
            "streaming: retired only {} subgraph(s) for {} completed requests",
            sweep.retired_subgraphs, sweep.requests
        ));
    }
    if sweep.max_live_tasks > STREAM_LIVE_TASK_CAP {
        failures.push(format!(
            "streaming: live-task peak {} exceeds {} — memory not bounded by in-flight work",
            sweep.max_live_tasks, STREAM_LIVE_TASK_CAP
        ));
    }
    Some(sweep)
}

/// Wall time of one traced closed-loop proxy run reconstructed **post-hoc**:
/// drive, drain, then snapshot + reconstruct in one pass at the end.
fn post_hoc_wall_time(config: &ExperimentConfig, failures: &mut Vec<String>) -> f64 {
    let rt = Arc::new(config.start_runtime(SchedulerKind::ICilk, &proxy::LEVELS));
    let state = proxy::ProxyState::new();
    let started = Instant::now();
    let _ = proxy::drive(&rt, &state, config);
    let drained = rt.drain(Duration::from_secs(10));
    let report = collect_trace(&rt);
    let elapsed = started.elapsed();
    shutdown_runtime(rt, Duration::from_secs(10));
    if !drained {
        failures.push("drain-ab/post-hoc: runtime did not drain".to_string());
    }
    match report {
        Ok(r) => {
            if !r.counterexamples().is_empty() {
                failures.push("drain-ab/post-hoc: counterexample".to_string());
            }
        }
        Err(e) => failures.push(format!("drain-ab/post-hoc: {e}")),
    }
    elapsed.as_secs_f64() * 1_000.0
}

/// Wall time of the same run reconstructed **streaming**: the background
/// drain loop ingests while the workload runs, and `stop()` finalizes.
fn streaming_wall_time(config: &ExperimentConfig, failures: &mut Vec<String>) -> f64 {
    let rt = Arc::new(config.start_runtime(SchedulerKind::ICilk, &proxy::LEVELS));
    let state = proxy::ProxyState::new();
    let started = Instant::now();
    let collector = collect_trace_streaming(&rt).expect("config is traced");
    let _ = proxy::drive(&rt, &state, config);
    let drained = rt.drain(Duration::from_secs(10));
    let report = collector.stop();
    let elapsed = started.elapsed();
    shutdown_runtime(rt, Duration::from_secs(10));
    if !drained {
        failures.push("drain-ab/streaming: runtime did not drain".to_string());
    }
    if report.aggregates.counterexamples > 0 {
        failures.push("drain-ab/streaming: counterexample".to_string());
    }
    if report.trace.dropped_events > 0 {
        failures.push("drain-ab/streaming: dropped trace events".to_string());
    }
    if report.ingest_errors > 0 {
        failures.push("drain-ab/streaming: ingest errors".to_string());
    }
    elapsed.as_secs_f64() * 1_000.0
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.4}"),
        None => "null".to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_trace.json".to_string());

    let (connections, requests, rates, ab_trials) = if quick {
        (4usize, 3usize, vec![200.0f64, 500.0], 2usize)
    } else {
        (8, 4, vec![300.0, 800.0, 1_500.0], 3)
    };
    let (warmup_millis, measure_millis) = if quick { (20, 100) } else { (50, 250) };

    println!(
        "bench_trace: traced proxy runs, Theorem 2.3 as an executable oracle (seed {SEED:#x})"
    );
    let mut rows: Vec<SweepRow> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    // The prompt-by-construction chain: hypotheses must hold on *every*
    // thread of the observed schedule, not just vacuously.
    let chain_links = if quick { 8 } else { 24 };
    match run_chain_traced(chain_links) {
        Ok(report) => {
            for c in report.counterexamples() {
                failures.push(format!("chain-p1: {c:?}"));
            }
            let row = summarise("chain-p1", 1, "chain", None, &report);
            if row.observed_hypotheses_held != row.threads {
                failures.push(format!(
                    "chain-p1: hypotheses held on only {}/{} threads of a prompt-by-construction run",
                    row.observed_hypotheses_held, row.threads
                ));
            }
            rows.push(row);
        }
        Err(e) => failures.push(format!("chain-p1: {e}")),
    }

    // Closed loop on 1 and 2 workers.
    for workers in [1usize, 2] {
        let config = base_config(workers, connections, requests);
        let name: &'static str = if workers == 1 {
            "closed-p1"
        } else {
            "closed-p2"
        };
        match proxy::run_traced(&config) {
            Ok(report) => {
                for c in report.counterexamples() {
                    failures.push(format!("{name}: {c:?}"));
                }
                rows.push(summarise(name, workers, "closed", None, &report));
            }
            Err(e) => failures.push(format!("{name}: reconstruction failed: {e}")),
        }
    }
    // Open loop at swept arrival rates on 2 workers.
    let open_names: [&'static str; 3] = ["open-r0", "open-r1", "open-r2"];
    for (i, &rate) in rates.iter().enumerate() {
        let config = base_config(2, connections, requests).open_loop(OpenLoopConfig {
            arrival_rate_per_sec: rate,
            warmup_millis,
            measure_millis,
        });
        let name = open_names[i.min(open_names.len() - 1)];
        match proxy::run_traced(&config) {
            Ok(report) => {
                for c in report.counterexamples() {
                    failures.push(format!("{name}: {c:?}"));
                }
                rows.push(summarise(name, 2, "open", Some(rate), &report));
            }
            Err(e) => failures.push(format!("{name}: reconstruction failed: {e}")),
        }
    }

    // Every swept run drains before its snapshot, so a reconstruction that
    // skips tasks means the tracer lost events — the oracle would then be
    // checking a shrunken graph while still reporting zero counterexamples.
    // Fail loudly instead of letting the check go silently vacuous.
    for row in &rows {
        if row.skipped > 0 {
            failures.push(format!(
                "{}: reconstruction skipped {} incomplete task(s) after a drained run — \
                 the tracer lost events",
                row.name, row.skipped
            ));
        }
    }

    for row in &rows {
        println!(
            "{:<10} P={} threads {:>5} vertices {:>6} steals {:>4}  wf {}  obs prompt {}  hyp held {:>4}/{:<4}  cex obs {} replay {}  slack p95 {}",
            row.name,
            row.workers,
            row.threads,
            row.vertices,
            row.steals,
            row.well_formed,
            row.observed_prompt,
            row.observed_hypotheses_held,
            row.threads,
            row.observed_counterexamples,
            row.replay_counterexamples,
            fmt_opt(percentile(&row.slack, 95.0)),
        );
    }

    // Tracer overhead A/B on the same closed-loop workload.
    let ab_config = base_config(2, connections, requests);
    let mut off = f64::MAX;
    let mut on = f64::MAX;
    for _ in 0..ab_trials {
        off = off.min(proxy_wall_time(&ab_config).as_secs_f64() * 1_000.0);
        on = on.min(proxy_wall_time(&ab_config.clone().traced()).as_secs_f64() * 1_000.0);
    }
    let overhead_percent = (on / off - 1.0) * 100.0;
    println!(
        "tracer A/B (closed loop): off {off:.1} ms, on {on:.1} ms, overhead {overhead_percent:+.1}%"
    );

    // Streaming sweep: constant-rate traced socket load with the
    // incremental reconstructor retiring request subgraphs live.
    let stream_duration = Duration::from_secs(if quick { 2 } else { 30 });
    let streaming = run_streaming_sweep(stream_duration, &mut failures);
    if let Some(s) = &streaming {
        println!(
            "streaming  {:.1} s: {} requests, {} subgraphs retired ({} threads, {} vertices), \
             live-task peak {}, pending peak {}, slack max {:.4} over {} samples, \
             cex {} dropped {} ingest-errors {}",
            s.duration_millis / 1_000.0,
            s.requests,
            s.retired_subgraphs,
            s.retired_threads,
            s.retired_vertices,
            s.max_live_tasks,
            s.max_pending_events,
            s.slack_max,
            s.slack_samples,
            s.counterexamples,
            s.dropped_events,
            s.ingest_errors,
        );
    }

    // Drain-loop A/B: streaming reconstruction overlapped with the run vs
    // post-hoc reconstruction after it, both ending with verdicts in hand.
    let drain_config = base_config(2, connections, requests).traced();
    let mut post_hoc_ms = f64::MAX;
    let mut streaming_ms = f64::MAX;
    for _ in 0..ab_trials {
        post_hoc_ms = post_hoc_ms.min(post_hoc_wall_time(&drain_config, &mut failures));
        streaming_ms = streaming_ms.min(streaming_wall_time(&drain_config, &mut failures));
    }
    let drain_overhead_percent = (streaming_ms / post_hoc_ms - 1.0) * 100.0;
    println!(
        "drain A/B (closed loop): post-hoc {post_hoc_ms:.1} ms, streaming {streaming_ms:.1} ms, \
         overhead {drain_overhead_percent:+.1}%"
    );

    let mut json = String::new();
    json.push_str("{\n  \"kernel\": \"bench_trace\",\n  \"app\": \"proxy\",\n");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"sweep\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"workers\": {}, \"mode\": \"{}\", \"rate_per_sec\": {}, \
             \"threads\": {}, \"vertices\": {}, \"edges\": {}, \"skipped\": {}, \"steals\": {}, \
             \"well_formed\": {}, \"observed_admissible\": {}, \"observed_prompt\": {}, \
             \"observed_hypotheses_held\": {}, \"observed_counterexamples\": {}, \
             \"replay_counterexamples\": {}, \
             \"bound_slack\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"max\": {}}}, \
             \"measured_response_micros\": {{\"mean\": {:.1}, \"max\": {:.1}}}}}",
            row.name,
            row.workers,
            row.mode,
            fmt_opt(row.rate_per_sec),
            row.threads,
            row.vertices,
            row.edges,
            row.skipped,
            row.steals,
            row.well_formed,
            row.observed_admissible,
            row.observed_prompt,
            row.observed_hypotheses_held,
            row.observed_counterexamples,
            row.replay_counterexamples,
            row.slack.len(),
            fmt_opt(percentile(&row.slack, 50.0)),
            fmt_opt(percentile(&row.slack, 95.0)),
            fmt_opt(row.slack.last().copied()),
            row.measured_mean_micros,
            row.measured_max_micros,
        );
        let _ = writeln!(json, "{}", if i + 1 < rows.len() { "," } else { "" });
    }
    json.push_str("  ],\n  \"tracer_overhead\": {\n");
    let _ = writeln!(json, "    \"trials\": {ab_trials},");
    let _ = writeln!(json, "    \"traced_off_millis\": {off:.2},");
    let _ = writeln!(json, "    \"traced_on_millis\": {on:.2},");
    let _ = writeln!(json, "    \"overhead_percent\": {overhead_percent:.2}");
    json.push_str("  },\n");
    if let Some(s) = &streaming {
        json.push_str("  \"streaming\": {\n");
        let _ = writeln!(json, "    \"duration_millis\": {:.1},", s.duration_millis);
        let _ = writeln!(json, "    \"requests\": {},", s.requests);
        let _ = writeln!(json, "    \"retired_subgraphs\": {},", s.retired_subgraphs);
        let _ = writeln!(json, "    \"retired_threads\": {},", s.retired_threads);
        let _ = writeln!(json, "    \"retired_vertices\": {},", s.retired_vertices);
        let _ = writeln!(json, "    \"counterexamples\": {},", s.counterexamples);
        let _ = writeln!(json, "    \"dropped_events\": {},", s.dropped_events);
        let _ = writeln!(json, "    \"ingest_errors\": {},", s.ingest_errors);
        let _ = writeln!(json, "    \"unresolved_events\": {},", s.unresolved_events);
        let _ = writeln!(json, "    \"max_live_tasks\": {},", s.max_live_tasks);
        let _ = writeln!(
            json,
            "    \"max_pending_events\": {},",
            s.max_pending_events
        );
        let _ = writeln!(json, "    \"slack_max\": {:.4},", s.slack_max);
        let _ = writeln!(json, "    \"slack_samples\": {},", s.slack_samples);
        json.push_str("    \"drain_ab\": {\n");
        let _ = writeln!(json, "      \"trials\": {ab_trials},");
        let _ = writeln!(json, "      \"post_hoc_millis\": {post_hoc_ms:.2},");
        let _ = writeln!(json, "      \"streaming_millis\": {streaming_ms:.2},");
        let _ = writeln!(
            json,
            "      \"overhead_percent\": {drain_overhead_percent:.2}"
        );
        json.push_str("    }\n  },\n");
    }
    let _ = writeln!(json, "  \"counterexamples\": {}", failures.len());
    json.push_str("}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    if !failures.is_empty() {
        eprintln!("bench_trace: {} FAILURE(S):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!("a counterexample to Theorem 2.3 means the scheduler, tracer, or bound analysis is buggy");
        std::process::exit(1);
    }
}
