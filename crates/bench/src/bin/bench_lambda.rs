//! λ⁴ᵢ front-end sweep: every checked-in `.l4i` source program flows
//! through the full pipeline — parse → priority inference → abstract
//! machine *and* traced rp-icilk runtime — and Theorem 2.3 is checked on
//! both resulting cost graphs (machine-emitted and trace-reconstructed,
//! observed and replayed schedules).  Any `is_counterexample()` report, any
//! lost trace event, or a machine/runtime value divergence on a
//! deterministic program means the front end, scheduler, tracer, or bound
//! analysis is buggy, so the binary prints the offending rows and **exits
//! non-zero**.
//!
//! Usage: `bench_lambda [--quick] [--out PATH]`
//!
//! * `--quick` runs the runtime back end single-worker for CI smoke runs
//!   (single-worker observed schedules are also the ones where promptness,
//!   and hence the observed-schedule hypotheses, can actually hold);
//! * `--out PATH` writes the JSON report (default `BENCH_lambda.json`).
//!
//! The JSON records, per program, front-end stage timings (parse / infer /
//! machine / runtime), both graphs' sizes, hypotheses-held counts, and the
//! counterexample totals.

use rp_lambda4i::compile::CompileConfig;
use rp_lambda4i::pipeline::{run_source, PipelineConfig, PipelineReport};
use rp_lambda4i::progs::sources;
use rp_lambda4i::run::RunConfig;
use rp_lambda4i::syntax::Expr;
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    name: &'static str,
    parse_micros: f64,
    pipeline_millis: f64,
    inferred_vars: usize,
    deferred_constraints: usize,
    machine_steps: usize,
    machine_threads: usize,
    machine_vertices: usize,
    machine_weak_edges: usize,
    machine_counterexamples: usize,
    runtime_threads: usize,
    runtime_vertices: usize,
    runtime_skipped: usize,
    observed_hypotheses_held: usize,
    observed_counterexamples: usize,
    replay_counterexamples: usize,
    values_agree: bool,
    value: String,
}

fn summarise(
    name: &'static str,
    parse_micros: f64,
    pipeline_millis: f64,
    r: &PipelineReport,
) -> Row {
    let recon = r.reconstruction.as_ref();
    Row {
        name,
        parse_micros,
        pipeline_millis,
        inferred_vars: r.inference.assignment.len(),
        deferred_constraints: r.inference.deferred.len(),
        machine_steps: r.machine.steps,
        machine_threads: r.machine.graph_report.threads,
        machine_vertices: r.machine.graph_report.vertices,
        machine_weak_edges: r.machine.graph_report.weak_edges,
        machine_counterexamples: r
            .machine
            .threads
            .iter()
            .filter(|t| t.bound.is_counterexample())
            .count(),
        runtime_threads: recon.map_or(0, |g| g.dag.thread_count()),
        runtime_vertices: recon.map_or(0, |g| g.dag.vertex_count()),
        runtime_skipped: recon.map_or(0, |g| g.skipped),
        observed_hypotheses_held: r
            .observed
            .iter()
            .filter(|t| t.report.hypotheses_hold())
            .count(),
        observed_counterexamples: r
            .observed
            .iter()
            .filter(|t| t.report.is_counterexample())
            .count(),
        replay_counterexamples: r
            .replay
            .iter()
            .filter(|t| t.report.is_counterexample())
            .count(),
        values_agree: r.values_agree(),
        value: rp_lambda4i::pretty::expr_to_string(r.value()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_lambda.json".to_string());

    // (name, source, deterministic value expected on both back ends).
    let sweep: Vec<(&'static str, &'static str, Option<Expr>)> = vec![
        ("figure1", sources::FIGURE1, Some(Expr::Unit)),
        ("parallel-fib", sources::PARALLEL_FIB, Some(Expr::Nat(5))),
        ("server", sources::SERVER, None),
        (
            "email-coordination",
            sources::EMAIL_COORDINATION,
            Some(Expr::Nat(0)),
        ),
        ("proxy", sources::PROXY, None),
        ("email", sources::EMAIL, None),
        ("jserver", sources::JSERVER, None),
    ];

    let workers = if quick { 1 } else { 2 };
    let config = PipelineConfig {
        machine: RunConfig {
            cores: 2,
            max_steps: 4_000_000,
            ..RunConfig::default()
        },
        runtime: CompileConfig {
            workers,
            tracing: true,
            drain_secs: 60,
        },
    };

    println!("bench_lambda: λ⁴ᵢ front-end pipeline sweep (P={workers}, quick={quick})");
    let mut rows: Vec<Row> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for (name, src, expected) in &sweep {
        // Stage-1 timing separately (parse is the cheap, pure stage).
        let t0 = Instant::now();
        let parsed = rp_lambda4i::parse::parse_program(src);
        let parse_micros = t0.elapsed().as_secs_f64() * 1e6;
        if let Err(e) = parsed {
            failures.push(format!("{name}: parse failed: {e}"));
            continue;
        }
        let t1 = Instant::now();
        match run_source(src, &config) {
            Ok(report) => {
                let pipeline_millis = t1.elapsed().as_secs_f64() * 1e3;
                if report.counterexamples() > 0 {
                    failures.push(format!(
                        "{name}: {} Theorem 2.3 counterexample(s)",
                        report.counterexamples()
                    ));
                }
                if let Some(recon) = &report.reconstruction {
                    if recon.skipped > 0 {
                        failures.push(format!(
                            "{name}: tracer lost {} task(s) after a drained run",
                            recon.skipped
                        ));
                    }
                }
                if let Some(v) = expected {
                    if report.value() != v {
                        failures.push(format!(
                            "{name}: runtime value {:?} != expected {v:?}",
                            report.value()
                        ));
                    }
                    if !report.values_agree() {
                        failures.push(format!(
                            "{name}: machine value {:?} != runtime value {:?}",
                            report.machine.value,
                            report.value()
                        ));
                    }
                }
                rows.push(summarise(name, parse_micros, pipeline_millis, &report));
            }
            Err(e) => failures.push(format!("{name}: pipeline failed: {e}")),
        }
    }

    for row in &rows {
        println!(
            "{:<20} parse {:>7.1}µs  pipeline {:>8.1}ms  inferred {}  machine {:>5} steps/{:>3} thr/{:>6} vx  runtime {:>3} thr/{:>5} vx  hyp {:>3}  cex {}/{}/{}  agree {}",
            row.name,
            row.parse_micros,
            row.pipeline_millis,
            row.inferred_vars,
            row.machine_steps,
            row.machine_threads,
            row.machine_vertices,
            row.runtime_threads,
            row.runtime_vertices,
            row.observed_hypotheses_held,
            row.machine_counterexamples,
            row.observed_counterexamples,
            row.replay_counterexamples,
            row.values_agree,
        );
    }

    let mut json = String::new();
    json.push_str("{\n  \"kernel\": \"bench_lambda\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    json.push_str("  \"programs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"parse_micros\": {:.1}, \"pipeline_millis\": {:.1}, \
             \"inferred_vars\": {}, \"deferred_constraints\": {}, \
             \"machine\": {{\"steps\": {}, \"threads\": {}, \"vertices\": {}, \"weak_edges\": {}, \
             \"counterexamples\": {}}}, \
             \"runtime\": {{\"threads\": {}, \"vertices\": {}, \"skipped\": {}, \
             \"observed_hypotheses_held\": {}, \"observed_counterexamples\": {}, \
             \"replay_counterexamples\": {}}}, \
             \"values_agree\": {}, \"value\": \"{}\"}}",
            row.name,
            row.parse_micros,
            row.pipeline_millis,
            row.inferred_vars,
            row.deferred_constraints,
            row.machine_steps,
            row.machine_threads,
            row.machine_vertices,
            row.machine_weak_edges,
            row.machine_counterexamples,
            row.runtime_threads,
            row.runtime_vertices,
            row.runtime_skipped,
            row.observed_hypotheses_held,
            row.observed_counterexamples,
            row.replay_counterexamples,
            row.values_agree,
            row.value.replace('\\', "\\\\").replace('"', "\\\""),
        );
        let _ = writeln!(json, "{}", if i + 1 < rows.len() { "," } else { "" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"counterexamples\": {}", failures.len());
    json.push_str("}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    if !failures.is_empty() {
        eprintln!("bench_lambda: {} FAILURE(S):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "a counterexample or value divergence means the front end, scheduler, tracer, or bound analysis is buggy"
        );
        std::process::exit(1);
    }
}
