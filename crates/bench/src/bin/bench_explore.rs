//! DPOR schedule-explorer sweep: every explorer fixture is exhaustively
//! model-checked (`rp_lambda4i::explore`) and its golden verdict re-asserted,
//! then a seeded corpus of generated programs — type-safe and race-free by
//! construction (spawned children are pure) — is explored as a soundness
//! gate.  Any Theorem 2.3 counterexample, any nondeterministic outcome on a
//! race-free program, any racy pair in the generated corpus, or a fixture
//! verdict that drifts from its golden classification means the explorer,
//! the race detector, or the machine semantics is buggy, so the binary
//! prints the offending rows and **exits non-zero**.
//!
//! Usage: `bench_explore [--quick] [--out PATH]`
//!
//! * `--quick` shrinks the generated corpus for CI smoke runs;
//! * `--out PATH` writes the JSON report (default `BENCH_explore.json`).
//!
//! The JSON records, per fixture, the explored/pruned schedule counts, the
//! race classification tallies, the Theorem 2.3 check totals, and the
//! exploration time; the corpus section aggregates the same counters over
//! all seeds.

use rp_lambda4i::explore::{explore_program, ExploreConfig, ExploreReport};
use rp_lambda4i::generate::{random_program, GenConfig};
use rp_lambda4i::pretty::expr_to_string;
use rp_lambda4i::progs;
use rp_lambda4i::syntax::Program;
use rp_lambda4i::typecheck::infer_program;
use std::fmt::Write as _;
use std::time::Instant;

/// The golden verdict a fixture must reproduce.
struct Expectation {
    /// Whether the explorer must report at least one racy pair.
    racy: bool,
    /// The exact sorted set of final values, when outcome-deterministic
    /// enough to pin down (`None` skips the value check).
    values: Option<Vec<&'static str>>,
}

struct Row {
    name: String,
    explore_millis: f64,
    schedules: usize,
    pruned: usize,
    sleep_pruned: usize,
    complete: bool,
    outcomes: usize,
    races: usize,
    ordered_pairs: usize,
    cas_pairs: usize,
    bounds_checked: usize,
    bounds_vacuous: usize,
    bound_counterexamples: usize,
    max_depth: usize,
    total_steps: usize,
    values: Vec<String>,
}

fn summarise(name: &str, explore_millis: f64, r: &ExploreReport) -> Row {
    let mut values: Vec<String> = r
        .outcomes
        .iter()
        .map(|o| expr_to_string(&o.value))
        .collect();
    values.sort();
    Row {
        name: name.to_string(),
        explore_millis,
        schedules: r.schedules_explored,
        pruned: r.pruned_choices,
        sleep_pruned: r.sleep_pruned,
        complete: r.complete,
        outcomes: r.outcomes.len(),
        races: r.races.len(),
        ordered_pairs: r.ordered_pairs,
        cas_pairs: r.cas_pairs,
        bounds_checked: r.bounds_checked,
        bounds_vacuous: r.bounds_vacuous,
        bound_counterexamples: r.bound_counterexamples,
        max_depth: r.max_depth,
        total_steps: r.total_steps,
        values,
    }
}

fn check_fixture(row: &Row, expect: &Expectation, failures: &mut Vec<String>) {
    let name = &row.name;
    if !row.complete {
        failures.push(format!("{name}: fixture space not exhausted"));
    }
    if row.bound_counterexamples > 0 {
        failures.push(format!(
            "{name}: {} Theorem 2.3 counterexample(s)",
            row.bound_counterexamples
        ));
    }
    if (row.races > 0) != expect.racy {
        failures.push(format!(
            "{name}: race verdict drifted (got {} racy pair(s), expected racy={})",
            row.races, expect.racy
        ));
    }
    if let Some(want) = &expect.values {
        if row.values != *want {
            failures.push(format!(
                "{name}: outcome set {:?} != golden {:?}",
                row.values, want
            ));
        }
    }
    if !expect.racy && row.outcomes > 1 {
        failures.push(format!(
            "{name}: race-free fixture produced {} distinct outcomes",
            row.outcomes
        ));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_explore.json".to_string());

    let config = ExploreConfig::default();
    println!(
        "bench_explore: DPOR interleaving sweep (quick={quick}, budget={} schedules)",
        config.max_schedules
    );

    // The explorer fixtures and their golden verdicts (kept in sync with
    // `crates/lambda4i/tests/explore.rs`).
    let fixtures: Vec<(&'static str, Program, Expectation)> = vec![
        (
            "racy-counter",
            progs::racy_counter_program(),
            Expectation {
                racy: true,
                values: Some(vec!["1", "2"]),
            },
        ),
        (
            "cas-counter",
            progs::cas_counter_program(),
            Expectation {
                racy: false,
                values: Some(vec!["2"]),
            },
        ),
        (
            "handoff",
            progs::handoff_program(),
            Expectation {
                racy: false,
                values: Some(vec!["42"]),
            },
        ),
        (
            "figure1",
            progs::figure1_program(),
            Expectation {
                racy: true,
                values: None,
            },
        ),
        (
            "parallel-fib",
            progs::parallel_fib(5),
            Expectation {
                racy: false,
                values: Some(vec!["5"]),
            },
        ),
    ];

    let mut rows: Vec<Row> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for (name, prog, expect) in &fixtures {
        let t0 = Instant::now();
        match explore_program(prog, &config) {
            Ok(report) => {
                let row = summarise(name, t0.elapsed().as_secs_f64() * 1e3, &report);
                check_fixture(&row, expect, &mut failures);
                rows.push(row);
            }
            Err(e) => failures.push(format!("{name}: exploration failed: {e}")),
        }
    }

    // Seeded corpus: generated programs are type-safe and their spawned
    // children are pure, so every one must explore race-free and
    // deterministic.  Free priority variables are solved first.
    let seeds: u64 = if quick { 8 } else { 32 };
    let gen_config = GenConfig::default();
    let mut corpus_schedules = 0usize;
    let mut corpus_pruned = 0usize;
    let mut corpus_steps = 0usize;
    let mut corpus_races = 0usize;
    let mut corpus_nondet = 0usize;
    let mut corpus_cex = 0usize;
    let mut corpus_incomplete = 0usize;
    let t_corpus = Instant::now();
    for seed in 0..seeds {
        let generated = random_program(seed, &gen_config);
        let inferred = match infer_program(&generated) {
            Ok(i) => i,
            Err(e) => {
                failures.push(format!("corpus seed {seed}: inference failed: {e}"));
                continue;
            }
        };
        match explore_program(&inferred.program, &config) {
            Ok(report) => {
                corpus_schedules += report.schedules_explored;
                corpus_pruned += report.pruned_choices;
                corpus_steps += report.total_steps;
                corpus_races += report.races.len();
                corpus_cex += report.bound_counterexamples;
                if !report.complete {
                    corpus_incomplete += 1;
                }
                if report.racy() {
                    failures.push(format!(
                        "corpus seed {seed}: {} racy pair(s) in a program whose children are pure",
                        report.races.len()
                    ));
                }
                if !report.deterministic() {
                    corpus_nondet += 1;
                    failures.push(format!(
                        "corpus seed {seed}: {} distinct outcomes in a race-free program",
                        report.outcomes.len()
                    ));
                }
                if report.bound_counterexamples > 0 {
                    failures.push(format!(
                        "corpus seed {seed}: {} Theorem 2.3 counterexample(s)",
                        report.bound_counterexamples
                    ));
                }
            }
            Err(e) => failures.push(format!("corpus seed {seed}: exploration failed: {e}")),
        }
    }
    let corpus_millis = t_corpus.elapsed().as_secs_f64() * 1e3;

    for row in &rows {
        println!(
            "{:<16} {:>8.1}ms  {:>6} sched/{:>6} pruned/{:>4} sleep  depth {:>4}  races {:>2}  ordered {:>2}  cas {:>2}  bounds {:>4}/{:>4} vac/{} cex  complete {}  values {:?}",
            row.name,
            row.explore_millis,
            row.schedules,
            row.pruned,
            row.sleep_pruned,
            row.max_depth,
            row.races,
            row.ordered_pairs,
            row.cas_pairs,
            row.bounds_checked,
            row.bounds_vacuous,
            row.bound_counterexamples,
            row.complete,
            row.values,
        );
    }
    println!(
        "corpus           {corpus_millis:>8.1}ms  {seeds} seeds  {corpus_schedules} sched/{corpus_pruned} pruned  {corpus_steps} steps  races {corpus_races}  nondet {corpus_nondet}  cex {corpus_cex}  incomplete {corpus_incomplete}"
    );

    let mut json = String::new();
    json.push_str("{\n  \"kernel\": \"bench_explore\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"max_schedules\": {},", config.max_schedules);
    json.push_str("  \"fixtures\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let values: Vec<String> = row
            .values
            .iter()
            .map(|v| format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"explore_millis\": {:.1}, \
             \"schedules_explored\": {}, \"pruned_choices\": {}, \"sleep_pruned\": {}, \
             \"complete\": {}, \"max_depth\": {}, \"total_steps\": {}, \
             \"outcomes\": {}, \"races\": {}, \"ordered_pairs\": {}, \"cas_pairs\": {}, \
             \"bounds\": {{\"checked\": {}, \"vacuous\": {}, \"counterexamples\": {}}}, \
             \"values\": [{}]}}",
            row.name,
            row.explore_millis,
            row.schedules,
            row.pruned,
            row.sleep_pruned,
            row.complete,
            row.max_depth,
            row.total_steps,
            row.outcomes,
            row.races,
            row.ordered_pairs,
            row.cas_pairs,
            row.bounds_checked,
            row.bounds_vacuous,
            row.bound_counterexamples,
            values.join(", "),
        );
        let _ = writeln!(json, "{}", if i + 1 < rows.len() { "," } else { "" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"corpus\": {{\"seeds\": {seeds}, \"explore_millis\": {corpus_millis:.1}, \
         \"schedules_explored\": {corpus_schedules}, \"pruned_choices\": {corpus_pruned}, \
         \"total_steps\": {corpus_steps}, \"races\": {corpus_races}, \
         \"nondeterministic\": {corpus_nondet}, \"bound_counterexamples\": {corpus_cex}, \
         \"incomplete\": {corpus_incomplete}}},"
    );
    let _ = writeln!(json, "  \"failures\": {}", failures.len());
    json.push_str("}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    if !failures.is_empty() {
        eprintln!("bench_explore: {} FAILURE(S):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "a racy pair in the pure-children corpus, a nondeterministic race-free program, or a \
             Theorem 2.3 counterexample means the explorer, race detector, or machine is buggy"
        );
        std::process::exit(1);
    }
}
