//! The adversarial-correctness campaign: seeded fuzzing of the `.l4i`
//! front end and the wire protocol, differential machine-vs-runtime
//! execution, and source-level mutation testing of the hot paths — one
//! bounded, reproducible run, one JSON report, one exit code.
//!
//! Usage: `bench_fuzz [--quick] [--out PATH] [--survivors PATH]
//! [--update-baseline]`
//!
//! * `--quick` shrinks every campaign for CI smoke runs;
//! * `--out PATH` writes the JSON report (default `BENCH_fuzz.json`);
//! * `--survivors PATH` writes the mutant-by-mutant survivor report
//!   (default `BENCH_fuzz_survivors.txt`);
//! * `--update-baseline` rewrites `crates/fuzz/baseline/survivors.txt`
//!   with this run's survivors instead of failing on new ones (crashes and
//!   divergences still fail).
//!
//! The binary **exits non-zero** on any parser invariant violation
//! (panic, broken `parse ∘ pretty = id` round trip, out-of-bounds error
//! position), any protocol liveness violation (an unanswered well-formed
//! frame, a wedged connection, a leaked thread), any machine-vs-runtime
//! divergence (value, thread count, or Theorem 2.3 verdict), any
//! mutation-harness infrastructure error, any target module with no
//! mutants exercised, and any surviving mutant not enumerated in the
//! checked-in baseline.  Parser findings are persisted into
//! `crates/fuzz/corpus/` so `fuzz_regressions` replays them forever after.

use rp_fuzz::corpus;
use rp_fuzz::diff::{deterministic_fixture_programs, run_differential, DifferentialConfig};
use rp_fuzz::mutate::{
    baseline_path, load_baseline, run_mutation_campaign, MutationConfig, TARGETS,
};
use rp_fuzz::parser::{run_parser_campaign, ParserCampaignConfig};
use rp_fuzz::proto::{run_protocol_campaign, ProtocolCampaignConfig};
use std::fmt::Write as _;
use std::time::Instant;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_fuzz.json".to_string();
    let mut survivors_path = "BENCH_fuzz_survivors.txt".to_string();
    let mut update_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--update-baseline" => update_baseline = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--survivors" => survivors_path = args.next().expect("--survivors needs a path"),
            other => {
                eprintln!(
                    "unknown arg {other}; usage: bench_fuzz [--quick] [--out PATH] \
                     [--survivors PATH] [--update-baseline]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut failures: Vec<String> = Vec::new();

    // ---- Stage 1: parser campaign (byte-level + AST-level) --------------
    let parser_config = if quick {
        ParserCampaignConfig {
            byte_iterations: 800,
            ast_iterations: 150,
            generated_bases: 8,
            ..ParserCampaignConfig::default()
        }
    } else {
        ParserCampaignConfig::default()
    };
    let t0 = Instant::now();
    let parser = run_parser_campaign(&parser_config);
    let parser_millis = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "parser      {parser_millis:>9.1}ms  {} execs  {} accepted  {} rejected  {} inferred  {} findings",
        parser.execs,
        parser.accepted,
        parser.rejected,
        parser.inferred,
        parser.findings.len()
    );
    for finding in &parser.findings {
        failures.push(format!(
            "parser {}: {}",
            finding.kind.label(),
            finding.detail
        ));
        // Check the offending input into the corpus so fuzz_regressions
        // replays it on every future `cargo test`.
        match corpus::persist(
            "parser",
            finding.kind.label(),
            "l4i",
            finding.input.as_bytes(),
        ) {
            Ok(path) => println!("  persisted finding -> {}", path.display()),
            Err(e) => eprintln!("  could not persist finding: {e}"),
        }
    }

    // ---- Stage 2: corpus replay ----------------------------------------
    // The regression suite replays these on every `cargo test`; the bench
    // replays them too so a red corpus fails the campaign even when tests
    // are skipped.
    let t1 = Instant::now();
    let mut corpus_replayed = 0u64;
    for entry in corpus::parser_entries() {
        corpus_replayed += 1;
        let src = String::from_utf8_lossy(&entry.bytes);
        if let rp_fuzz::parser::ParserVerdict::Violation(f) =
            rp_fuzz::parser::check_parser_input(&src)
        {
            failures.push(format!(
                "corpus parser/{}: {} regressed: {}",
                entry.name,
                f.kind.label(),
                f.detail
            ));
        }
    }
    for entry in corpus::protocol_entries() {
        corpus_replayed += 1;
        let outcome = std::panic::catch_unwind(|| {
            let _ = rp_net::protocol::decode_request(&entry.bytes);
            let _ = rp_net::protocol::body_is_admin(&entry.bytes);
        });
        if outcome.is_err() {
            failures.push(format!(
                "corpus protocol/{}: decoder panicked on replay",
                entry.name
            ));
        }
    }
    let replay_millis = t1.elapsed().as_secs_f64() * 1e3;
    println!("corpus      {replay_millis:>9.1}ms  {corpus_replayed} entries replayed");

    // ---- Stage 3: differential machine-vs-runtime ----------------------
    let diff_config = DifferentialConfig {
        max_programs: if quick { 12 } else { 48 },
        ..DifferentialConfig::default()
    };
    let mut programs = deterministic_fixture_programs();
    programs.extend(parser.differential_corpus.iter().cloned());
    let t2 = Instant::now();
    let diff = run_differential(&programs, &diff_config);
    let diff_millis = t2.elapsed().as_secs_f64() * 1e3;
    println!(
        "diff        {diff_millis:>9.1}ms  {} programs  {} skipped  {} bound reports  {} divergences",
        diff.programs_run,
        diff.skipped,
        diff.bound_reports,
        diff.divergences.len()
    );
    for d in &diff.divergences {
        failures.push(format!("differential {} divergence: {}", d.kind, d.detail));
    }

    // ---- Stage 4: protocol campaign against a live server ---------------
    let proto_config = if quick {
        ProtocolCampaignConfig {
            body_frames: 120,
            envelope_conns: 12,
            ..ProtocolCampaignConfig::default()
        }
    } else {
        ProtocolCampaignConfig::default()
    };
    let t3 = Instant::now();
    let proto = run_protocol_campaign(&proto_config);
    let proto_millis = t3.elapsed().as_secs_f64() * 1e3;
    println!(
        "protocol    {proto_millis:>9.1}ms  {} bodies ({} answered, {} malformed)  {} envelope conns ({} answered, {} closed, {} abandoned)  {} violations",
        proto.body_frames_sent,
        proto.body_frames_answered,
        proto.locally_malformed,
        proto.envelope_conns,
        proto.envelope_answered,
        proto.envelope_closed,
        proto.envelope_abandoned,
        proto.violations.len()
    );
    for v in &proto.violations {
        failures.push(format!("protocol: {v}"));
    }

    // ---- Stage 5: mutation testing --------------------------------------
    let mutation_config = MutationConfig {
        mutants_per_module: if quick { 2 } else { 6 },
        ..MutationConfig::default()
    };
    let t4 = Instant::now();
    let mutation = run_mutation_campaign(&mutation_config);
    let mutation_millis = t4.elapsed().as_secs_f64() * 1e3;
    println!(
        "mutation    {mutation_millis:>9.1}ms  {} generated  {} killed  {} timed out  {} build failures  {} survived",
        mutation.generated,
        mutation.killed,
        mutation.timed_out,
        mutation.build_failures,
        mutation.survivors.len()
    );
    for e in &mutation.errors {
        failures.push(format!("mutation harness: {e}"));
    }
    for target in TARGETS {
        if !mutation
            .outcomes
            .iter()
            .any(|o| o.mutant.module == target.module)
        {
            failures.push(format!(
                "mutation: no mutants exercised in target module `{}`",
                target.module
            ));
        }
    }
    if update_baseline {
        let mut text = String::from(
            "# rp-fuzz mutation-campaign survivor baseline.\n\
             # One mutant ID per line; regenerate with `bench_fuzz --update-baseline`.\n\
             # A survivor listed here is a KNOWN test-suite hole: acceptable, tracked,\n\
             # and diffed in CI — a survivor NOT listed here fails the campaign.\n",
        );
        for id in &mutation.survivors {
            text.push_str(id);
            text.push('\n');
        }
        let path = baseline_path();
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!(
            "rewrote {} with {} survivor(s)",
            path.display(),
            mutation.survivors.len()
        );
    }
    let baseline = load_baseline(&baseline_path());
    let new_survivors = mutation.new_survivors(&baseline);
    for id in &new_survivors {
        failures.push(format!(
            "mutation: NEW survivor {id} — a hot-path mutant no targeted test kills; \
             either strengthen the suite or (deliberately) add it to \
             crates/fuzz/baseline/survivors.txt"
        ));
    }

    // ---- Survivor report -------------------------------------------------
    let mut surv = String::new();
    let _ = writeln!(surv, "# bench_fuzz mutant-by-mutant report");
    let _ = writeln!(
        surv,
        "# generated {} / killed {} / timed-out {} / build-failures {} / survived {}",
        mutation.generated,
        mutation.killed,
        mutation.timed_out,
        mutation.build_failures,
        mutation.survivors.len()
    );
    for outcome in &mutation.outcomes {
        let _ = writeln!(
            surv,
            "{:<60} {:<18} {:>6.1}s  {} -> {}",
            outcome.mutant.id,
            outcome.verdict.label(),
            outcome.secs,
            outcome.mutant.original_line.trim(),
            outcome.mutant.mutated_line.trim()
        );
    }
    if !new_survivors.is_empty() {
        let _ = writeln!(surv, "\n# NEW survivors (not in baseline):");
        for id in &new_survivors {
            let _ = writeln!(surv, "{id}");
        }
    }
    std::fs::write(&survivors_path, &surv)
        .unwrap_or_else(|e| panic!("writing {survivors_path}: {e}"));
    println!("wrote {survivors_path}");

    // ---- JSON report -----------------------------------------------------
    let execs = parser.execs + corpus_replayed + proto.body_frames_sent + proto.envelope_conns;
    let crashes = parser.findings.len() + proto.violations.len();
    let mut json = String::new();
    json.push_str("{\n  \"kernel\": \"bench_fuzz\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"execs\": {execs},");
    let _ = writeln!(json, "  \"crashes\": {crashes},");
    let _ = writeln!(
        json,
        "  \"parser\": {{\"millis\": {parser_millis:.1}, \"seed\": {}, \"execs\": {}, \
         \"accepted\": {}, \"rejected\": {}, \"inferred\": {}, \"findings\": {}}},",
        parser_config.seed,
        parser.execs,
        parser.accepted,
        parser.rejected,
        parser.inferred,
        parser.findings.len()
    );
    let _ = writeln!(
        json,
        "  \"corpus\": {{\"millis\": {replay_millis:.1}, \"entries\": {corpus_replayed}}},"
    );
    let _ = writeln!(
        json,
        "  \"differential\": {{\"millis\": {diff_millis:.1}, \"programs_run\": {}, \
         \"skipped\": {}, \"bound_reports\": {}, \"divergences\": {}}},",
        diff.programs_run,
        diff.skipped,
        diff.bound_reports,
        diff.divergences.len()
    );
    let _ = writeln!(
        json,
        "  \"protocol\": {{\"millis\": {proto_millis:.1}, \"seed\": {}, \
         \"body_frames_sent\": {}, \"body_frames_answered\": {}, \"locally_malformed\": {}, \
         \"server_decode_errors\": {}, \"envelope_conns\": {}, \"envelope_answered\": {}, \
         \"envelope_closed\": {}, \"envelope_abandoned\": {}, \"violations\": {}}},",
        proto_config.seed,
        proto.body_frames_sent,
        proto.body_frames_answered,
        proto.locally_malformed,
        proto.server_decode_errors,
        proto.envelope_conns,
        proto.envelope_answered,
        proto.envelope_closed,
        proto.envelope_abandoned,
        proto.violations.len()
    );
    let outcomes_json: Vec<String> = mutation
        .outcomes
        .iter()
        .map(|o| {
            format!(
                "{{\"id\": \"{}\", \"verdict\": \"{}\", \"secs\": {:.1}}}",
                json_escape(&o.mutant.id),
                o.verdict.label(),
                o.secs
            )
        })
        .collect();
    let _ = writeln!(
        json,
        "  \"mutation\": {{\"millis\": {mutation_millis:.1}, \"generated\": {}, \
         \"killed\": {}, \"timed_out\": {}, \"build_failures\": {}, \"survived\": {}, \
         \"new_survivors\": {}, \"outcomes\": [{}]}},",
        mutation.generated,
        mutation.killed,
        mutation.timed_out,
        mutation.build_failures,
        mutation.survivors.len(),
        new_survivors.len(),
        outcomes_json.join(", ")
    );
    let _ = writeln!(json, "  \"failures\": {}", failures.len());
    json.push_str("}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    if !failures.is_empty() {
        eprintln!("bench_fuzz: {} FAILURE(S):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "a parser finding, protocol violation, or divergence is a bug in the front end, \
             server, or one of the two back ends; a new mutation survivor is a hole in the \
             targeted test suites"
        );
        std::process::exit(1);
    }
}
