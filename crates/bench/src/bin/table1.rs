//! Regenerates Table 1: the compile-time cost of the priority layer.
//!
//! The paper measures C++ compilation time and binary size with and without
//! priority templates; this reproduction measures λ⁴ᵢ type-checking time and
//! judgment counts with and without the priority layer on the three
//! case-study encodings (see DESIGN.md for the substitution argument).

fn main() {
    let rows = rp_bench::table1(5);
    print!("{}", rp_bench::format_table1(&rows));
    println!();
    println!("Paper reference (C++ / templates): proxy 1.27x / 1.18x, email 1.16x / 1.17x, jserver 1.27x / 1.16x");
    println!("Expected shape: overhead factors are modest constants (roughly 1x-2x), never order-of-magnitude.");
}
