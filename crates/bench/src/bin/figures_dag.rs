//! Regenerates Figures 1–3: the weak-edge example DAGs, their schedules,
//! well-formedness verdicts, and the a-strengthening.
//!
//! Usage: `figures_dag [fig1|fig2|fig3|all] [--dot]`

use rp_core::bound::BoundAnalysis;
use rp_core::examples::{figure1a, figure1b, figure1c, figure2a, figure2b, figure3};
use rp_core::render::{summary, to_dot};
use rp_core::scheduler::{prompt_schedule, weak_respecting_prompt_schedule};
use rp_core::strengthen::strengthening_with;
use rp_core::wellformed::{check_strongly_well_formed, check_well_formed};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let dot = args.iter().any(|a| a == "--dot");

    if which == "fig1" || which == "all" {
        println!("=== Figure 1: the racy fcreate/ftouch program ===");
        for (name, (dag, _)) in [
            ("(a) handle read", figure1a()),
            ("(b) NULL read", figure1b()),
            ("(c) handle read + weak edge", figure1c()),
        ] {
            println!("-- DAG {name}");
            print!("{}", summary(&dag));
            let prompt = prompt_schedule(&dag, 2);
            let weak = weak_respecting_prompt_schedule(&dag, 2);
            println!(
                "  2-core prompt schedule: prompt={} admissible={}",
                prompt.is_prompt(&dag),
                prompt.is_admissible(&dag)
            );
            println!(
                "  2-core weak-respecting schedule: prompt={} admissible={}",
                weak.is_prompt(&dag),
                weak.is_admissible(&dag)
            );
            if dot {
                println!("{}", to_dot(&dag));
            }
        }
        println!("Expected shape: only DAG (c) has a weak edge; its prompt 2-core schedule is NOT admissible,");
        println!("so DAG (b) is the only valid DAG for a 2-core execution — exactly the paper's Section 2.2 argument.");
        println!();
    }

    if which == "fig2" || which == "all" {
        println!("=== Figure 2: well-formedness ===");
        let (bad, _) = figure2a();
        let (good, _) = figure2b();
        println!(
            "  (a) without weak path: well-formed = {:?}",
            check_well_formed(&bad).is_ok()
        );
        println!(
            "  (b) with weak path (write w, read u'): well-formed = {:?}, strongly well-formed = {:?}",
            check_well_formed(&good).is_ok(),
            check_strongly_well_formed(&good).is_ok()
        );
        if dot {
            println!("{}", to_dot(&good));
        }
        println!("Expected shape: (a) ill-formed, (b) well-formed.");
        println!();
    }

    if which == "fig3" || which == "all" {
        println!("=== Figure 3: a-strengthening ===");
        let (dag, v) = figure3();
        let a = dag.thread_by_name("a").expect("thread a exists");
        // One BoundAnalysis serves the strengthening, the per-thread bound
        // ingredients, and the well-formedness verdict below.
        let analysis = BoundAnalysis::new(&dag);
        let st = strengthening_with(&dag, a, analysis.reachability());
        println!("  removed strong edges: {:?}", st.removed);
        println!("  added replacement edges: {:?}", st.added);
        println!(
            "  (u0, u) = ({}, {}) is replaced by (u', u) = ({}, {})",
            v.u0, v.u, v.u_prime, v.u
        );
        println!("  well-formed = {}", analysis.is_well_formed());
        for t in dag.threads() {
            let (w, s) = analysis.thread_metrics(t);
            println!(
                "  thread {}: competitor work W = {w}, a-span S = {s}, bound(P=2) = {:.1}",
                dag.thread(t).name,
                analysis.bound(t, 2)
            );
        }
        println!("Expected shape: exactly the low-priority create edge (u0, u) is removed and (u', u) added.");
    }
}
