//! Socket front-end benchmark: an open-loop arrival-rate sweep over **real
//! loopback TCP connections** for all three `rp_net` request classes, plus
//! a traced socket run whose reconstructed cost DAG is checked against
//! Theorem 2.3.  Machine-readable JSON output for CI trend tracking.
//!
//! Usage: `bench_net [--quick] [--out PATH]`
//!
//! * `--quick` shrinks the sweep (lower rates, shorter windows) so CI smoke
//!   runs finish in a few seconds; the sweep still covers 3 rates × all
//!   three request classes;
//! * `--out PATH` writes the JSON report there (default `BENCH_net.json`
//!   in the current directory).
//!
//! Request classes (see `rp_net::protocol`):
//!
//! * **app** — a cycling mix of proxy page fetches, email compress/print,
//!   and jserver jobs;
//! * **lambda** — a λ⁴ᵢ program submitted as source text, through the full
//!   parse → infer → machine + runtime pipeline per request;
//! * **lambda-cached** — the same source every request, with the
//!   parse → infer front half memoized per source.
//!
//! Latencies are coordinated-omission corrected (measured from intended
//! Poisson arrival times) and, unlike `BENCH_server.json`'s in-process
//! numbers, include the full socket path: client send → shard decode →
//! task dispatch → reactor response write → client receive.
//!
//! Every sweep point is also scraped mid-run over the **admin plane**
//! (`rp_net`'s wire-level telemetry endpoint): the report gains a
//! `telemetry` section, and the run fails if any scrape goes unanswered,
//! any counter regresses between polls, any latency quantile inverts, or
//! the post-drain wire counters disagree with the in-process snapshot.
//!
//! The process exits non-zero if the traced run yields any Theorem 2.3
//! counterexample — the hypotheses held and the bound still failed, which
//! means the scheduler, the tracer, or the bound analysis has a bug — or
//! if the telemetry plane was incoherent under load.

use bytes::Bytes;
use rp_apps::harness::{
    collect_trace, drive_socket_open, OpenLoopConfig, ResilienceConfig, SocketLoadConfig,
};
use rp_bench::telemetry::{reconcile, telemetry_json, ScrapeTally, Scraper};
use rp_net::protocol::{encode_request, AppOp, Request, RequestClass};
use rp_net::server::{NetServer, NetServerConfig};
use std::fmt::Write as _;
use std::time::Duration;

const SEED: u64 = 0x00E7_CAFE;

/// The λ⁴ᵢ program served by the lambda classes: a fork–join over an
/// inferred worker priority, small enough that the per-request cost is
/// dominated by pipeline stages rather than the kernel itself.
const LAMBDA_SOURCE: &str = "\
priorities: lo < hi
program bench-net : nat
main @ lo:
  t <- cmd[lo]{fcreate[worker; nat]{ret 21}};
  v <- cmd[lo]{ftouch t};
  ret (v + v)
";

/// Deterministic page body for the `i`-th proxy request.
fn page_body(i: usize) -> Bytes {
    let mut body = Vec::with_capacity(512);
    let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    while body.len() < 512 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        body.extend_from_slice(&x.to_le_bytes());
    }
    Bytes::from(body)
}

/// The `i`-th request body of a class (the cycling app mix, or one of the
/// lambda submissions).
fn request_body(class: RequestClass, i: usize, users: usize, msgs: usize) -> Vec<u8> {
    // `i % 4` selects the op, so every parameter below must be derived
    // from `i / 4` — deriving it from `i` would alias with the op cycle
    // (e.g. `class: i % 4` inside the `i % 4 == 3` arm is constantly 3).
    let k = i / 4;
    let req = match class {
        RequestClass::App => match i % 4 {
            0 => Request::App(AppOp::ProxyGet {
                // A pool of 64 distinct URLs so the proxy cache gets real
                // hits, like the in-process drivers.
                url: format!("http://origin/page-{}", k % 64),
                body_if_missed: page_body(k % 64),
            }),
            1 => Request::App(AppOp::EmailCompress {
                user: (k % users) as u32,
                msg: ((k / users) % msgs) as u32,
            }),
            2 => Request::App(AppOp::EmailPrint {
                user: (k % users) as u32,
                msg: ((k / users) % msgs) as u32,
            }),
            _ => Request::App(AppOp::JserverJob {
                class: (k % 4) as u8,
                seed: i as u64,
            }),
        },
        RequestClass::Lambda => Request::Lambda {
            source: LAMBDA_SOURCE.to_string(),
        },
        RequestClass::LambdaCached => Request::LambdaCached {
            source: LAMBDA_SOURCE.to_string(),
        },
    };
    encode_request(&req)
}

struct SweepRow {
    class: RequestClass,
    rate: f64,
    clients: usize,
    issued: usize,
    measured: usize,
    unfinished: usize,
    p50_micros: Option<f64>,
    p95_micros: Option<f64>,
    frames_received: u64,
    responses_sent: u64,
    decode_errors: u64,
    cache_hits: u64,
    cache_misses: u64,
}

fn server_config(workers: usize, tracing: bool) -> NetServerConfig {
    NetServerConfig {
        workers,
        tracing,
        seed: SEED,
        ..NetServerConfig::default()
    }
}

fn run_one(
    class: RequestClass,
    rate: f64,
    warmup_millis: u64,
    measure_millis: u64,
    workers: usize,
    tally: &mut ScrapeTally,
    mismatches: &mut Vec<String>,
) -> SweepRow {
    let config = server_config(workers, false);
    let (users, msgs) = (config.email_users, config.email_messages);
    let server = NetServer::start(config).expect("server starts");
    // Scrape the admin plane mid-sweep: the telemetry it serves must stay
    // coherent while the data plane is under open-loop load.
    let scraper = Scraper::start(server.admin_addr(), Duration::from_millis(20));
    let socket = SocketLoadConfig {
        open: OpenLoopConfig {
            arrival_rate_per_sec: rate,
            warmup_millis,
            measure_millis,
        },
        clients: 4,
        resilience: ResilienceConfig::default(),
    };
    let outcome = drive_socket_open(&socket, SEED, server.addr(), |i| {
        request_body(class, i, users, msgs)
    })
    .expect("socket load run");
    server.drain(Duration::from_secs(10));
    let stats = server.stats();
    let run_tally = scraper.stop();
    if let Some(exp) = &run_tally.last {
        for miss in reconcile(exp, &stats) {
            mismatches.push(format!("{} @ {rate}/s: {miss}", class.name()));
        }
    }
    tally.absorb(run_tally);
    let cache = server.cache_stats();
    let row = SweepRow {
        class,
        rate,
        clients: socket.clients,
        issued: outcome.issued,
        measured: outcome.measured,
        unfinished: outcome.unfinished,
        p50_micros: outcome.latency.median().map(|ns| ns / 1_000.0),
        p95_micros: outcome.latency.p95().map(|ns| ns / 1_000.0),
        frames_received: stats.frames_received,
        responses_sent: stats.responses_sent,
        decode_errors: stats.decode_errors,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
    };
    server.shutdown();
    row
}

struct TracedSummary {
    threads: usize,
    io_threads: usize,
    counterexamples: usize,
    observed_hypotheses_held: usize,
    requests: usize,
}

/// One traced socket run over a mixed-class load: the server runtime
/// records every spawn/steal/touch/IO event, the reconstructed cost DAG is
/// checked per thread against Theorem 2.3 (observed schedule + prompt
/// replay), and any counterexample fails the whole benchmark.
fn run_traced(workers: usize, rate: f64, measure_millis: u64) -> TracedSummary {
    let config = server_config(workers, true);
    let (users, msgs) = (config.email_users, config.email_messages);
    let server = NetServer::start(config).expect("server starts");
    let socket = SocketLoadConfig {
        open: OpenLoopConfig {
            arrival_rate_per_sec: rate,
            warmup_millis: 0,
            measure_millis,
        },
        clients: 2,
        resilience: ResilienceConfig::default(),
    };
    let outcome = drive_socket_open(&socket, SEED ^ 0xBEEF, server.addr(), |i| match i % 3 {
        0 => request_body(RequestClass::App, i, users, msgs),
        1 => request_body(RequestClass::Lambda, i, users, msgs),
        _ => request_body(RequestClass::LambdaCached, i, users, msgs),
    })
    .expect("traced socket run");
    assert!(
        server.drain(Duration::from_secs(30)),
        "traced server must drain before the trace snapshot"
    );
    let report = collect_trace(server.runtime()).expect("trace reconstructs");
    let io_threads = report.run.tasks.iter().filter(|t| t.is_io).count();
    let summary = TracedSummary {
        threads: report.run.dag.thread_count(),
        io_threads,
        counterexamples: report.counterexamples().len(),
        observed_hypotheses_held: report.observed_hypotheses_held(),
        requests: outcome.issued,
    };
    server.shutdown();
    summary
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.1}"),
        None => "null".to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_net.json".to_string());

    let workers = std::thread::available_parallelism()
        .map(|n| n.get().clamp(2, 8))
        .unwrap_or(4);
    // Lambda classes run a full (or cached) compile per request, so their
    // rate axis is an order of magnitude below the app class's.
    let (rates, warmup_millis, measure_millis) = if quick {
        (
            [
                (RequestClass::App, [200.0, 400.0, 800.0]),
                (RequestClass::Lambda, [20.0, 40.0, 80.0]),
                (RequestClass::LambdaCached, [50.0, 100.0, 200.0]),
            ],
            30u64,
            120u64,
        )
    } else {
        (
            [
                (RequestClass::App, [500.0, 1_000.0, 2_000.0]),
                (RequestClass::Lambda, [50.0, 100.0, 200.0]),
                (RequestClass::LambdaCached, [100.0, 200.0, 400.0]),
            ],
            100,
            400,
        )
    };

    println!("bench_net: socket open-loop sweep ({workers} workers, seed {SEED:#x})");
    let mut rows = Vec::new();
    let mut tally = ScrapeTally::default();
    let mut mismatches = Vec::new();
    for (class, class_rates) in rates {
        for rate in class_rates {
            let row = run_one(
                class,
                rate,
                warmup_millis,
                measure_millis,
                workers,
                &mut tally,
                &mut mismatches,
            );
            println!(
                "{:<13} rate {:>6.0}/s issued {:>5} measured {:>5} unfinished {:>2}  p50 {:>9}µs  p95 {:>9}µs",
                row.class.name(),
                row.rate,
                row.issued,
                row.measured,
                row.unfinished,
                fmt_opt(row.p50_micros),
                fmt_opt(row.p95_micros),
            );
            rows.push(row);
        }
    }

    println!(
        "telemetry: {} scrapes ({} failed), {} monotone / {} quantile violations, {} reconcile mismatches",
        tally.scrapes,
        tally.failures,
        tally.monotone_violations,
        tally.quantile_violations,
        mismatches.len(),
    );

    let traced = run_traced(workers, if quick { 60.0 } else { 120.0 }, measure_millis);
    println!(
        "traced: {} requests → {} threads ({} io), hypotheses held on {}, counterexamples {}",
        traced.requests,
        traced.threads,
        traced.io_threads,
        traced.observed_hypotheses_held,
        traced.counterexamples,
    );

    let mut json = String::new();
    json.push_str("{\n  \"kernel\": \"bench_net\",\n");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"warmup_millis\": {warmup_millis},");
    let _ = writeln!(json, "  \"measure_millis\": {measure_millis},");
    json.push_str("  \"sweep\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"class\": \"{}\", \"rate_per_sec\": {:.1}, \"clients\": {}, \"issued\": {}, \"measured\": {}, \"unfinished\": {}, \"client_p50_micros\": {}, \"client_p95_micros\": {}, \"frames_received\": {}, \"responses_sent\": {}, \"decode_errors\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}{}",
            row.class.name(),
            row.rate,
            row.clients,
            row.issued,
            row.measured,
            row.unfinished,
            fmt_opt(row.p50_micros),
            fmt_opt(row.p95_micros),
            row.frames_received,
            row.responses_sent,
            row.decode_errors,
            row.cache_hits,
            row.cache_misses,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n  \"traced\": {\n");
    let _ = writeln!(json, "    \"requests\": {},", traced.requests);
    let _ = writeln!(json, "    \"threads\": {},", traced.threads);
    let _ = writeln!(json, "    \"io_threads\": {},", traced.io_threads);
    let _ = writeln!(
        json,
        "    \"observed_hypotheses_held\": {},",
        traced.observed_hypotheses_held
    );
    let _ = writeln!(json, "    \"counterexamples\": {}", traced.counterexamples);
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"telemetry\": {}",
        telemetry_json(&tally, mismatches.len() as u64)
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    let mut failed = false;
    if traced.counterexamples > 0 {
        eprintln!(
            "FAIL: {} Theorem 2.3 counterexample(s) in the traced socket run",
            traced.counterexamples
        );
        failed = true;
    }
    if !tally.clean() {
        eprintln!(
            "FAIL: telemetry incoherent under load — {} scrape failure(s), {} monotone violation(s), {} quantile inversion(s)",
            tally.failures, tally.monotone_violations, tally.quantile_violations
        );
        failed = true;
    }
    for miss in &mismatches {
        eprintln!("FAIL: wire/process counter mismatch — {miss}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
