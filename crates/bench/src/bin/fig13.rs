//! Regenerates Figure 13: the responsiveness ratio (Cilk-F baseline over
//! I-Cilk) of client-observed response times for the proxy and email case
//! studies, across a sweep of connection counts.
//!
//! Usage: `fig13 [--quick]` (the quick mode shrinks the sweep so the binary
//! finishes in a few seconds; the default sweep mirrors the paper's
//! 90/120/150/180 connections scaled to the local machine).

use rp_apps::harness::ExperimentConfig;
use rp_apps::{email, proxy};
use rp_sim::latency::LatencyModel;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().clamp(2, 8))
        .unwrap_or(4);
    let connections: Vec<usize> = if quick {
        vec![6, 12]
    } else {
        vec![12, 24, 36, 48]
    };
    let requests = if quick { 4 } else { 8 };

    println!(
        "Figure 13: responsiveness ratio (baseline / I-Cilk); higher = I-Cilk more responsive"
    );
    println!("(paper sweep: 90/120/150/180 connections on 20 cores; local sweep scaled to {workers} workers)");
    println!();
    for &conns in &connections {
        let config = ExperimentConfig {
            workers,
            connections: conns,
            requests_per_connection: requests,
            io_latency: LatencyModel::Uniform { lo: 200, hi: 2_000 },
            ..ExperimentConfig::default()
        };
        let proxy_report = proxy::run_experiment(&config);
        println!("{}", proxy_report.figure13_row());
        let email_report = email::run_experiment(&config);
        println!("{}", email_report.figure13_row());
    }
    println!();
    println!("Expected shape: ratios >= ~1 everywhere and growing with load; email shows a larger");
    println!(
        "advantage than proxy (proxy is I/O-bound and lightly loaded, email has more compute)."
    );
}
