//! Scheduler throughput kernel: bucketed prompt scheduling vs the retained
//! naive reference on a seeded 50k-vertex / 1k-thread / 8-level random DAG
//! at P = 8, with machine-readable JSON output for CI trend tracking.
//!
//! Usage: `bench_scheduler [--quick] [--out PATH]`
//!
//! * `--quick` shrinks the kernel (5k vertices) so smoke runs finish fast;
//! * `--out PATH` writes the JSON report there (default
//!   `BENCH_scheduler.json` in the current directory).
//!
//! The binary also cross-checks that both implementations produce
//! *identical* schedules on the kernel before timing anything, so the
//! speedup it reports is never an apples-to-oranges number.

use rp_core::random::sized_dag;
use rp_core::scheduler::{prompt_schedule, reference};
use std::time::{Duration, Instant};

const CORES: usize = 8;
const LEVELS: usize = 8;
const SEED: u64 = 0x5EED_50C5;

fn time_min<F: FnMut()>(mut f: F, samples: usize, budget: Duration) -> Duration {
    let mut best = Duration::MAX;
    let deadline = Instant::now() + budget;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
        if Instant::now() >= deadline {
            break;
        }
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_scheduler.json".to_string());

    let (threads, verts_per_thread) = if quick { (100, 50) } else { (1_000, 50) };
    let dag = sized_dag(SEED, threads, verts_per_thread, LEVELS);
    let vertices = dag.vertex_count();
    println!(
        "kernel: prompt_schedule on {vertices} vertices / {threads} threads / {LEVELS} levels at P={CORES}"
    );

    // Correctness gate: the schedules must be byte-identical.
    let bucketed = prompt_schedule(&dag, CORES);
    let naive = reference::prompt_schedule(&dag, CORES);
    assert_eq!(
        bucketed, naive,
        "bucketed and naive reference schedules diverged — refusing to benchmark"
    );
    println!(
        "schedules identical: {} steps for {vertices} vertices",
        bucketed.len()
    );

    let bucketed_time = time_min(
        || {
            std::hint::black_box(prompt_schedule(&dag, CORES));
        },
        5,
        Duration::from_secs(30),
    );
    // The naive reference is O(ready²·P) per step; one to three samples
    // within the budget is plenty for a min-of-samples figure.
    let naive_time = time_min(
        || {
            std::hint::black_box(reference::prompt_schedule(&dag, CORES));
        },
        3,
        Duration::from_secs(120),
    );

    let vps = vertices as f64 / bucketed_time.as_secs_f64();
    let speedup = naive_time.as_secs_f64() / bucketed_time.as_secs_f64();
    println!(
        "bucketed: {:>12.3?}  ({vps:.0} vertices/sec)",
        bucketed_time
    );
    println!("naive:    {:>12.3?}", naive_time);
    println!("speedup:  {speedup:.1}x");

    let json = format!(
        "{{\n  \"kernel\": \"prompt_schedule\",\n  \"vertices\": {vertices},\n  \"threads\": {threads},\n  \"levels\": {LEVELS},\n  \"cores\": {CORES},\n  \"seed\": {SEED},\n  \"quick\": {quick},\n  \"bucketed_seconds\": {:.6},\n  \"naive_seconds\": {:.6},\n  \"vertices_per_second\": {:.1},\n  \"speedup_vs_naive\": {:.2}\n}}\n",
        bucketed_time.as_secs_f64(),
        naive_time.as_secs_f64(),
        vps,
        speedup,
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
