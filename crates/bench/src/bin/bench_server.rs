//! Open-loop server benchmark: sweeps Poisson arrival rates over the proxy
//! case study on both schedulers (the paper's Fig. 13/14-style rate sweep,
//! run as an open-loop load test), and microbenchmarks the metrics
//! hot path (sharded vs global-mutex `record_task` at 8 recording
//! threads).  Machine-readable JSON output for CI trend tracking.
//!
//! Usage: `bench_server [--quick] [--out PATH]`
//!
//! * `--quick` shrinks the sweep (lower rates, shorter windows) so CI smoke
//!   runs finish in a few seconds; the sweep still covers 3 rates × both
//!   schedulers;
//! * `--out PATH` writes the JSON report there (default
//!   `BENCH_server.json` in the current directory).
//!
//! Latencies are coordinated-omission corrected: measured from each
//! request's *intended* Poisson arrival time, so a saturated server cannot
//! hide queueing delay behind a stalled injector.

use rp_apps::harness::{ExperimentConfig, OpenLoopConfig};
use rp_apps::proxy;
use rp_icilk::metrics::{reference::MutexMetricsCollector, MetricsCollector};
use rp_icilk::runtime::SchedulerKind;
use rp_sim::latency::LatencyModel;
use std::fmt::Write as _;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const SEED: u64 = 0x05E7_F00D;
const MICROBENCH_THREADS: usize = 8;

struct LevelRow {
    name: String,
    completed: u64,
    mean_response_micros: Option<f64>,
    p95_response_micros: Option<f64>,
}

struct SweepRow {
    rate: f64,
    scheduler: &'static str,
    issued: usize,
    measured: usize,
    unfinished: usize,
    client_mean_micros: Option<f64>,
    client_p95_micros: Option<f64>,
    levels: Vec<LevelRow>,
}

fn run_one(rate: f64, scheduler: SchedulerKind, open: OpenLoopConfig, workers: usize) -> SweepRow {
    let config = ExperimentConfig {
        workers,
        connections: 16,
        requests_per_connection: 8,
        io_latency: LatencyModel::Uniform { lo: 200, hi: 1_500 },
        seed: SEED,
        ..ExperimentConfig::default()
    }
    .open_loop(open);
    let rt = Arc::new(config.start_runtime(scheduler, &proxy::LEVELS));
    let state = proxy::ProxyState::new();
    let outcome = proxy::drive_clients_open(&rt, &state, &config, &open);
    rt.drain(Duration::from_secs(10));
    let snap = rt.metrics();
    let levels = proxy::LEVELS
        .iter()
        .enumerate()
        .map(|(i, name)| LevelRow {
            name: (*name).to_string(),
            completed: snap.completed.get(i).copied().unwrap_or(0),
            mean_response_micros: snap.mean_response_micros(i),
            p95_response_micros: snap.p95_response_micros(i),
        })
        .collect();
    let row = SweepRow {
        rate,
        scheduler: match scheduler {
            SchedulerKind::ICilk => "icilk",
            SchedulerKind::Baseline => "baseline",
        },
        issued: outcome.issued,
        measured: outcome.measured,
        unfinished: outcome.unfinished,
        client_mean_micros: outcome.latency.mean_micros(),
        client_p95_micros: outcome.latency.p95_micros(),
        levels,
    };
    rp_apps::harness::shutdown_runtime(rt, Duration::from_secs(10));
    row
}

/// Hammers `record` from [`MICROBENCH_THREADS`] threads and returns the
/// mean cost per `record_task` call in nanoseconds.  Each thread performs
/// an untimed warm phase first (thread-ordinal assignment, the collector's
/// lazy histogram allocations) so the timed region measures the steady
/// state of both collector flavours.
fn hammer<C: Send + Sync + 'static>(
    collector: C,
    ops_per_thread: usize,
    record: fn(&C, usize),
) -> f64 {
    let collector = Arc::new(collector);
    let barrier = Arc::new(Barrier::new(MICROBENCH_THREADS + 1));
    let handles: Vec<_> = (0..MICROBENCH_THREADS)
        .map(|t| {
            let collector = Arc::clone(&collector);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                for i in 0..64 {
                    record(&collector, t + i);
                }
                barrier.wait();
                for i in 0..ops_per_thread {
                    record(&collector, t + i);
                }
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for h in handles {
        h.join().expect("microbench thread");
    }
    let total_ops = (MICROBENCH_THREADS * ops_per_thread) as f64;
    started.elapsed().as_secs_f64() * 1e9 / total_ops
}

fn microbench(ops_per_thread: usize) -> (f64, f64) {
    fn record_sharded(c: &MetricsCollector, i: usize) {
        c.record_task(i % 4, Duration::from_micros(100), Duration::from_micros(50));
    }
    fn record_mutexed(c: &MutexMetricsCollector, i: usize) {
        c.record_task(i % 4, Duration::from_micros(100), Duration::from_micros(50));
    }
    // Warm-up pass (thread-ordinal assignment, lazy histogram allocation).
    let _ = hammer(
        MetricsCollector::new(4),
        ops_per_thread / 10,
        record_sharded,
    );
    // Interleaved min-of-5 trials per path, suppressing scheduler noise the
    // same way `bench_scheduler` does.
    let mut sharded = f64::MAX;
    let mut mutexed = f64::MAX;
    for _ in 0..5 {
        sharded = sharded.min(hammer(
            MetricsCollector::new(4),
            ops_per_thread,
            record_sharded,
        ));
        mutexed = mutexed.min(hammer(
            MutexMetricsCollector::new(4),
            ops_per_thread,
            record_mutexed,
        ));
    }
    (sharded, mutexed)
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.1}"),
        None => "null".to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_server.json".to_string());

    let workers = std::thread::available_parallelism()
        .map(|n| n.get().clamp(2, 8))
        .unwrap_or(4);
    let (rates, warmup_millis, measure_millis, ops) = if quick {
        (vec![200.0, 400.0, 800.0], 30u64, 120u64, 50_000usize)
    } else {
        (vec![500.0, 1_000.0, 2_000.0], 100, 400, 200_000)
    };

    println!("bench_server: open-loop proxy rate sweep ({workers} workers, seed {SEED:#x})");
    let mut rows = Vec::new();
    for &rate in &rates {
        let open = OpenLoopConfig {
            arrival_rate_per_sec: rate,
            warmup_millis,
            measure_millis,
        };
        for scheduler in [SchedulerKind::ICilk, SchedulerKind::Baseline] {
            let row = run_one(rate, scheduler, open, workers);
            println!(
                "rate {:>6.0}/s {:<9} issued {:>5} measured {:>5} unfinished {:>2}  client p95 {:>9}µs  event p95 {:>9}µs",
                row.rate,
                row.scheduler,
                row.issued,
                row.measured,
                row.unfinished,
                fmt_opt(row.client_p95_micros),
                fmt_opt(row.levels.last().and_then(|l| l.p95_response_micros)),
            );
            rows.push(row);
        }
    }

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "metrics record_task microbench: {MICROBENCH_THREADS} threads × {ops} ops ({cpus} CPUs)"
    );
    let (sharded_ns, mutexed_ns) = microbench(ops);
    let speedup = mutexed_ns / sharded_ns;
    println!("sharded:      {sharded_ns:>8.1} ns/op");
    println!("global mutex: {mutexed_ns:>8.1} ns/op");
    println!("speedup:      {speedup:>8.2}x");
    if cpus < 2 {
        println!(
            "note: single-CPU machine — threads never overlap, so the global mutex is \
             never actually contended here; the sharded win shows on multicore hosts"
        );
    }

    let mut json = String::new();
    json.push_str("{\n  \"kernel\": \"bench_server\",\n  \"app\": \"proxy\",\n");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"warmup_millis\": {warmup_millis},");
    let _ = writeln!(json, "  \"measure_millis\": {measure_millis},");
    json.push_str("  \"sweep\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"rate_per_sec\": {:.1}, \"scheduler\": \"{}\", \"issued\": {}, \"measured\": {}, \"unfinished\": {}, \"client_mean_micros\": {}, \"client_p95_micros\": {}, \"levels\": [",
            row.rate,
            row.scheduler,
            row.issued,
            row.measured,
            row.unfinished,
            fmt_opt(row.client_mean_micros),
            fmt_opt(row.client_p95_micros),
        );
        for (j, level) in row.levels.iter().enumerate() {
            let _ = write!(
                json,
                "{{\"level\": \"{}\", \"completed\": {}, \"mean_response_micros\": {}, \"p95_response_micros\": {}}}{}",
                level.name,
                level.completed,
                fmt_opt(level.mean_response_micros),
                fmt_opt(level.p95_response_micros),
                if j + 1 < row.levels.len() { ", " } else { "" },
            );
        }
        let _ = writeln!(json, "]}}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    json.push_str("  ],\n  \"record_task_microbench\": {\n");
    let _ = writeln!(json, "    \"cpus\": {cpus},");
    let _ = writeln!(json, "    \"threads\": {MICROBENCH_THREADS},");
    let _ = writeln!(json, "    \"ops_per_thread\": {ops},");
    let _ = writeln!(json, "    \"sharded_ns_per_op\": {sharded_ns:.2},");
    let _ = writeln!(json, "    \"global_mutex_ns_per_op\": {mutexed_ns:.2},");
    let _ = writeln!(json, "    \"sharded_speedup\": {speedup:.2}");
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
