//! Regenerates Figure 14: per-priority-level compute-time ratios
//! (Cilk-F baseline over I-Cilk) for the proxy, email, and jserver case
//! studies across the load sweep.
//!
//! Usage: `fig14 [--quick]`

use rp_apps::harness::ExperimentConfig;
use rp_apps::{email, jserver, proxy};
use rp_sim::latency::LatencyModel;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().clamp(2, 8))
        .unwrap_or(4);
    let loads: Vec<usize> = if quick { vec![6] } else { vec![12, 24, 36] };
    let requests = if quick { 4 } else { 8 };

    println!("Figure 14: per-level compute-time ratio (baseline / I-Cilk); higher = I-Cilk computes faster");
    println!("(rows are printed highest priority first, as in the paper's bar groups)");
    println!();
    for &load in &loads {
        let config = ExperimentConfig {
            workers,
            connections: load,
            requests_per_connection: requests,
            io_latency: LatencyModel::Uniform { lo: 200, hi: 2_000 },
            ..ExperimentConfig::default()
        };
        for report in [
            proxy::run_experiment(&config),
            email::run_experiment(&config),
            jserver::run_experiment(&config),
        ] {
            for row in report.figure14_rows() {
                println!("{row}");
            }
            println!();
        }
    }
    println!("Expected shape: the highest-priority levels have ratios >= ~1 (I-Cilk serves them at least as fast),");
    println!(
        "growing with load, while the lowest-priority levels fall below 1 under heavy load — the"
    );
    println!(
        "paper's observation that responsiveness is bought by sacrificing background compute time."
    );
}
