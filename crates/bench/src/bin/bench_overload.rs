//! Overload benchmark: drive the socket front end **past saturation** and
//! show that bound-driven admission control degrades gracefully where the
//! unprotected server collapses.
//!
//! Usage: `bench_overload [--quick] [--out PATH]`
//!
//! The run calibrates first (a gentle lambda-only run estimates per-request
//! service time, hence the saturation rate; an app-only run establishes the
//! protected class's baseline tail), then sweeps a lambda *flood* at
//! multiples of saturation — 2×, 5×, 10× — with admission control off and
//! on ([`AdmissionConfig::protect_app`]): the app class is exempt, both
//! lambda classes carry a response-time budget derived from the calibrated
//! baseline.  A high-priority app load runs concurrently with every flood,
//! and both sides run the resilient client driver (deadlines, `Overloaded`
//! retries, reconnects), so client-side accounting distinguishes answered /
//! rejected / timed-out outcomes exactly.
//!
//! A final traced run repeats the 2× flood with shedding on and checks the
//! reconstructed cost DAG against Theorem 2.3.
//!
//! Every overload point is scraped concurrently over the **admin plane**
//! (20ms polls), which must answer every scrape even at 10× saturation —
//! that is the point of a plane that never enters the runtime.  The
//! report gains a `telemetry` section with the scrape tally.
//!
//! The process exits non-zero only for genuine protection failures:
//!
//! * an **exempt class missed its budget** — the app class's measured p95
//!   exceeded its (generous, calibration-derived) budget, or any app
//!   request was shed, in a run with shedding enabled;
//! * a **Theorem 2.3 counterexample** in the traced overload run;
//! * an **unanswered or incoherent admin scrape** during the flood.
//!
//! A collapsing *unprotected* baseline is expected output, not a failure.

use bytes::Bytes;
use rp_apps::harness::{
    collect_trace, drive_socket_open_with, OpenLoopConfig, OpenLoopOutcome, ResilienceConfig,
    ResponseVerdict, RetryPolicy, SocketLoadConfig,
};
use rp_bench::telemetry::{telemetry_json, ScrapeTally, Scraper};
use rp_net::admission::AdmissionConfig;
use rp_net::protocol::{body_is_overloaded, encode_request, AppOp, Request, RequestClass};
use rp_net::server::{NetServer, NetServerConfig};
use std::fmt::Write as _;
use std::time::Duration;

const SEED: u64 = 0x0BAD_10AD;

/// The λ⁴ᵢ program the flood submits: full parse → infer → run per request
/// (uncached), so each flood request costs a whole pipeline pass.
const LAMBDA_SOURCE: &str = "\
priorities: lo < hi
program bench-overload : nat
main @ lo:
  t <- cmd[lo]{fcreate[worker; nat]{ret 21}};
  v <- cmd[lo]{ftouch t};
  ret (v + v)
";

/// Deterministic page body for the `i`-th proxy request.
fn page_body(i: usize) -> Bytes {
    let mut body = Vec::with_capacity(256);
    let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    while body.len() < 256 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        body.extend_from_slice(&x.to_le_bytes());
    }
    Bytes::from(body)
}

/// The high-priority app mix: proxy fetches, email ops, jserver jobs.
fn app_body(i: usize, users: usize, msgs: usize) -> Vec<u8> {
    let k = i / 4;
    let req = match i % 4 {
        0 => Request::App(AppOp::ProxyGet {
            url: format!("http://origin/page-{}", k % 64),
            body_if_missed: page_body(k % 64),
        }),
        1 => Request::App(AppOp::EmailCompress {
            user: (k % users) as u32,
            msg: ((k / users) % msgs) as u32,
        }),
        2 => Request::App(AppOp::EmailPrint {
            user: (k % users) as u32,
            msg: ((k / users) % msgs) as u32,
        }),
        _ => Request::App(AppOp::JserverJob {
            class: (k % 4) as u8,
            seed: i as u64,
        }),
    };
    encode_request(&req)
}

fn lambda_body(_i: usize) -> Vec<u8> {
    encode_request(&Request::Lambda {
        source: LAMBDA_SOURCE.to_string(),
    })
}

fn classify(body: &[u8]) -> ResponseVerdict {
    if body_is_overloaded(body) {
        ResponseVerdict::Overloaded
    } else {
        ResponseVerdict::Answered
    }
}

/// One driver's accounting, reduced to the JSON-facing numbers.
struct Side {
    issued: usize,
    measured: usize,
    unfinished: usize,
    rejected: usize,
    timed_out: usize,
    retries: usize,
    reconnects: usize,
    p50_micros: Option<f64>,
    p95_micros: Option<f64>,
}

impl Side {
    fn from(outcome: &OpenLoopOutcome) -> Side {
        Side {
            issued: outcome.issued,
            measured: outcome.measured,
            unfinished: outcome.unfinished,
            rejected: outcome.rejected,
            timed_out: outcome.timed_out,
            retries: outcome.retries,
            reconnects: outcome.reconnects,
            p50_micros: outcome.latency.median().map(|ns| ns / 1_000.0),
            p95_micros: outcome.latency.p95().map(|ns| ns / 1_000.0),
        }
    }
}

struct OverloadRow {
    multiplier: f64,
    shedding: bool,
    lambda_rate: f64,
    app: Side,
    lambda: Side,
    shed_per_class: [u64; 3],
    shedding_active: [bool; 3],
}

struct Windows {
    warmup_millis: u64,
    measure_millis: u64,
}

fn server_config(
    workers: usize,
    tracing: bool,
    admission: Option<AdmissionConfig>,
) -> NetServerConfig {
    NetServerConfig {
        workers,
        tracing,
        seed: SEED,
        admission: admission.unwrap_or_default(),
        ..NetServerConfig::default()
    }
}

/// A single-class run against a fresh, unprotected server — used for
/// calibration.
fn run_single(
    workers: usize,
    rate: f64,
    win: &Windows,
    encode: impl Fn(usize) -> Vec<u8> + Send + Sync,
) -> Side {
    let server = NetServer::start(server_config(workers, false, None)).expect("server starts");
    let socket = SocketLoadConfig {
        open: OpenLoopConfig {
            arrival_rate_per_sec: rate,
            warmup_millis: win.warmup_millis,
            measure_millis: win.measure_millis,
        },
        clients: 2,
        resilience: ResilienceConfig {
            deadline: Some(Duration::from_secs(2)),
            ..ResilienceConfig::default()
        },
    };
    let outcome = drive_socket_open_with(&socket, SEED, server.addr(), encode, classify)
        .expect("calibration");
    server.drain(Duration::from_secs(10));
    server.shutdown();
    Side::from(&outcome)
}

/// One overload point: a lambda flood at `lambda_rate` concurrent with the
/// high-priority app load, against a server with admission control off or
/// on.  Both drivers run resilient clients; the app side retries
/// `Overloaded` answers (it should never see one — the class is exempt).
#[allow(clippy::too_many_arguments)]
fn run_overload(
    workers: usize,
    multiplier: f64,
    shedding: bool,
    app_rate: f64,
    lambda_rate: f64,
    app_budget: Duration,
    lambda_budget: Duration,
    win: &Windows,
    tally: &mut ScrapeTally,
) -> OverloadRow {
    let admission = shedding.then(|| AdmissionConfig::protect_app(app_budget, lambda_budget));
    let config = server_config(workers, false, admission);
    let (users, msgs) = (config.email_users, config.email_messages);
    let server = NetServer::start(config).expect("server starts");
    let addr = server.addr();
    // The admin plane must answer every scrape even while the flood is
    // drowning the data plane — that is the point of a separate plane.
    let scraper = Scraper::start(server.admin_addr(), Duration::from_millis(20));

    let app_socket = SocketLoadConfig {
        open: OpenLoopConfig {
            arrival_rate_per_sec: app_rate,
            warmup_millis: win.warmup_millis,
            measure_millis: win.measure_millis,
        },
        clients: 2,
        resilience: ResilienceConfig {
            deadline: Some(Duration::from_secs(1)),
            ..ResilienceConfig::robust(Some(Duration::from_secs(1)))
        },
    };
    // The flood takes rejections as final (no retries — retrying would
    // amplify the overload) and abandons requests the drowning server
    // never answers, so the run's tail stays bounded.
    let lambda_socket = SocketLoadConfig {
        open: OpenLoopConfig {
            arrival_rate_per_sec: lambda_rate,
            warmup_millis: win.warmup_millis,
            measure_millis: win.measure_millis,
        },
        clients: 4,
        resilience: ResilienceConfig {
            deadline: Some(Duration::from_secs(2)),
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            reconnect: true,
        },
    };

    let (app_outcome, lambda_outcome) = std::thread::scope(|scope| {
        let app = scope.spawn(|| {
            drive_socket_open_with(
                &app_socket,
                SEED ^ 0xA44,
                addr,
                |i| app_body(i, users, msgs),
                classify,
            )
        });
        let lambda =
            drive_socket_open_with(&lambda_socket, SEED ^ 0x10AD, addr, lambda_body, classify);
        (app.join().expect("app driver thread"), lambda)
    });
    let app_outcome = app_outcome.expect("app driver");
    let lambda_outcome = lambda_outcome.expect("lambda driver");

    server.drain(Duration::from_secs(10));
    tally.absorb(scraper.stop());
    let stats = server.stats();
    let admission = server.admission();
    let row = OverloadRow {
        multiplier,
        shedding,
        lambda_rate,
        app: Side::from(&app_outcome),
        lambda: Side::from(&lambda_outcome),
        shed_per_class: stats.shed_per_class,
        shedding_active: admission.shedding,
    };
    server.shutdown();
    row
}

struct TracedSummary {
    requests: usize,
    threads: usize,
    io_threads: usize,
    counterexamples: usize,
    observed_hypotheses_held: usize,
}

/// The traced overload run: shedding on, 2× flood, runtime tracing on —
/// the reconstructed cost DAG must satisfy Theorem 2.3 even while the
/// admission controller is actively shedding.
fn run_traced(
    workers: usize,
    lambda_rate: f64,
    app_budget: Duration,
    lambda_budget: Duration,
) -> TracedSummary {
    let admission = AdmissionConfig::protect_app(app_budget, lambda_budget);
    let server = NetServer::start(server_config(workers, true, Some(admission)))
        .expect("traced server starts");
    let socket = SocketLoadConfig {
        open: OpenLoopConfig {
            arrival_rate_per_sec: lambda_rate,
            warmup_millis: 0,
            measure_millis: 120,
        },
        clients: 2,
        resilience: ResilienceConfig {
            deadline: Some(Duration::from_secs(2)),
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            reconnect: true,
        },
    };
    let outcome =
        drive_socket_open_with(&socket, SEED ^ 0x77, server.addr(), lambda_body, classify)
            .expect("traced overload run");
    assert!(
        server.drain(Duration::from_secs(30)),
        "traced server must drain before the trace snapshot"
    );
    let report = collect_trace(server.runtime()).expect("trace reconstructs");
    let summary = TracedSummary {
        requests: outcome.issued,
        threads: report.run.dag.thread_count(),
        io_threads: report.run.tasks.iter().filter(|t| t.is_io).count(),
        counterexamples: report.counterexamples().len(),
        observed_hypotheses_held: report.observed_hypotheses_held(),
    };
    server.shutdown();
    summary
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.1}"),
        None => "null".to_string(),
    }
}

fn side_json(s: &Side) -> String {
    format!(
        "{{\"issued\": {}, \"measured\": {}, \"unfinished\": {}, \"rejected\": {}, \"timed_out\": {}, \"retries\": {}, \"reconnects\": {}, \"p50_micros\": {}, \"p95_micros\": {}}}",
        s.issued,
        s.measured,
        s.unfinished,
        s.rejected,
        s.timed_out,
        s.retries,
        s.reconnects,
        fmt_opt(s.p50_micros),
        fmt_opt(s.p95_micros),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_overload.json".to_string());

    let workers = std::thread::available_parallelism()
        .map(|n| n.get().clamp(2, 8))
        .unwrap_or(4);
    let win = if quick {
        Windows {
            warmup_millis: 30,
            measure_millis: 120,
        }
    } else {
        Windows {
            warmup_millis: 100,
            measure_millis: 400,
        }
    };
    let multipliers: &[f64] = if quick {
        &[2.0, 10.0]
    } else {
        &[2.0, 5.0, 10.0]
    };
    let app_rate = if quick { 150.0 } else { 300.0 };

    println!("bench_overload: overload sweep ({workers} workers, seed {SEED:#x})");

    // Calibration 1: lambda service time at a gentle rate → saturation.
    let cal = run_single(workers, if quick { 25.0 } else { 40.0 }, &win, lambda_body);
    let service_micros = cal.p50_micros.unwrap_or(5_000.0).max(100.0);
    let saturation = (workers as f64 * 1_000_000.0 / service_micros).clamp(50.0, 2_000.0);
    // Calibration 2: the protected class's healthy tail, alone on the box.
    let config = server_config(workers, false, None);
    let (users, msgs) = (config.email_users, config.email_messages);
    let base = run_single(workers, app_rate, &win, |i| app_body(i, users, msgs));
    let app_base_p95 = base.p95_micros.unwrap_or(10_000.0).max(500.0);

    // Budgets: generous for the exempt class (missing it means protection
    // failed outright), tight for the flood class (that is what sheds).
    let app_budget = Duration::from_micros((app_base_p95 * 10.0).max(100_000.0) as u64);
    let lambda_budget = Duration::from_micros((service_micros * 4.0).max(10_000.0) as u64);
    println!(
        "calibrated: lambda service ~{service_micros:.0}µs → saturation ~{saturation:.0}/s; app p95 baseline {app_base_p95:.0}µs; budgets app {app_budget:?} (exempt) lambda {lambda_budget:?}"
    );

    let mut rows = Vec::new();
    let mut tally = ScrapeTally::default();
    for &multiplier in multipliers {
        for shedding in [false, true] {
            let row = run_overload(
                workers,
                multiplier,
                shedding,
                app_rate,
                saturation * multiplier,
                app_budget,
                lambda_budget,
                &win,
                &mut tally,
            );
            println!(
                "{:>4.0}x shed={:<5} app p95 {:>9}µs (timeouts {:>3})  lambda p95 {:>9}µs rejected {:>5}/{:<5} shed {:?}",
                row.multiplier,
                row.shedding,
                fmt_opt(row.app.p95_micros),
                row.app.timed_out,
                fmt_opt(row.lambda.p95_micros),
                row.lambda.rejected,
                row.lambda.issued,
                row.shed_per_class,
            );
            rows.push(row);
        }
    }

    println!(
        "telemetry: {} scrapes under flood ({} failed), {} monotone / {} quantile violations",
        tally.scrapes, tally.failures, tally.monotone_violations, tally.quantile_violations,
    );

    let traced = run_traced(workers, saturation * 2.0, app_budget, lambda_budget);
    println!(
        "traced: {} requests → {} threads ({} io), hypotheses held on {}, counterexamples {}",
        traced.requests,
        traced.threads,
        traced.io_threads,
        traced.observed_hypotheses_held,
        traced.counterexamples,
    );

    // Verdict: the exempt class must hold its budget — and never be shed —
    // whenever shedding is enabled.
    let mut exempt_misses = Vec::new();
    for row in rows.iter().filter(|r| r.shedding) {
        if let Some(p95) = row.app.p95_micros {
            if p95 > app_budget.as_micros() as f64 {
                exempt_misses.push(format!(
                    "{}x: app p95 {p95:.0}µs > budget {}µs",
                    row.multiplier,
                    app_budget.as_micros()
                ));
            }
        }
        let app_shed = row.shed_per_class[RequestClass::App.tag() as usize];
        if app_shed > 0 {
            exempt_misses.push(format!(
                "{}x: {app_shed} exempt app request(s) shed",
                row.multiplier
            ));
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"kernel\": \"bench_overload\",\n");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"warmup_millis\": {},", win.warmup_millis);
    let _ = writeln!(json, "  \"measure_millis\": {},", win.measure_millis);
    json.push_str("  \"calibration\": {\n");
    let _ = writeln!(json, "    \"lambda_service_micros\": {service_micros:.1},");
    let _ = writeln!(json, "    \"saturation_rate_per_sec\": {saturation:.1},");
    let _ = writeln!(json, "    \"app_rate_per_sec\": {app_rate:.1},");
    let _ = writeln!(json, "    \"app_p95_baseline_micros\": {app_base_p95:.1},");
    let _ = writeln!(
        json,
        "    \"app_budget_micros\": {},",
        app_budget.as_micros()
    );
    let _ = writeln!(
        json,
        "    \"lambda_budget_micros\": {}",
        lambda_budget.as_micros()
    );
    json.push_str("  },\n  \"sweep\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"multiplier\": {:.1}, \"shedding\": {}, \"lambda_rate_per_sec\": {:.1}, \"app\": {}, \"lambda\": {}, \"shed_per_class\": [{}, {}, {}], \"shedding_active\": [{}, {}, {}]}}{}",
            row.multiplier,
            row.shedding,
            row.lambda_rate,
            side_json(&row.app),
            side_json(&row.lambda),
            row.shed_per_class[0],
            row.shed_per_class[1],
            row.shed_per_class[2],
            row.shedding_active[0],
            row.shedding_active[1],
            row.shedding_active[2],
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n  \"traced\": {\n");
    let _ = writeln!(json, "    \"requests\": {},", traced.requests);
    let _ = writeln!(json, "    \"threads\": {},", traced.threads);
    let _ = writeln!(json, "    \"io_threads\": {},", traced.io_threads);
    let _ = writeln!(
        json,
        "    \"observed_hypotheses_held\": {},",
        traced.observed_hypotheses_held
    );
    let _ = writeln!(json, "    \"counterexamples\": {}", traced.counterexamples);
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"telemetry\": {},", telemetry_json(&tally, 0));
    let _ = writeln!(json, "  \"exempt_budget_misses\": {}", exempt_misses.len());
    json.push_str("}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    let mut failed = false;
    if !exempt_misses.is_empty() {
        for miss in &exempt_misses {
            eprintln!("FAIL: exempt class missed its budget — {miss}");
        }
        failed = true;
    }
    if traced.counterexamples > 0 {
        eprintln!(
            "FAIL: {} Theorem 2.3 counterexample(s) in the traced overload run",
            traced.counterexamples
        );
        failed = true;
    }
    if !tally.clean() {
        eprintln!(
            "FAIL: telemetry incoherent under flood — {} scrape failure(s), {} monotone violation(s), {} quantile inversion(s)",
            tally.failures, tally.monotone_violations, tally.quantile_violations
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
