//! The stack-based parallel abstract machine of λ⁴ᵢ (Figures 8–11).
//!
//! Each thread carries a stack of [`Frame`]s and a [`Control`] state
//! (`k ▷ e`, `k ◁ v`, `k ▶ m`, `k ◀ ret v`).  A single call to
//! [`Machine::step_thread`] performs one transition of the judgment
//! `σ | µ ⊗ a ↪ K ⇒ …` and, exactly as in the paper's cost semantics,
//! allocates one fresh cost-graph vertex for the step and records any
//! fcreate, ftouch, or weak edges it introduces.  The [`run`](crate::run)
//! driver implements the D-Par rule by stepping a policy-chosen subset of
//! threads per parallel step.
//!
//! Heap cells record, besides their value, the vertex that last wrote them
//! and the set of thread symbols the writer "knew about" — reads add a weak
//! edge from that vertex and merge the known set, exactly as rules D-Get2,
//! D-Dcl2, D-Set3 and D-CAS prescribe.

use crate::syntax::{Cmd, Expr, LocId, PrimOp, Program, ThreadSym, Type, Var};
use rp_core::build::DagBuilder;
use rp_core::graph::{CostDag, ThreadId as DagThreadId, VertexId};
use rp_priority::{PrioTerm, Priority, PriorityDomain};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Stack frames `f` (Figure 8), extended with the frames needed to evaluate
/// non-A-normal subterms and the CAS extension.
#[derive(Debug, Clone)]
pub enum Frame {
    /// `let x = – in e`.
    LetIn(Var, Expr),
    /// `– e` (the function position of an application).
    AppFn(Expr),
    /// `v –` (the argument position; holds the evaluated function).
    AppArg(Expr),
    /// `ifz – {e; x.e}`.
    IfzCond(Expr, Var, Expr),
    /// `fst –`.
    FstHole,
    /// `snd –`.
    SndHole,
    /// `case – {x.e; y.e}`.
    CaseScrut(Var, Expr, Var, Expr),
    /// `–[ρ]`.
    PAppHole(PrioTerm),
    /// `(–, e)`.
    PairL(Expr),
    /// `(v, –)`.
    PairR(Expr),
    /// `inl –`.
    InlHole,
    /// `inr –`.
    InrHole,
    /// `– ⊕ e`.
    PrimL(PrimOp, Expr),
    /// `v ⊕ –`.
    PrimR(PrimOp, Expr),
    /// `x ← –; m`.
    BindIn(Var, Arc<Cmd>),
    /// `ftouch –`.
    TouchHole,
    /// `dcl[τ] x := – in m`.
    DclIn(Type, Var, Arc<Cmd>),
    /// `!–`.
    GetHole,
    /// `– := e`.
    SetTarget(Expr),
    /// `ref[s] := –`.
    SetValue(LocId),
    /// `ret –`.
    RetHole,
    /// `cas(–, e, e)`.
    CasTarget(Expr, Expr),
    /// `cas(ref[s], –, e)`.
    CasExpected(LocId, Expr),
    /// `cas(ref[s], v, –)`.
    CasNew(LocId, Expr),
}

/// The machine's control state (Figure 8's stack states).
#[derive(Debug, Clone)]
pub enum Control {
    /// `k ▷ e` — popping an expression.
    EvalExpr(Expr),
    /// `k ◁ v` — pushing an expression value.
    RetExpr(Expr),
    /// `k ▶ m` — popping a command.
    EvalCmd(Arc<Cmd>),
    /// `k ◀ ret v` — pushing a command result.
    RetCmd(Expr),
}

/// A heap cell `s ↦ (v, u, Σ)`: the stored value, the vertex of the most
/// recent write, and the thread symbols the writer knew about.
///
/// Beyond the paper's triple, the cell also remembers the vertices that have
/// *read* it since the most recent write — the metadata a happens-before
/// race detector needs to pair every write with the reads it may race with.
#[derive(Debug, Clone)]
pub struct HeapCell {
    /// The stored value.
    pub value: Expr,
    /// The vertex that performed the most recent write.
    pub writer: VertexId,
    /// The threads the writer knew about at the time of the write.
    pub known: HashSet<ThreadSym>,
    /// Vertices that read the cell since the most recent write (including
    /// failed `cas` attempts, which observe the value), in execution order.
    pub readers: Vec<VertexId>,
}

impl HeapCell {
    /// The vertex of the most recent write to this cell (`dcl` allocation,
    /// `:=` assignment, or a successful `cas`).
    pub fn last_writer(&self) -> VertexId {
        self.writer
    }

    /// The vertices that read this cell since the most recent write (`!`
    /// reads and failed `cas` attempts), oldest first.  Cleared whenever a
    /// write installs a new value.
    pub fn last_readers(&self) -> &[VertexId] {
        &self.readers
    }

    /// The thread symbols the most recent writer knew about at the time of
    /// the write (the `Σ` component of the paper's heap triple).
    pub fn known_threads(&self) -> &HashSet<ThreadSym> {
        &self.known
    }
}

/// The shared-state interaction a single machine step performed, if any.
///
/// Purely thread-local transitions (expression evaluation, `bind`, `ret`)
/// record no effect; the effectful steps are exactly the rules that touch
/// the heap (`D-Dcl2`, `D-Get2`, `D-Set3`, `D-CAS`) or the thread pool
/// (`D-Create`, `D-Touch2`, thread completion).  The schedule explorer's
/// dependence relation and the happens-before race detector are both driven
/// by this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEffect {
    /// `dcl` allocated a fresh cell and wrote its initial value.
    Alloc(LocId),
    /// `!` read the cell.
    Read(LocId),
    /// `:=` wrote the cell.
    Write(LocId),
    /// `cas` observed the cell and, if `success`, installed a new value.
    Cas {
        /// The targeted cell.
        loc: LocId,
        /// Whether the expected value matched (the write happened).
        success: bool,
    },
    /// `fcreate` spawned the given thread.
    Spawn(ThreadSym),
    /// `ftouch` joined with the given finished thread.
    Touch(ThreadSym),
    /// The thread reached `ϵ ◀ ret v` and finished.
    Finish,
}

/// The full record of the most recent effectful step: which thread did what,
/// at which cost-graph vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepAccess {
    /// The thread that took the step.
    pub thread: ThreadSym,
    /// The cost-graph vertex allocated for the step.
    pub vertex: VertexId,
    /// What the step did.
    pub effect: StepEffect,
    /// The vertex label of the step (e.g. `"get-read"`), a stable site name.
    pub label: &'static str,
    /// How many effectful steps this thread had performed before this one —
    /// a schedule-independent ordinal identifying the access site, since a
    /// thread's own step sequence is deterministic.
    pub ordinal: usize,
}

/// What a thread's *next* transition will do to shared state, computed from
/// its control and stack without executing it.
///
/// This is the `next(s, p)` oracle of persistent-set (DPOR) exploration: the
/// machine's frames make the imminent heap or thread-pool interaction
/// syntactically evident one step ahead (e.g. a `SetValue(s)` frame under a
/// returned value means the next step writes `s`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingEffect {
    /// The next step is thread-local.
    Local,
    /// The next step reads the cell.
    Read(LocId),
    /// The next step writes the cell.
    Write(LocId),
    /// The next step performs a `cas` on the cell (read, and possibly write).
    Cas(LocId),
    /// The next step joins with the given thread (blocking until it
    /// finishes).
    Touch(ThreadSym),
    /// The next step allocates a fresh cell.
    Alloc,
    /// The next step spawns a thread.
    Spawn,
    /// The next step finishes the thread.
    Finish,
}

/// Scheduling status of a thread, maintained incrementally by the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadStatus {
    /// Can take a step right now.
    Runnable,
    /// Waiting on an `ftouch` of the given unfinished thread.
    Blocked(ThreadSym),
    /// Reached `ϵ ◀ ret v`.
    Done,
}

/// Per-thread machine state.
#[derive(Debug)]
pub struct ThreadEntry {
    /// The thread symbol `a`.
    pub sym: ThreadSym,
    /// The thread's priority `ρ`.
    pub priority: Priority,
    /// The corresponding thread of the cost graph being built.
    pub dag_thread: DagThreadId,
    /// The thread symbols this thread knows about (its signature `Σ_a`,
    /// restricted to threads).
    pub known: HashSet<ThreadSym>,
    /// The final value once the thread reaches `ϵ ◀ ret v`.
    pub done: Option<Expr>,
    /// The parallel step at which the thread was created.
    pub created_at_step: usize,
    /// The parallel step at which the thread finished, if it has.
    pub finished_at_step: Option<usize>,
    /// Number of cost-graph vertices this thread has executed.
    pub vertices_created: usize,
    /// Number of effectful steps recorded so far (the next access ordinal).
    effects: usize,
    stack: Vec<Frame>,
    control: Control,
}

impl ThreadEntry {
    /// Whether the thread has finished executing.
    pub fn is_done(&self) -> bool {
        self.done.is_some()
    }
}

/// The result of attempting to step one thread.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// The thread made a transition and executed the given cost-graph vertex.
    Progress(VertexId),
    /// The thread is blocked on an `ftouch` of the given unfinished thread.
    Blocked(ThreadSym),
    /// The thread had already finished.
    Finished,
}

/// Runtime errors: a well-typed program never triggers these (Progress,
/// Theorem 3.3), but the machine is defensive so ill-typed terms fail with a
/// description rather than a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// The machine reached a state no rule applies to.
    Stuck {
        /// The thread that got stuck.
        thread: ThreadSym,
        /// A description of the offending state.
        state: String,
    },
    /// A priority that should have been concrete at runtime was still a
    /// variable.
    UnresolvedPriority(String),
    /// A read or write targeted an unknown location.
    DanglingLocation(LocId),
    /// An `ftouch` targeted an unknown thread symbol.
    DanglingThread(ThreadSym),
    /// The run exceeded the configured maximum number of parallel steps.
    StepLimitExceeded(usize),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Stuck { thread, state } => {
                write!(f, "thread {thread} is stuck: {state}")
            }
            MachineError::UnresolvedPriority(p) => {
                write!(f, "priority variable `{p}` reached runtime unresolved")
            }
            MachineError::DanglingLocation(s) => write!(f, "dangling memory location {s}"),
            MachineError::DanglingThread(a) => write!(f, "dangling thread symbol {a}"),
            MachineError::StepLimitExceeded(n) => {
                write!(f, "execution exceeded the {n}-step limit")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// The parallel abstract machine: thread pool `µ`, heap `σ`, and the cost
/// graph under construction.
#[derive(Debug)]
pub struct Machine {
    domain: PriorityDomain,
    threads: Vec<ThreadEntry>,
    heap: HashMap<LocId, HeapCell>,
    next_loc: u32,
    builder: DagBuilder,
    /// Per-thread scheduling status, maintained incrementally so the
    /// runnable set never has to be recomputed by filtering all threads.
    status: Vec<ThreadStatus>,
    /// The runnable threads, sorted by symbol.  Kept in sync with `status`:
    /// threads are inserted on spawn and wake-up, removed on block and
    /// finish — replay loops over thousands of schedules stay linear in the
    /// number of *transitions*, not `steps × threads`.
    runnable: Vec<ThreadSym>,
    /// For each unfinished thread, the threads blocked on touching it.
    waiters: HashMap<ThreadSym, Vec<ThreadSym>>,
    /// The effect record of the most recent step, if it was effectful.
    last_access: Option<StepAccess>,
    /// The initial thread.
    pub main: ThreadSym,
}

impl Machine {
    /// Loads a program into a fresh machine with a single initial thread.
    pub fn new(program: &Program) -> Self {
        let mut builder = DagBuilder::new(program.domain.clone());
        let dag_thread = builder.thread("main", program.main_priority);
        let main_sym = ThreadSym(0);
        let main_entry = ThreadEntry {
            sym: main_sym,
            priority: program.main_priority,
            dag_thread,
            known: HashSet::new(),
            done: None,
            created_at_step: 0,
            finished_at_step: None,
            vertices_created: 0,
            effects: 0,
            stack: Vec::new(),
            control: Control::EvalCmd(program.main.clone()),
        };
        Machine {
            domain: program.domain.clone(),
            threads: vec![main_entry],
            heap: HashMap::new(),
            next_loc: 0,
            builder,
            status: vec![ThreadStatus::Runnable],
            runnable: vec![main_sym],
            waiters: HashMap::new(),
            last_access: None,
            main: main_sym,
        }
    }

    /// The priority domain of the loaded program.
    pub fn domain(&self) -> &PriorityDomain {
        &self.domain
    }

    /// All thread symbols currently in the pool.
    pub fn thread_syms(&self) -> Vec<ThreadSym> {
        self.threads.iter().map(|t| t.sym).collect()
    }

    /// Access to a thread's entry.
    ///
    /// # Panics
    ///
    /// Panics if the symbol was not created by this machine.
    pub fn thread(&self, sym: ThreadSym) -> &ThreadEntry {
        &self.threads[sym.0 as usize]
    }

    /// Whether every thread has finished.
    pub fn all_done(&self) -> bool {
        self.threads.iter().all(|t| t.is_done())
    }

    /// The final value of the main thread, if it has finished.
    pub fn main_value(&self) -> Option<&Expr> {
        self.threads[self.main.0 as usize].done.as_ref()
    }

    /// Threads that can take a step right now: not finished and not blocked
    /// on an unfinished `ftouch`.  Sorted by symbol.
    ///
    /// The set is maintained incrementally (updated on spawn, block, wake-up
    /// and finish), so this accessor is O(1) — it does not rescan the thread
    /// pool.
    pub fn runnable(&self) -> &[ThreadSym] {
        &self.runnable
    }

    /// If the thread is blocked on an `ftouch`, the thread it is waiting for.
    pub fn blocked_on(&self, sym: ThreadSym) -> Option<ThreadSym> {
        match self.status[sym.0 as usize] {
            ThreadStatus::Blocked(b) => Some(b),
            ThreadStatus::Runnable | ThreadStatus::Done => None,
        }
    }

    /// The effect record of the most recent [`step_thread`](Self::step_thread)
    /// call, if that step interacted with the heap or the thread pool.
    /// Cleared at the start of every step.
    pub fn last_step_access(&self) -> Option<&StepAccess> {
        self.last_access.as_ref()
    }

    /// Read access to a heap cell, including its last-writer vertex, the
    /// reads since that write, and the writer's known-thread set.
    ///
    /// Returns `None` for locations this machine never allocated.
    pub fn heap_cell(&self, loc: LocId) -> Option<&HeapCell> {
        self.heap.get(&loc)
    }

    /// All live heap cells, in unspecified order.
    pub fn heap_cells(&self) -> impl Iterator<Item = (LocId, &HeapCell)> {
        self.heap.iter().map(|(l, c)| (*l, c))
    }

    /// What thread `sym`'s next transition will do to shared state, computed
    /// from its control state without executing anything.  Returns `None`
    /// for finished threads.
    ///
    /// A [`PendingEffect::Touch`] of an unfinished thread means `sym` is (or
    /// is about to become) blocked.
    pub fn pending_effect(&self, sym: ThreadSym) -> Option<PendingEffect> {
        let t = &self.threads[sym.0 as usize];
        if t.is_done() {
            return None;
        }
        Some(match (&t.control, t.stack.last()) {
            (Control::RetExpr(v), Some(frame)) => match (frame, v) {
                (Frame::GetHole, Expr::RefVal(s)) => PendingEffect::Read(*s),
                (Frame::SetValue(s), _) => PendingEffect::Write(*s),
                (Frame::CasNew(s, _), _) => PendingEffect::Cas(*s),
                (Frame::TouchHole, Expr::Tid(b)) => PendingEffect::Touch(*b),
                (Frame::DclIn(_, _, _), _) => PendingEffect::Alloc,
                _ => PendingEffect::Local,
            },
            (Control::EvalCmd(m), _) => match m.as_ref() {
                Cmd::Fcreate { .. } => PendingEffect::Spawn,
                _ => PendingEffect::Local,
            },
            (Control::RetCmd(_), None) => PendingEffect::Finish,
            _ => PendingEffect::Local,
        })
    }

    /// Inserts a thread into the sorted runnable set.
    fn runnable_insert(&mut self, sym: ThreadSym) {
        if let Err(i) = self.runnable.binary_search(&sym) {
            self.runnable.insert(i, sym);
        }
    }

    /// Removes a thread from the sorted runnable set.
    fn runnable_remove(&mut self, sym: ThreadSym) {
        if let Ok(i) = self.runnable.binary_search(&sym) {
            self.runnable.remove(i);
        }
    }

    /// Recomputes whether thread `idx` just blocked on a touch: its control
    /// holds a thread handle under a `TouchHole` frame and the target is
    /// unfinished.
    fn touch_block_target(&self, idx: usize) -> Option<ThreadSym> {
        let t = &self.threads[idx];
        if let (Control::RetExpr(Expr::Tid(b)), Some(Frame::TouchHole)) =
            (&t.control, t.stack.last())
        {
            let target = self.threads.get(b.0 as usize)?;
            if !target.is_done() {
                return Some(*b);
            }
        }
        None
    }

    /// Records the shared-state effect of the step that allocated `vertex`.
    fn record_effect(
        &mut self,
        idx: usize,
        vertex: VertexId,
        label: &'static str,
        effect: StepEffect,
    ) {
        let ordinal = self.threads[idx].effects;
        self.threads[idx].effects += 1;
        self.last_access = Some(StepAccess {
            thread: self.threads[idx].sym,
            vertex,
            effect,
            label,
            ordinal,
        });
    }

    /// Performs one transition of thread `sym` (one auxiliary-judgment step
    /// of Figures 9–11), allocating one cost-graph vertex if the thread
    /// progresses.
    ///
    /// `step_index` is the index of the current parallel step; it is recorded
    /// for threads created or finished during this transition.
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] if the thread is stuck (only possible for
    /// ill-typed programs) or mentions dangling symbols.
    pub fn step_thread(
        &mut self,
        sym: ThreadSym,
        step_index: usize,
    ) -> Result<StepOutcome, MachineError> {
        let idx = sym.0 as usize;
        self.last_access = None;
        match self.status[idx] {
            ThreadStatus::Done => return Ok(StepOutcome::Finished),
            ThreadStatus::Blocked(b) => return Ok(StepOutcome::Blocked(b)),
            ThreadStatus::Runnable => {}
        }

        // Take the control out to appease the borrow checker; it is always
        // put back (or the thread is marked done) before returning.
        let control =
            std::mem::replace(&mut self.threads[idx].control, Control::RetExpr(Expr::Unit));
        let outcome = self.transition(idx, control, step_index);
        match outcome {
            Ok(vertex) => {
                // Maintain the incremental runnable set: the step may have
                // finished the thread (waking its waiters) or blocked it on
                // an unfinished touch target.
                if self.threads[idx].is_done() {
                    self.status[idx] = ThreadStatus::Done;
                    self.runnable_remove(sym);
                    if let Some(ws) = self.waiters.remove(&sym) {
                        for w in ws {
                            self.status[w.0 as usize] = ThreadStatus::Runnable;
                            self.runnable_insert(w);
                        }
                    }
                } else if let Some(b) = self.touch_block_target(idx) {
                    self.status[idx] = ThreadStatus::Blocked(b);
                    self.runnable_remove(sym);
                    self.waiters.entry(b).or_default().push(sym);
                }
                Ok(StepOutcome::Progress(vertex))
            }
            Err(e) => Err(e),
        }
    }

    /// Allocates the fresh vertex for a step of thread `idx`.
    fn fresh_vertex(&mut self, idx: usize, label: &'static str) -> VertexId {
        let dag_thread = self.threads[idx].dag_thread;
        self.threads[idx].vertices_created += 1;
        self.builder.vertex_labeled(dag_thread, Some(label))
    }

    fn stuck<T>(&self, idx: usize, msg: impl Into<String>) -> Result<T, MachineError> {
        Err(MachineError::Stuck {
            thread: self.threads[idx].sym,
            state: msg.into(),
        })
    }

    /// One transition.  Returns the vertex allocated for the step.
    fn transition(
        &mut self,
        idx: usize,
        control: Control,
        step_index: usize,
    ) -> Result<VertexId, MachineError> {
        match control {
            Control::EvalCmd(m) => self.step_cmd(idx, m, step_index),
            Control::EvalExpr(e) => self.step_expr_eval(idx, e),
            Control::RetExpr(v) => self.step_expr_return(idx, v, step_index),
            Control::RetCmd(v) => self.step_cmd_return(idx, v, step_index),
        }
    }

    /// `k ▶ m` transitions (Figure 9, "pop command").
    fn step_cmd(
        &mut self,
        idx: usize,
        m: Arc<Cmd>,
        step_index: usize,
    ) -> Result<VertexId, MachineError> {
        match m.as_ref() {
            Cmd::Bind { var, expr, rest } => {
                // D-Bind1.
                let u = self.fresh_vertex(idx, "bind");
                self.threads[idx]
                    .stack
                    .push(Frame::BindIn(var.clone(), rest.clone()));
                self.threads[idx].control = Control::EvalExpr((**expr).clone());
                Ok(u)
            }
            Cmd::Fcreate {
                prio,
                ret_type: _,
                body,
            } => {
                // D-Create.
                let u = self.fresh_vertex(idx, "fcreate");
                let prio = match prio.as_const() {
                    Some(p) => p,
                    None => {
                        return Err(MachineError::UnresolvedPriority(prio.to_string()));
                    }
                };
                let new_sym = ThreadSym(self.threads.len() as u32);
                let dag_thread = self.builder.thread(format!("thread-{}", new_sym.0), prio);
                // The child inherits the parent's signature (known threads).
                let mut known = self.threads[idx].known.clone();
                known.insert(new_sym);
                let entry = ThreadEntry {
                    sym: new_sym,
                    priority: prio,
                    dag_thread,
                    known,
                    done: None,
                    created_at_step: step_index,
                    finished_at_step: None,
                    vertices_created: 0,
                    effects: 0,
                    stack: Vec::new(),
                    control: Control::EvalCmd(body.clone()),
                };
                self.threads.push(entry);
                self.status.push(ThreadStatus::Runnable);
                self.runnable_insert(new_sym);
                self.builder
                    .fcreate(u, dag_thread)
                    .expect("fresh thread has no creator yet");
                // The parent learns about the new thread and returns its
                // handle.
                self.threads[idx].known.insert(new_sym);
                self.threads[idx].control = Control::RetCmd(Expr::Tid(new_sym));
                self.record_effect(idx, u, "fcreate", StepEffect::Spawn(new_sym));
                Ok(u)
            }
            Cmd::Ftouch(e) => {
                // D-Touch1.
                let u = self.fresh_vertex(idx, "ftouch");
                self.threads[idx].stack.push(Frame::TouchHole);
                self.threads[idx].control = Control::EvalExpr((**e).clone());
                Ok(u)
            }
            Cmd::Dcl {
                ty,
                var,
                init,
                body,
            } => {
                // D-Dcl1.
                let u = self.fresh_vertex(idx, "dcl");
                self.threads[idx]
                    .stack
                    .push(Frame::DclIn(ty.clone(), var.clone(), body.clone()));
                self.threads[idx].control = Control::EvalExpr((**init).clone());
                Ok(u)
            }
            Cmd::Get(e) => {
                // D-Get1.
                let u = self.fresh_vertex(idx, "get");
                self.threads[idx].stack.push(Frame::GetHole);
                self.threads[idx].control = Control::EvalExpr((**e).clone());
                Ok(u)
            }
            Cmd::Set(target, value) => {
                // D-Set1.
                let u = self.fresh_vertex(idx, "set");
                self.threads[idx]
                    .stack
                    .push(Frame::SetTarget((**value).clone()));
                self.threads[idx].control = Control::EvalExpr((**target).clone());
                Ok(u)
            }
            Cmd::Ret(e) => {
                // D-Ret1.
                let u = self.fresh_vertex(idx, "ret");
                self.threads[idx].stack.push(Frame::RetHole);
                self.threads[idx].control = Control::EvalExpr((**e).clone());
                Ok(u)
            }
            Cmd::Cas {
                target,
                expected,
                new,
            } => {
                let u = self.fresh_vertex(idx, "cas");
                self.threads[idx]
                    .stack
                    .push(Frame::CasTarget((**expected).clone(), (**new).clone()));
                self.threads[idx].control = Control::EvalExpr((**target).clone());
                Ok(u)
            }
        }
    }

    /// `k ▷ e` transitions (Figure 11 and rule D-Exp).
    fn step_expr_eval(&mut self, idx: usize, e: Expr) -> Result<VertexId, MachineError> {
        let u = self.fresh_vertex(idx, "expr");
        if e.is_value() {
            self.threads[idx].control = Control::RetExpr(e);
            return Ok(u);
        }
        let t = &mut self.threads[idx];
        match e {
            Expr::Let(x, e1, e2) => {
                t.stack.push(Frame::LetIn(x, *e2));
                t.control = Control::EvalExpr(*e1);
            }
            Expr::App(f, a) => {
                if f.is_value() {
                    t.stack.push(Frame::AppArg(*f));
                    t.control = Control::EvalExpr(*a);
                } else {
                    t.stack.push(Frame::AppFn(*a));
                    t.control = Control::EvalExpr(*f);
                }
            }
            Expr::Ifz(c, z, x, s) => {
                t.stack.push(Frame::IfzCond(*z, x, *s));
                t.control = Control::EvalExpr(*c);
            }
            Expr::Fst(v) => {
                t.stack.push(Frame::FstHole);
                t.control = Control::EvalExpr(*v);
            }
            Expr::Snd(v) => {
                t.stack.push(Frame::SndHole);
                t.control = Control::EvalExpr(*v);
            }
            Expr::Case(scrut, x, e1, y, e2) => {
                t.stack.push(Frame::CaseScrut(x, *e1, y, *e2));
                t.control = Control::EvalExpr(*scrut);
            }
            Expr::PApp(v, p) => {
                t.stack.push(Frame::PAppHole(p));
                t.control = Control::EvalExpr(*v);
            }
            Expr::Fix(x, ty, body) => {
                // fix x:τ is e  ↦  [fix x:τ is e / x] e.
                let unrolled = body.subst(&x, &Expr::Fix(x.clone(), ty, body.clone()));
                t.control = Control::EvalExpr(unrolled);
            }
            Expr::Pair(a, b) => {
                t.stack.push(Frame::PairL(*b));
                t.control = Control::EvalExpr(*a);
            }
            Expr::Inl(v) => {
                t.stack.push(Frame::InlHole);
                t.control = Control::EvalExpr(*v);
            }
            Expr::Inr(v) => {
                t.stack.push(Frame::InrHole);
                t.control = Control::EvalExpr(*v);
            }
            Expr::Prim(op, a, b) => {
                t.stack.push(Frame::PrimL(op, *b));
                t.control = Control::EvalExpr(*a);
            }
            other => {
                let msg = format!("cannot evaluate expression {other:?}");
                return self.stuck(idx, msg);
            }
        }
        Ok(u)
    }

    /// `k ◁ v` transitions: an expression value meets the top stack frame.
    fn step_expr_return(
        &mut self,
        idx: usize,
        v: Expr,
        _step_index: usize,
    ) -> Result<VertexId, MachineError> {
        let frame = match self.threads[idx].stack.last().cloned() {
            Some(f) => f,
            None => {
                return self.stuck(idx, "value returned to an empty stack");
            }
        };
        match frame {
            // ----- expression frames -----
            Frame::LetIn(x, e2) => {
                let u = self.fresh_vertex(idx, "let");
                self.threads[idx].stack.pop();
                self.threads[idx].control = Control::EvalExpr(e2.subst(&x, &v));
                Ok(u)
            }
            Frame::AppFn(arg) => {
                let u = self.fresh_vertex(idx, "app-fn");
                self.threads[idx].stack.pop();
                self.threads[idx].stack.push(Frame::AppArg(v));
                self.threads[idx].control = Control::EvalExpr(arg);
                Ok(u)
            }
            Frame::AppArg(fun) => {
                let u = self.fresh_vertex(idx, "app");
                self.threads[idx].stack.pop();
                match fun {
                    Expr::Lam(x, _ty, body) => {
                        self.threads[idx].control = Control::EvalExpr(body.subst(&x, &v));
                        Ok(u)
                    }
                    other => self.stuck(idx, format!("applied non-function {other:?}")),
                }
            }
            Frame::IfzCond(zero, x, succ) => {
                let u = self.fresh_vertex(idx, "ifz");
                self.threads[idx].stack.pop();
                match v {
                    Expr::Nat(0) => {
                        self.threads[idx].control = Control::EvalExpr(zero);
                        Ok(u)
                    }
                    Expr::Nat(n) => {
                        self.threads[idx].control =
                            Control::EvalExpr(succ.subst(&x, &Expr::Nat(n - 1)));
                        Ok(u)
                    }
                    other => self.stuck(idx, format!("ifz on non-natural {other:?}")),
                }
            }
            Frame::FstHole => {
                let u = self.fresh_vertex(idx, "fst");
                self.threads[idx].stack.pop();
                match v {
                    Expr::Pair(a, _) => {
                        self.threads[idx].control = Control::RetExpr(*a);
                        Ok(u)
                    }
                    other => self.stuck(idx, format!("fst of non-pair {other:?}")),
                }
            }
            Frame::SndHole => {
                let u = self.fresh_vertex(idx, "snd");
                self.threads[idx].stack.pop();
                match v {
                    Expr::Pair(_, b) => {
                        self.threads[idx].control = Control::RetExpr(*b);
                        Ok(u)
                    }
                    other => self.stuck(idx, format!("snd of non-pair {other:?}")),
                }
            }
            Frame::CaseScrut(x, e1, y, e2) => {
                let u = self.fresh_vertex(idx, "case");
                self.threads[idx].stack.pop();
                match v {
                    Expr::Inl(a) => {
                        self.threads[idx].control = Control::EvalExpr(e1.subst(&x, &a));
                        Ok(u)
                    }
                    Expr::Inr(b) => {
                        self.threads[idx].control = Control::EvalExpr(e2.subst(&y, &b));
                        Ok(u)
                    }
                    other => self.stuck(idx, format!("case of non-sum {other:?}")),
                }
            }
            Frame::PAppHole(p) => {
                let u = self.fresh_vertex(idx, "papp");
                self.threads[idx].stack.pop();
                match v {
                    Expr::PLam(pi, _c, body) => {
                        self.threads[idx].control = Control::EvalExpr(body.subst_prio(&pi, &p));
                        Ok(u)
                    }
                    other => self.stuck(idx, format!("priority application of {other:?}")),
                }
            }
            Frame::PairL(b) => {
                let u = self.fresh_vertex(idx, "pair-l");
                self.threads[idx].stack.pop();
                self.threads[idx].stack.push(Frame::PairR(v));
                self.threads[idx].control = Control::EvalExpr(b);
                Ok(u)
            }
            Frame::PairR(a) => {
                let u = self.fresh_vertex(idx, "pair");
                self.threads[idx].stack.pop();
                self.threads[idx].control = Control::RetExpr(Expr::Pair(Box::new(a), Box::new(v)));
                Ok(u)
            }
            Frame::InlHole => {
                let u = self.fresh_vertex(idx, "inl");
                self.threads[idx].stack.pop();
                self.threads[idx].control = Control::RetExpr(Expr::Inl(Box::new(v)));
                Ok(u)
            }
            Frame::InrHole => {
                let u = self.fresh_vertex(idx, "inr");
                self.threads[idx].stack.pop();
                self.threads[idx].control = Control::RetExpr(Expr::Inr(Box::new(v)));
                Ok(u)
            }
            Frame::PrimL(op, rhs) => {
                let u = self.fresh_vertex(idx, "prim-l");
                self.threads[idx].stack.pop();
                self.threads[idx].stack.push(Frame::PrimR(op, v));
                self.threads[idx].control = Control::EvalExpr(rhs);
                Ok(u)
            }
            Frame::PrimR(op, lhs) => {
                let u = self.fresh_vertex(idx, "prim");
                self.threads[idx].stack.pop();
                match (lhs, v) {
                    (Expr::Nat(a), Expr::Nat(b)) => {
                        let r = match op {
                            PrimOp::Add => a + b,
                            PrimOp::Sub => a.saturating_sub(b),
                            PrimOp::Mul => a * b,
                            PrimOp::Eq => u64::from(a == b),
                            PrimOp::Lt => u64::from(a < b),
                        };
                        self.threads[idx].control = Control::RetExpr(Expr::Nat(r));
                        Ok(u)
                    }
                    (a, b) => self.stuck(idx, format!("primitive on non-naturals {a:?}, {b:?}")),
                }
            }
            // ----- command frames -----
            Frame::BindIn(_, _) => {
                // D-Bind2: the value must be an encapsulated command; start
                // running it, keeping the frame for D-Bind3.
                let u = self.fresh_vertex(idx, "bind-run");
                match v {
                    Expr::CmdVal(_p, m) => {
                        self.threads[idx].control = Control::EvalCmd(m);
                        Ok(u)
                    }
                    other => self.stuck(idx, format!("bind of non-command {other:?}")),
                }
            }
            Frame::TouchHole => {
                // D-Touch2 (the blocked case is filtered in `step_thread`).
                match v {
                    Expr::Tid(b) => {
                        let target_idx = b.0 as usize;
                        if target_idx >= self.threads.len() {
                            return Err(MachineError::DanglingThread(b));
                        }
                        let (value, target_known, target_dag) = {
                            let target = &self.threads[target_idx];
                            match &target.done {
                                Some(val) => (val.clone(), target.known.clone(), target.dag_thread),
                                None => {
                                    // Not actually runnable; restore state.
                                    self.threads[idx].control = Control::RetExpr(Expr::Tid(b));
                                    return self.stuck(
                                        idx,
                                        "touch of unfinished thread reached transition",
                                    );
                                }
                            }
                        };
                        let u = self.fresh_vertex(idx, "touch");
                        self.threads[idx].stack.pop();
                        self.threads[idx].known.extend(target_known);
                        self.threads[idx].control = Control::RetCmd(value);
                        self.builder
                            .ftouch(target_dag, u)
                            .expect("touching a different thread");
                        self.record_effect(idx, u, "touch", StepEffect::Touch(b));
                        Ok(u)
                    }
                    other => self.stuck(idx, format!("ftouch of non-handle {other:?}")),
                }
            }
            Frame::DclIn(_ty, var, body) => {
                // D-Dcl2.
                let u = self.fresh_vertex(idx, "dcl-alloc");
                self.threads[idx].stack.pop();
                let loc = LocId(self.next_loc);
                self.next_loc += 1;
                let known = self.threads[idx].known.clone();
                self.heap.insert(
                    loc,
                    HeapCell {
                        value: v,
                        writer: u,
                        known,
                        readers: Vec::new(),
                    },
                );
                let body_with_ref = body.subst(&var, &Expr::RefVal(loc));
                self.threads[idx].control = Control::EvalCmd(Arc::new(body_with_ref));
                self.record_effect(idx, u, "dcl-alloc", StepEffect::Alloc(loc));
                Ok(u)
            }
            Frame::GetHole => {
                // D-Get2.
                match v {
                    Expr::RefVal(s) => {
                        let u = self.fresh_vertex(idx, "get-read");
                        let cell = self
                            .heap
                            .get(&s)
                            .cloned()
                            .ok_or(MachineError::DanglingLocation(s))?;
                        self.threads[idx].stack.pop();
                        self.threads[idx].known.extend(cell.known.iter().copied());
                        self.threads[idx].control = Control::RetCmd(cell.value);
                        // The weak edge from the most recent write to this
                        // read.  A read of a cell written by the same thread
                        // is already ordered by continuation edges; the
                        // builder would reject a self-loop only if the writer
                        // were this very vertex, which cannot happen.
                        self.builder
                            .weak(cell.writer, u)
                            .expect("read vertex is fresh");
                        self.heap
                            .get_mut(&s)
                            .expect("cell present above")
                            .readers
                            .push(u);
                        self.record_effect(idx, u, "get-read", StepEffect::Read(s));
                        Ok(u)
                    }
                    other => self.stuck(idx, format!("read of non-reference {other:?}")),
                }
            }
            Frame::SetTarget(value_expr) => {
                // D-Set2.
                match v {
                    Expr::RefVal(s) => {
                        let u = self.fresh_vertex(idx, "set-target");
                        self.threads[idx].stack.pop();
                        self.threads[idx].stack.push(Frame::SetValue(s));
                        self.threads[idx].control = Control::EvalExpr(value_expr);
                        Ok(u)
                    }
                    other => self.stuck(idx, format!("assignment to non-reference {other:?}")),
                }
            }
            Frame::SetValue(s) => {
                // D-Set3.
                let u = self.fresh_vertex(idx, "set-write");
                if !self.heap.contains_key(&s) {
                    return Err(MachineError::DanglingLocation(s));
                }
                self.threads[idx].stack.pop();
                let known = self.threads[idx].known.clone();
                self.heap.insert(
                    s,
                    HeapCell {
                        value: v.clone(),
                        writer: u,
                        readers: Vec::new(),
                        known,
                    },
                );
                self.threads[idx].control = Control::RetCmd(v);
                self.record_effect(idx, u, "set-write", StepEffect::Write(s));
                Ok(u)
            }
            Frame::RetHole => {
                // D-Ret2.
                let u = self.fresh_vertex(idx, "ret-value");
                self.threads[idx].stack.pop();
                self.threads[idx].control = Control::RetCmd(v);
                Ok(u)
            }
            Frame::CasTarget(expected, new) => match v {
                Expr::RefVal(s) => {
                    let u = self.fresh_vertex(idx, "cas-target");
                    self.threads[idx].stack.pop();
                    self.threads[idx].stack.push(Frame::CasExpected(s, new));
                    self.threads[idx].control = Control::EvalExpr(expected);
                    Ok(u)
                }
                other => self.stuck(idx, format!("cas on non-reference {other:?}")),
            },
            Frame::CasExpected(s, new) => {
                let u = self.fresh_vertex(idx, "cas-expected");
                self.threads[idx].stack.pop();
                self.threads[idx].stack.push(Frame::CasNew(s, v));
                self.threads[idx].control = Control::EvalExpr(new);
                Ok(u)
            }
            Frame::CasNew(s, expected) => {
                // D-CAS1 / D-CAS2.
                let u = self.fresh_vertex(idx, "cas-apply");
                let cell = self
                    .heap
                    .get(&s)
                    .cloned()
                    .ok_or(MachineError::DanglingLocation(s))?;
                self.threads[idx].stack.pop();
                // A CAS observes the current value, so it behaves like a read
                // (weak edge + signature merge) whether or not it succeeds.
                self.threads[idx].known.extend(cell.known.iter().copied());
                self.builder
                    .weak(cell.writer, u)
                    .expect("cas vertex is fresh");
                let success = cell.value == expected;
                if success {
                    let known = self.threads[idx].known.clone();
                    self.heap.insert(
                        s,
                        HeapCell {
                            value: v,
                            writer: u,
                            readers: Vec::new(),
                            known,
                        },
                    );
                    self.threads[idx].control = Control::RetCmd(Expr::Nat(1));
                } else {
                    // A failed CAS still observed the cell, so it counts as
                    // a reader of the surviving write.
                    self.heap
                        .get_mut(&s)
                        .expect("cell present above")
                        .readers
                        .push(u);
                    self.threads[idx].control = Control::RetCmd(Expr::Nat(0));
                }
                self.record_effect(idx, u, "cas-apply", StepEffect::Cas { loc: s, success });
                Ok(u)
            }
        }
    }

    /// `k ◀ ret v` transitions (D-Bind3 or thread completion).
    fn step_cmd_return(
        &mut self,
        idx: usize,
        v: Expr,
        step_index: usize,
    ) -> Result<VertexId, MachineError> {
        match self.threads[idx].stack.last().cloned() {
            None => {
                // ϵ ◀ ret v: the thread is finished.  The finishing step
                // itself allocates a final vertex so every thread has at
                // least one vertex and `ftouch` edges have a well-defined
                // source.
                let u = self.fresh_vertex(idx, "finish");
                self.threads[idx].done = Some(v.clone());
                self.threads[idx].finished_at_step = Some(step_index);
                self.threads[idx].control = Control::RetCmd(v);
                self.record_effect(idx, u, "finish", StepEffect::Finish);
                Ok(u)
            }
            Some(Frame::BindIn(x, m2)) => {
                // D-Bind3.
                let u = self.fresh_vertex(idx, "bind-continue");
                self.threads[idx].stack.pop();
                self.threads[idx].control = Control::EvalCmd(Arc::new(m2.subst(&x, &v)));
                Ok(u)
            }
            Some(other) => self.stuck(
                idx,
                format!("command result returned to unexpected frame {other:?}"),
            ),
        }
    }

    /// Finishes the run: consumes the machine and produces the cost graph.
    ///
    /// # Errors
    ///
    /// Returns the underlying builder error if the graph is malformed (which
    /// would indicate a bug in the machine, not in the program).
    pub fn into_graph(mut self) -> Result<CostDag, rp_core::build::DagBuildError> {
        // A thread that was created but never scheduled has no vertices; give
        // it a placeholder so the graph is buildable.  (The run driver drains
        // all threads, so this only happens when a run is cut short by the
        // step limit.)
        let unstarted: Vec<DagThreadId> = self
            .threads
            .iter()
            .filter(|t| t.vertices_created == 0)
            .map(|t| t.dag_thread)
            .collect();
        for dag_thread in unstarted {
            self.builder.vertex_labeled(dag_thread, Some("unstarted"));
        }
        self.builder.build()
    }

    /// Per-thread summary used by the run driver.
    pub fn thread_entries(&self) -> &[ThreadEntry] {
        &self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::dsl::*;

    fn single_prog(m: Cmd) -> Program {
        let domain = PriorityDomain::single();
        Program {
            name: "test".into(),
            domain: domain.clone(),
            main_priority: domain.by_index(0),
            main: Arc::new(m),
            return_type: Type::Nat,
        }
    }

    /// Runs a single-threaded program by stepping the main thread until done.
    fn run_sequential(prog: &Program) -> (Expr, CostDag) {
        let mut m = Machine::new(prog);
        let mut step = 0;
        while !m.all_done() {
            let runnable = m.runnable().to_vec();
            assert!(!runnable.is_empty(), "deadlock in sequential run");
            for sym in runnable {
                m.step_thread(sym, step).unwrap();
            }
            step += 1;
            assert!(step < 100_000, "runaway program");
        }
        let v = m.main_value().unwrap().clone();
        let g = m.into_graph().unwrap();
        (v, g)
    }

    #[test]
    fn ret_literal() {
        let (v, g) = run_sequential(&single_prog(ret(nat(7))));
        assert_eq!(v, nat(7));
        assert!(g.vertex_count() >= 2);
        assert_eq!(g.thread_count(), 1);
    }

    #[test]
    fn arithmetic_evaluates() {
        let m = ret(add(mul(nat(6), nat(7)), nat(8)));
        let (v, _) = run_sequential(&single_prog(m));
        assert_eq!(v, nat(50));
    }

    #[test]
    fn let_and_application() {
        let m = ret(let_(
            "f",
            lam("x", Type::Nat, add(var("x"), nat(1))),
            app(var("f"), app(var("f"), nat(0))),
        ));
        let (v, _) = run_sequential(&single_prog(m));
        assert_eq!(v, nat(2));
    }

    #[test]
    fn fix_factorial() {
        // fact = fix f. λn. ifz n {1} {m. n * f(m)}
        let fact = fix(
            "f",
            Type::arrow(Type::Nat, Type::Nat),
            lam(
                "n",
                Type::Nat,
                ifz(
                    var("n"),
                    nat(1),
                    "m",
                    mul(var("n"), app(var("f"), var("m"))),
                ),
            ),
        );
        let (v, _) = run_sequential(&single_prog(ret(app(fact, nat(5)))));
        assert_eq!(v, nat(120));
    }

    #[test]
    fn references_read_back_writes() {
        let dom = PriorityDomain::single();
        let p = dom.by_index(0);
        let m = dcl(
            "r",
            Type::Nat,
            nat(1),
            bind(
                "_",
                cmd(p, set(var("r"), nat(42))),
                bind("v", cmd(p, get(var("r"))), ret(var("v"))),
            ),
        );
        let (v, g) = run_sequential(&single_prog(m));
        assert_eq!(v, nat(42));
        // The read adds a weak edge from the write.
        assert_eq!(g.weak_edges().len(), 1);
    }

    #[test]
    fn cas_succeeds_then_fails() {
        let dom = PriorityDomain::single();
        let p = dom.by_index(0);
        let m = dcl(
            "r",
            Type::Nat,
            nat(0),
            bind(
                "first",
                cmd(p, cas(var("r"), nat(0), nat(5))),
                bind(
                    "second",
                    cmd(p, cas(var("r"), nat(0), nat(9))),
                    ret(add(mul(var("first"), nat(10)), var("second"))),
                ),
            ),
        );
        let (v, _) = run_sequential(&single_prog(m));
        // first = 1 (success), second = 0 (failure): 10.
        assert_eq!(v, nat(10));
    }

    #[test]
    fn fcreate_and_ftouch_join_value() {
        let dom = PriorityDomain::single();
        let p = dom.by_index(0);
        let m = bind(
            "t",
            cmd(p, fcreate(p, Type::Nat, ret(add(nat(20), nat(22))))),
            bind("v", cmd(p, ftouch(var("t"))), ret(var("v"))),
        );
        let (v, g) = run_sequential(&single_prog(m));
        assert_eq!(v, nat(42));
        assert_eq!(g.thread_count(), 2);
        assert_eq!(g.create_edges().len(), 1);
        assert_eq!(g.touch_edges().len(), 1);
    }

    #[test]
    fn touch_blocks_until_child_finishes() {
        let dom = PriorityDomain::single();
        let p = dom.by_index(0);
        // The child does a little arithmetic so it cannot finish instantly.
        let m = bind(
            "t",
            cmd(p, fcreate(p, Type::Nat, ret(add(nat(1), nat(2))))),
            bind("v", cmd(p, ftouch(var("t"))), ret(var("v"))),
        );
        let prog = single_prog(m);
        let mut machine = Machine::new(&prog);
        let main = machine.main;
        // Step only the main thread until it blocks.
        let mut steps = 0;
        loop {
            match machine.step_thread(main, steps).unwrap() {
                StepOutcome::Blocked(child) => {
                    assert_ne!(child, main);
                    break;
                }
                StepOutcome::Progress(_) => {}
                StepOutcome::Finished => panic!("main cannot finish before the child"),
            }
            steps += 1;
            assert!(steps < 1000);
        }
        // Now drain the child, then the main thread can finish.
        let child = machine
            .thread_syms()
            .into_iter()
            .find(|s| *s != main)
            .unwrap();
        while !machine.thread(child).is_done() {
            machine.step_thread(child, steps).unwrap();
            steps += 1;
        }
        while !machine.thread(main).is_done() {
            machine.step_thread(main, steps).unwrap();
            steps += 1;
        }
        assert_eq!(machine.main_value().unwrap(), &nat(3));
    }

    #[test]
    fn ill_typed_program_gets_stuck_not_panics() {
        // Applying a number as a function.
        let m = ret(app(nat(1), nat(2)));
        let prog = single_prog(m);
        let mut machine = Machine::new(&prog);
        let main = machine.main;
        let mut result = Ok(StepOutcome::Finished);
        for step in 0..100 {
            result = machine.step_thread(main, step);
            if result.is_err() || machine.thread(main).is_done() {
                break;
            }
        }
        assert!(matches!(result, Err(MachineError::Stuck { .. })));
    }

    #[test]
    fn incremental_runnable_matches_recomputed_definition() {
        // Round-robin a fork-join program and check, before every step, that
        // the incrementally maintained runnable set equals the from-scratch
        // definition: unfinished and not waiting on an unfinished touch
        // target (derived independently via `pending_effect`).
        let prog = crate::progs::figure1_program();
        let mut m = Machine::new(&prog);
        let mut step = 0;
        while !m.all_done() {
            let expected: Vec<ThreadSym> = m
                .thread_syms()
                .into_iter()
                .filter(|&s| {
                    if m.thread(s).is_done() {
                        return false;
                    }
                    match m.pending_effect(s) {
                        Some(PendingEffect::Touch(b)) => m.thread(b).is_done(),
                        _ => true,
                    }
                })
                .collect();
            assert_eq!(m.runnable(), expected.as_slice(), "at step {step}");
            let pick = expected[step % expected.len()];
            m.step_thread(pick, step).unwrap();
            step += 1;
            assert!(step < 100_000, "runaway program");
        }
        assert!(m.runnable().is_empty());
    }

    #[test]
    fn step_effects_and_heap_metadata_are_recorded() {
        let dom = PriorityDomain::single();
        let p = dom.by_index(0);
        // dcl r := 0 in { v ← get r; set r (v + 1); get r }
        let m = dcl(
            "r",
            Type::Nat,
            nat(0),
            bind(
                "v",
                cmd(p, get(var("r"))),
                bind(
                    "_w",
                    cmd(p, set(var("r"), add(var("v"), nat(1)))),
                    bind("out", cmd(p, get(var("r"))), ret(var("out"))),
                ),
            ),
        );
        let prog = single_prog(m);
        let mut machine = Machine::new(&prog);
        let main = machine.main;
        let mut effects = Vec::new();
        let mut step = 0;
        while !machine.thread(main).is_done() {
            machine.step_thread(main, step).unwrap();
            if let Some(a) = machine.last_step_access() {
                assert_eq!(a.thread, main);
                effects.push((a.effect, a.ordinal));
            }
            step += 1;
            assert!(step < 1000);
        }
        let kinds: Vec<StepEffect> = effects.iter().map(|&(e, _)| e).collect();
        let loc = match kinds[0] {
            StepEffect::Alloc(l) => l,
            other => panic!("first effect should be the allocation, got {other:?}"),
        };
        assert_eq!(
            kinds,
            vec![
                StepEffect::Alloc(loc),
                StepEffect::Read(loc),
                StepEffect::Write(loc),
                StepEffect::Read(loc),
                StepEffect::Finish,
            ]
        );
        // Ordinals number a thread's effects densely from zero.
        assert_eq!(
            effects.iter().map(|&(_, o)| o).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        // The final cell records the set-write as last writer and exactly one
        // read (the post-write get) since then.
        let cell = machine.heap_cell(loc).expect("cell is live");
        assert_eq!(cell.value, nat(1));
        assert_eq!(cell.last_readers().len(), 1);
        assert_eq!(cell.known_threads(), &machine.thread(main).known);
        assert_ne!(cell.last_writer(), cell.last_readers()[0]);
        assert_eq!(machine.heap_cells().count(), 1);
    }

    #[test]
    fn pending_effect_predicts_the_next_transition() {
        let dom = PriorityDomain::single();
        let p = dom.by_index(0);
        let m = dcl(
            "r",
            Type::Nat,
            nat(7),
            bind("v", cmd(p, get(var("r"))), ret(var("v"))),
        );
        let prog = single_prog(m);
        let mut machine = Machine::new(&prog);
        let main = machine.main;
        let mut step = 0;
        while !machine.thread(main).is_done() {
            let predicted = machine.pending_effect(main).expect("unfinished");
            machine.step_thread(main, step).unwrap();
            let observed = machine.last_step_access().map(|a| a.effect);
            // Every non-local prediction must match the observed effect.
            match (predicted, observed) {
                (PendingEffect::Alloc, Some(StepEffect::Alloc(_)))
                | (PendingEffect::Local, None)
                | (PendingEffect::Finish, Some(StepEffect::Finish)) => {}
                (PendingEffect::Read(l), Some(StepEffect::Read(l2))) => assert_eq!(l, l2),
                (PendingEffect::Write(l), Some(StepEffect::Write(l2))) => assert_eq!(l, l2),
                (pred, obs) => panic!("prediction {pred:?} disagrees with {obs:?}"),
            }
            step += 1;
            assert!(step < 1000);
        }
        assert_eq!(machine.pending_effect(main), None, "done thread");
    }

    #[test]
    fn error_display() {
        let errs = [
            MachineError::Stuck {
                thread: ThreadSym(0),
                state: "x".into(),
            },
            MachineError::UnresolvedPriority("pi".into()),
            MachineError::DanglingLocation(LocId(0)),
            MachineError::DanglingThread(ThreadSym(1)),
            MachineError::StepLimitExceeded(10),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
