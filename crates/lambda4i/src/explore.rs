//! A stateless DPOR model checker for the λ⁴ᵢ abstract machine.
//!
//! [`explore_program`] enumerates the D-Par interleavings of a program at
//! single-step granularity: every scheduling point picks one runnable thread,
//! so the explored executions are exactly the serializations of the machine's
//! transition relation.  Because [`Machine::step_thread`] is pure and
//! replayable, the explorer is *stateless* in the Flanagan–Godefroid sense —
//! it keeps only the current execution's scheduling stack and re-runs the
//! machine from scratch after each backtrack.
//!
//! Two pruning techniques cut the interleaving space without losing any
//! observable behavior:
//!
//! * **Persistent-set (DPOR) backtracking.**  At every scheduling point the
//!   explorer initially commits to one thread.  While executing, it watches
//!   each enabled thread's [`pending_effect`](Machine::pending_effect) — the
//!   machine makes the next shared-state interaction syntactically evident —
//!   and whenever a pending effect conflicts with an already-executed event
//!   that is not happens-before-ordered with it, the conflicting thread is
//!   added to the *backtrack set* of the scheduling point that ran the
//!   earlier event.  Only those backtrack choices are explored.
//! * **Sleep sets.**  After a choice's subtree is fully explored, the choice
//!   goes to sleep for its sibling branches; a sleeping thread is not picked
//!   again until some dependent event wakes it.  Branches whose every enabled
//!   thread is asleep are provably redundant and abandoned.
//!
//! The happens-before relation driving the backtrack test is tracked with
//! exact per-location vector clocks (last-write clock, reads-since-write
//! join) — over-approximating it would *hide* backtrack points and make the
//! reduction unsound, so no shortcuts are taken.  Two deliberate,
//! documented refinements of the dependence relation keep fork-join programs
//! tractable:
//!
//! * two `fcreate` steps are treated as independent even though they race on
//!   the thread-name counter: exploring both orders would only permute
//!   [`ThreadSym`] names, so outcomes are compared modulo thread naming and
//!   a pure fork-join program like `parallel_fib` explores in one schedule;
//! * `ftouch` and thread completion are never *co-enabled* (the machine
//!   blocks a toucher until its target finishes), so the pair is excluded
//!   from backtracking — though the finish→touch edge still enters every
//!   happens-before clock.
//!
//! On every complete execution the explorer checks three properties:
//!
//! 1. **Theorem 2.3** on the reconstructed cost graph via
//!    [`rp_core::bound::check_schedule`].  Serialized exploration schedules
//!    are admissible by construction but rarely prompt, so the theorem is
//!    often vacuous for them; the report counts vacuous checks honestly
//!    instead of claiming evidence it does not have.
//! 2. **Value determinism**: the main thread's final value and the final
//!    heap (as a sorted multiset of pretty-printed cell values, insulating
//!    the comparison from location and thread renaming) must be identical
//!    across all explored schedules.
//! 3. **Race freedom**: the [`RaceDetector`] classifies every conflicting
//!    `dcl/!/:=/cas` pair as ordered, CAS-synchronized, or racy; racy pairs
//!    are reported with both access sites and an exhibiting schedule per
//!    observed direction.

use crate::machine::{Machine, MachineError, PendingEffect, StepEffect, StepOutcome};
use crate::pretty::expr_to_string;
use crate::syntax::{Expr, LocId, Program, ThreadSym};
use crate::vclock::{AccessKind, PairOrder, RaceDetector, RacePair, VClock};
use rp_core::bound::check_schedule;
use rp_core::graph::VertexId;
use rp_core::schedule::Schedule;
use std::collections::{BTreeSet, HashMap};

/// How aggressively the explorer prunes the interleaving space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExploreMode {
    /// Sleep sets + persistent-set (DPOR) backtracking: sound for all the
    /// properties checked, exponentially smaller on independent programs.
    #[default]
    Dpor,
    /// Full enumeration of every serialization, no pruning.  Exists to
    /// cross-check the DPOR reduction on small programs.
    Full,
}

/// Exploration budget and switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Pruning mode.
    pub mode: ExploreMode,
    /// Maximum number of executions (complete or sleep-abandoned) before the
    /// explorer gives up and reports `complete = false`.
    pub max_schedules: usize,
    /// Per-execution step cap (runaway guard).
    pub max_steps: usize,
    /// Whether to reconstruct the cost graph and check Theorem 2.3 on every
    /// explored schedule.
    pub check_bounds: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            mode: ExploreMode::Dpor,
            max_schedules: 10_000,
            max_steps: 100_000,
            check_bounds: true,
        }
    }
}

/// An explicit schedule: the thread symbols stepped at each parallel step.
/// Replayable through [`crate::run::run_with_schedule`].
pub type Script = Vec<Vec<ThreadSym>>;

/// One access site of a race report, identified schedule-independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteRef {
    /// The accessing thread.
    pub thread: ThreadSym,
    /// The thread-local effect ordinal of the access (stable across
    /// schedules; see [`crate::machine::StepAccess::ordinal`]).
    pub ordinal: usize,
    /// The machine rule that performed the access (e.g. `"set-write"`).
    pub label: &'static str,
    /// The accessed cell.
    pub loc: LocId,
    /// What the access did.
    pub kind: AccessKind,
}

/// A data race found by the explorer: two conflicting, unordered access
/// sites plus the divergent schedules that exhibit each execution order.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// One access site (the lexicographically smaller `(thread, ordinal)`).
    pub first: SiteRef,
    /// The other access site.
    pub second: SiteRef,
    /// Exhibiting schedules, one per observed execution order of the pair
    /// (up to two).  Replaying these through
    /// [`crate::run::run_with_schedule`] reproduces the race.
    pub schedules: Vec<Script>,
}

/// One distinct observable outcome (final value + final heap) with an
/// exhibiting schedule.
#[derive(Debug, Clone)]
pub struct OutcomeReport {
    /// The main thread's final value.
    pub value: Expr,
    /// The final heap as a sorted multiset of pretty-printed cell values
    /// (insensitive to location numbering).
    pub heap: Vec<String>,
    /// How many explored schedules produced this outcome.
    pub count: usize,
    /// A schedule producing it.
    pub schedule: Script,
}

/// The result of exploring a program's interleaving space.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// The program's name.
    pub name: String,
    /// The pruning mode used.
    pub mode: ExploreMode,
    /// Complete executions explored.
    pub schedules_explored: usize,
    /// Scheduling choices that DPOR proved redundant and never ran: enabled
    /// threads at retired scheduling points that no backtrack set demanded.
    pub pruned_choices: usize,
    /// Branches abandoned (or backtrack choices skipped) because sleep sets
    /// proved them redundant.
    pub sleep_pruned: usize,
    /// Whether the space was exhausted within the budget.  When `false`,
    /// every count below is a lower bound.
    pub complete: bool,
    /// Distinct observable outcomes.  A deterministic program has exactly
    /// one.
    pub outcomes: Vec<OutcomeReport>,
    /// Distinct racy access-site pairs.
    pub races: Vec<RaceReport>,
    /// Distinct conflicting pairs whose every observation was ordered by
    /// program order / fcreate / ftouch alone.
    pub ordered_pairs: usize,
    /// Distinct conflicting pairs ordered only through CAS synchronization
    /// in at least one observation (and never racy).
    pub cas_pairs: usize,
    /// Schedules on which Theorem 2.3 was checked.
    pub bounds_checked: usize,
    /// Checks that were vacuous (hypotheses did not hold — serialized
    /// schedules are admissible but usually not prompt).
    pub bounds_vacuous: usize,
    /// Checks that falsified the theorem.  Must be zero.
    pub bound_counterexamples: usize,
    /// Deepest scheduling stack reached (= longest execution in steps).
    pub max_depth: usize,
    /// Total machine steps across all executions.
    pub total_steps: usize,
}

impl ExploreReport {
    /// Whether every explored schedule produced the same value and heap.
    pub fn deterministic(&self) -> bool {
        self.outcomes.len() <= 1
    }

    /// Whether any racy pair was found.
    pub fn racy(&self) -> bool {
        !self.races.is_empty()
    }
}

/// One scheduling point of the current execution.
#[derive(Debug)]
struct Point {
    /// The thread currently chosen at this point.
    chosen: ThreadSym,
    /// Threads that were runnable here.
    enabled: Vec<ThreadSym>,
    /// Threads that must (eventually) be explored here.
    backtrack: BTreeSet<ThreadSym>,
    /// Threads already explored (or proven redundant) here.
    done: BTreeSet<ThreadSym>,
    /// Sleep set governing the current choice's subtree.
    sleep: BTreeSet<ThreadSym>,
}

/// One executed event of the current execution (index-aligned with the
/// scheduling stack).
#[derive(Debug)]
struct Event {
    thread: ThreadSym,
    effect: Option<StepEffect>,
    /// The acting thread's happens-before clock *after* the event.
    clock: VClock,
}

enum ExecStatus {
    /// Ran to completion (all threads done).
    Complete,
    /// Abandoned: every enabled thread was asleep, so the branch is
    /// redundant.
    SleepBlocked,
}

/// Explores every (DPOR-reduced) interleaving of `program`, checking
/// Theorem 2.3, value determinism, and race freedom on each.
///
/// # Errors
///
/// Returns a [`MachineError`] if any interleaving gets stuck (ill-typed
/// input), deadlocks, or exceeds `config.max_steps`.  Budget exhaustion is
/// *not* an error — the report comes back with `complete = false`.
pub fn explore_program(
    program: &Program,
    config: &ExploreConfig,
) -> Result<ExploreReport, MachineError> {
    let mut explorer = Explorer::new(program, config);
    let mut executions = 0usize;
    let mut complete = true;
    loop {
        if executions >= config.max_schedules {
            complete = false;
            break;
        }
        executions += 1;
        explorer.run_one()?;
        if !explorer.advance() {
            break;
        }
    }
    Ok(explorer.into_report(complete))
}

struct Explorer<'p> {
    program: &'p Program,
    config: &'p ExploreConfig,
    stack: Vec<Point>,
    // Cumulative statistics and oracles.
    schedules_explored: usize,
    pruned_choices: usize,
    sleep_pruned: usize,
    max_depth: usize,
    total_steps: usize,
    bounds_checked: usize,
    bounds_vacuous: usize,
    bound_counterexamples: usize,
    /// Outcome fingerprint → report (insertion-ordered via the Vec).
    outcome_index: HashMap<String, usize>,
    outcomes: Vec<OutcomeReport>,
    /// Pair site key → strongest classification seen + a representative.
    pair_class: HashMap<PairKey, (PairOrder, RacePair)>,
    /// For racy pairs: per execution order of the pair, one exhibiting
    /// schedule.
    race_examples: HashMap<PairKey, HashMap<(ThreadSym, usize), Script>>,
}

type PairKey = ((ThreadSym, usize), (ThreadSym, usize));

impl<'p> Explorer<'p> {
    fn new(program: &'p Program, config: &'p ExploreConfig) -> Self {
        Explorer {
            program,
            config,
            stack: Vec::new(),
            schedules_explored: 0,
            pruned_choices: 0,
            sleep_pruned: 0,
            max_depth: 0,
            total_steps: 0,
            bounds_checked: 0,
            bounds_vacuous: 0,
            bound_counterexamples: 0,
            outcome_index: HashMap::new(),
            outcomes: Vec::new(),
            pair_class: HashMap::new(),
            race_examples: HashMap::new(),
        }
    }

    /// Runs one execution: replays the scheduling stack's choices, then
    /// extends it with fresh points until the machine finishes (or the
    /// branch is proven redundant by sleep sets).
    fn run_one(&mut self) -> Result<ExecStatus, MachineError> {
        let mut machine = Machine::new(self.program);
        let mut detector = RaceDetector::new();
        // DPOR happens-before state: per-thread clocks plus exact
        // per-location last-write / reads-since-write clocks.
        let mut clocks: HashMap<ThreadSym, VClock> = HashMap::new();
        let mut write_clock: HashMap<LocId, VClock> = HashMap::new();
        let mut read_clock: HashMap<LocId, VClock> = HashMap::new();
        let mut events: Vec<Event> = Vec::new();
        let mut sched_steps: Vec<Vec<VertexId>> = Vec::new();
        let mut running_sleep: BTreeSet<ThreadSym> = BTreeSet::new();
        let mut step = 0usize;

        loop {
            if machine.all_done() {
                self.total_steps += step;
                self.max_depth = self.max_depth.max(self.stack.len());
                self.record_outcome(machine, detector, sched_steps);
                return Ok(ExecStatus::Complete);
            }
            if step >= self.config.max_steps {
                return Err(MachineError::StepLimitExceeded(self.config.max_steps));
            }
            let enabled: Vec<ThreadSym> = machine.runnable().to_vec();
            if enabled.is_empty() {
                let blocked = machine
                    .thread_syms()
                    .into_iter()
                    .find(|s| !machine.thread(*s).is_done())
                    .expect("not all done");
                return Err(MachineError::Stuck {
                    thread: blocked,
                    state: "deadlock: every unfinished thread is blocked".into(),
                });
            }

            let replaying = step < self.stack.len();
            let chosen = if replaying {
                // Backtrack-set updates for this state already happened on
                // its first visit (the state is identical — the machine is
                // deterministic given the choice prefix), so replay only
                // refreshes the running sleep set.
                running_sleep = self.stack[step].sleep.clone();
                debug_assert!(enabled.contains(&self.stack[step].chosen));
                self.stack[step].chosen
            } else {
                let avail = enabled.iter().copied().find(|s| !running_sleep.contains(s));
                let chosen = match avail {
                    Some(c) => c,
                    None => {
                        // Every enabled thread is asleep: every extension of
                        // this branch reorders only independent steps of
                        // already-explored executions.
                        self.sleep_pruned += 1;
                        self.total_steps += step;
                        self.max_depth = self.max_depth.max(self.stack.len());
                        return Ok(ExecStatus::SleepBlocked);
                    }
                };
                let mut backtrack = BTreeSet::new();
                let mut done = BTreeSet::new();
                backtrack.insert(chosen);
                done.insert(chosen);
                if self.config.mode == ExploreMode::Full {
                    backtrack.extend(enabled.iter().copied());
                }
                self.stack.push(Point {
                    chosen,
                    enabled: enabled.clone(),
                    backtrack,
                    done,
                    sleep: running_sleep.clone(),
                });
                if self.config.mode == ExploreMode::Dpor {
                    for &p in &enabled {
                        self.dpor_update(p, machine.pending_effect(p), &clocks, &events);
                    }
                }
                chosen
            };

            match machine.step_thread(chosen, step)? {
                StepOutcome::Progress(v) => sched_steps.push(vec![v]),
                other => unreachable!("runnable thread did not progress: {other:?}"),
            }
            let access = machine.last_step_access().copied();
            if let Some(a) = &access {
                detector.observe(a);
            }
            let effect = access.map(|a| a.effect);
            let clock = advance_clocks(
                chosen,
                effect,
                &mut clocks,
                &mut write_clock,
                &mut read_clock,
            );
            events.push(Event {
                thread: chosen,
                effect,
                clock,
            });
            // Wake sleeping threads whose pending effect depends on the
            // event just executed.
            if let Some(eff) = effect {
                running_sleep.retain(|&s| match machine.pending_effect(s) {
                    Some(pe) => !dependent(eff, pe),
                    None => false,
                });
            }
            step += 1;
        }
    }

    /// The DPOR backtrack rule for thread `p` at the current state: find the
    /// latest executed event that conflicts with `p`'s pending effect and is
    /// not happens-before it, and make `p` (or, if `p` was not enabled
    /// there, every enabled thread) a backtrack choice at that point.
    fn dpor_update(
        &mut self,
        p: ThreadSym,
        pending: Option<PendingEffect>,
        clocks: &HashMap<ThreadSym, VClock>,
        events: &[Event],
    ) {
        let pe = match pending {
            Some(pe) => pe,
            None => return,
        };
        if matches!(
            pe,
            PendingEffect::Local
                | PendingEffect::Spawn
                | PendingEffect::Touch(_)
                | PendingEffect::Finish
        ) {
            return;
        }
        let cp = clocks.get(&p);
        let hit = events.iter().enumerate().rev().find(|(_, ev)| {
            if ev.thread == p {
                return false;
            }
            let eff = match ev.effect {
                Some(e) => e,
                None => return false,
            };
            if !dependent(eff, pe) {
                return false;
            }
            // ev happens-before p's next step iff p's clock has seen ev's
            // own tick.
            let seen = cp.map_or(0, |c| c.get(ev.thread));
            ev.clock.get(ev.thread) > seen
        });
        if let Some((j, _)) = hit {
            let point = &mut self.stack[j];
            if point.enabled.contains(&p) {
                point.backtrack.insert(p);
            } else {
                // Conservative fallback of the Flanagan–Godefroid rule.
                point.backtrack.extend(point.enabled.iter().copied());
            }
        }
    }

    /// Consumes the finished machine: outcome fingerprint, race pairs,
    /// Theorem 2.3 on the reconstructed graph.
    fn record_outcome(
        &mut self,
        machine: Machine,
        detector: RaceDetector,
        steps: Vec<Vec<VertexId>>,
    ) {
        self.schedules_explored += 1;
        let script: Script = self.stack.iter().map(|p| vec![p.chosen]).collect();

        let value = machine
            .main_value()
            .cloned()
            .expect("all threads done implies main done");
        let mut heap: Vec<String> = machine
            .heap_cells()
            .map(|(_, c)| expr_to_string(&c.value))
            .collect();
        heap.sort();
        let fingerprint = format!("{}⊣{}", expr_to_string(&value), heap.join(","));
        match self.outcome_index.get(&fingerprint) {
            Some(&i) => self.outcomes[i].count += 1,
            None => {
                self.outcome_index.insert(fingerprint, self.outcomes.len());
                self.outcomes.push(OutcomeReport {
                    value,
                    heap,
                    count: 1,
                    schedule: script.clone(),
                });
            }
        }

        for pair in detector.pairs() {
            let key = pair.site_key();
            match self.pair_class.get_mut(&key) {
                Some((order, rep)) => {
                    if severity(pair.order) > severity(*order) {
                        *order = pair.order;
                        *rep = *pair;
                    }
                }
                None => {
                    self.pair_class.insert(key, (pair.order, *pair));
                }
            }
            if pair.order == PairOrder::Racy {
                let direction = (pair.first.thread, pair.first.ordinal);
                self.race_examples
                    .entry(key)
                    .or_default()
                    .entry(direction)
                    .or_insert_with(|| script.clone());
            }
        }

        if self.config.check_bounds {
            let graph = machine
                .into_graph()
                .expect("machine-produced graphs are acyclic");
            let schedule = Schedule {
                num_cores: 1,
                steps,
            };
            let verdict = check_schedule(&graph, &schedule);
            self.bounds_checked += 1;
            if verdict.vacuous() {
                self.bounds_vacuous += 1;
            }
            if verdict.any_counterexample() {
                self.bound_counterexamples += 1;
            }
        }
    }

    /// Backtracks to the deepest scheduling point with an unexplored
    /// backtrack choice, retiring fully-explored points (and counting the
    /// choices DPOR pruned at them).  Returns `false` when the whole space
    /// is exhausted.
    fn advance(&mut self) -> bool {
        while let Some(point) = self.stack.last_mut() {
            // The current choice's subtree is fully explored: it goes to
            // sleep for the remaining siblings.
            if self.config.mode == ExploreMode::Dpor {
                point.sleep.insert(point.chosen);
            }
            loop {
                let next = point
                    .backtrack
                    .iter()
                    .find(|c| !point.done.contains(c))
                    .copied();
                match next {
                    Some(c) if point.sleep.contains(&c) => {
                        // A sibling already covered this choice's behaviors.
                        point.done.insert(c);
                        self.sleep_pruned += 1;
                    }
                    Some(c) => {
                        point.done.insert(c);
                        point.chosen = c;
                        return true;
                    }
                    None => break,
                }
            }
            self.pruned_choices += point
                .enabled
                .iter()
                .filter(|e| !point.done.contains(e))
                .count();
            self.stack.pop();
        }
        false
    }

    fn into_report(self, complete: bool) -> ExploreReport {
        let mut ordered_pairs = 0;
        let mut cas_pairs = 0;
        let mut races = Vec::new();
        for (key, (order, rep)) in &self.pair_class {
            match order {
                PairOrder::Ordered => ordered_pairs += 1,
                PairOrder::CasSynchronized => cas_pairs += 1,
                PairOrder::Racy => {
                    let (a, b) = normalized_sites(rep);
                    let mut schedules: Vec<Script> = self
                        .race_examples
                        .get(key)
                        .map(|m| m.values().cloned().collect())
                        .unwrap_or_default();
                    schedules.sort();
                    races.push(RaceReport {
                        first: a,
                        second: b,
                        schedules,
                    });
                }
            }
        }
        races.sort_by_key(|r| {
            (
                r.first.thread,
                r.first.ordinal,
                r.second.thread,
                r.second.ordinal,
            )
        });
        ExploreReport {
            name: self.program.name.clone(),
            mode: self.config.mode,
            schedules_explored: self.schedules_explored,
            pruned_choices: self.pruned_choices,
            sleep_pruned: self.sleep_pruned,
            complete,
            outcomes: self.outcomes,
            races,
            ordered_pairs,
            cas_pairs,
            bounds_checked: self.bounds_checked,
            bounds_vacuous: self.bounds_vacuous,
            bound_counterexamples: self.bound_counterexamples,
            max_depth: self.max_depth,
            total_steps: self.total_steps,
        }
    }
}

/// The two sites of a pair, ordered by `(thread, ordinal)`.
fn normalized_sites(pair: &RacePair) -> (SiteRef, SiteRef) {
    let site = |a: &crate::vclock::Access| SiteRef {
        thread: a.thread,
        ordinal: a.ordinal,
        label: a.label,
        loc: a.loc,
        kind: a.kind,
    };
    let (f, s) = (site(&pair.first), site(&pair.second));
    if (f.thread, f.ordinal) <= (s.thread, s.ordinal) {
        (f, s)
    } else {
        (s, f)
    }
}

fn severity(order: PairOrder) -> u8 {
    match order {
        PairOrder::Ordered => 0,
        PairOrder::CasSynchronized => 1,
        PairOrder::Racy => 2,
    }
}

/// The dependence relation between an *executed* event and a thread's
/// *pending* effect, used both for backtrack-point discovery and sleep-set
/// wake-ups.
///
/// Conservative where success is unknowable in advance (a pending `cas` is
/// treated as a write), and deliberately refined in two places documented at
/// the module level: spawn–spawn pairs are independent (outcomes are
/// compared modulo thread naming) and touch–finish pairs are excluded
/// (never co-enabled).
fn dependent(executed: StepEffect, pending: PendingEffect) -> bool {
    use PendingEffect as P;
    use StepEffect as E;
    match (executed, pending) {
        // The allocation counter is shared state: two pending allocations
        // would name locations differently under reordering.
        (E::Alloc(_), P::Alloc) => true,
        (E::Alloc(l), P::Read(m) | P::Write(m) | P::Cas(m)) => l == m,
        (E::Read(l), P::Write(m) | P::Cas(m)) => l == m,
        (E::Write(l), P::Read(m) | P::Write(m) | P::Cas(m)) => l == m,
        // Any cas observes the cell; a pending read only conflicts if the
        // cas wrote, but success under reordering is not stable, so stay
        // conservative.
        (E::Cas { loc, .. }, P::Read(m) | P::Write(m) | P::Cas(m)) => loc == m,
        _ => false,
    }
}

/// Advances the DPOR happens-before clocks for one executed event and
/// returns the acting thread's clock after the event.
fn advance_clocks(
    thread: ThreadSym,
    effect: Option<StepEffect>,
    clocks: &mut HashMap<ThreadSym, VClock>,
    write_clock: &mut HashMap<LocId, VClock>,
    read_clock: &mut HashMap<LocId, VClock>,
) -> VClock {
    clocks.entry(thread).or_default().tick(thread);
    match effect {
        None | Some(StepEffect::Finish) => {}
        Some(StepEffect::Alloc(l)) => {
            write_clock.insert(l, clocks[&thread].clone());
        }
        Some(StepEffect::Read(l)) => {
            if let Some(w) = write_clock.get(&l) {
                let w = w.clone();
                clocks.get_mut(&thread).expect("ticked").join(&w);
            }
            let snap = clocks[&thread].clone();
            read_clock.entry(l).or_default().join(&snap);
        }
        Some(StepEffect::Write(l)) => {
            heap_write_join(thread, l, clocks, write_clock, read_clock);
        }
        Some(StepEffect::Cas { loc, success }) => {
            if success {
                heap_write_join(thread, loc, clocks, write_clock, read_clock);
            } else {
                // A failed cas observed the cell: order it after the last
                // write and record it as a read.
                if let Some(w) = write_clock.get(&loc) {
                    let w = w.clone();
                    clocks.get_mut(&thread).expect("ticked").join(&w);
                }
                let snap = clocks[&thread].clone();
                read_clock.entry(loc).or_default().join(&snap);
            }
        }
        Some(StepEffect::Spawn(child)) => {
            let snap = clocks[&thread].clone();
            clocks.entry(child).or_default().join(&snap);
        }
        Some(StepEffect::Touch(target)) => {
            if let Some(t) = clocks.get(&target).cloned() {
                clocks.get_mut(&thread).expect("ticked").join(&t);
            }
        }
    }
    clocks[&thread].clone()
}

/// A write is ordered after the cell's last write and every read since it;
/// it then becomes the cell's new last write (absorbing those reads, so the
/// read clock resets).
fn heap_write_join(
    thread: ThreadSym,
    loc: LocId,
    clocks: &mut HashMap<ThreadSym, VClock>,
    write_clock: &mut HashMap<LocId, VClock>,
    read_clock: &mut HashMap<LocId, VClock>,
) {
    let ck = clocks.get_mut(&thread).expect("ticked");
    if let Some(w) = write_clock.get(&loc) {
        ck.join(w);
    }
    if let Some(r) = read_clock.remove(&loc) {
        ck.join(&r);
    }
    write_clock.insert(loc, ck.clone());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progs;
    use crate::run::{run_with_schedule, RunConfig};

    #[test]
    fn sequential_program_has_one_schedule() {
        use crate::syntax::dsl::*;
        use crate::syntax::Type;
        use rp_priority::PriorityDomain;
        use std::sync::Arc;
        let dom = PriorityDomain::single();
        let p = dom.by_index(0);
        let body = dcl(
            "r",
            Type::Nat,
            nat(1),
            bind(
                "v",
                cmd(p, get(var("r"))),
                bind(
                    "_",
                    cmd(p, set(var("r"), add(var("v"), nat(41)))),
                    bind("out", cmd(p, get(var("r"))), ret(var("out"))),
                ),
            ),
        );
        let prog = crate::syntax::Program {
            name: "sequential".into(),
            domain: dom.clone(),
            main_priority: p,
            main: Arc::new(body),
            return_type: Type::Nat,
        };
        let report = explore_program(&prog, &ExploreConfig::default()).unwrap();
        assert_eq!(report.schedules_explored, 1);
        assert!(report.complete);
        assert!(report.deterministic());
        assert_eq!(report.outcomes[0].value, nat(42));
        assert!(!report.racy());
        assert_eq!(report.bound_counterexamples, 0);
    }

    #[test]
    fn parallel_fib_explores_one_schedule_under_dpor() {
        // Pure fork-join: every pair of steps of different threads is
        // independent (spawn–spawn included, by the documented refinement),
        // so DPOR needs exactly one execution.
        let prog = progs::parallel_fib(4);
        let report = explore_program(&prog, &ExploreConfig::default()).unwrap();
        assert_eq!(report.schedules_explored, 1);
        assert!(report.complete);
        assert!(report.deterministic());
        assert_eq!(report.outcomes[0].value, crate::syntax::dsl::nat(3));
        assert!(!report.racy());
    }

    #[test]
    fn figure1_race_is_found_and_replayable() {
        // Figure 1's handler writes `slot` while main reads it without
        // synchronization: one racy pair, but a deterministic final value
        // (the program returns unit).
        let prog = progs::figure1_program();
        let report = explore_program(&prog, &ExploreConfig::default()).unwrap();
        assert!(report.complete);
        assert!(report.racy(), "figure 1 races on `slot`");
        assert!(report.pruned_choices > 0, "DPOR must prune something");
        for race in &report.races {
            assert!(!race.schedules.is_empty());
            for script in &race.schedules {
                // Every exhibiting schedule replays cleanly through the
                // explicit-schedule driver.
                let rerun = run_with_schedule(
                    &prog,
                    script,
                    &RunConfig {
                        cores: 1,
                        ..RunConfig::default()
                    },
                )
                .unwrap();
                assert_eq!(rerun.steps, script.len());
            }
        }
    }

    /// A minimal racy program: one child writes the cell the parent reads,
    /// with no synchronization between write and read.  Small enough for
    /// `ExploreMode::Full` to exhaust.
    fn tiny_racy_program() -> crate::syntax::Program {
        use crate::syntax::dsl::*;
        use crate::syntax::Type;
        use rp_priority::PriorityDomain;
        use std::sync::Arc;
        let dom = PriorityDomain::single();
        let p = dom.by_index(0);
        // Kept deliberately micro: full enumeration branches at every
        // machine step, so even one extra `bind` multiplies the space.
        let child = set(var("r"), nat(1));
        let body = dcl(
            "r",
            Type::Nat,
            nat(0),
            bind(
                "_t",
                cmd(p, fcreate(p, Type::Nat, child)),
                bind("v", cmd(p, get(var("r"))), ret(var("v"))),
            ),
        );
        crate::syntax::Program {
            name: "tiny-racy".into(),
            domain: dom.clone(),
            main_priority: p,
            main: Arc::new(body),
            return_type: Type::Nat,
        }
    }

    #[test]
    fn dpor_and_full_agree_on_outcomes_and_races() {
        // Full enumeration is only tractable on genuinely tiny programs;
        // bigger fixtures are covered by the DPOR-only tests.
        let progs = [tiny_racy_program()];
        for prog in &progs {
            let dpor = explore_program(prog, &ExploreConfig::default()).unwrap();
            let full = explore_program(
                prog,
                &ExploreConfig {
                    mode: ExploreMode::Full,
                    max_schedules: 200_000,
                    check_bounds: false,
                    ..ExploreConfig::default()
                },
            )
            .unwrap();
            assert!(dpor.complete && full.complete, "{}", prog.name);
            assert!(
                dpor.schedules_explored <= full.schedules_explored,
                "{}: reduction cannot grow the space",
                prog.name
            );
            let values = |r: &ExploreReport| {
                let mut v: Vec<String> = r
                    .outcomes
                    .iter()
                    .map(|o| format!("{}|{}", expr_to_string(&o.value), o.heap.join(",")))
                    .collect();
                v.sort();
                v
            };
            assert_eq!(values(&dpor), values(&full), "{}", prog.name);
            let race_sites = |r: &ExploreReport| {
                let mut v: Vec<_> = r
                    .races
                    .iter()
                    .map(|x| {
                        (
                            x.first.thread,
                            x.first.ordinal,
                            x.second.thread,
                            x.second.ordinal,
                        )
                    })
                    .collect();
                v.sort();
                v
            };
            assert_eq!(race_sites(&dpor), race_sites(&full), "{}", prog.name);
            // The unsynchronized write/read pair must be found, and the
            // read observes 0 or 1 depending on the schedule.
            assert!(dpor.racy(), "{}", prog.name);
            assert_eq!(dpor.outcomes.len(), 2, "{}", prog.name);
        }
    }

    #[test]
    fn budget_exhaustion_is_reported_not_fatal() {
        let prog = progs::figure1_program();
        let report = explore_program(
            &prog,
            &ExploreConfig {
                max_schedules: 1,
                ..ExploreConfig::default()
            },
        )
        .unwrap();
        assert!(!report.complete);
        assert_eq!(report.schedules_explored, 1);
    }

    #[test]
    fn bounds_are_checked_per_schedule() {
        let prog = progs::parallel_fib(3);
        let report = explore_program(&prog, &ExploreConfig::default()).unwrap();
        assert_eq!(report.bounds_checked, report.schedules_explored);
        assert_eq!(report.bound_counterexamples, 0);
        let unchecked = explore_program(
            &prog,
            &ExploreConfig {
                check_bounds: false,
                ..ExploreConfig::default()
            },
        )
        .unwrap();
        assert_eq!(unchecked.bounds_checked, 0);
    }
}
