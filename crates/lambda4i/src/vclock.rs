//! Vector clocks and the happens-before race detector for λ⁴ᵢ executions.
//!
//! The machine reports every shared-state step as a
//! [`StepAccess`]; this module replays that event
//! stream through two families of vector clocks to classify each pair of
//! conflicting heap accesses:
//!
//! * the **plain** clocks order events by program order plus the structural
//!   edges of the cost semantics — `fcreate` (the child starts after the
//!   spawn) and `ftouch` (the toucher continues after the target's finish);
//! * the **sync** clocks additionally propagate order through `cas`
//!   operations on the same cell: every `cas` *acquires* the cell's release
//!   clock before it runs, and a successful `cas` *releases* its own clock
//!   into the cell afterwards, so chains of CASes transfer happens-before
//!   exactly the way an atomic read-modify-write does.
//!
//! A pair of conflicting accesses (same location, at least one write) is then
//!
//! * [`PairOrder::Ordered`] if the plain clocks already order it — no data
//!   race, independent of how `cas` is modelled;
//! * [`PairOrder::CasSynchronized`] if only the sync clocks order it — the
//!   accesses are serialized by CAS synchronization, as in a lock-free
//!   counter;
//! * [`PairOrder::Racy`] otherwise — a genuine data race: there exists an
//!   interleaving reordering the two accesses, so the program's outcome may
//!   depend on the schedule.
//!
//! The detector is exact for a single observed execution: it neither
//! over-approximates (extra order edges would hide races *and* would make the
//! DPOR explorer's persistent sets unsound) nor under-approximates the order
//! relation of the semantics.

use crate::machine::{StepAccess, StepEffect};
use crate::syntax::{LocId, ThreadSym};
use rp_core::graph::VertexId;
use std::collections::HashMap;

/// A vector clock over thread symbols.
///
/// Components are indexed by [`ThreadSym`]; missing components are zero, so
/// clocks grow on demand as threads spawn.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VClock {
    ticks: Vec<u64>,
}

impl VClock {
    /// The zero clock.
    pub fn new() -> Self {
        VClock::default()
    }

    /// The component for thread `t` (zero if never ticked).
    pub fn get(&self, t: ThreadSym) -> u64 {
        self.ticks.get(t.0 as usize).copied().unwrap_or(0)
    }

    /// Advances thread `t`'s own component and returns the new value.
    pub fn tick(&mut self, t: ThreadSym) -> u64 {
        let i = t.0 as usize;
        if self.ticks.len() <= i {
            self.ticks.resize(i + 1, 0);
        }
        self.ticks[i] += 1;
        self.ticks[i]
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VClock) {
        if self.ticks.len() < other.ticks.len() {
            self.ticks.resize(other.ticks.len(), 0);
        }
        for (i, &v) in other.ticks.iter().enumerate() {
            if self.ticks[i] < v {
                self.ticks[i] = v;
            }
        }
    }

    /// Whether every component of `self` is ≤ the matching component of
    /// `other` (the happens-before partial order on clocks).
    pub fn leq(&self, other: &VClock) -> bool {
        self.ticks
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.ticks.get(i).copied().unwrap_or(0))
    }
}

/// The kind of heap access an event performed, for conflict detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// `dcl` allocation (writes the initial value).
    Alloc,
    /// `!` read.
    Read,
    /// `:=` write.
    Write,
    /// Failed `cas` (observes the value; no write).
    CasRead,
    /// Successful `cas` (observes and writes).
    CasWrite,
}

impl AccessKind {
    /// Whether the access writes the cell.
    pub fn is_write(self) -> bool {
        matches!(
            self,
            AccessKind::Alloc | AccessKind::Write | AccessKind::CasWrite
        )
    }

    /// Whether two access kinds conflict (at least one writes).
    pub fn conflicts_with(self, other: AccessKind) -> bool {
        self.is_write() || other.is_write()
    }
}

/// One heap access event, identified both by its cost-graph vertex (specific
/// to one execution) and by its `(thread, ordinal)` site (stable across
/// schedules, since each thread's own step sequence is deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The accessing thread.
    pub thread: ThreadSym,
    /// The cost-graph vertex of the access in the observed execution.
    pub vertex: VertexId,
    /// The vertex label naming the machine rule (e.g. `"set-write"`).
    pub label: &'static str,
    /// The thread-local effect ordinal (see
    /// [`StepAccess::ordinal`](crate::machine::StepAccess)).
    pub ordinal: usize,
    /// What the access did.
    pub kind: AccessKind,
    /// The accessed cell.
    pub loc: LocId,
}

/// How a pair of conflicting accesses is ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairOrder {
    /// Ordered by program order, `fcreate`, or `ftouch` alone.
    Ordered,
    /// Ordered only through `cas` acquire/release chains on the same cell.
    CasSynchronized,
    /// Unordered: a data race.
    Racy,
}

/// A pair of conflicting accesses to the same cell, classified.
///
/// `first` is the access that executed earlier in the observed schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RacePair {
    /// The earlier access.
    pub first: Access,
    /// The later access.
    pub second: Access,
    /// The classification.
    pub order: PairOrder,
}

impl RacePair {
    /// A schedule-independent identity for the pair: both access sites as
    /// `(thread, ordinal)`, normalized so the smaller site comes first.
    /// Two executions that report the same race produce the same key even if
    /// the accesses executed in the opposite order.
    pub fn site_key(&self) -> ((ThreadSym, usize), (ThreadSym, usize)) {
        let a = (self.first.thread, self.first.ordinal);
        let b = (self.second.thread, self.second.ordinal);
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

/// Per-location history entry: the access plus the acting thread's clock
/// snapshots taken at the access.
#[derive(Debug, Clone)]
struct HistoryEntry {
    access: Access,
    plain: VClock,
    sync: VClock,
}

/// Online happens-before race detector.
///
/// Feed it every [`StepAccess`] the machine reports (in execution order) via
/// [`observe`](Self::observe); it maintains the plain and sync clocks and
/// classifies each conflicting pair as it completes.  Histories are kept per
/// cell and never pruned — the detector targets the explorer's small fixture
/// programs, where exhaustiveness matters more than memory.
#[derive(Debug, Default)]
pub struct RaceDetector {
    /// Per-thread plain clock (program order + fcreate + ftouch).
    plain: HashMap<ThreadSym, VClock>,
    /// Per-thread sync clock (plain edges + cas acquire/release).
    sync: HashMap<ThreadSym, VClock>,
    /// Per-cell release clock for `cas` synchronization.
    cas_release: HashMap<LocId, VClock>,
    /// Per-cell access history.
    history: HashMap<LocId, Vec<HistoryEntry>>,
    /// Every conflicting pair seen, classified, in completion order.
    pairs: Vec<RacePair>,
}

impl RaceDetector {
    /// A fresh detector with all clocks at zero.
    pub fn new() -> Self {
        RaceDetector::default()
    }

    /// Processes one machine step's effect record.
    pub fn observe(&mut self, step: &StepAccess) {
        let t = step.thread;
        // Every effectful step is a fresh event on its thread's clocks.
        self.plain.entry(t).or_default().tick(t);
        self.sync.entry(t).or_default().tick(t);

        match step.effect {
            StepEffect::Spawn(child) => {
                // The child starts with everything the parent has seen.
                let p = self.plain[&t].clone();
                let s = self.sync[&t].clone();
                self.plain.entry(child).or_default().join(&p);
                self.sync.entry(child).or_default().join(&s);
            }
            StepEffect::Touch(target) => {
                // The toucher continues after the target's final event.
                if let Some(p) = self.plain.get(&target).cloned() {
                    self.plain.get_mut(&t).expect("ticked above").join(&p);
                }
                if let Some(s) = self.sync.get(&target).cloned() {
                    self.sync.get_mut(&t).expect("ticked above").join(&s);
                }
            }
            StepEffect::Finish => {}
            StepEffect::Alloc(loc) => self.heap_access(step, AccessKind::Alloc, loc),
            StepEffect::Read(loc) => self.heap_access(step, AccessKind::Read, loc),
            StepEffect::Write(loc) => self.heap_access(step, AccessKind::Write, loc),
            StepEffect::Cas { loc, success } => {
                // Acquire: order this event after every released cas on the
                // cell, whether or not this one succeeds.
                if let Some(rel) = self.cas_release.get(&loc).cloned() {
                    self.sync.get_mut(&t).expect("ticked above").join(&rel);
                }
                let kind = if success {
                    AccessKind::CasWrite
                } else {
                    AccessKind::CasRead
                };
                self.heap_access(step, kind, loc);
                // Release: publish this event (successful cas only, matching
                // the write; a failed cas transfers no order downstream).
                if success {
                    let s = self.sync[&t].clone();
                    self.cas_release.entry(loc).or_default().join(&s);
                }
            }
        }
    }

    /// Classifies the new access against every conflicting earlier access to
    /// the same cell and appends it to the history.
    fn heap_access(&mut self, step: &StepAccess, kind: AccessKind, loc: LocId) {
        let t = step.thread;
        let access = Access {
            thread: t,
            vertex: step.vertex,
            label: step.label,
            ordinal: step.ordinal,
            kind,
            loc,
        };
        let plain_now = self.plain[&t].clone();
        let sync_now = self.sync[&t].clone();
        let entries = self.history.entry(loc).or_default();
        for earlier in entries.iter() {
            if !earlier.access.kind.conflicts_with(kind) {
                continue;
            }
            if earlier.access.thread == t {
                // Program order on the same thread: always plain-ordered.
                continue;
            }
            // `earlier` happens-before the new access iff the new thread's
            // clock has caught up with the earlier event's own tick.
            let e = earlier.access.thread;
            let order = if earlier.plain.get(e) <= plain_now.get(e) {
                PairOrder::Ordered
            } else if earlier.sync.get(e) <= sync_now.get(e) {
                PairOrder::CasSynchronized
            } else {
                PairOrder::Racy
            };
            self.pairs.push(RacePair {
                first: earlier.access,
                second: access,
                order,
            });
        }
        entries.push(HistoryEntry {
            access,
            plain: plain_now,
            sync: sync_now,
        });
    }

    /// Every conflicting cross-thread pair seen so far, in completion order.
    pub fn pairs(&self) -> &[RacePair] {
        &self.pairs
    }

    /// The subset of [`pairs`](Self::pairs) classified as racy.
    pub fn racy_pairs(&self) -> impl Iterator<Item = &RacePair> {
        self.pairs.iter().filter(|p| p.order == PairOrder::Racy)
    }

    /// The thread's current plain clock, if it has had any event.
    pub fn plain_clock(&self, t: ThreadSym) -> Option<&VClock> {
        self.plain.get(&t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_algebra() {
        let a = ThreadSym(0);
        let b = ThreadSym(1);
        let mut x = VClock::new();
        let mut y = VClock::new();
        assert!(x.leq(&y) && y.leq(&x));
        x.tick(a);
        assert!(!x.leq(&y) && y.leq(&x));
        y.tick(b);
        assert!(!x.leq(&y) && !y.leq(&x), "concurrent clocks");
        y.join(&x);
        assert!(x.leq(&y));
        assert_eq!(y.get(a), 1);
        assert_eq!(y.get(b), 1);
        assert_eq!(y.get(ThreadSym(7)), 0);
    }

    #[test]
    fn access_kind_conflicts() {
        use AccessKind::*;
        assert!(Write.conflicts_with(Read));
        assert!(Read.conflicts_with(CasWrite));
        assert!(!Read.conflicts_with(Read));
        assert!(!CasRead.conflicts_with(Read));
        assert!(Alloc.is_write() && CasWrite.is_write() && !CasRead.is_write());
    }
}
