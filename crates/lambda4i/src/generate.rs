//! Seeded random generation of well-typed λ⁴ᵢ programs.
//!
//! The front-end property suites need many programs that typecheck, round-
//! trip through `pretty`/`parse`, and exercise the solver — the term-level
//! analogue of `rp_core::random`'s well-formed cost graphs.  The generator
//! builds commands the same way a well-typed program would:
//!
//! * every generated expression has type `nat`; binders introduce `nat`
//!   variables that later expressions may reuse;
//! * `dcl` introduces `nat ref` cells, and `!`/`:=`/`cas` only target them;
//! * `fcreate` spawns children at a priority `⪰` the ambient one, so later
//!   `ftouch`es of their handles satisfy the Touch rule;
//! * with [`GenConfig::free_prio_probability`], a spawn's priority is a
//!   *fresh free variable* instead — touching such a thread defers an
//!   `ambient ⪯ π` goal to the solver, which is always satisfiable in a
//!   total order (the top level works), so generated programs are well
//!   typed under [`crate::typecheck::infer_program`] by construction.

use crate::syntax::dsl::*;
use crate::syntax::{Cmd, Expr, Program, Type};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_priority::{PrioTerm, Priority, PriorityDomain};
use std::sync::Arc;

/// Configuration for [`random_program`].
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Number of priority levels of the (totally ordered) domain.
    pub levels: usize,
    /// Maximum nesting depth of generated commands.
    pub max_depth: usize,
    /// Number of top-level command steps in the main sequence.
    pub steps: usize,
    /// Probability that a spawn's priority is left as a free variable for
    /// the solver (0 disables inference exercise).
    pub free_prio_probability: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            levels: 3,
            max_depth: 3,
            steps: 6,
            free_prio_probability: 0.3,
        }
    }
}

struct Gen {
    rng: StdRng,
    config: GenConfig,
    domain: PriorityDomain,
    /// In-scope `nat` variables.
    nats: Vec<String>,
    /// In-scope `nat ref` variables.
    refs: Vec<String>,
    /// In-scope touchable handles: variable name, priority term, and
    /// whether the handle is still untouched (each is touched at most once,
    /// which keeps the generated binds linear).
    handles: Vec<(String, PrioTerm)>,
    fresh: usize,
}

impl Gen {
    fn fresh(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}{}", self.fresh)
    }

    /// A random `nat` expression from the in-scope variables.
    fn nat_expr(&mut self, depth: usize) -> Expr {
        let leaf = depth == 0 || self.rng.gen_bool(0.4);
        if leaf {
            if !self.nats.is_empty() && self.rng.gen_bool(0.5) {
                let i = self.rng.gen_range(0..self.nats.len());
                var(&self.nats[i].clone())
            } else {
                nat(self.rng.gen_range(0u64..10))
            }
        } else {
            match self.rng.gen_range(0u32..5) {
                0 => add(self.nat_expr(depth - 1), self.nat_expr(depth - 1)),
                1 => mul(self.nat_expr(depth - 1), self.nat_expr(depth - 1)),
                2 => sub(self.nat_expr(depth - 1), self.nat_expr(depth - 1)),
                3 => {
                    let x = self.fresh("x");
                    let bound = self.nat_expr(depth - 1);
                    self.nats.push(x.clone());
                    let body = self.nat_expr(depth - 1);
                    self.nats.pop();
                    let_(&x, bound, body)
                }
                _ => {
                    // An applied identity-shaped lambda keeps application
                    // and ifz in the mix while staying at type nat.
                    let x = self.fresh("x");
                    self.nats.push(x.clone());
                    let body = ifz(
                        var(&x),
                        self.nat_expr(depth - 1),
                        "m",
                        add(nat(1), var("m")),
                    );
                    self.nats.pop();
                    app(lam(&x, Type::Nat, body), self.nat_expr(depth - 1))
                }
            }
        }
    }

    /// A priority for a spawned thread: concrete `⪰ ambient`, or a fresh
    /// free variable for the solver.
    fn spawn_prio(&mut self, ambient: Priority) -> PrioTerm {
        if self.rng.gen_bool(self.config.free_prio_probability) {
            PrioTerm::var(self.fresh("q"))
        } else {
            let above: Vec<Priority> = self
                .domain
                .iter()
                .filter(|&q| self.domain.leq(ambient, q))
                .collect();
            let i = self.rng.gen_range(0..above.len());
            PrioTerm::Const(above[i])
        }
    }

    /// The body a spawned thread runs (kept touch-free so threads at
    /// solver-chosen priorities impose no extra constraints).
    fn child_body(&mut self, depth: usize) -> Cmd {
        // Children see no parent-local variables.
        let saved = (
            std::mem::take(&mut self.nats),
            std::mem::take(&mut self.refs),
            std::mem::take(&mut self.handles),
        );
        let body = ret(self.nat_expr(depth));
        (self.nats, self.refs, self.handles) = saved;
        body
    }

    /// One step of the main command sequence: returns the command to bind
    /// and the kind of variable it introduces.
    fn step(&mut self, ambient: Priority, depth: usize) -> (Cmd, Binding) {
        // Prefer touching an outstanding handle now and then so Touch
        // constraints actually occur.
        if !self.handles.is_empty() && self.rng.gen_bool(0.5) {
            let i = self.rng.gen_range(0..self.handles.len());
            let (name, _) = self.handles.remove(i);
            return (ftouch(var(&name)), Binding::Nat);
        }
        match self.rng.gen_range(0u32..5) {
            0 => (ret(self.nat_expr(depth)), Binding::Nat),
            1 => {
                let body = self.child_body(depth);
                let prio = self.spawn_prio(ambient);
                (fcreate(prio, Type::Nat, body), Binding::Handle)
            }
            2 if !self.refs.is_empty() => {
                let i = self.rng.gen_range(0..self.refs.len());
                let r = self.refs[i].clone();
                (get(var(&r)), Binding::Nat)
            }
            3 if !self.refs.is_empty() => {
                let i = self.rng.gen_range(0..self.refs.len());
                let r = self.refs[i].clone();
                let v = self.nat_expr(depth);
                (set(var(&r), v), Binding::Nat)
            }
            4 if !self.refs.is_empty() => {
                let i = self.rng.gen_range(0..self.refs.len());
                let r = self.refs[i].clone();
                let e = self.nat_expr(depth.min(1));
                let n = self.nat_expr(depth.min(1));
                (cas(var(&r), e, n), Binding::Nat)
            }
            _ => (ret(self.nat_expr(depth)), Binding::Nat),
        }
    }

    fn main_cmd(&mut self, ambient: Priority) -> Cmd {
        // Build the sequence front-to-back so generated variables are in
        // scope for later steps, then fold it into nested binds.
        let depth = self.config.max_depth;
        let mut steps: Vec<(String, Cmd)> = Vec::new();
        // Reference initialisers are generated *now*, while only outer
        // variables are in scope — the `dcl`s wrap the whole sequence, so
        // step-bound names must not leak into them.
        let n_refs = self.rng.gen_range(1usize..3);
        let mut ref_decls = Vec::new();
        for _ in 0..n_refs {
            let r = self.fresh("r");
            let init = self.nat_expr(1);
            self.refs.push(r.clone());
            ref_decls.push((r, init));
        }
        for _ in 0..self.config.steps {
            let (cmd, binding) = self.step(ambient, depth);
            let name = match binding {
                Binding::Nat => {
                    let v = self.fresh("v");
                    self.nats.push(v.clone());
                    v
                }
                Binding::Handle => {
                    let h = self.fresh("h");
                    // The step that created this handle decided its
                    // priority; remember it for bookkeeping (touches use
                    // only the name).
                    let prio = match &cmd {
                        Cmd::Fcreate { prio, .. } => prio.clone(),
                        _ => unreachable!("Handle bindings come from fcreate"),
                    };
                    self.handles.push((h.clone(), prio));
                    h
                }
            };
            steps.push((name, cmd));
        }
        // Touch every remaining handle so no spawn constraint is vacuous.
        for (h, _) in std::mem::take(&mut self.handles) {
            let v = self.fresh("v");
            self.nats.push(v.clone());
            steps.push((v, ftouch(var(&h))));
        }
        // Final value: a sum over a few in-scope nats.
        let mut total: Expr = nat(0);
        for _ in 0..3 {
            total = add(total, self.nat_expr(1));
        }
        let mut body: Cmd = ret(total);
        for (name, step_cmd) in steps.into_iter().rev() {
            body = bind(
                &name,
                Expr::CmdVal(PrioTerm::Const(ambient), Arc::new(step_cmd)),
                body,
            );
        }
        for (r, init) in ref_decls.into_iter().rev() {
            body = dcl(&r, Type::Nat, init, body);
        }
        body
    }
}

enum Binding {
    Nat,
    Handle,
}

/// Generates a random well-typed program.
///
/// Programs with `free_prio_probability > 0` may mention free priority
/// variables; they typecheck under
/// [`crate::typecheck::infer_program`] (satisfiable by construction in the
/// total order).  With the probability at 0 the result typechecks under
/// plain [`crate::typecheck::typecheck_program`].
pub fn random_program(seed: u64, config: &GenConfig) -> Program {
    let domain = PriorityDomain::numeric(config.levels.max(1));
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        config: config.clone(),
        domain: domain.clone(),
        nats: Vec::new(),
        refs: Vec::new(),
        handles: Vec::new(),
        fresh: 0,
    };
    // Main runs at the bottom level so every level is a legal spawn target.
    let ambient = domain.by_index(0);
    let main = g.main_cmd(ambient);
    Program {
        name: format!("random-{seed}"),
        domain,
        main_priority: ambient,
        main: Arc::new(main),
        return_type: Type::Nat,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typecheck::{infer_program, typecheck_program};

    #[test]
    fn generated_programs_are_deterministic_per_seed() {
        let cfg = GenConfig::default();
        assert_eq!(random_program(7, &cfg), random_program(7, &cfg));
        assert_ne!(random_program(7, &cfg), random_program(8, &cfg));
    }

    #[test]
    fn annotated_programs_typecheck_directly() {
        let cfg = GenConfig {
            free_prio_probability: 0.0,
            ..GenConfig::default()
        };
        for seed in 0..20 {
            let prog = random_program(seed, &cfg);
            assert!(prog.free_prio_vars().is_empty());
            typecheck_program(&prog).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn open_programs_typecheck_under_inference() {
        let cfg = GenConfig {
            free_prio_probability: 0.8,
            ..GenConfig::default()
        };
        let mut saw_free = false;
        for seed in 0..20 {
            let prog = random_program(seed, &cfg);
            saw_free |= !prog.free_prio_vars().is_empty();
            infer_program(&prog).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
        assert!(saw_free, "at 0.8 probability some program must be open");
    }
}
