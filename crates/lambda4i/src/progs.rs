//! A library of λ⁴ᵢ example programs.
//!
//! These programs are used by the test suite (soundness and bound checks),
//! the examples, and the Table 1 reproduction, which compares type-checking
//! cost with and without the priority layer on λ⁴ᵢ encodings of the paper's
//! three case studies.

use crate::syntax::dsl::*;
use crate::syntax::{Cmd, Expr, Program, Type};
use rp_priority::{Priority, PriorityDomain};
use std::sync::Arc;

/// Builds a [`Program`] value from its pieces.
fn program(
    name: &str,
    domain: PriorityDomain,
    main_priority: Priority,
    main: Cmd,
    return_type: Type,
) -> Program {
    Program {
        name: name.to_string(),
        domain,
        main_priority,
        main: Arc::new(main),
        return_type,
    }
}

/// A pure compute kernel: `work(n)` counts down from `n`, returning `n`,
/// taking Θ(n) machine steps.  Used to give threads tunable amounts of work.
fn work_fn() -> Expr {
    fix(
        "loop",
        Type::arrow(Type::Nat, Type::Nat),
        lam(
            "n",
            Type::Nat,
            ifz(
                var("n"),
                nat(0),
                "m",
                add(nat(1), app(var("loop"), var("m"))),
            ),
        ),
    )
}

/// Fibonacci with futures: each recursive call below the cutoff is spawned
/// as a future and touched, exactly the classic parallel-fib example.
///
/// All threads share one priority level; the point of the program is the
/// dynamic fork/join structure, which exercises fcreate/ftouch edges.
pub fn parallel_fib(n: u64) -> Program {
    let dom = PriorityDomain::single();
    let p = dom.by_index(0);
    // fibc : nat → nat cmd[p]
    let fib_ty = Type::arrow(Type::Nat, Type::cmd(Type::Nat, p));
    let spawn_call = |arg: &str| {
        // fcreate[p; nat]{ x ← fib arg; ret x }
        fcreate(
            p,
            Type::Nat,
            bind("x", app(var("fib"), var(arg)), ret(var("x"))),
        )
    };
    let fibc = fix(
        "fib",
        fib_ty,
        lam(
            "n",
            Type::Nat,
            ifz(
                var("n"),
                cmd(p, ret(nat(0))),
                "n1",
                ifz(
                    var("n1"),
                    cmd(p, ret(nat(1))),
                    "n2",
                    cmd(
                        p,
                        bind(
                            "ta",
                            cmd(p, spawn_call("n1")),
                            bind(
                                "tb",
                                cmd(p, spawn_call("n2")),
                                bind(
                                    "a",
                                    cmd(p, ftouch(var("ta"))),
                                    bind(
                                        "b",
                                        cmd(p, ftouch(var("tb"))),
                                        ret(add(var("a"), var("b"))),
                                    ),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    );
    let main = bind("r", app(fibc, nat(n)), ret(var("r")));
    program("parallel-fib", dom, p, main, Type::Nat)
}

/// The racy Figure 1 program: `main` forks `f`, which forks `g` and writes
/// `g`'s handle into shared state; `main` reads the state and touches the
/// handle only if the write has already happened.
///
/// Depending on the schedule, the resulting cost graph either contains the
/// `ftouch` of `g` (with the weak edge from the write to the read) or not —
/// the two DAGs of Figure 1.
pub fn figure1_program() -> Program {
    let dom = PriorityDomain::single();
    let p = dom.by_index(0);
    let handle_ty = Type::sum(Type::thread(Type::Unit, p), Type::Unit);

    // g: the trivial thread.
    let g_body = ret(unit());
    // f: fork g, then publish its handle through the shared reference.
    let f_body = bind(
        "h",
        cmd(p, fcreate(p, Type::Unit, g_body)),
        bind(
            "_",
            cmd(p, set(var("t"), Expr::Inl(Box::new(var("h"))))),
            ret(unit()),
        ),
    );
    let main = dcl(
        "t",
        handle_ty,
        Expr::Inr(Box::new(unit())),
        bind(
            "_f",
            cmd(p, fcreate(p, Type::Unit, f_body)),
            bind(
                "v",
                cmd(p, get(var("t"))),
                bind(
                    "r",
                    Expr::Case(
                        Box::new(var("v")),
                        "h".into(),
                        Box::new(cmd(p, bind("_x", cmd(p, ftouch(var("h"))), ret(unit())))),
                        "_u".into(),
                        Box::new(cmd(p, ret(unit()))),
                    ),
                    ret(var("r")),
                ),
            ),
        ),
    );
    program("figure1", dom, p, main, Type::Unit)
}

/// An interactive server skeleton: a low-priority main loop spawns
/// `background` fire-and-forget worker threads (heavy compute, publishing
/// progress through a shared reference) and `requests` high-priority
/// interactive threads (light compute that reads the shared progress), then
/// joins only the interactive threads and sums their results.
///
/// This is the minimal shape of the paper's motivating example (event loop +
/// background optimiser communicating through state) and is the workhorse of
/// the bound and responsiveness tests.
pub fn server_with_background(requests: usize, background: usize) -> Program {
    let dom = PriorityDomain::total_order(["background", "interactive"]).expect("distinct names");
    let bg = dom.priority("background").expect("declared");
    let hi = dom.priority("interactive").expect("declared");

    // Background worker: heavy compute, then publish to the shared cell.
    let bg_body = bind(
        "w",
        cmd(bg, ret(app(work_fn(), nat(12)))),
        bind("_", cmd(bg, set(var("progress"), var("w"))), ret(var("w"))),
    );
    // Interactive request: read progress, light compute.
    let req_body = bind(
        "seen",
        cmd(hi, get(var("progress"))),
        bind(
            "w",
            cmd(hi, ret(app(work_fn(), nat(3)))),
            ret(add(var("w"), mul(nat(0), var("seen")))),
        ),
    );

    // Spawn background threads (never touched), then requests, then touch the
    // requests and sum.
    let mut touches_sum: Expr = nat(0);
    for i in 0..requests {
        touches_sum = add(touches_sum, var(&format!("v{i}")));
    }
    let mut body: Cmd = ret(touches_sum);
    for i in (0..requests).rev() {
        body = bind(
            &format!("v{i}"),
            cmd(bg, ftouch(var(&format!("r{i}")))),
            body,
        );
    }
    for i in (0..requests).rev() {
        body = bind(
            &format!("r{i}"),
            cmd(bg, fcreate(hi, Type::Nat, req_body.clone())),
            body,
        );
    }
    for i in (0..background).rev() {
        body = bind(
            &format!("b{i}"),
            cmd(bg, fcreate(bg, Type::Nat, bg_body.clone())),
            body,
        );
    }
    let main = dcl("progress", Type::Nat, nat(0), body);
    program("server-with-background", dom, bg, main, Type::Nat)
}

/// A program with a deliberate priority inversion (a high-priority thread
/// touching a low-priority one).  It is rejected by the type checker; the
/// machine will still run it, producing an ill-formed graph — useful for
/// negative tests.
pub fn priority_inversion_program() -> Program {
    let dom = PriorityDomain::total_order(["lo", "hi"]).expect("distinct names");
    let lo = dom.priority("lo").expect("declared");
    let hi = dom.priority("hi").expect("declared");
    let main = bind(
        "t",
        cmd(hi, fcreate(lo, Type::Nat, ret(app(work_fn(), nat(6))))),
        bind("v", cmd(hi, ftouch(var("t"))), ret(var("v"))),
    );
    program("priority-inversion", dom, hi, main, Type::Nat)
}

/// The print/compress coordination pattern of the email case study (§5.1):
/// two threads race to claim an email slot with CAS; the loser touches the
/// winner's handle before proceeding.  Because the toucher runs at a
/// priority ⪯ the touched thread, the program is accepted by the type
/// system even though the handle flows through mutable state.
pub fn email_coordination_program() -> Program {
    let dom = PriorityDomain::total_order(["compress", "print", "event"]).expect("distinct names");
    let compress = dom.priority("compress").expect("declared");
    let print = dom.priority("print").expect("declared");
    let event = dom.priority("event").expect("declared");

    let slot_ty = Type::sum(Type::thread(Type::Nat, print), Type::Unit);

    // The print thread: do some work, publish own completion value.
    let print_body = ret(app(work_fn(), nat(8)));
    // The compress thread: CAS the slot; here we model the "found an ongoing
    // print" path by reading the slot and touching the handle if present.
    let compress_body = bind(
        "slot_val",
        cmd(compress, get(var("slot"))),
        bind(
            "state",
            Expr::Case(
                Box::new(var("slot_val")),
                "h".into(),
                Box::new(cmd(
                    compress,
                    bind("done", cmd(compress, ftouch(var("h"))), ret(var("done"))),
                )),
                "_n".into(),
                Box::new(cmd(compress, ret(nat(0)))),
            ),
            bind(
                "w",
                cmd(compress, ret(app(work_fn(), nat(6)))),
                ret(add(var("state"), var("w"))),
            ),
        ),
    );

    // The event loop (highest priority): spawn the print thread, publish its
    // handle via the slot, spawn the compress thread, and finish.  It touches
    // neither (both are lower priority), mirroring the fire-and-forget event
    // loop of the case study.
    let main = dcl(
        "slot",
        slot_ty,
        Expr::Inr(Box::new(unit())),
        bind(
            "p",
            cmd(event, fcreate(print, Type::Nat, print_body)),
            bind(
                "_pub",
                cmd(event, set(var("slot"), Expr::Inl(Box::new(var("p"))))),
                bind(
                    "_c",
                    cmd(event, fcreate(compress, Type::Nat, compress_body)),
                    ret(nat(0)),
                ),
            ),
        ),
    );
    program("email-coordination", dom, event, main, Type::Nat)
}

// ---------------------------------------------------------------------------
// Explorer fixtures: small programs with known race verdicts.
//
// These are the golden inputs of the DPOR schedule explorer
// (`crate::explore`): each one's full interleaving space is small enough to
// exhaust, and its race classification and outcome set are asserted exactly
// in `tests/explore.rs`.
// ---------------------------------------------------------------------------

/// A deliberately racy shared counter: two futures each perform an
/// unsynchronized read-modify-write (`v ← get r; set r (v+1)`) on the same
/// cell, so the increments can interleave and one can be lost.
///
/// Known verdict: the explorer finds racy pairs between the two children's
/// `get`/`set` sites, and the final counter value is schedule-dependent —
/// 1 when the increments interleave, 2 when they serialize.
pub fn racy_counter_program() -> Program {
    let dom = PriorityDomain::single();
    let p = dom.by_index(0);
    // One unsynchronized increment.
    let child = bind(
        "v",
        cmd(p, get(var("r"))),
        set(var("r"), add(var("v"), nat(1))),
    );
    let main = dcl(
        "r",
        Type::Nat,
        nat(0),
        bind(
            "a",
            cmd(p, fcreate(p, Type::Nat, child.clone())),
            bind(
                "b",
                cmd(p, fcreate(p, Type::Nat, child)),
                bind(
                    "_va",
                    cmd(p, ftouch(var("a"))),
                    bind(
                        "_vb",
                        cmd(p, ftouch(var("b"))),
                        bind("out", cmd(p, get(var("r"))), ret(var("out"))),
                    ),
                ),
            ),
        ),
    );
    program("racy-counter", dom, p, main, Type::Nat)
}

/// The same two-increment counter, but synchronized entirely through `cas`:
/// both futures race to move the cell 0→1; the loser observes the failure
/// and moves it 1→2.
///
/// Known verdict: every conflicting pair is CAS-synchronized (zero racy
/// pairs), and the final value is deterministically 2.
pub fn cas_counter_program() -> Program {
    let dom = PriorityDomain::single();
    let p = dom.by_index(0);
    let child = bind(
        "x",
        cmd(p, cas(var("r"), nat(0), nat(1))),
        bind(
            "res",
            ifz(
                var("x"),
                // x = 0: the other future won the first round; finish the
                // count by moving 1 → 2.
                cmd(p, cas(var("r"), nat(1), nat(2))),
                "_w",
                // x = 1: won the first round; done.
                cmd(p, ret(nat(0))),
            ),
            ret(var("res")),
        ),
    );
    let main = dcl(
        "r",
        Type::Nat,
        nat(0),
        bind(
            "a",
            cmd(p, fcreate(p, Type::Nat, child.clone())),
            bind(
                "b",
                cmd(p, fcreate(p, Type::Nat, child)),
                bind(
                    "_va",
                    cmd(p, ftouch(var("a"))),
                    bind(
                        "_vb",
                        cmd(p, ftouch(var("b"))),
                        bind("out", cmd(p, get(var("r"))), ret(var("out"))),
                    ),
                ),
            ),
        ),
    );
    program("cas-counter", dom, p, main, Type::Nat)
}

/// A race-free handoff: the future writes the cell, the parent touches the
/// future *before* reading, so every access pair is ordered by the
/// fcreate/ftouch edges alone.
///
/// Known verdict: zero conflicting unordered pairs, deterministic final
/// value 42.
pub fn handoff_program() -> Program {
    let dom = PriorityDomain::single();
    let p = dom.by_index(0);
    let child = set(var("r"), nat(41));
    let main = dcl(
        "r",
        Type::Nat,
        nat(0),
        bind(
            "t",
            cmd(p, fcreate(p, Type::Nat, child)),
            bind(
                "_j",
                cmd(p, ftouch(var("t"))),
                bind(
                    "v",
                    cmd(p, get(var("r"))),
                    bind(
                        "_w",
                        cmd(p, set(var("r"), add(var("v"), nat(1)))),
                        bind("out", cmd(p, get(var("r"))), ret(var("out"))),
                    ),
                ),
            ),
        ),
    );
    program("handoff", dom, p, main, Type::Nat)
}

// ---------------------------------------------------------------------------
// Case-study encodings for the Table 1 reproduction.
//
// The paper measures the compile-time overhead of the priority machinery on
// three C++ applications.  Our substitute measures λ⁴ᵢ type-checking cost on
// structurally representative encodings: an event loop at the highest
// priority, a stack of lower-priority components, shared state between them,
// and a configurable amount of per-component code (`units`).
// ---------------------------------------------------------------------------

/// Shared shape of the three case-study encodings: `levels` priority levels,
/// one component per level below the event loop, `units` of work-spawning
/// code per component.
fn case_study(name: &str, level_names: &[&str], units: usize) -> Program {
    let dom = PriorityDomain::total_order(level_names.to_vec()).expect("distinct names");
    let top = dom
        .priority(level_names.last().expect("non-empty"))
        .expect("declared");

    // A component at priority `p` spawns `units` helper threads at its own
    // priority, touches them, reads the shared statistics cell, and returns a
    // sum.
    let component_body = |p: Priority| -> Cmd {
        let helper = bind("w", cmd(p, ret(app(work_fn(), nat(4)))), ret(var("w")));
        let mut sum: Expr = nat(0);
        for u in 0..units {
            sum = add(sum, var(&format!("hv{u}")));
        }
        let mut body: Cmd = bind("_pub", cmd(p, set(var("stats"), sum.clone())), ret(sum));
        for u in (0..units).rev() {
            body = bind(
                &format!("hv{u}"),
                cmd(p, ftouch(var(&format!("h{u}")))),
                body,
            );
        }
        for u in (0..units).rev() {
            body = bind(
                &format!("h{u}"),
                cmd(p, fcreate(p, Type::Nat, helper.clone())),
                body,
            );
        }
        bind("seen", cmd(p, get(var("stats"))), body)
    };

    // The event loop spawns one component per lower level (fire-and-forget,
    // since they are lower priority), reads the stats cell, and returns.
    let mut main_body: Cmd = bind("final", cmd(top, get(var("stats"))), ret(var("final")));
    for (i, name) in level_names.iter().enumerate().rev().skip(1) {
        let p = dom.priority(name).expect("declared");
        main_body = bind(
            &format!("c{i}"),
            cmd(top, fcreate(p, Type::Nat, component_body(p))),
            main_body,
        );
    }
    let main = dcl("stats", Type::Nat, nat(0), main_body);
    program(name, dom, top, main, Type::Nat)
}

/// λ⁴ᵢ encoding of the proxy-server case study: four priority levels
/// (main/shutdown, logging, fetch, event loop), matching §5.1.
pub fn proxy_program() -> Program {
    case_study("proxy", &["main", "logging", "fetch", "event-loop"], 6)
}

/// λ⁴ᵢ encoding of the email-client case study: six priority levels
/// (main, check, compress/print, sort, send, event loop), matching §5.1.
pub fn email_program() -> Program {
    case_study(
        "email",
        &["main", "check", "compress", "sort", "send", "event-loop"],
        4,
    )
}

/// λ⁴ᵢ encoding of the job-server case study: four priority levels, one per
/// job class (sw, sort, fib, matmul), matching §5.1.
pub fn jserver_program() -> Program {
    case_study("jserver", &["sw", "sort", "fib", "matmul"], 8)
}

/// All three case-study programs, paired with their names — the Table 1
/// row set.
pub fn case_studies() -> Vec<Program> {
    vec![proxy_program(), email_program(), jserver_program()]
}

/// The program library as checked-in `.l4i` source text
/// (`crates/lambda4i/progs/`), for the front-end pipeline: parse → infer →
/// run on the machine and the traced rp-icilk runtime.
///
/// Each source parses to exactly the AST its builder constructs (asserted
/// by `tests/frontend.rs`); regenerate with
/// `cargo run --example gen_fixtures` after changing a builder.
pub mod sources {
    use crate::syntax::Program;

    /// The racy Figure 1 program.
    pub const FIGURE1: &str = include_str!("../progs/figure1.l4i");
    /// Fork/join Fibonacci with futures (n = 5).
    pub const PARALLEL_FIB: &str = include_str!("../progs/parallel-fib.l4i");
    /// Interactive server skeleton (2 requests, 3 background workers).
    pub const SERVER: &str = include_str!("../progs/server.l4i");
    /// The §5.1 print/compress coordination pattern.
    pub const EMAIL_COORDINATION: &str = include_str!("../progs/email-coordination.l4i");
    /// Proxy-server case study.
    pub const PROXY: &str = include_str!("../progs/proxy.l4i");
    /// Email-client case study.
    pub const EMAIL: &str = include_str!("../progs/email.l4i");
    /// Job-server case study.
    pub const JSERVER: &str = include_str!("../progs/jserver.l4i");
    /// Known-racy shared counter (explorer fixture).
    pub const RACY_COUNTER: &str = include_str!("../progs/racy-counter.l4i");
    /// CAS-synchronized counter, race-free (explorer fixture).
    pub const CAS_COUNTER: &str = include_str!("../progs/cas-counter.l4i");
    /// Touch-ordered handoff, race-free (explorer fixture).
    pub const HANDOFF: &str = include_str!("../progs/handoff.l4i");

    /// One fixture: its name, its source text, and a builder for the AST
    /// the source must parse to.
    pub type Fixture = (&'static str, &'static str, fn() -> Program);

    /// Every checked-in source, paired with a builder for the AST it must
    /// parse to.
    pub fn all() -> Vec<Fixture> {
        vec![
            (
                "figure1",
                FIGURE1,
                super::figure1_program as fn() -> Program,
            ),
            ("parallel-fib", PARALLEL_FIB, || super::parallel_fib(5)),
            ("server", SERVER, || super::server_with_background(2, 3)),
            (
                "email-coordination",
                EMAIL_COORDINATION,
                super::email_coordination_program,
            ),
            ("proxy", PROXY, super::proxy_program),
            ("email", EMAIL, super::email_program),
            ("jserver", JSERVER, super::jserver_program),
            (
                "racy-counter",
                RACY_COUNTER,
                super::racy_counter_program as fn() -> Program,
            ),
            ("cas-counter", CAS_COUNTER, super::cas_counter_program),
            ("handoff", HANDOFF, super::handoff_program),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_program, RunConfig};
    use crate::typecheck::{typecheck_program, typecheck_program_with, TypeError};

    #[test]
    fn all_positive_programs_typecheck() {
        for prog in [
            parallel_fib(5),
            figure1_program(),
            server_with_background(2, 3),
            email_coordination_program(),
            proxy_program(),
            email_program(),
            jserver_program(),
        ] {
            typecheck_program(&prog).unwrap_or_else(|e| panic!("{}: {e}", prog.name));
        }
    }

    #[test]
    fn priority_inversion_program_is_rejected_then_accepted_without_checks() {
        let prog = priority_inversion_program();
        assert!(matches!(
            typecheck_program(&prog),
            Err(TypeError::PriorityInversion { .. })
        ));
        typecheck_program_with(&prog, false).unwrap();
    }

    #[test]
    fn parallel_fib_values() {
        for (n, expected) in [(0, 0), (1, 1), (2, 1), (5, 5), (7, 13)] {
            let prog = parallel_fib(n);
            let result = run_program(&prog, &RunConfig::default()).unwrap();
            assert_eq!(result.value, Expr::Nat(expected), "fib({n})");
        }
    }

    #[test]
    fn figure1_program_runs_under_all_policies() {
        use crate::policy::SelectionPolicy;
        let prog = figure1_program();
        typecheck_program(&prog).unwrap();
        for policy in [
            SelectionPolicy::Prompt,
            SelectionPolicy::Oblivious,
            SelectionPolicy::Random { seed: 9 },
        ] {
            let result = run_program(
                &prog,
                &RunConfig {
                    cores: 2,
                    policy,
                    max_steps: 100_000,
                },
            )
            .unwrap();
            assert!(result.graph_report.strongly_well_formed);
            assert!(result.admissible);
        }
    }

    #[test]
    fn email_coordination_produces_weak_edges_and_well_formed_graph() {
        let prog = email_coordination_program();
        let result = run_program(&prog, &RunConfig::default()).unwrap();
        assert!(result.graph_report.weak_edges >= 1);
        assert!(result.graph_report.well_formed);
        assert!(result.graph_report.strongly_well_formed);
    }

    #[test]
    fn ill_typed_inversion_program_can_produce_ill_formed_graph() {
        // Running the rejected program shows why the type system matters: the
        // produced graph has a touch edge from high to low priority and fails
        // well-formedness.
        let prog = priority_inversion_program();
        let result = run_program(&prog, &RunConfig::default()).unwrap();
        assert!(!result.graph_report.strongly_well_formed);
        assert!(!result.graph_report.well_formed);
    }

    #[test]
    fn case_studies_have_substantial_size() {
        use crate::typecheck::count_nodes;
        for prog in case_studies() {
            assert!(
                count_nodes(&prog) > 200,
                "{} too small: {}",
                prog.name,
                count_nodes(&prog)
            );
        }
    }
}
