//! Thread-selection policies for the D-Par rule.
//!
//! The D-Par rule of the cost semantics may step any subset of the runnable
//! threads.  Theorem 3.8 additionally assumes threads are chosen in a
//! *prompt* manner; the run driver therefore parameterises the choice with a
//! [`SelectionPolicy`]:
//!
//! * [`SelectionPolicy::Prompt`] — choose up to `P` runnable threads such
//!   that no unchosen runnable thread has strictly higher priority
//!   (the paper's prompt principle, and the policy I-Cilk approximates);
//! * [`SelectionPolicy::Oblivious`] — choose up to `P` runnable threads in
//!   creation order, ignoring priorities (the Cilk-F baseline);
//! * [`SelectionPolicy::Random`] — choose a uniformly random subset of size
//!   up to `P` (a chaos-monkey policy used in property tests).

use crate::syntax::ThreadSym;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rp_priority::{Priority, PriorityDomain};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How the run driver picks which runnable threads step at each parallel
/// step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Priority-greedy (prompt) selection.
    #[default]
    Prompt,
    /// Priority-oblivious FIFO selection (by thread creation order).
    Oblivious,
    /// Uniformly random selection with the given seed.
    Random {
        /// PRNG seed for reproducibility.
        seed: u64,
    },
}

/// Stateful selector produced from a [`SelectionPolicy`].
#[derive(Debug)]
pub struct Selector {
    policy: SelectionPolicy,
    rng: Option<StdRng>,
}

impl Selector {
    /// Creates a selector for a policy.
    pub fn new(policy: SelectionPolicy) -> Self {
        let rng = match policy {
            SelectionPolicy::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        Selector { policy, rng }
    }

    /// The policy this selector implements.
    pub fn policy(&self) -> SelectionPolicy {
        self.policy
    }

    /// Chooses up to `cores` of the runnable threads to step this round.
    ///
    /// `runnable` provides each runnable thread's symbol and priority.  The
    /// returned vector never exceeds `cores` entries and is a subset of
    /// `runnable`.
    pub fn select(
        &mut self,
        domain: &PriorityDomain,
        runnable: &[(ThreadSym, Priority)],
        cores: usize,
    ) -> Vec<ThreadSym> {
        if runnable.is_empty() || cores == 0 {
            return Vec::new();
        }
        match self.policy {
            SelectionPolicy::Prompt => {
                let mut pool: Vec<(ThreadSym, Priority)> = runnable.to_vec();
                let mut picked = Vec::new();
                while picked.len() < cores && !pool.is_empty() {
                    // Take a thread that no remaining thread strictly
                    // outranks.
                    let pos = pool
                        .iter()
                        .position(|&(_, p)| pool.iter().all(|&(_, q)| !domain.lt(p, q)))
                        .expect("a maximal element exists in a finite non-empty pool");
                    picked.push(pool.remove(pos).0);
                }
                picked
            }
            SelectionPolicy::Oblivious => {
                let mut pool: Vec<ThreadSym> = runnable.iter().map(|&(s, _)| s).collect();
                pool.sort();
                pool.truncate(cores);
                pool
            }
            SelectionPolicy::Random { .. } => {
                let rng = self.rng.as_mut().expect("random policy has an rng");
                let mut pool: Vec<ThreadSym> = runnable.iter().map(|&(s, _)| s).collect();
                pool.shuffle(rng);
                pool.truncate(cores);
                pool
            }
        }
    }
}

/// A selector that replays an explicit per-step script of thread choices and
/// falls back to an ordinary [`Selector`] once the script is exhausted.
///
/// This is the scheduling half of the explicit-schedule driver
/// ([`crate::run::run_with_schedule`]): the DPOR explorer records, for each
/// parallel step, exactly which threads stepped, and replays a prefix of that
/// script with a different choice at the divergence point.  Scripted entries
/// that name threads which are not currently runnable are skipped rather
/// than rejected — a replayed prefix may legitimately race past the point
/// where a thread finished — so a scripted step can select fewer threads
/// than written, even zero.  Scripted steps are taken verbatim and are *not*
/// truncated to the core count; the script's author is responsible for
/// respecting the machine width it intends to model.
#[derive(Debug)]
pub struct ScriptedSelector {
    script: VecDeque<Vec<ThreadSym>>,
    fallback: Selector,
}

impl ScriptedSelector {
    /// Creates a selector that replays `script` and then follows `fallback`.
    pub fn new(
        script: impl IntoIterator<Item = Vec<ThreadSym>>,
        fallback: SelectionPolicy,
    ) -> Self {
        ScriptedSelector {
            script: script.into_iter().collect(),
            fallback: Selector::new(fallback),
        }
    }

    /// Number of scripted steps not yet consumed.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }

    /// Chooses the threads to step this round: the next scripted entry
    /// (filtered to currently runnable threads), or the fallback policy's
    /// choice once the script is exhausted.
    pub fn select(
        &mut self,
        domain: &PriorityDomain,
        runnable: &[(ThreadSym, Priority)],
        cores: usize,
    ) -> Vec<ThreadSym> {
        match self.script.pop_front() {
            Some(step) => step
                .into_iter()
                .filter(|s| runnable.iter().any(|&(r, _)| r == *s))
                .collect(),
            None => self.fallback.select(domain, runnable, cores),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PriorityDomain, Vec<(ThreadSym, Priority)>) {
        let dom = PriorityDomain::total_order(["lo", "mid", "hi"]).unwrap();
        let lo = dom.priority("lo").unwrap();
        let mid = dom.priority("mid").unwrap();
        let hi = dom.priority("hi").unwrap();
        let runnable = vec![
            (ThreadSym(0), lo),
            (ThreadSym(1), hi),
            (ThreadSym(2), mid),
            (ThreadSym(3), hi),
        ];
        (dom, runnable)
    }

    #[test]
    fn prompt_prefers_highest_priority() {
        let (dom, runnable) = setup();
        let mut sel = Selector::new(SelectionPolicy::Prompt);
        let picked = sel.select(&dom, &runnable, 2);
        assert_eq!(picked, vec![ThreadSym(1), ThreadSym(3)]);
        // With more cores than threads, everything is picked.
        let picked = sel.select(&dom, &runnable, 10);
        assert_eq!(picked.len(), 4);
    }

    #[test]
    fn oblivious_is_fifo_by_creation() {
        let (dom, runnable) = setup();
        let mut sel = Selector::new(SelectionPolicy::Oblivious);
        let picked = sel.select(&dom, &runnable, 2);
        assert_eq!(picked, vec![ThreadSym(0), ThreadSym(1)]);
    }

    #[test]
    fn random_is_reproducible_and_bounded() {
        let (dom, runnable) = setup();
        let mut a = Selector::new(SelectionPolicy::Random { seed: 3 });
        let mut b = Selector::new(SelectionPolicy::Random { seed: 3 });
        assert_eq!(a.select(&dom, &runnable, 2), b.select(&dom, &runnable, 2));
        assert!(a.select(&dom, &runnable, 3).len() <= 3);
    }

    #[test]
    fn empty_and_zero_cores() {
        let (dom, runnable) = setup();
        let mut sel = Selector::new(SelectionPolicy::Prompt);
        assert!(sel.select(&dom, &[], 4).is_empty());
        assert!(sel.select(&dom, &runnable, 0).is_empty());
    }

    #[test]
    fn default_policy_is_prompt() {
        assert_eq!(SelectionPolicy::default(), SelectionPolicy::Prompt);
    }

    #[test]
    fn scripted_selector_replays_then_falls_back() {
        let (dom, runnable) = setup();
        let mut sel = ScriptedSelector::new(
            vec![vec![ThreadSym(2)], vec![ThreadSym(9), ThreadSym(0)]],
            SelectionPolicy::Oblivious,
        );
        assert_eq!(sel.remaining(), 2);
        // Scripted entries are returned verbatim (ignoring cores).
        assert_eq!(sel.select(&dom, &runnable, 1), vec![ThreadSym(2)]);
        // Non-runnable scripted threads are skipped, not errors.
        assert_eq!(sel.select(&dom, &runnable, 1), vec![ThreadSym(0)]);
        assert_eq!(sel.remaining(), 0);
        // Exhausted script falls back to the wrapped policy.
        assert_eq!(
            sel.select(&dom, &runnable, 2),
            vec![ThreadSym(0), ThreadSym(1)]
        );
    }
}
