//! Pretty-printing of λ⁴ᵢ types, expressions, and commands.
//!
//! The output approximates the paper's concrete syntax (Figure 4) and is
//! intended for error messages, examples, and debugging, not for parsing
//! back.

use crate::syntax::{Cmd, Expr, PrimOp, Type};
use std::fmt::Write as _;

/// Renders a type.
pub fn type_to_string(t: &Type) -> String {
    match t {
        Type::Unit => "unit".to_string(),
        Type::Nat => "nat".to_string(),
        Type::Arrow(a, b) => format!("({} -> {})", type_to_string(a), type_to_string(b)),
        Type::Prod(a, b) => format!("({} * {})", type_to_string(a), type_to_string(b)),
        Type::Sum(a, b) => format!("({} + {})", type_to_string(a), type_to_string(b)),
        Type::Ref(a) => format!("{} ref", type_to_string(a)),
        Type::Thread(a, p) => format!("{} thread[{p}]", type_to_string(a)),
        Type::Cmd(a, p) => format!("{} cmd[{p}]", type_to_string(a)),
        Type::Forall(v, c, a) => format!("forall {v} ~ {c}. {}", type_to_string(a)),
    }
}

/// Renders an expression.
pub fn expr_to_string(e: &Expr) -> String {
    match e {
        Expr::Var(x) => x.clone(),
        Expr::Unit => "<>".to_string(),
        Expr::Nat(n) => n.to_string(),
        Expr::Lam(x, ty, b) => format!("\\{x}:{}. {}", type_to_string(ty), expr_to_string(b)),
        Expr::Pair(a, b) => format!("({}, {})", expr_to_string(a), expr_to_string(b)),
        Expr::Inl(a) => format!("inl {}", expr_to_string(a)),
        Expr::Inr(a) => format!("inr {}", expr_to_string(a)),
        Expr::RefVal(s) => format!("ref[{s}]"),
        Expr::Tid(a) => format!("tid[{a}]"),
        Expr::CmdVal(p, m) => format!("cmd[{p}]{{{}}}", cmd_to_string(m)),
        Expr::PLam(v, c, b) => format!("/\\{v} ~ {c}. {}", expr_to_string(b)),
        Expr::PApp(b, p) => format!("{}[{p}]", expr_to_string(b)),
        Expr::Let(x, a, b) => format!("let {x} = {} in {}", expr_to_string(a), expr_to_string(b)),
        Expr::Ifz(c, z, x, s) => format!(
            "ifz {} {{{}; {x}.{}}}",
            expr_to_string(c),
            expr_to_string(z),
            expr_to_string(s)
        ),
        Expr::App(a, b) => format!("({} {})", expr_to_string(a), expr_to_string(b)),
        Expr::Fst(a) => format!("fst {}", expr_to_string(a)),
        Expr::Snd(a) => format!("snd {}", expr_to_string(a)),
        Expr::Case(s, x, a, y, b) => format!(
            "case {} {{{x}.{}; {y}.{}}}",
            expr_to_string(s),
            expr_to_string(a),
            expr_to_string(b)
        ),
        Expr::Fix(x, ty, b) => format!("fix {x}:{} is {}", type_to_string(ty), expr_to_string(b)),
        Expr::Prim(op, a, b) => {
            let sym = match op {
                PrimOp::Add => "+",
                PrimOp::Sub => "-",
                PrimOp::Mul => "*",
                PrimOp::Eq => "==",
                PrimOp::Lt => "<",
            };
            format!("({} {sym} {})", expr_to_string(a), expr_to_string(b))
        }
    }
}

/// Renders a command.
pub fn cmd_to_string(m: &Cmd) -> String {
    match m {
        Cmd::Fcreate {
            prio,
            ret_type,
            body,
        } => format!(
            "fcreate[{prio}; {}]{{{}}}",
            type_to_string(ret_type),
            cmd_to_string(body)
        ),
        Cmd::Ftouch(e) => format!("ftouch {}", expr_to_string(e)),
        Cmd::Dcl {
            ty,
            var,
            init,
            body,
        } => format!(
            "dcl[{}] {var} := {} in {}",
            type_to_string(ty),
            expr_to_string(init),
            cmd_to_string(body)
        ),
        Cmd::Get(e) => format!("!{}", expr_to_string(e)),
        Cmd::Set(a, b) => format!("{} := {}", expr_to_string(a), expr_to_string(b)),
        Cmd::Bind { var, expr, rest } => {
            format!("{var} <- {}; {}", expr_to_string(expr), cmd_to_string(rest))
        }
        Cmd::Ret(e) => format!("ret {}", expr_to_string(e)),
        Cmd::Cas {
            target,
            expected,
            new,
        } => format!(
            "cas({}, {}, {})",
            expr_to_string(target),
            expr_to_string(expected),
            expr_to_string(new)
        ),
    }
}

/// Renders a whole program, including its priority domain.
pub fn program_to_string(p: &crate::syntax::Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "program {} : {}",
        p.name,
        type_to_string(&p.return_type)
    );
    let _ = writeln!(
        out,
        "priorities: {}",
        p.domain
            .iter()
            .map(|q| p.domain.name(q).to_string())
            .collect::<Vec<_>>()
            .join(" < ")
    );
    let _ = writeln!(out, "main @ {}:", p.domain.name(p.main_priority));
    let _ = writeln!(out, "  {}", cmd_to_string(&p.main));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progs;
    use crate::syntax::dsl::*;
    use rp_priority::PriorityDomain;

    #[test]
    fn types_render() {
        let dom = PriorityDomain::numeric(2);
        let t = Type::arrow(
            Type::Nat,
            Type::cmd(Type::prod(Type::Unit, Type::Nat), dom.by_index(1)),
        );
        let s = type_to_string(&t);
        assert!(s.contains("nat") && s.contains("cmd") && s.contains("->"));
    }

    #[test]
    fn expressions_and_commands_render() {
        let dom = PriorityDomain::numeric(1);
        let p = dom.by_index(0);
        let m = dcl(
            "r",
            Type::Nat,
            nat(0),
            bind("v", cmd(p, get(var("r"))), ret(add(var("v"), nat(1)))),
        );
        let s = cmd_to_string(&m);
        assert!(s.contains("dcl") && s.contains("<-") && s.contains("ret"));
    }

    #[test]
    fn program_rendering_mentions_priorities() {
        let prog = progs::server_with_background(1, 1);
        let s = program_to_string(&prog);
        assert!(s.contains("background") && s.contains("interactive"));
        assert!(s.contains("fcreate"));
    }

    #[test]
    fn all_syntax_constructors_render_nonempty() {
        let dom = PriorityDomain::numeric(1);
        let p = dom.by_index(0);
        let exprs = vec![
            unit(),
            nat(3),
            var("x"),
            lam("x", Type::Nat, var("x")),
            pair(nat(1), nat(2)),
            Expr::Inl(Box::new(nat(1))),
            Expr::Inr(Box::new(unit())),
            Expr::Fst(Box::new(var("p"))),
            Expr::Snd(Box::new(var("p"))),
            Expr::Case(
                Box::new(var("s")),
                "a".into(),
                Box::new(nat(1)),
                "b".into(),
                Box::new(nat(2)),
            ),
            ifz(nat(0), nat(1), "m", var("m")),
            fix("f", Type::Nat, nat(1)),
            cmd(p, ret(nat(1))),
            eq(nat(1), nat(2)),
            sub(nat(3), nat(1)),
        ];
        for e in exprs {
            assert!(!expr_to_string(&e).is_empty());
        }
        let cmds = vec![
            ret(nat(1)),
            get(var("r")),
            set(var("r"), nat(1)),
            cas(var("r"), nat(0), nat(1)),
            ftouch(var("t")),
            fcreate(p, Type::Nat, ret(nat(1))),
            dcl("r", Type::Nat, nat(0), ret(nat(1))),
            bind("x", cmd(p, ret(nat(1))), ret(var("x"))),
        ];
        for m in cmds {
            assert!(!cmd_to_string(&m).is_empty());
        }
    }
}
