//! Pretty-printing of λ⁴ᵢ types, expressions, commands, and programs.
//!
//! The output is the concrete Figure 4 dialect that [`crate::parse`] reads
//! back: for every type, expression, command, and program,
//! `parse(pretty(x)) == x` (see the round-trip property tests in
//! `tests/frontend.rs`).  The printer keeps the grammar unambiguous by
//! construction:
//!
//! * binary types (`→`, `×`, `+`) and binary expressions (application,
//!   primitives) are always parenthesized;
//! * binder forms with greedy bodies (`λ`, `Λ`, `let`, `fix`, `forall`) are
//!   parenthesized whenever they appear in an *operand* position (argument
//!   of an application or prefix form, base of a priority application or
//!   postfix type);
//! * everything else is self-delimiting (literals, `cmd[ρ]{…}`, `ifz`/`case`
//!   braces, bracketed runtime values).
//!
//! Printing is domain-aware: given the program's [`PriorityDomain`],
//! concrete priorities render as their level *names* (`interactive`), which
//! the parser resolves against the program's `priorities:` declaration.
//! The domain-less helpers fall back to the positional `ρN` spelling, which
//! the parser also accepts.

use crate::syntax::{Cmd, Expr, PrimOp, Program, Type};
use rp_priority::{Constraint, PrioTerm, PriorityDomain};
use std::fmt::Write as _;

/// A printer, optionally aware of the priority domain (for level names).
#[derive(Debug, Clone, Copy, Default)]
pub struct Printer<'a> {
    domain: Option<&'a PriorityDomain>,
}

impl<'a> Printer<'a> {
    /// A printer that renders concrete priorities as `ρN`.
    pub fn new() -> Self {
        Printer { domain: None }
    }

    /// A printer that renders concrete priorities as level names of the
    /// given domain.
    pub fn with_domain(domain: &'a PriorityDomain) -> Self {
        Printer {
            domain: Some(domain),
        }
    }

    /// Renders a priority term.
    pub fn prio(&self, t: &PrioTerm) -> String {
        match (t, self.domain) {
            (PrioTerm::Const(p), Some(d)) => d.name(*p).to_string(),
            (PrioTerm::Const(p), None) => format!("{p}"),
            (PrioTerm::Var(v), _) => v.to_string(),
        }
    }

    /// Renders a constraint.
    pub fn constraint(&self, c: &Constraint) -> String {
        match c {
            Constraint::Leq { lhs, rhs } => format!("{} ⪯ {}", self.prio(lhs), self.prio(rhs)),
            Constraint::And(a, b) => format!("{} ∧ {}", self.constraint(a), self.constraint(b)),
            Constraint::True => "⊤".to_string(),
        }
    }

    /// Renders a type.
    pub fn ty(&self, t: &Type) -> String {
        match t {
            Type::Unit => "unit".to_string(),
            Type::Nat => "nat".to_string(),
            Type::Arrow(a, b) => format!("({} -> {})", self.ty(a), self.ty(b)),
            Type::Prod(a, b) => format!("({} * {})", self.ty(a), self.ty(b)),
            Type::Sum(a, b) => format!("({} + {})", self.ty(a), self.ty(b)),
            Type::Ref(a) => format!("{} ref", self.ty_postfix_base(a)),
            Type::Thread(a, p) => {
                format!("{} thread[{}]", self.ty_postfix_base(a), self.prio(p))
            }
            Type::Cmd(a, p) => format!("{} cmd[{}]", self.ty_postfix_base(a), self.prio(p)),
            Type::Forall(v, c, a) => {
                format!("forall {v} ~ {}. {}", self.constraint(c), self.ty(a))
            }
        }
    }

    /// Renders a type in the base position of a postfix form (`… ref`,
    /// `… thread[ρ]`, `… cmd[ρ]`): a `forall` there must be parenthesized
    /// or the postfix would attach inside its greedy body.
    fn ty_postfix_base(&self, t: &Type) -> String {
        match t {
            Type::Forall(..) => format!("({})", self.ty(t)),
            _ => self.ty(t),
        }
    }

    /// Renders an expression.
    pub fn expr(&self, e: &Expr) -> String {
        match e {
            Expr::Var(x) => x.clone(),
            Expr::Unit => "<>".to_string(),
            Expr::Nat(n) => n.to_string(),
            Expr::Lam(x, ty, b) => format!("\\{x}:{}. {}", self.ty(ty), self.expr(b)),
            Expr::Pair(a, b) => format!("({}, {})", self.expr(a), self.expr(b)),
            Expr::Inl(a) => format!("inl {}", self.atom(a)),
            Expr::Inr(a) => format!("inr {}", self.atom(a)),
            Expr::RefVal(s) => format!("ref[{s}]"),
            Expr::Tid(a) => format!("tid[{a}]"),
            Expr::CmdVal(p, m) => format!("cmd[{}]{{{}}}", self.prio(p), self.cmd(m)),
            Expr::PLam(v, c, b) => {
                format!("/\\{v} ~ {}. {}", self.constraint(c), self.expr(b))
            }
            Expr::PApp(b, p) => format!("{}[{}]", self.atom(b), self.prio(p)),
            Expr::Let(x, a, b) => {
                format!("let {x} = {} in {}", self.expr(a), self.expr(b))
            }
            Expr::Ifz(c, z, x, s) => format!(
                "ifz {} {{{}; {x}.{}}}",
                self.atom(c),
                self.expr(z),
                self.expr(s)
            ),
            Expr::App(a, b) => format!("({} {})", self.atom(a), self.atom(b)),
            Expr::Fst(a) => format!("fst {}", self.atom(a)),
            Expr::Snd(a) => format!("snd {}", self.atom(a)),
            Expr::Case(s, x, a, y, b) => format!(
                "case {} {{{x}.{}; {y}.{}}}",
                self.atom(s),
                self.expr(a),
                self.expr(b)
            ),
            Expr::Fix(x, ty, b) => format!("fix {x}:{} is {}", self.ty(ty), self.expr(b)),
            Expr::Prim(op, a, b) => {
                let sym = match op {
                    PrimOp::Add => "+",
                    PrimOp::Sub => "-",
                    PrimOp::Mul => "*",
                    PrimOp::Eq => "==",
                    PrimOp::Lt => "<",
                };
                format!("({} {sym} {})", self.atom(a), self.atom(b))
            }
        }
    }

    /// Renders an expression in an operand position: forms whose greedy
    /// bodies would otherwise swallow the surrounding context get wrapped
    /// in parentheses; self-delimiting forms print as themselves.
    fn atom(&self, e: &Expr) -> String {
        match e {
            Expr::Lam(..)
            | Expr::PLam(..)
            | Expr::Let(..)
            | Expr::Fix(..)
            | Expr::Inl(..)
            | Expr::Inr(..)
            | Expr::Fst(..)
            | Expr::Snd(..) => format!("({})", self.expr(e)),
            _ => self.expr(e),
        }
    }

    /// Renders a command.
    pub fn cmd(&self, m: &Cmd) -> String {
        match m {
            Cmd::Fcreate {
                prio,
                ret_type,
                body,
            } => format!(
                "fcreate[{}; {}]{{{}}}",
                self.prio(prio),
                self.ty(ret_type),
                self.cmd(body)
            ),
            Cmd::Ftouch(e) => format!("ftouch {}", self.atom(e)),
            Cmd::Dcl {
                ty,
                var,
                init,
                body,
            } => format!(
                "dcl[{}] {var} := {} in {}",
                self.ty(ty),
                self.expr(init),
                self.cmd(body)
            ),
            Cmd::Get(e) => format!("!{}", self.atom(e)),
            Cmd::Set(a, b) => format!("{} := {}", self.atom(a), self.expr(b)),
            Cmd::Bind { var, expr, rest } => {
                format!("{var} <- {}; {}", self.expr(expr), self.cmd(rest))
            }
            Cmd::Ret(e) => format!("ret {}", self.expr(e)),
            Cmd::Cas {
                target,
                expected,
                new,
            } => format!(
                "cas({}, {}, {})",
                self.expr(target),
                self.expr(expected),
                self.expr(new)
            ),
        }
    }

    /// Renders a whole program in the parseable header format:
    ///
    /// ```text
    /// priorities: lo < mid < hi
    /// program NAME : TYPE
    /// main @ LEVEL:
    ///   CMD
    /// ```
    ///
    /// The `priorities:` declaration comes first so the parser knows the
    /// domain before it meets a priority-bearing type or command.  A
    /// non-total domain declares its levels and covering pairs instead:
    /// `priorities: bot, l, r, top where bot < l, bot < r, l < top, r < top`.
    pub fn program(&self, p: &Program) -> String {
        let printer = Printer::with_domain(&p.domain);
        let mut out = String::new();
        let _ = writeln!(out, "priorities: {}", domain_decl(&p.domain));
        let _ = writeln!(out, "program {} : {}", p.name, printer.ty(&p.return_type));
        let _ = writeln!(out, "main @ {}:", p.domain.name(p.main_priority));
        let _ = writeln!(out, "  {}", printer.cmd(&p.main));
        out
    }
}

/// Renders a priority domain as the `priorities:` declaration body.
fn domain_decl(domain: &PriorityDomain) -> String {
    if domain.is_total() {
        // Total orders list the levels lowest-first; declaration order of a
        // `total_order` domain is already the chain order, but sort by the
        // relation to be safe for hand-built equivalents.
        domain
            .topo_sorted()
            .into_iter()
            .map(|q| domain.name(q).to_string())
            .collect::<Vec<_>>()
            .join(" < ")
    } else {
        // Partial orders: the level list in declaration order, then the
        // covering pairs of the order (whose transitive closure rebuilds
        // the same `⪯`).
        let levels = domain
            .iter()
            .map(|q| domain.name(q).to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let mut pairs = Vec::new();
        for a in domain.iter() {
            for b in domain.iter() {
                if domain.lt(a, b)
                    && !domain
                        .iter()
                        .any(|m| m != a && m != b && domain.lt(a, m) && domain.lt(m, b))
                {
                    pairs.push(format!("{} < {}", domain.name(a), domain.name(b)));
                }
            }
        }
        if pairs.is_empty() {
            // An antichain: levels only, no `where` clause.
            levels
        } else {
            format!("{levels} where {}", pairs.join(", "))
        }
    }
}

/// Renders a type (positional `ρN` priorities).
pub fn type_to_string(t: &Type) -> String {
    Printer::new().ty(t)
}

/// Renders an expression (positional `ρN` priorities).
pub fn expr_to_string(e: &Expr) -> String {
    Printer::new().expr(e)
}

/// Renders a command (positional `ρN` priorities).
pub fn cmd_to_string(m: &Cmd) -> String {
    Printer::new().cmd(m)
}

/// Renders a whole program, including its priority domain, in the format
/// [`crate::parse::parse_program`] reads back.
pub fn program_to_string(p: &Program) -> String {
    Printer::new().program(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progs;
    use crate::syntax::dsl::*;
    use rp_priority::PriorityDomain;

    #[test]
    fn types_render() {
        let dom = PriorityDomain::numeric(2);
        let t = Type::arrow(
            Type::Nat,
            Type::cmd(Type::prod(Type::Unit, Type::Nat), dom.by_index(1)),
        );
        let s = type_to_string(&t);
        assert!(s.contains("nat") && s.contains("cmd") && s.contains("->"));
    }

    #[test]
    fn expressions_and_commands_render() {
        let dom = PriorityDomain::numeric(1);
        let p = dom.by_index(0);
        let m = dcl(
            "r",
            Type::Nat,
            nat(0),
            bind("v", cmd(p, get(var("r"))), ret(add(var("v"), nat(1)))),
        );
        let s = cmd_to_string(&m);
        assert!(s.contains("dcl") && s.contains("<-") && s.contains("ret"));
    }

    #[test]
    fn program_rendering_mentions_priorities() {
        let prog = progs::server_with_background(1, 1);
        let s = program_to_string(&prog);
        assert!(s.contains("background") && s.contains("interactive"));
        assert!(s.contains("fcreate"));
        assert!(s.contains("priorities: background < interactive"));
    }

    #[test]
    fn domain_aware_priorities_use_level_names() {
        let dom = PriorityDomain::total_order(["bg", "ui"]).unwrap();
        let ui = dom.priority("ui").unwrap();
        let m = fcreate(ui, Type::Nat, ret(nat(1)));
        let with = Printer::with_domain(&dom).cmd(&m);
        assert!(with.contains("fcreate[ui;"), "{with}");
        let without = cmd_to_string(&m);
        assert!(without.contains("fcreate[ρ1;"), "{without}");
    }

    #[test]
    fn partial_order_domain_decl_lists_covering_pairs() {
        let dom = PriorityDomain::builder()
            .level("bot")
            .level("l")
            .level("r")
            .level("top")
            .lt("bot", "l")
            .lt("bot", "r")
            .lt("l", "top")
            .lt("r", "top")
            .build()
            .unwrap();
        let decl = domain_decl(&dom);
        assert!(decl.contains("where"));
        assert!(decl.contains("bot < l") && decl.contains("r < top"));
        // The transitive pair is not listed (it is implied).
        assert!(!decl.contains("bot < top"));
    }

    #[test]
    fn operand_positions_are_parenthesized() {
        // An applied lambda must print with the lambda wrapped, or the
        // greedy body would swallow the argument on the way back in.
        let e = app(lam("x", Type::Nat, var("x")), nat(1));
        assert_eq!(expr_to_string(&e), "((\\x:nat. x) 1)");
        // A forall under a postfix type is wrapped for the same reason.
        let t = Type::reference(Type::Forall(
            "pi".into(),
            rp_priority::Constraint::True,
            Box::new(Type::Nat),
        ));
        assert_eq!(type_to_string(&t), "(forall pi ~ ⊤. nat) ref");
    }

    #[test]
    fn all_syntax_constructors_render_nonempty() {
        let dom = PriorityDomain::numeric(1);
        let p = dom.by_index(0);
        let exprs = vec![
            unit(),
            nat(3),
            var("x"),
            lam("x", Type::Nat, var("x")),
            pair(nat(1), nat(2)),
            Expr::Inl(Box::new(nat(1))),
            Expr::Inr(Box::new(unit())),
            Expr::Fst(Box::new(var("p"))),
            Expr::Snd(Box::new(var("p"))),
            Expr::Case(
                Box::new(var("s")),
                "a".into(),
                Box::new(nat(1)),
                "b".into(),
                Box::new(nat(2)),
            ),
            ifz(nat(0), nat(1), "m", var("m")),
            fix("f", Type::Nat, nat(1)),
            cmd(p, ret(nat(1))),
            eq(nat(1), nat(2)),
            sub(nat(3), nat(1)),
        ];
        for e in exprs {
            assert!(!expr_to_string(&e).is_empty());
        }
        let cmds = vec![
            ret(nat(1)),
            get(var("r")),
            set(var("r"), nat(1)),
            cas(var("r"), nat(0), nat(1)),
            ftouch(var("t")),
            fcreate(p, Type::Nat, ret(nat(1))),
            dcl("r", Type::Nat, nat(0), ret(nat(1))),
            bind("x", cmd(p, ret(nat(1))), ret(var("x"))),
        ];
        for m in cmds {
            assert!(!cmd_to_string(&m).is_empty());
        }
    }
}
