//! The λ⁴ᵢ calculus: prioritized futures with mutable state.
//!
//! This crate implements Section 3 of *Responsive Parallelism with Futures
//! and State* (PLDI 2020):
//!
//! * [`syntax`] — the A-normal-form expression layer and the monadic command
//!   layer of λ⁴ᵢ (Figure 4), with capture-avoiding substitution;
//! * [`typecheck`] — the type system of Figures 5–7, including
//!   priority-polymorphic types `∀π ∼ C. τ`, the signature `Σ` of thread
//!   symbols and memory locations, and the `Touch` rule that rules out
//!   priority inversions;
//! * [`machine`] — the stack-based parallel abstract machine of Figures
//!   8–11 (rules D-Bind, D-Create, D-Touch, D-Dcl, D-Get, D-Set, D-Ret,
//!   D-Exp, D-Par, plus the CAS extension of §3.3), which both executes the
//!   program and emits a weak-edge cost graph in the sense of Section 2;
//! * [`policy`] — thread-selection policies for the D-Par rule (prompt,
//!   priority-oblivious, random);
//! * [`run`] — a driver that runs programs to completion, collects per-thread
//!   response times, and cross-checks the emitted graph against the
//!   `rp-core` well-formedness and bound machinery;
//! * [`progs`] — a library of example programs, including the racy Figure 1
//!   program and λ⁴ᵢ encodings of the paper's three case studies (used by
//!   the Table 1 reproduction), also checked in as `.l4i` source text
//!   ([`progs::sources`]);
//! * [`pretty`] and [`parse`] — the concrete Figure 4 dialect: an exact
//!   round-tripping pretty-printer and a hand-written lexer + recursive-
//!   descent parser with positioned error messages.  The full grammar —
//!   the Figure 4 dialect, priority-domain declaration forms, the
//!   Unicode/ASCII token table, and the `parse ∘ pretty = id` guarantee —
//!   is documented in `GRAMMAR.md` at this crate's root
//!   (`crates/lambda4i/GRAMMAR.md`);
//! * [`typecheck::infer_program`] — priority *inference*: a constraint-
//!   collecting checking pass whose deferred goals are solved by
//!   [`rp_priority::solve()`], instantiating free priority variables;
//! * [`compile`] — lowering typechecked programs onto the real
//!   [`rp_icilk::runtime::Runtime`] (fcreate/ftouch tasks, shared-state
//!   heap, execution tracing for cost-DAG reconstruction);
//! * [`pipeline`] — the three stages glued: `.l4i` source in, machine and
//!   runtime executions out, Theorem 2.3 cross-checked on both graphs;
//! * [`generate`] — seeded random well-typed programs for the property
//!   suites;
//! * [`vclock`] — vector clocks and a happens-before race detector
//!   classifying conflicting `dcl/!/:=/cas` access pairs as ordered,
//!   CAS-synchronized, or racy;
//! * [`explore`] — a stateless DPOR model checker that enumerates the D-Par
//!   interleavings of a program (sleep sets + persistent-set backtracking),
//!   checking Theorem 2.3, value determinism, and race freedom on every
//!   explored schedule.
//!
//! # Example
//!
//! ```
//! use rp_lambda4i::progs;
//! use rp_lambda4i::run::{run_program, RunConfig};
//! use rp_lambda4i::typecheck::typecheck_program;
//!
//! let prog = progs::parallel_fib(6);
//! typecheck_program(&prog).unwrap();
//! let result = run_program(&prog, &RunConfig::default()).unwrap();
//! assert!(result.graph_report.strongly_well_formed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod explore;
pub mod generate;
pub mod machine;
pub mod parse;
pub mod pipeline;
pub mod policy;
pub mod pretty;
pub mod progs;
pub mod run;
pub mod syntax;
pub mod typecheck;
pub mod vclock;

pub use compile::{compile_and_run, CompileConfig};
pub use explore::{explore_program, ExploreConfig, ExploreMode, ExploreReport};
pub use parse::{parse_program, ParseError};
pub use pipeline::{run_source, CompileCache, PipelineConfig, PipelineReport};
pub use run::{run_program, run_with_schedule, RunConfig, RunResult};
pub use syntax::{Cmd, Expr, Program, Type};
pub use typecheck::{infer_program, typecheck_program, TypeError};
pub use vclock::{PairOrder, RaceDetector, RacePair, VClock};
