//! Compiling λ⁴ᵢ programs onto the real rp-icilk work-stealing runtime.
//!
//! The abstract machine ([`crate::machine`]) executes programs step by step
//! under a simulated D-Par scheduler.  This module is the other back end:
//! it lowers a typechecked, fully priority-instantiated [`Program`] onto
//! [`rp_icilk::runtime::Runtime`] —
//!
//! * each `fcreate[ρ; τ]{m}` becomes a real [`Runtime::fcreate`] task at
//!   the runtime level corresponding to `ρ`;
//! * `ftouch` becomes [`Runtime::ftouch`] (the helping, non-blocking join);
//! * `dcl` / `!` / `:=` / `cas` operate on a shared heap of λ⁴ᵢ values
//!   (one mutex-protected store; `cas` is atomic under it);
//! * the expression layer is evaluated by a big-step interpreter with the
//!   same substitution semantics as the machine, so both back ends compute
//!   identical values for deterministic programs.
//!
//! The main command itself runs as a task (at the program's main priority),
//! so a runtime started with tracing produces an [`ExecutionTrace`] in
//! which *every* λ⁴ᵢ thread is a traced task — `rp_core::trace` can then
//! reconstruct the observed cost DAG and check the Theorem 2.3 bound
//! against what the production scheduler actually did, next to the DAG the
//! abstract machine emitted for the same program (see `bench_lambda`).
//!
//! Priority domains embed into the runtime via
//! [`RuntimeConfig::for_domain`]: one runtime level per domain level in
//! topological order.  A partial order is linearised, which refines (never
//! violates) the program's `⪯` facts.

use crate::syntax::{Cmd, Expr, PrimOp, Program};
use rp_core::trace::ExecutionTrace;
use rp_icilk::future::IFuture;
use rp_icilk::runtime::{Runtime, RuntimeConfig};
use rp_priority::Priority;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a compiled run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileConfig {
    /// Number of runtime worker threads.
    pub workers: usize,
    /// Whether to record an execution trace for cost-graph reconstruction.
    pub tracing: bool,
    /// Seconds to wait for the runtime to drain after the main value is
    /// available (fire-and-forget threads may still be running).
    pub drain_secs: u64,
}

impl Default for CompileConfig {
    fn default() -> Self {
        CompileConfig {
            workers: 2,
            tracing: true,
            drain_secs: 30,
        }
    }
}

/// Errors from lowering or executing a program on the runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The program still mentions free priority variables; run
    /// [`crate::typecheck::infer_program`] first.
    UnresolvedPriorities(Vec<String>),
    /// A task's evaluation got stuck (ill-typed input) or referenced a
    /// dangling symbol.
    Eval(EvalError),
    /// The runtime failed to drain within the configured timeout.
    DrainTimeout,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnresolvedPriorities(vs) => write!(
                f,
                "cannot compile with unresolved priority variables: {} (run priority inference first)",
                vs.join(", ")
            ),
            CompileError::Eval(e) => write!(f, "runtime evaluation failed: {e}"),
            CompileError::DrainTimeout => write!(f, "runtime did not drain in time"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Evaluation errors inside a lowered task.  Well-typed programs never
/// produce these (Progress, Theorem 3.3); the interpreter is defensive so
/// ill-typed inputs fail with a description rather than a worker panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// No evaluation rule applies.
    Stuck(String),
    /// A read/write targeted an unallocated location.
    DanglingLocation(u32),
    /// An `ftouch` targeted an unknown thread id.
    DanglingThread(u32),
    /// A priority was still a variable at spawn time.
    UnresolvedPriority(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Stuck(msg) => write!(f, "stuck: {msg}"),
            EvalError::DanglingLocation(s) => write!(f, "dangling location s{s}"),
            EvalError::DanglingThread(a) => write!(f, "dangling thread a{a}"),
            EvalError::UnresolvedPriority(p) => {
                write!(f, "priority variable `{p}` reached the runtime unresolved")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// The outcome of running a program on the rp-icilk runtime.
#[derive(Debug)]
pub struct RuntimeOutcome {
    /// The main thread's final value.
    pub value: Expr,
    /// The execution trace, when the run was traced.
    pub trace: Option<ExecutionTrace>,
    /// Number of λ⁴ᵢ threads spawned (including the main thread).
    pub threads_spawned: usize,
    /// The runtime level names, lowest first (the linearised domain).
    pub level_names: Vec<String>,
    /// Number of runtime workers used.
    pub workers: usize,
}

/// Type of the value a lowered task produces.
type TaskResult = Result<Expr, EvalError>;

/// The lowering context shared by every task of one compiled run.
#[derive(Clone)]
struct Lowerer {
    rt: Arc<Runtime>,
    /// The shared heap: λ⁴ᵢ reference cells.  One lock for the whole store
    /// keeps `cas` trivially atomic; λ⁴ᵢ state cells are coordination
    /// variables, not data-plane buffers, so contention is negligible.
    heap: Arc<Mutex<HashMap<u32, Expr>>>,
    /// Thread id → future of the task lowered for it.
    futures: Arc<Mutex<HashMap<u32, IFuture<TaskResult>>>>,
    next_loc: Arc<AtomicU32>,
    next_tid: Arc<AtomicU32>,
    /// Runtime priority per *domain* level index (the topological
    /// embedding).
    level_map: Arc<Vec<Priority>>,
}

impl Lowerer {
    fn runtime_prio(&self, domain_prio: Priority) -> Priority {
        self.level_map[domain_prio.index()]
    }

    /// Executes a command, returning its value.  Sequencing (`bind`, `dcl`)
    /// is iterative so long chains do not grow the worker stack.
    fn exec(&self, m: &Cmd) -> TaskResult {
        let mut cur: Cmd = m.clone();
        loop {
            match cur {
                Cmd::Bind { var, expr, rest } => {
                    let v = self.eval(&expr)?;
                    match v {
                        Expr::CmdVal(_, inner) => {
                            let r = self.exec(&inner)?;
                            cur = rest.subst(&var, &r);
                        }
                        other => {
                            return Err(EvalError::Stuck(format!("bind of non-command {other:?}")))
                        }
                    }
                }
                Cmd::Dcl {
                    var, init, body, ..
                } => {
                    let v = self.eval(&init)?;
                    let loc = self.next_loc.fetch_add(1, Ordering::Relaxed);
                    self.heap.lock().expect("heap lock").insert(loc, v);
                    cur = body.subst(&var, &Expr::RefVal(crate::syntax::LocId(loc)));
                }
                Cmd::Fcreate { prio, body, .. } => {
                    let domain_prio = prio
                        .as_const()
                        .ok_or_else(|| EvalError::UnresolvedPriority(prio.to_string()))?;
                    let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
                    let child = self.clone();
                    let child_body = body.clone();
                    let future = self.rt.fcreate(self.runtime_prio(domain_prio), move || {
                        child.exec(&child_body)
                    });
                    self.futures
                        .lock()
                        .expect("futures lock")
                        .insert(tid, future);
                    return Ok(Expr::Tid(crate::syntax::ThreadSym(tid)));
                }
                Cmd::Ftouch(e) => {
                    let v = self.eval(&e)?;
                    let tid = match v {
                        Expr::Tid(a) => a.0,
                        other => {
                            return Err(EvalError::Stuck(format!("ftouch of non-handle {other:?}")))
                        }
                    };
                    let future = self
                        .futures
                        .lock()
                        .expect("futures lock")
                        .get(&tid)
                        .cloned()
                        .ok_or(EvalError::DanglingThread(tid))?;
                    // The helping join: the worker runs other ready tasks
                    // while the touched value is unavailable.
                    return self.rt.ftouch(&future);
                }
                Cmd::Get(e) => {
                    let s = self.loc_of(&self.eval(&e)?, "read")?;
                    return self
                        .heap
                        .lock()
                        .expect("heap lock")
                        .get(&s)
                        .cloned()
                        .ok_or(EvalError::DanglingLocation(s));
                }
                Cmd::Set(target, value) => {
                    let s = self.loc_of(&self.eval(&target)?, "assignment")?;
                    let v = self.eval(&value)?;
                    let mut heap = self.heap.lock().expect("heap lock");
                    if !heap.contains_key(&s) {
                        return Err(EvalError::DanglingLocation(s));
                    }
                    heap.insert(s, v.clone());
                    return Ok(v);
                }
                Cmd::Cas {
                    target,
                    expected,
                    new,
                } => {
                    let s = self.loc_of(&self.eval(&target)?, "cas")?;
                    let expected = self.eval(&expected)?;
                    let new = self.eval(&new)?;
                    // Compare-and-swap is atomic under the store lock.
                    let mut heap = self.heap.lock().expect("heap lock");
                    let cell = heap.get_mut(&s).ok_or(EvalError::DanglingLocation(s))?;
                    return Ok(if *cell == expected {
                        *cell = new;
                        Expr::Nat(1)
                    } else {
                        Expr::Nat(0)
                    });
                }
                Cmd::Ret(e) => return self.eval(&e),
            }
        }
    }

    fn loc_of(&self, v: &Expr, what: &str) -> Result<u32, EvalError> {
        match v {
            Expr::RefVal(s) => Ok(s.0),
            other => Err(EvalError::Stuck(format!(
                "{what} of non-reference {other:?}"
            ))),
        }
    }

    /// Big-step evaluation of the pure expression layer, mirroring the
    /// machine's Figure 11 rules value for value.
    fn eval(&self, e: &Expr) -> TaskResult {
        match e {
            Expr::Unit
            | Expr::Nat(_)
            | Expr::Lam(..)
            | Expr::RefVal(_)
            | Expr::Tid(_)
            | Expr::CmdVal(..)
            | Expr::PLam(..) => Ok(e.clone()),
            Expr::Var(x) => Err(EvalError::Stuck(format!("unbound variable `{x}`"))),
            Expr::Pair(a, b) => Ok(Expr::Pair(Box::new(self.eval(a)?), Box::new(self.eval(b)?))),
            Expr::Inl(a) => Ok(Expr::Inl(Box::new(self.eval(a)?))),
            Expr::Inr(a) => Ok(Expr::Inr(Box::new(self.eval(a)?))),
            Expr::Let(x, e1, e2) => {
                let v1 = self.eval(e1)?;
                self.eval(&e2.subst(x, &v1))
            }
            Expr::App(f, a) => {
                let vf = self.eval(f)?;
                let va = self.eval(a)?;
                match vf {
                    Expr::Lam(x, _, body) => self.eval(&body.subst(&x, &va)),
                    other => Err(EvalError::Stuck(format!("applied non-function {other:?}"))),
                }
            }
            Expr::Fst(v) => match self.eval(v)? {
                Expr::Pair(a, _) => Ok(*a),
                other => Err(EvalError::Stuck(format!("fst of non-pair {other:?}"))),
            },
            Expr::Snd(v) => match self.eval(v)? {
                Expr::Pair(_, b) => Ok(*b),
                other => Err(EvalError::Stuck(format!("snd of non-pair {other:?}"))),
            },
            Expr::Case(scrut, x, e1, y, e2) => match self.eval(scrut)? {
                Expr::Inl(a) => self.eval(&e1.subst(x, &a)),
                Expr::Inr(b) => self.eval(&e2.subst(y, &b)),
                other => Err(EvalError::Stuck(format!("case of non-sum {other:?}"))),
            },
            Expr::Ifz(cond, zero, x, succ) => match self.eval(cond)? {
                Expr::Nat(0) => self.eval(zero),
                Expr::Nat(n) => self.eval(&succ.subst(x, &Expr::Nat(n - 1))),
                other => Err(EvalError::Stuck(format!("ifz on non-natural {other:?}"))),
            },
            Expr::Fix(x, ty, body) => {
                let unrolled = body.subst(x, &Expr::Fix(x.clone(), ty.clone(), body.clone()));
                self.eval(&unrolled)
            }
            Expr::Prim(op, a, b) => match (self.eval(a)?, self.eval(b)?) {
                (Expr::Nat(a), Expr::Nat(b)) => {
                    let r = match op {
                        PrimOp::Add => a + b,
                        PrimOp::Sub => a.saturating_sub(b),
                        PrimOp::Mul => a * b,
                        PrimOp::Eq => u64::from(a == b),
                        PrimOp::Lt => u64::from(a < b),
                    };
                    Ok(Expr::Nat(r))
                }
                (a, b) => Err(EvalError::Stuck(format!(
                    "primitive on non-naturals {a:?}, {b:?}"
                ))),
            },
            Expr::PApp(v, p) => match self.eval(v)? {
                Expr::PLam(pi, _, body) => self.eval(&body.subst_prio(&pi, p)),
                other => Err(EvalError::Stuck(format!(
                    "priority application of {other:?}"
                ))),
            },
        }
    }
}

/// Lowers a program onto a fresh rp-icilk runtime and runs it to
/// completion.
///
/// The program must be fully priority-instantiated (no free priority
/// variables) and should be well-typed — the runtime executes ill-typed
/// programs defensively but may, like the machine, produce priority
/// inversions the type system would have rejected.
///
/// Unlike the abstract machine, the runtime has no step limit: a program
/// whose *main* thread diverges blocks this call indefinitely (validate
/// termination on the machine first, as [`crate::pipeline`] does).  A
/// diverging *fire-and-forget* thread is bounded by `drain_secs`: the call
/// returns [`CompileError::DrainTimeout`] and deliberately leaks the
/// runtime (its workers cannot be joined while a task is stuck).
///
/// # Errors
///
/// Returns a [`CompileError`] on unresolved priorities, evaluation
/// failures, or a drain timeout.
pub fn compile_and_run(
    prog: &Program,
    config: &CompileConfig,
) -> Result<RuntimeOutcome, CompileError> {
    let free = prog.free_prio_vars();
    if !free.is_empty() {
        return Err(CompileError::UnresolvedPriorities(
            free.into_iter().map(|v| v.name().to_string()).collect(),
        ));
    }

    // The topological embedding of the domain into runtime levels.
    let topo = prog.domain.topo_sorted();
    let level_names: Vec<String> = topo
        .iter()
        .map(|&p| prog.domain.name(p).to_string())
        .collect();
    let rt = Arc::new(Runtime::start(
        RuntimeConfig::for_domain(config.workers, &prog.domain).with_tracing(config.tracing),
    ));
    let mut level_map = vec![Priority::from_index(0); prog.domain.len()];
    for (runtime_idx, &domain_prio) in topo.iter().enumerate() {
        level_map[domain_prio.index()] = rt
            .priority_by_index(runtime_idx)
            .expect("one runtime level per domain level");
    }

    let lowerer = Lowerer {
        rt: Arc::clone(&rt),
        heap: Arc::new(Mutex::new(HashMap::new())),
        futures: Arc::new(Mutex::new(HashMap::new())),
        next_loc: Arc::new(AtomicU32::new(0)),
        next_tid: Arc::new(AtomicU32::new(0)),
        level_map: Arc::new(level_map),
    };

    // The main command is itself a task, so a traced run reconstructs the
    // whole program (main included) as cost-graph threads.
    let main_tid = lowerer.next_tid.fetch_add(1, Ordering::Relaxed);
    let main_prio = lowerer.runtime_prio(prog.main_priority);
    let task = lowerer.clone();
    let main_cmd = Arc::clone(&prog.main);
    let main_future = rt.fcreate(main_prio, move || task.exec(&main_cmd));
    lowerer
        .futures
        .lock()
        .expect("futures lock")
        .insert(main_tid, main_future.clone());

    let result = rt.ftouch_blocking(&main_future);
    // Fire-and-forget threads may still be running; wait for all of them so
    // the trace snapshot is complete.
    let drained = rt.drain(Duration::from_secs(config.drain_secs));
    let trace = rt.trace_snapshot();
    let threads_spawned = lowerer.next_tid.load(Ordering::Relaxed) as usize;

    // Task closures drop their `Lowerer` (and its runtime handle) shortly
    // after the drain; wait (bounded) to be the sole owner before shutting
    // down.  An undrained runtime has a task that may never finish — its
    // closure holds a runtime handle forever, so the unwrap could spin
    // unboundedly; in that case (or if the bounded wait expires) the
    // runtime is deliberately leaked rather than hanging the caller:
    // joining the workers from here would block on the stuck task, and the
    // task's own thread must not be the one to drop the last handle (a
    // worker cannot join itself).
    drop(lowerer);
    let mut rt = Some(rt);
    if drained {
        let deadline = Instant::now() + Duration::from_secs(10);
        while let Some(shared) = rt.take() {
            match Arc::try_unwrap(shared) {
                Ok(owned) => {
                    owned.shutdown();
                    break;
                }
                Err(shared) => {
                    if Instant::now() >= deadline {
                        std::mem::forget(shared);
                        break;
                    }
                    rt = Some(shared);
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    } else if let Some(shared) = rt.take() {
        std::mem::forget(shared);
    }

    let value = result.map_err(CompileError::Eval)?;
    if !drained {
        return Err(CompileError::DrainTimeout);
    }
    Ok(RuntimeOutcome {
        value,
        trace,
        threads_spawned,
        level_names,
        workers: config.workers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progs;
    use crate::run::{run_program, RunConfig};
    use crate::typecheck::typecheck_program;

    fn quick(workers: usize) -> CompileConfig {
        CompileConfig {
            workers,
            tracing: true,
            drain_secs: 30,
        }
    }

    #[test]
    fn parallel_fib_matches_machine_value() {
        let prog = progs::parallel_fib(7);
        typecheck_program(&prog).unwrap();
        let machine = run_program(&prog, &RunConfig::default()).unwrap();
        let runtime = compile_and_run(&prog, &quick(2)).unwrap();
        assert_eq!(runtime.value, machine.value);
        assert_eq!(runtime.value, Expr::Nat(13));
        assert!(runtime.threads_spawned > 1, "fib(7) spawns futures");
    }

    #[test]
    fn state_and_cas_work_on_the_runtime() {
        let prog = progs::email_coordination_program();
        typecheck_program(&prog).unwrap();
        let out = compile_and_run(&prog, &quick(2)).unwrap();
        // The event loop returns 0; the fire-and-forget print/compress
        // threads ran to completion before drain returned.
        assert_eq!(out.value, Expr::Nat(0));
        assert_eq!(out.threads_spawned, 3);
        assert_eq!(out.level_names, vec!["compress", "print", "event"]);
    }

    #[test]
    fn traced_run_reconstructs_into_checked_cost_dag() {
        let prog = progs::server_with_background(2, 2);
        typecheck_program(&prog).unwrap();
        let out = compile_and_run(&prog, &quick(1)).unwrap();
        let trace = out.trace.expect("tracing was on");
        let run = trace.reconstruct().expect("trace reconstructs");
        // main + 2 requests + 2 background threads.
        assert_eq!(run.dag.thread_count(), 5);
        assert_eq!(run.skipped, 0);
        assert!(rp_core::wellformed::check_well_formed(&run.dag).is_ok());
        run.schedule.validate(&run.dag).expect("observed schedule");
        assert!(run.schedule.is_admissible(&run.dag));
        for report in run.check_replay(out.workers) {
            assert!(!report.report.is_counterexample(), "{report:?}");
        }
    }

    #[test]
    fn untraced_run_has_no_trace() {
        let prog = progs::parallel_fib(3);
        let out = compile_and_run(
            &prog,
            &CompileConfig {
                tracing: false,
                ..quick(1)
            },
        )
        .unwrap();
        assert!(out.trace.is_none());
    }

    #[test]
    fn unresolved_priorities_are_rejected_up_front() {
        use crate::syntax::dsl::*;
        use crate::syntax::Type;
        use rp_priority::{PrioTerm, PriorityDomain};
        let dom = PriorityDomain::numeric(1);
        let prog = Program {
            name: "open".into(),
            domain: dom.clone(),
            main_priority: dom.by_index(0),
            main: Arc::new(bind(
                "t",
                cmd(
                    dom.by_index(0),
                    fcreate(PrioTerm::var("pi"), Type::Nat, ret(nat(1))),
                ),
                ret(nat(0)),
            )),
            return_type: Type::Nat,
        };
        match compile_and_run(&prog, &quick(1)) {
            Err(CompileError::UnresolvedPriorities(vs)) => assert_eq!(vs, vec!["pi".to_string()]),
            other => panic!("expected UnresolvedPriorities, got {other:?}"),
        }
    }

    /// Regression test: with fire-and-forget work still in flight when the
    /// drain window closes, `compile_and_run` must return `DrainTimeout`
    /// promptly — the old shutdown path spun on `Arc::try_unwrap` forever
    /// because the running task's closure holds a runtime handle.
    #[test]
    fn drain_timeout_returns_instead_of_hanging() {
        use crate::syntax::dsl::*;
        use crate::syntax::Type;
        use rp_priority::PriorityDomain;
        let dom = PriorityDomain::numeric(1);
        let p = dom.by_index(0);
        // Main spawns slow countdown threads it never touches, then
        // returns immediately; a zero-second drain window closes while
        // they are still queued behind main on the single worker.
        let slow = fix(
            "loop",
            Type::arrow(Type::Nat, Type::Nat),
            lam(
                "n",
                Type::Nat,
                ifz(
                    var("n"),
                    nat(0),
                    "m",
                    add(nat(1), app(var("loop"), var("m"))),
                ),
            ),
        );
        // Shallow per-thread work (the big-step evaluator recurses on the
        // worker stack), but enough queued threads that a zero-second
        // drain window closes while they are still pending.
        let mut body: Cmd = ret(nat(0));
        for i in 0..64 {
            body = bind(
                &format!("t{i}"),
                cmd(p, fcreate(p, Type::Nat, ret(app(slow.clone(), nat(40))))),
                body,
            );
        }
        let prog = Program {
            name: "slow-bg".into(),
            domain: dom,
            main_priority: p,
            main: Arc::new(body),
            return_type: Type::Nat,
        };
        let started = std::time::Instant::now();
        let result = compile_and_run(
            &prog,
            &CompileConfig {
                workers: 1,
                tracing: false,
                drain_secs: 0,
            },
        );
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "compile_and_run must not hang past the drain window"
        );
        // Either the machine raced everything to completion (fine) or the
        // window closed with work pending — then the error must be
        // DrainTimeout, not a hang.
        if let Err(e) = result {
            assert_eq!(e, CompileError::DrainTimeout);
        }
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<CompileError> = vec![
            CompileError::UnresolvedPriorities(vec!["pi".into()]),
            CompileError::Eval(EvalError::Stuck("x".into())),
            CompileError::Eval(EvalError::DanglingLocation(0)),
            CompileError::Eval(EvalError::DanglingThread(1)),
            CompileError::Eval(EvalError::UnresolvedPriority("pi".into())),
            CompileError::DrainTimeout,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
