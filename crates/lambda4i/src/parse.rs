//! Parsing the λ⁴ᵢ concrete syntax (Figure 4 dialect).
//!
//! A hand-written lexer and recursive-descent parser for the dialect
//! [`crate::pretty`] emits, elaborating surface terms into the ANF
//! [`Expr`]/[`Cmd`] AST.  The two are inverses: for every AST value,
//! `parse(pretty(x)) == x`.
//!
//! # Source format
//!
//! A program file (`.l4i`) is a header plus the main command:
//!
//! ```text
//! -- comments run to end of line
//! priorities: background < interactive
//! program my-server : nat
//! main @ background:
//!   t <- cmd[background]{fcreate[interactive; nat]{ret 42}}; ...
//! ```
//!
//! The `priorities:` declaration names the levels of the priority domain,
//! lowest first (`a < b < c` for a total order, or
//! `a, b, c where a < b, a < c` for a partial order, listing covering
//! pairs).  Identifiers in priority position resolve in order: a
//! `Λπ ∼ C`-bound variable, then a declared level name, then a *free*
//! priority variable — which is how source programs leave priorities to the
//! solver ([`crate::typecheck::infer_program`]).  The positional spelling
//! `ρN` (level index `N`) is also accepted, as emitted by the domain-less
//! pretty-printers.
//!
//! Constraints accept both the paper's glyphs (`⪯`, `∧`, `⊤`) and ASCII
//! (`<=`, `&`, `true`).
//!
//! # Errors
//!
//! Every error carries the 1-based line and column of the offending token
//! and says what was expected:
//!
//! ```text
//! line 3, column 14: expected `]` after priority, found `;`
//! ```

use crate::syntax::{Cmd, Expr, LocId, PrimOp, Program, ThreadSym, Type};
use rp_priority::{Constraint, PrioTerm, PrioVar, Priority, PriorityDomain};
use std::fmt;
use std::sync::Arc;

/// A parse error, with the 1-based source position of the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong, usually `expected …, found …`.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokKind {
    Ident(String),
    Nat(u64),
    /// `ρN`: a concrete priority by level index.
    PrioIndex(u32),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    UnitLit,   // <>
    BindArrow, // <-
    LeqSym,    // ⪯ or <=
    Lt,        // <
    Arrow,     // ->
    Minus,     // -
    Plus,      // +
    Star,      // *
    EqEq,      // ==
    Eq,        // =
    ColonEq,   // :=
    Colon,     // :
    Dot,       // .
    Semi,      // ;
    Comma,     // ,
    Backslash, // \
    BigLambda, // /\
    Bang,      // !
    Tilde,     // ~
    At,        // @
    AndSym,    // ∧ or &
    TopSym,    // ⊤ or true
    Eof,
}

impl fmt::Display for TokKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokKind::Ident(s) => write!(f, "`{s}`"),
            TokKind::Nat(n) => write!(f, "`{n}`"),
            TokKind::PrioIndex(n) => write!(f, "`ρ{n}`"),
            TokKind::LParen => write!(f, "`(`"),
            TokKind::RParen => write!(f, "`)`"),
            TokKind::LBrace => write!(f, "`{{`"),
            TokKind::RBrace => write!(f, "`}}`"),
            TokKind::LBracket => write!(f, "`[`"),
            TokKind::RBracket => write!(f, "`]`"),
            TokKind::UnitLit => write!(f, "`<>`"),
            TokKind::BindArrow => write!(f, "`<-`"),
            TokKind::LeqSym => write!(f, "`⪯`"),
            TokKind::Lt => write!(f, "`<`"),
            TokKind::Arrow => write!(f, "`->`"),
            TokKind::Minus => write!(f, "`-`"),
            TokKind::Plus => write!(f, "`+`"),
            TokKind::Star => write!(f, "`*`"),
            TokKind::EqEq => write!(f, "`==`"),
            TokKind::Eq => write!(f, "`=`"),
            TokKind::ColonEq => write!(f, "`:=`"),
            TokKind::Colon => write!(f, "`:`"),
            TokKind::Dot => write!(f, "`.`"),
            TokKind::Semi => write!(f, "`;`"),
            TokKind::Comma => write!(f, "`,`"),
            TokKind::Backslash => write!(f, "`\\`"),
            TokKind::BigLambda => write!(f, "`/\\`"),
            TokKind::Bang => write!(f, "`!`"),
            TokKind::Tilde => write!(f, "`~`"),
            TokKind::At => write!(f, "`@`"),
            TokKind::AndSym => write!(f, "`∧`"),
            TokKind::TopSym => write!(f, "`⊤`"),
            TokKind::Eof => write!(f, "end of input"),
        }
    }
}

#[derive(Debug, Clone)]
struct Tok {
    kind: TokKind,
    line: usize,
    col: usize,
}

fn lex(src: &str) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;
    let n = chars.len();
    macro_rules! push {
        ($kind:expr, $len:expr, $line:expr, $col:expr) => {{
            toks.push(Tok {
                kind: $kind,
                line: $line,
                col: $col,
            });
            i += $len;
            col += $len;
        }};
    }
    while i < n {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                i += 1;
                col += 1;
            }
            '-' if i + 1 < n && chars[i + 1] == '-' => {
                // Line comment.
                while i < n && chars[i] != '\n' {
                    i += 1;
                    col += 1;
                }
            }
            '(' => push!(TokKind::LParen, 1, tline, tcol),
            ')' => push!(TokKind::RParen, 1, tline, tcol),
            '{' => push!(TokKind::LBrace, 1, tline, tcol),
            '}' => push!(TokKind::RBrace, 1, tline, tcol),
            '[' => push!(TokKind::LBracket, 1, tline, tcol),
            ']' => push!(TokKind::RBracket, 1, tline, tcol),
            '<' if i + 1 < n && chars[i + 1] == '>' => push!(TokKind::UnitLit, 2, tline, tcol),
            '<' if i + 1 < n && chars[i + 1] == '-' => push!(TokKind::BindArrow, 2, tline, tcol),
            '<' if i + 1 < n && chars[i + 1] == '=' => push!(TokKind::LeqSym, 2, tline, tcol),
            '<' => push!(TokKind::Lt, 1, tline, tcol),
            '⪯' => push!(TokKind::LeqSym, 1, tline, tcol),
            '∧' => push!(TokKind::AndSym, 1, tline, tcol),
            '&' => push!(TokKind::AndSym, 1, tline, tcol),
            '⊤' => push!(TokKind::TopSym, 1, tline, tcol),
            '-' if i + 1 < n && chars[i + 1] == '>' => push!(TokKind::Arrow, 2, tline, tcol),
            '-' => push!(TokKind::Minus, 1, tline, tcol),
            '+' => push!(TokKind::Plus, 1, tline, tcol),
            '*' => push!(TokKind::Star, 1, tline, tcol),
            '=' if i + 1 < n && chars[i + 1] == '=' => push!(TokKind::EqEq, 2, tline, tcol),
            '=' => push!(TokKind::Eq, 1, tline, tcol),
            ':' if i + 1 < n && chars[i + 1] == '=' => push!(TokKind::ColonEq, 2, tline, tcol),
            ':' => push!(TokKind::Colon, 1, tline, tcol),
            '.' => push!(TokKind::Dot, 1, tline, tcol),
            ';' => push!(TokKind::Semi, 1, tline, tcol),
            ',' => push!(TokKind::Comma, 1, tline, tcol),
            '\\' => push!(TokKind::Backslash, 1, tline, tcol),
            '/' if i + 1 < n && chars[i + 1] == '\\' => push!(TokKind::BigLambda, 2, tline, tcol),
            '!' => push!(TokKind::Bang, 1, tline, tcol),
            '~' => push!(TokKind::Tilde, 1, tline, tcol),
            '@' => push!(TokKind::At, 1, tline, tcol),
            'ρ' => {
                let mut j = i + 1;
                while j < n && chars[j].is_ascii_digit() {
                    j += 1;
                }
                if j == i + 1 {
                    return Err(ParseError {
                        message: "expected a level index after `ρ`".into(),
                        line: tline,
                        col: tcol,
                    });
                }
                let digits: String = chars[i + 1..j].iter().collect();
                let idx: u32 = digits.parse().map_err(|_| ParseError {
                    message: format!("priority index `{digits}` out of range"),
                    line: tline,
                    col: tcol,
                })?;
                let len = j - i;
                push!(TokKind::PrioIndex(idx), len, tline, tcol);
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < n && chars[j].is_ascii_digit() {
                    j += 1;
                }
                let digits: String = chars[i..j].iter().collect();
                let value: u64 = digits.parse().map_err(|_| ParseError {
                    message: format!("numeral `{digits}` does not fit in 64 bits"),
                    line: tline,
                    col: tcol,
                })?;
                let len = j - i;
                push!(TokKind::Nat(value), len, tline, tcol);
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < n {
                    let d = chars[j];
                    if d.is_alphanumeric() || d == '_' || d == '\'' {
                        j += 1;
                    } else if d == '-'
                        && j + 1 < n
                        && (chars[j + 1].is_alphanumeric() || chars[j + 1] == '_')
                    {
                        // Dashes glue identifiers only when flanked by
                        // identifier characters ("event-loop"); a spaced
                        // `-` is subtraction.
                        j += 1;
                    } else {
                        break;
                    }
                }
                let word: String = chars[i..j].iter().collect();
                let len = j - i;
                if word == "true" {
                    push!(TokKind::TopSym, len, tline, tcol);
                } else {
                    push!(TokKind::Ident(word), len, tline, tcol);
                }
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character `{other}`"),
                    line: tline,
                    col: tcol,
                });
            }
        }
    }
    toks.push(Tok {
        kind: TokKind::Eof,
        line,
        col,
    });
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    domain: Option<PriorityDomain>,
    /// Priority variables bound by enclosing `Λπ ∼ C` / `forall π ∼ C`.
    prio_scope: Vec<PrioVar>,
}

impl Parser {
    fn new(src: &str, domain: Option<PriorityDomain>) -> Result<Self, ParseError> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
            domain,
            prio_scope: Vec::new(),
        })
    }

    fn peek(&self) -> &TokKind {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &TokKind {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn here(&self) -> (usize, usize) {
        let t = &self.toks[self.pos];
        (t.line, t.col)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let (line, col) = self.here();
        Err(ParseError {
            message: message.into(),
            line,
            col,
        })
    }

    fn bump(&mut self) -> TokKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, kind: &TokKind, context: &str) -> Result<(), ParseError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {kind} {context}, found {}", self.peek()))
        }
    }

    fn is_keyword(&self, word: &str) -> bool {
        matches!(self.peek(), TokKind::Ident(w) if w == word)
    }

    fn eat_keyword(&mut self, word: &str, context: &str) -> Result<(), ParseError> {
        if self.is_keyword(word) {
            self.bump();
            Ok(())
        } else {
            self.err(format!(
                "expected keyword `{word}` {context}, found {}",
                self.peek()
            ))
        }
    }

    fn ident(&mut self, context: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokKind::Ident(w) => {
                self.bump();
                Ok(w)
            }
            other => self.err(format!("expected an identifier {context}, found {other}")),
        }
    }

    // -- priorities and constraints ------------------------------------

    fn prio(&mut self) -> Result<PrioTerm, ParseError> {
        match self.peek().clone() {
            TokKind::PrioIndex(idx) => {
                if let Some(d) = &self.domain {
                    if idx as usize >= d.len() {
                        return self.err(format!(
                            "priority index ρ{idx} out of range for a domain of {} level(s)",
                            d.len()
                        ));
                    }
                }
                self.bump();
                Ok(PrioTerm::Const(Priority::from_index(idx as usize)))
            }
            TokKind::Ident(name) => {
                self.bump();
                let var = PrioVar::new(name.clone());
                if self.prio_scope.contains(&var) {
                    Ok(PrioTerm::Var(var))
                } else if let Some(p) = self.domain.as_ref().and_then(|d| d.priority(&name)) {
                    Ok(PrioTerm::Const(p))
                } else {
                    // A free priority variable: left for the solver.
                    Ok(PrioTerm::Var(var))
                }
            }
            other => self.err(format!(
                "expected a priority (level name, bound variable, or ρN), found {other}"
            )),
        }
    }

    fn constraint(&mut self) -> Result<Constraint, ParseError> {
        let mut acc = self.constraint_atom()?;
        while matches!(self.peek(), TokKind::AndSym) {
            self.bump();
            acc = acc.and(self.constraint_atom()?);
        }
        Ok(acc)
    }

    fn constraint_atom(&mut self) -> Result<Constraint, ParseError> {
        if matches!(self.peek(), TokKind::TopSym) {
            self.bump();
            return Ok(Constraint::True);
        }
        let lhs = self.prio()?;
        self.eat(&TokKind::LeqSym, "in constraint")?;
        let rhs = self.prio()?;
        Ok(Constraint::leq(lhs, rhs))
    }

    // -- types ---------------------------------------------------------

    fn ty(&mut self) -> Result<Type, ParseError> {
        if self.is_keyword("forall") {
            self.bump();
            let var = PrioVar::new(self.ident("after `forall`")?);
            self.eat(&TokKind::Tilde, "after the forall variable")?;
            self.prio_scope.push(var.clone());
            let c = self.constraint()?;
            let result = self
                .eat(&TokKind::Dot, "after the forall constraint")
                .and_then(|()| self.ty());
            self.prio_scope.pop();
            return Ok(Type::Forall(var, c, Box::new(result?)));
        }
        let mut t = self.ty_atom()?;
        loop {
            if self.is_keyword("ref") {
                self.bump();
                t = Type::reference(t);
            } else if self.is_keyword("thread") || self.is_keyword("cmd") {
                let is_thread = self.is_keyword("thread");
                self.bump();
                self.eat(&TokKind::LBracket, "after `thread`/`cmd`")?;
                let p = self.prio()?;
                self.eat(&TokKind::RBracket, "after priority")?;
                t = if is_thread {
                    Type::Thread(Box::new(t), p)
                } else {
                    Type::Cmd(Box::new(t), p)
                };
            } else {
                return Ok(t);
            }
        }
    }

    fn ty_atom(&mut self) -> Result<Type, ParseError> {
        if self.is_keyword("unit") {
            self.bump();
            return Ok(Type::Unit);
        }
        if self.is_keyword("nat") {
            self.bump();
            return Ok(Type::Nat);
        }
        if matches!(self.peek(), TokKind::LParen) {
            self.bump();
            let a = self.ty()?;
            let t = match self.peek() {
                TokKind::Arrow => {
                    self.bump();
                    Type::arrow(a, self.ty()?)
                }
                TokKind::Star => {
                    self.bump();
                    Type::prod(a, self.ty()?)
                }
                TokKind::Plus => {
                    self.bump();
                    Type::sum(a, self.ty()?)
                }
                _ => a,
            };
            self.eat(&TokKind::RParen, "to close the type")?;
            return Ok(t);
        }
        self.err(format!("expected a type, found {}", self.peek()))
    }

    // -- expressions ---------------------------------------------------

    /// Whether the current token can begin an expression (used to decide
    /// whether a parenthesized form continues as an application).
    fn starts_expr(&self) -> bool {
        match self.peek() {
            TokKind::Nat(_)
            | TokKind::UnitLit
            | TokKind::LParen
            | TokKind::Backslash
            | TokKind::BigLambda => true,
            // `ref` begins the runtime value `ref[sN]` but is otherwise the
            // type postfix, so it only starts an expression with `[` next.
            TokKind::Ident(w) if w == "ref" => matches!(self.peek2(), TokKind::LBracket),
            TokKind::Ident(w) => !matches!(
                w.as_str(),
                "in" | "is" | "thread" | "where" | "program" | "priorities" | "main"
            ),
            _ => false,
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokKind::Backslash => {
                self.bump();
                let x = self.ident("after `\\`")?;
                self.eat(&TokKind::Colon, "after the lambda parameter")?;
                let ty = self.ty()?;
                self.eat(&TokKind::Dot, "after the lambda annotation")?;
                let body = self.expr()?;
                Ok(Expr::Lam(x, ty, Box::new(body)))
            }
            TokKind::BigLambda => {
                self.bump();
                let var = PrioVar::new(self.ident("after `/\\`")?);
                self.eat(&TokKind::Tilde, "after the priority parameter")?;
                self.prio_scope.push(var.clone());
                let result = self.constraint().and_then(|c| {
                    self.eat(&TokKind::Dot, "after the priority constraint")?;
                    let body = self.expr()?;
                    Ok((c, body))
                });
                self.prio_scope.pop();
                let (c, body) = result?;
                Ok(Expr::PLam(var, c, Box::new(body)))
            }
            TokKind::Ident(w) => match w.as_str() {
                "let" => {
                    self.bump();
                    let x = self.ident("after `let`")?;
                    self.eat(&TokKind::Eq, "after the let binder")?;
                    let e1 = self.expr()?;
                    self.eat_keyword("in", "after the bound expression")?;
                    let e2 = self.expr()?;
                    Ok(Expr::Let(x, Box::new(e1), Box::new(e2)))
                }
                "ifz" => {
                    self.bump();
                    let cond = self.atom()?;
                    self.eat(&TokKind::LBrace, "after the ifz scrutinee")?;
                    let zero = self.expr()?;
                    self.eat(&TokKind::Semi, "after the zero branch")?;
                    let x = self.ident("for the successor binder")?;
                    self.eat(&TokKind::Dot, "after the successor binder")?;
                    let succ = self.expr()?;
                    self.eat(&TokKind::RBrace, "to close the ifz branches")?;
                    Ok(Expr::Ifz(Box::new(cond), Box::new(zero), x, Box::new(succ)))
                }
                "case" => {
                    self.bump();
                    let scrut = self.atom()?;
                    self.eat(&TokKind::LBrace, "after the case scrutinee")?;
                    let x = self.ident("for the left binder")?;
                    self.eat(&TokKind::Dot, "after the left binder")?;
                    let e1 = self.expr()?;
                    self.eat(&TokKind::Semi, "after the left branch")?;
                    let y = self.ident("for the right binder")?;
                    self.eat(&TokKind::Dot, "after the right binder")?;
                    let e2 = self.expr()?;
                    self.eat(&TokKind::RBrace, "to close the case branches")?;
                    Ok(Expr::Case(
                        Box::new(scrut),
                        x,
                        Box::new(e1),
                        y,
                        Box::new(e2),
                    ))
                }
                "fix" => {
                    self.bump();
                    let x = self.ident("after `fix`")?;
                    self.eat(&TokKind::Colon, "after the fix binder")?;
                    let ty = self.ty()?;
                    self.eat_keyword("is", "after the fix annotation")?;
                    let body = self.expr()?;
                    Ok(Expr::Fix(x, ty, Box::new(body)))
                }
                "inl" => {
                    self.bump();
                    Ok(Expr::Inl(Box::new(self.atom()?)))
                }
                "inr" => {
                    self.bump();
                    Ok(Expr::Inr(Box::new(self.atom()?)))
                }
                "fst" => {
                    self.bump();
                    Ok(Expr::Fst(Box::new(self.atom()?)))
                }
                "snd" => {
                    self.bump();
                    Ok(Expr::Snd(Box::new(self.atom()?)))
                }
                _ => self.atom(),
            },
            _ => self.atom(),
        }
    }

    /// An operand-position expression: a self-delimiting primary followed
    /// by `[ρ]` priority applications.  Greedy binder forms must be
    /// parenthesized here (as the pretty-printer does).
    fn atom(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while matches!(self.peek(), TokKind::LBracket) {
            self.bump();
            let p = self.prio()?;
            self.eat(&TokKind::RBracket, "after priority application")?;
            e = Expr::PApp(Box::new(e), p);
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokKind::Nat(n) => {
                self.bump();
                Ok(Expr::Nat(n))
            }
            TokKind::UnitLit => {
                self.bump();
                Ok(Expr::Unit)
            }
            TokKind::LParen => {
                self.bump();
                let first = self.expr()?;
                let e = match self.peek().clone() {
                    TokKind::Comma => {
                        self.bump();
                        let second = self.expr()?;
                        Expr::Pair(Box::new(first), Box::new(second))
                    }
                    TokKind::Plus => self.prim(first, PrimOp::Add)?,
                    TokKind::Minus => self.prim(first, PrimOp::Sub)?,
                    TokKind::Star => self.prim(first, PrimOp::Mul)?,
                    TokKind::EqEq => self.prim(first, PrimOp::Eq)?,
                    TokKind::Lt => self.prim(first, PrimOp::Lt)?,
                    _ if self.starts_expr() => {
                        let arg = self.expr()?;
                        Expr::App(Box::new(first), Box::new(arg))
                    }
                    _ => first,
                };
                self.eat(&TokKind::RParen, "to close the expression")?;
                Ok(e)
            }
            TokKind::Ident(w) => match w.as_str() {
                "cmd" => {
                    self.bump();
                    self.eat(&TokKind::LBracket, "after `cmd`")?;
                    let p = self.prio()?;
                    self.eat(&TokKind::RBracket, "after the command priority")?;
                    self.eat(&TokKind::LBrace, "to open the command body")?;
                    let m = self.cmd()?;
                    self.eat(&TokKind::RBrace, "to close the command body")?;
                    Ok(Expr::CmdVal(p, Arc::new(m)))
                }
                "ref" => {
                    self.bump();
                    self.eat(&TokKind::LBracket, "after `ref`")?;
                    let sym = self.ident("for the location symbol")?;
                    let id = self.runtime_symbol(&sym, 's', "location")?;
                    self.eat(&TokKind::RBracket, "after the location symbol")?;
                    Ok(Expr::RefVal(LocId(id)))
                }
                "tid" => {
                    self.bump();
                    self.eat(&TokKind::LBracket, "after `tid`")?;
                    let sym = self.ident("for the thread symbol")?;
                    let id = self.runtime_symbol(&sym, 'a', "thread")?;
                    self.eat(&TokKind::RBracket, "after the thread symbol")?;
                    Ok(Expr::Tid(ThreadSym(id)))
                }
                "inl" | "inr" | "fst" | "snd" | "ifz" | "case" => self.expr(),
                "let" | "fix" | "in" | "is" => self.err(format!(
                    "`{w}` cannot start an operand; parenthesize the inner expression"
                )),
                _ => {
                    self.bump();
                    Ok(Expr::Var(w))
                }
            },
            other => self.err(format!("expected an expression, found {other}")),
        }
    }

    fn prim(&mut self, lhs: Expr, op: PrimOp) -> Result<Expr, ParseError> {
        self.bump();
        let rhs = self.atom()?;
        Ok(Expr::Prim(op, Box::new(lhs), Box::new(rhs)))
    }

    /// Parses a bracketed runtime symbol (`s3` in `ref[s3]`, `a2` in
    /// `tid[a2]`).
    fn runtime_symbol(&mut self, word: &str, prefix: char, what: &str) -> Result<u32, ParseError> {
        let digits = word.strip_prefix(prefix).unwrap_or("");
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return self.err(format!(
                "expected a {what} symbol like `{prefix}0`, found `{word}`"
            ));
        }
        digits.parse().map_err(|_| {
            let (line, col) = self.here();
            ParseError {
                message: format!("{what} symbol `{word}` out of range"),
                line,
                col,
            }
        })
    }

    // -- commands ------------------------------------------------------

    fn cmd(&mut self) -> Result<Cmd, ParseError> {
        if let TokKind::Ident(w) = self.peek().clone() {
            match w.as_str() {
                "ret" => {
                    self.bump();
                    return Ok(Cmd::Ret(Box::new(self.expr()?)));
                }
                "ftouch" => {
                    self.bump();
                    return Ok(Cmd::Ftouch(Box::new(self.atom()?)));
                }
                "fcreate" => {
                    self.bump();
                    self.eat(&TokKind::LBracket, "after `fcreate`")?;
                    let prio = self.prio()?;
                    self.eat(&TokKind::Semi, "after the fcreate priority")?;
                    let ret_type = self.ty()?;
                    self.eat(&TokKind::RBracket, "after the fcreate return type")?;
                    self.eat(&TokKind::LBrace, "to open the fcreate body")?;
                    let body = self.cmd()?;
                    self.eat(&TokKind::RBrace, "to close the fcreate body")?;
                    return Ok(Cmd::Fcreate {
                        prio,
                        ret_type,
                        body: Arc::new(body),
                    });
                }
                "dcl" => {
                    self.bump();
                    self.eat(&TokKind::LBracket, "after `dcl`")?;
                    let ty = self.ty()?;
                    self.eat(&TokKind::RBracket, "after the declared type")?;
                    let var = self.ident("for the reference binder")?;
                    self.eat(&TokKind::ColonEq, "after the reference binder")?;
                    let init = self.expr()?;
                    self.eat_keyword("in", "after the initialiser")?;
                    let body = self.cmd()?;
                    return Ok(Cmd::Dcl {
                        ty,
                        var,
                        init: Box::new(init),
                        body: Arc::new(body),
                    });
                }
                "cas" => {
                    self.bump();
                    self.eat(&TokKind::LParen, "after `cas`")?;
                    let target = self.expr()?;
                    self.eat(&TokKind::Comma, "after the cas target")?;
                    let expected = self.expr()?;
                    self.eat(&TokKind::Comma, "after the expected value")?;
                    let new = self.expr()?;
                    self.eat(&TokKind::RParen, "to close the cas")?;
                    return Ok(Cmd::Cas {
                        target: Box::new(target),
                        expected: Box::new(expected),
                        new: Box::new(new),
                    });
                }
                _ => {
                    // `x <- e; m` — a bind, recognised by two-token
                    // lookahead so plain expressions still reach `Set`.
                    if matches!(self.peek2(), TokKind::BindArrow) {
                        let var = self.ident("for the bind variable")?;
                        self.bump(); // `<-`
                        let expr = self.expr()?;
                        self.eat(&TokKind::Semi, "after the bound command")?;
                        let rest = self.cmd()?;
                        return Ok(Cmd::Bind {
                            var,
                            expr: Box::new(expr),
                            rest: Arc::new(rest),
                        });
                    }
                }
            }
        }
        if matches!(self.peek(), TokKind::Bang) {
            self.bump();
            return Ok(Cmd::Get(Box::new(self.atom()?)));
        }
        // `e₁ := e₂` — an assignment.
        let target = self.atom()?;
        self.eat(
            &TokKind::ColonEq,
            "in assignment (a bare expression is not a command)",
        )?;
        let value = self.expr()?;
        Ok(Cmd::Set(Box::new(target), Box::new(value)))
    }

    // -- programs ------------------------------------------------------

    fn domain_decl(&mut self) -> Result<PriorityDomain, ParseError> {
        self.eat_keyword("priorities", "to declare the priority domain")?;
        self.eat(&TokKind::Colon, "after `priorities`")?;
        let first = self.ident("for the first priority level")?;
        let mut names = vec![first];
        match self.peek() {
            TokKind::Lt => {
                // Total order: a < b < c.
                while matches!(self.peek(), TokKind::Lt) {
                    self.bump();
                    names.push(self.ident("for the next priority level")?);
                }
                PriorityDomain::total_order(names.clone()).map_err(|e| {
                    self.err::<()>(format!("bad priority declaration: {e}"))
                        .unwrap_err()
                })
            }
            TokKind::Comma => {
                // Partial order: a, b, c where a < b, a < c.  Without a
                // `where` clause the levels form an antichain (no two
                // comparable).
                while matches!(self.peek(), TokKind::Comma) {
                    self.bump();
                    names.push(self.ident("for the next priority level")?);
                }
                let mut builder = PriorityDomain::builder();
                for n in &names {
                    builder = builder.level(n.clone());
                }
                if !self.is_keyword("where") {
                    return builder.build().map_err(|e| {
                        self.err::<()>(format!("bad priority declaration: {e}"))
                            .unwrap_err()
                    });
                }
                self.bump(); // `where`
                loop {
                    let lo = self.ident("for the lower level of a pair")?;
                    self.eat(&TokKind::Lt, "between the levels of a pair")?;
                    let hi = self.ident("for the higher level of a pair")?;
                    builder = builder.lt(lo, hi);
                    if matches!(self.peek(), TokKind::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                builder.build().map_err(|e| {
                    self.err::<()>(format!("bad priority declaration: {e}"))
                        .unwrap_err()
                })
            }
            _ => PriorityDomain::total_order(names.clone()).map_err(|e| {
                self.err::<()>(format!("bad priority declaration: {e}"))
                    .unwrap_err()
            }),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let domain = self.domain_decl()?;
        self.domain = Some(domain.clone());
        self.eat_keyword("program", "to begin the program header")?;
        let name = self.ident("for the program name")?;
        self.eat(&TokKind::Colon, "after the program name")?;
        let return_type = self.ty()?;
        self.eat_keyword("main", "to begin the main declaration")?;
        self.eat(&TokKind::At, "after `main`")?;
        let level = self.ident("for the main priority level")?;
        let main_priority = match domain.priority(&level) {
            Some(p) => p,
            None => {
                return self.err(format!(
                    "`{level}` is not a declared priority level (declared: {})",
                    domain
                        .iter()
                        .map(|q| domain.name(q).to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            }
        };
        self.eat(&TokKind::Colon, "after the main priority")?;
        let main = self.cmd()?;
        if !matches!(self.peek(), TokKind::Eof) {
            return self.err(format!("expected end of program, found {}", self.peek()));
        }
        Ok(Program {
            name,
            domain,
            main_priority,
            main: Arc::new(main),
            return_type,
        })
    }

    fn finish<T>(self, value: T) -> Result<T, ParseError> {
        if matches!(self.peek(), TokKind::Eof) {
            Ok(value)
        } else {
            self.err(format!("expected end of input, found {}", self.peek()))
        }
    }
}

/// Parses a whole `.l4i` program (header + main command).
///
/// # Errors
///
/// Returns a [`ParseError`] with the source position of the first offending
/// token.
///
/// # Example
///
/// ```
/// let src = "\
/// priorities: lo < hi
/// program tiny : nat
/// main @ hi:
///   ret (1 + 2)
/// ";
/// let prog = rp_lambda4i::parse::parse_program(src).unwrap();
/// assert_eq!(prog.name, "tiny");
/// assert_eq!(prog.domain.len(), 2);
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    Parser::new(src, None)?.program()
}

/// Parses an expression against a known priority domain.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_expr(src: &str, domain: &PriorityDomain) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src, Some(domain.clone()))?;
    let e = p.expr()?;
    p.finish(e)
}

/// Parses a command against a known priority domain.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_cmd(src: &str, domain: &PriorityDomain) -> Result<Cmd, ParseError> {
    let mut p = Parser::new(src, Some(domain.clone()))?;
    let m = p.cmd()?;
    p.finish(m)
}

/// Parses a type against a known priority domain.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_type(src: &str, domain: &PriorityDomain) -> Result<Type, ParseError> {
    let mut p = Parser::new(src, Some(domain.clone()))?;
    let t = p.ty()?;
    p.finish(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::{self, Printer};
    use crate::progs;
    use crate::syntax::dsl::*;

    fn dom2() -> PriorityDomain {
        PriorityDomain::total_order(["lo", "hi"]).unwrap()
    }

    fn roundtrip_cmd(m: &Cmd, d: &PriorityDomain) {
        let s = Printer::with_domain(d).cmd(m);
        let parsed = parse_cmd(&s, d).unwrap_or_else(|e| panic!("parsing `{s}`: {e}"));
        assert_eq!(&parsed, m, "pretty output was `{s}`");
    }

    fn roundtrip_expr(e: &Expr, d: &PriorityDomain) {
        let s = Printer::with_domain(d).expr(e);
        let parsed = parse_expr(&s, d).unwrap_or_else(|err| panic!("parsing `{s}`: {err}"));
        assert_eq!(&parsed, e, "pretty output was `{s}`");
    }

    #[test]
    fn literals_and_arithmetic_roundtrip() {
        let d = dom2();
        roundtrip_expr(&nat(42), &d);
        roundtrip_expr(&unit(), &d);
        roundtrip_expr(&add(nat(1), mul(nat(2), nat(3))), &d);
        roundtrip_expr(&eq(sub(nat(5), nat(2)), nat(3)), &d);
        roundtrip_expr(
            &Expr::Prim(PrimOp::Lt, Box::new(nat(1)), Box::new(nat(2))),
            &d,
        );
    }

    #[test]
    fn binders_and_application_roundtrip() {
        let d = dom2();
        roundtrip_expr(&lam("x", Type::Nat, add(var("x"), nat(1))), &d);
        roundtrip_expr(&app(lam("x", Type::Nat, var("x")), nat(7)), &d);
        roundtrip_expr(&let_("y", nat(1), var("y")), &d);
        roundtrip_expr(
            &fix(
                "f",
                Type::arrow(Type::Nat, Type::Nat),
                lam(
                    "n",
                    Type::Nat,
                    ifz(var("n"), nat(0), "m", app(var("f"), var("m"))),
                ),
            ),
            &d,
        );
    }

    #[test]
    fn sums_pairs_and_case_roundtrip() {
        let d = dom2();
        roundtrip_expr(&pair(nat(1), pair(nat(2), unit())), &d);
        roundtrip_expr(&Expr::Inl(Box::new(nat(3))), &d);
        roundtrip_expr(&Expr::Fst(Box::new(pair(nat(1), nat(2)))), &d);
        roundtrip_expr(
            &Expr::Case(
                Box::new(Expr::Inr(Box::new(unit()))),
                "a".into(),
                Box::new(nat(1)),
                "b".into(),
                Box::new(nat(2)),
            ),
            &d,
        );
    }

    #[test]
    fn runtime_values_roundtrip() {
        let d = dom2();
        roundtrip_expr(&Expr::RefVal(LocId(3)), &d);
        roundtrip_expr(&Expr::Tid(ThreadSym(2)), &d);
    }

    #[test]
    fn priority_polymorphism_roundtrips() {
        let d = dom2();
        let pi = PrioVar::new("pi");
        let lo = d.priority("lo").unwrap();
        let plam = Expr::PLam(
            pi.clone(),
            Constraint::leq(lo, PrioTerm::Var(pi.clone())),
            Box::new(cmd(PrioTerm::Var(pi.clone()), ret(nat(1)))),
        );
        roundtrip_expr(&plam, &d);
        roundtrip_expr(&Expr::PApp(Box::new(plam), PrioTerm::Const(lo)), &d);
    }

    #[test]
    fn commands_roundtrip() {
        let d = dom2();
        let hi = d.priority("hi").unwrap();
        roundtrip_cmd(&ret(add(nat(1), nat(2))), &d);
        roundtrip_cmd(&get(var("r")), &d);
        roundtrip_cmd(&set(var("r"), nat(5)), &d);
        roundtrip_cmd(&cas(var("r"), nat(0), nat(1)), &d);
        roundtrip_cmd(&ftouch(var("t")), &d);
        roundtrip_cmd(&fcreate(hi, Type::Nat, ret(nat(1))), &d);
        roundtrip_cmd(
            &dcl(
                "r",
                Type::Nat,
                nat(0),
                bind("v", cmd(hi, get(var("r"))), ret(var("v"))),
            ),
            &d,
        );
    }

    #[test]
    fn free_priority_variables_survive_parsing() {
        // `fcreate[worker; nat]{…}` with no `worker` level declared: the
        // parser leaves a free variable for the solver.
        let d = dom2();
        let m = parse_cmd("t <- cmd[hi]{fcreate[worker; nat]{ret 1}}; ret 2", &d).unwrap();
        assert_eq!(
            m.free_prio_vars(),
            vec![PrioVar::new("worker")],
            "undeclared level names parse as priority variables"
        );
    }

    #[test]
    fn whole_programs_roundtrip() {
        for prog in [
            progs::parallel_fib(3),
            progs::figure1_program(),
            progs::server_with_background(2, 2),
            progs::email_coordination_program(),
            progs::priority_inversion_program(),
            progs::proxy_program(),
            progs::email_program(),
            progs::jserver_program(),
        ] {
            let src = pretty::program_to_string(&prog);
            let parsed =
                parse_program(&src).unwrap_or_else(|e| panic!("{}: {e}\n{src}", prog.name));
            assert_eq!(parsed, prog, "program `{}` did not round-trip", prog.name);
        }
    }

    #[test]
    fn partial_order_domain_roundtrips() {
        let d = PriorityDomain::builder()
            .level("bot")
            .level("l")
            .level("r")
            .level("top")
            .lt("bot", "l")
            .lt("bot", "r")
            .lt("l", "top")
            .lt("r", "top")
            .build()
            .unwrap();
        let prog = Program {
            name: "diamond".into(),
            domain: d.clone(),
            main_priority: d.priority("bot").unwrap(),
            main: Arc::new(ret(nat(0))),
            return_type: Type::Nat,
        };
        let src = pretty::program_to_string(&prog);
        let parsed = parse_program(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        assert_eq!(parsed, prog);
    }

    /// Regression test: an antichain domain (valid — the builder accepts
    /// zero ordering edges) used to pretty-print as `a, b where ` with an
    /// empty pair list, which did not parse back.
    #[test]
    fn antichain_domain_roundtrips() {
        let d = PriorityDomain::builder()
            .level("anti")
            .level("chain")
            .build()
            .unwrap();
        let prog = Program {
            name: "flat".into(),
            domain: d.clone(),
            main_priority: d.priority("anti").unwrap(),
            main: Arc::new(ret(nat(1))),
            return_type: Type::Nat,
        };
        let src = pretty::program_to_string(&prog);
        assert!(
            src.contains("priorities: anti, chain\n"),
            "antichains must not emit a dangling `where`:\n{src}"
        );
        let parsed = parse_program(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        assert_eq!(parsed, prog);
        assert!(parsed
            .domain
            .incomparable(d.priority("anti").unwrap(), d.priority("chain").unwrap()));
    }

    #[test]
    fn comments_and_ascii_alternatives_parse() {
        let src = "\
-- the tiniest program
priorities: only
program tiny : nat
main @ only:
  ret 1 -- trailing comment
";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.name, "tiny");
        // ASCII constraint syntax.
        let d = dom2();
        let e = parse_expr("/\\pi ~ lo <= pi & true. cmd[pi]{ret 1}", &d).unwrap();
        match e {
            Expr::PLam(_, c, _) => assert_eq!(c.conjuncts().len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn golden_error_positions_and_messages() {
        // Unexpected token, with position.
        let err = parse_program("priorities: lo < hi\nprogram p : nat\nmain @ hi:\n  ret )\n")
            .unwrap_err();
        assert_eq!((err.line, err.col), (4, 7), "{err}");
        assert!(err.to_string().contains("expected an expression"), "{err}");
        // Unknown main level lists the declared ones.
        let err = parse_program("priorities: lo < hi\nprogram p : nat\nmain @ zz:\n  ret 1\n")
            .unwrap_err();
        assert!(
            err.to_string().contains("not a declared priority level")
                && err.to_string().contains("lo, hi"),
            "{err}"
        );
        // A bare expression is not a command.
        let err = parse_cmd("(1 + 2)", &dom2()).unwrap_err();
        assert!(err.to_string().contains(":="), "{err}");
        // Duplicate level names are rejected by the domain builder.
        let err =
            parse_program("priorities: a < a\nprogram p : nat\nmain @ a:\n  ret 1\n").unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        // Out-of-range ρN against a known domain.
        let err = parse_expr("cmd[ρ7]{ret 1}", &dom2()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn trailing_tokens_are_rejected() {
        let d = dom2();
        let err = parse_expr("1 2", &d).unwrap_err();
        assert!(err.to_string().contains("end of input"), "{err}");
    }
}
