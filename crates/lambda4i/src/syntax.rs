//! Abstract syntax of λ⁴ᵢ (Figure 4), in A-normal form.
//!
//! The language is split into an *expression* layer, which cannot observe the
//! heap or the thread pool, and a *command* layer, which can.  Commands are
//! sequenced monadically with `bind` and injected with `ret`; encapsulated
//! commands `cmd[ρ]{m}` are first-class expression values.
//!
//! Runtime-only values (references `ref[s]` and thread handles `tid[a]`)
//! also live in the expression grammar, exactly as in the paper, so the
//! abstract machine can substitute them into terms.

use rp_priority::{Constraint, PrioTerm, PrioVar, Priority, PriorityDomain};
use std::fmt;
use std::sync::Arc;

/// A term-level variable.
pub type Var = String;

/// A memory location symbol `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocId(pub u32);

impl fmt::Display for LocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A thread symbol `a`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadSym(pub u32);

impl fmt::Display for ThreadSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Types `τ` of λ⁴ᵢ (Figure 4), extended with the priority-polymorphic type
/// `∀π ∼ C. τ` used by the ∀I/∀E rules of Figure 5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// `unit`.
    Unit,
    /// `nat`.
    Nat,
    /// `τ₁ → τ₂`.
    Arrow(Box<Type>, Box<Type>),
    /// `τ₁ × τ₂`.
    Prod(Box<Type>, Box<Type>),
    /// `τ₁ + τ₂`.
    Sum(Box<Type>, Box<Type>),
    /// `τ ref`.
    Ref(Box<Type>),
    /// `τ thread[ρ]`: a handle to a thread of return type `τ` running at
    /// priority `ρ`.
    Thread(Box<Type>, PrioTerm),
    /// `τ cmd[ρ]`: an encapsulated command of return type `τ` runnable at
    /// priority `ρ`.
    Cmd(Box<Type>, PrioTerm),
    /// `∀π ∼ C. τ`: priority polymorphism constrained by `C`.
    Forall(PrioVar, Constraint, Box<Type>),
}

impl Type {
    /// Convenience constructor for `τ₁ → τ₂`.
    pub fn arrow(a: Type, b: Type) -> Type {
        Type::Arrow(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for `τ₁ × τ₂`.
    pub fn prod(a: Type, b: Type) -> Type {
        Type::Prod(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for `τ₁ + τ₂`.
    pub fn sum(a: Type, b: Type) -> Type {
        Type::Sum(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for `τ ref`.
    pub fn reference(t: Type) -> Type {
        Type::Ref(Box::new(t))
    }

    /// Convenience constructor for `τ thread[ρ]`.
    pub fn thread(t: Type, p: impl Into<PrioTerm>) -> Type {
        Type::Thread(Box::new(t), p.into())
    }

    /// Convenience constructor for `τ cmd[ρ]`.
    pub fn cmd(t: Type, p: impl Into<PrioTerm>) -> Type {
        Type::Cmd(Box::new(t), p.into())
    }

    /// Substitutes a priority term for a priority variable throughout the
    /// type (`[ρ/π]τ`).
    pub fn subst_prio(&self, var: &PrioVar, term: &PrioTerm) -> Type {
        let s = rp_priority::PrioSubst::single(var.clone(), term.clone());
        self.subst_prio_all(&s)
    }

    /// Collects the free priority variables of the type (those not bound by
    /// an enclosing `∀π ∼ C`).
    pub fn free_prio_vars(&self) -> Vec<PrioVar> {
        let mut out = Vec::new();
        self.collect_free_prio_vars(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free_prio_vars(&self, bound: &mut Vec<PrioVar>, out: &mut Vec<PrioVar>) {
        match self {
            Type::Unit | Type::Nat => {}
            Type::Arrow(a, b) | Type::Prod(a, b) | Type::Sum(a, b) => {
                a.collect_free_prio_vars(bound, out);
                b.collect_free_prio_vars(bound, out);
            }
            Type::Ref(t) => t.collect_free_prio_vars(bound, out),
            Type::Thread(t, p) | Type::Cmd(t, p) => {
                t.collect_free_prio_vars(bound, out);
                collect_term_var(p, bound, out);
            }
            Type::Forall(v, c, t) => {
                // The binder scopes over both the constraint and the body
                // (see `subst_prio`, which leaves both untouched when the
                // substituted variable is shadowed).
                bound.push(v.clone());
                collect_constraint_vars(c, bound, out);
                t.collect_free_prio_vars(bound, out);
                bound.pop();
            }
        }
    }

    /// Applies a priority substitution throughout the type.
    pub fn subst_prio_all(&self, s: &rp_priority::PrioSubst) -> Type {
        match self {
            Type::Unit => Type::Unit,
            Type::Nat => Type::Nat,
            Type::Arrow(a, b) => Type::arrow(a.subst_prio_all(s), b.subst_prio_all(s)),
            Type::Prod(a, b) => Type::prod(a.subst_prio_all(s), b.subst_prio_all(s)),
            Type::Sum(a, b) => Type::sum(a.subst_prio_all(s), b.subst_prio_all(s)),
            Type::Ref(t) => Type::reference(t.subst_prio_all(s)),
            Type::Thread(t, p) => Type::Thread(Box::new(t.subst_prio_all(s)), p.subst(s)),
            Type::Cmd(t, p) => Type::Cmd(Box::new(t.subst_prio_all(s)), p.subst(s)),
            Type::Forall(v, c, t) => {
                // Substitution does not descend under a binder for the same
                // variable name (shadowing).
                if s.get(v).is_some() {
                    let mut filtered = rp_priority::PrioSubst::new();
                    for (var, term) in s.iter() {
                        if var != v {
                            filtered.bind(var.clone(), term.clone());
                        }
                    }
                    Type::Forall(
                        v.clone(),
                        c.subst(&filtered),
                        Box::new(t.subst_prio_all(&filtered)),
                    )
                } else {
                    Type::Forall(v.clone(), c.subst(s), Box::new(t.subst_prio_all(s)))
                }
            }
        }
    }
}

/// Records a priority term's variable into `out` unless it is bound.
fn collect_term_var(t: &PrioTerm, bound: &[PrioVar], out: &mut Vec<PrioVar>) {
    if let PrioTerm::Var(v) = t {
        if !bound.contains(v) && !out.contains(v) {
            out.push(v.clone());
        }
    }
}

/// Records a constraint's free variables into `out`.
fn collect_constraint_vars(c: &Constraint, bound: &[PrioVar], out: &mut Vec<PrioVar>) {
    for (l, r) in c.conjuncts() {
        collect_term_var(l, bound, out);
        collect_term_var(r, bound, out);
    }
}

/// Expressions `e` and values `v` of λ⁴ᵢ (Figure 4).
///
/// A-normal form: elimination forms take value subterms; computations are
/// sequenced with `let`.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable `x`.
    Var(Var),
    /// `⟨⟩`.
    Unit,
    /// Numeral `n`.
    Nat(u64),
    /// `λx:τ. e` (the paper's lambdas are unannotated; the annotation makes
    /// type checking syntax-directed).
    Lam(Var, Type, Box<Expr>),
    /// `(v, v)`.
    Pair(Box<Expr>, Box<Expr>),
    /// `inl v`.
    Inl(Box<Expr>),
    /// `inr v`.
    Inr(Box<Expr>),
    /// Runtime reference value `ref[s]`.
    RefVal(LocId),
    /// Runtime thread handle `tid[a]`.
    Tid(ThreadSym),
    /// `cmd[ρ]{m}` — an encapsulated command.
    CmdVal(PrioTerm, Arc<Cmd>),
    /// `Λπ ∼ C. e` — priority abstraction.
    PLam(PrioVar, Constraint, Box<Expr>),
    /// `v[ρ]` — priority application.
    PApp(Box<Expr>, PrioTerm),
    /// `let x = e₁ in e₂`.
    Let(Var, Box<Expr>, Box<Expr>),
    /// `ifz v {e₁; x.e₂}` — zero/successor case on naturals.
    Ifz(Box<Expr>, Box<Expr>, Var, Box<Expr>),
    /// Application `v₁ v₂`.
    App(Box<Expr>, Box<Expr>),
    /// `fst v`.
    Fst(Box<Expr>),
    /// `snd v`.
    Snd(Box<Expr>),
    /// `case v {x.e₁; y.e₂}`.
    Case(Box<Expr>, Var, Box<Expr>, Var, Box<Expr>),
    /// `fix x:τ is e`.
    Fix(Var, Type, Box<Expr>),
    /// Primitive arithmetic, an inessential convenience for writing
    /// realistic workloads (`e₁ ⊕ e₂` on naturals).
    Prim(PrimOp, Box<Expr>, Box<Expr>),
}

/// Primitive binary operations on naturals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimOp {
    /// Addition.
    Add,
    /// Saturating subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Equality test (1 if equal, 0 otherwise).
    Eq,
    /// Strictly-less test (1 if less, 0 otherwise).
    Lt,
}

/// Commands `m` of λ⁴ᵢ (Figure 4), plus the CAS extension of §3.3.
#[derive(Debug, Clone, PartialEq)]
pub enum Cmd {
    /// `fcreate[ρ'; τ]{m}` — spawn `m` in a new thread at priority `ρ'`.
    Fcreate {
        /// The new thread's priority.
        prio: PrioTerm,
        /// The new thread's return type.
        ret_type: Type,
        /// The body to run.
        body: Arc<Cmd>,
    },
    /// `ftouch e` — wait for the thread denoted by `e` and return its value.
    Ftouch(Box<Expr>),
    /// `dcl[τ] s := e in m` — allocate a reference initialised with `e`.
    Dcl {
        /// The declared location's content type.
        ty: Type,
        /// A binder name for the new reference inside `body` (the paper uses
        /// a location symbol; we bind a variable that the machine substitutes
        /// the fresh `ref[s]` value for).
        var: Var,
        /// The initial value expression.
        init: Box<Expr>,
        /// The scope of the declaration.
        body: Arc<Cmd>,
    },
    /// `!e` — read a reference.
    Get(Box<Expr>),
    /// `e₁ := e₂` — write a reference, returning the new value.
    Set(Box<Expr>, Box<Expr>),
    /// `x ← e; m` — run the encapsulated command produced by `e`, bind its
    /// result to `x`, continue as `m`.
    Bind {
        /// The bound variable.
        var: Var,
        /// The expression producing an encapsulated command.
        expr: Box<Expr>,
        /// The continuation command.
        rest: Arc<Cmd>,
    },
    /// `ret e` — return the value of an expression.
    Ret(Box<Expr>),
    /// `cas(e_ref, e_old, e_new)` — compare-and-swap (§3.3); returns `1` on
    /// success and `0` on failure.
    Cas {
        /// The reference to update.
        target: Box<Expr>,
        /// The expected current value.
        expected: Box<Expr>,
        /// The replacement value.
        new: Box<Expr>,
    },
}

/// A closed λ⁴ᵢ program: a command to run in the initial thread at a given
/// priority, over a given priority domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Human-readable name, used in reports.
    pub name: String,
    /// The priority domain `R`.
    pub domain: PriorityDomain,
    /// The priority of the initial thread.
    pub main_priority: Priority,
    /// The command the initial thread runs.
    pub main: Arc<Cmd>,
    /// The program's declared return type (checked by `typecheck_program`).
    pub return_type: Type,
}

impl Program {
    /// The free priority variables of the program (those the front end's
    /// solver must instantiate before the program can run).
    pub fn free_prio_vars(&self) -> Vec<PrioVar> {
        let mut out = self.main.free_prio_vars();
        for v in self.return_type.free_prio_vars() {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    /// Applies a priority substitution to the main command and return type.
    pub fn subst_prio_all(&self, s: &rp_priority::PrioSubst) -> Program {
        Program {
            name: self.name.clone(),
            domain: self.domain.clone(),
            main_priority: self.main_priority,
            main: Arc::new(self.main.subst_prio_all(s)),
            return_type: self.return_type.subst_prio_all(s),
        }
    }
}

impl Expr {
    /// Whether the expression is a value `v` of Figure 4.
    pub fn is_value(&self) -> bool {
        matches!(
            self,
            Expr::Var(_)
                | Expr::Unit
                | Expr::Nat(_)
                | Expr::Lam(..)
                | Expr::RefVal(_)
                | Expr::Tid(_)
                | Expr::CmdVal(..)
                | Expr::PLam(..)
        ) || match self {
            Expr::Pair(a, b) => a.is_value() && b.is_value(),
            Expr::Inl(v) | Expr::Inr(v) => v.is_value(),
            _ => false,
        }
    }

    /// Capture-avoiding substitution `[v/x]e`.
    ///
    /// The substituted expression `v` must be closed (the machine only ever
    /// substitutes closed values), so no renaming is required.
    pub fn subst(&self, x: &str, v: &Expr) -> Expr {
        match self {
            Expr::Var(y) => {
                if y == x {
                    v.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Unit | Expr::Nat(_) | Expr::RefVal(_) | Expr::Tid(_) => self.clone(),
            Expr::Lam(y, ty, body) => {
                if y == x {
                    self.clone()
                } else {
                    Expr::Lam(y.clone(), ty.clone(), Box::new(body.subst(x, v)))
                }
            }
            Expr::Pair(a, b) => Expr::Pair(Box::new(a.subst(x, v)), Box::new(b.subst(x, v))),
            Expr::Inl(a) => Expr::Inl(Box::new(a.subst(x, v))),
            Expr::Inr(a) => Expr::Inr(Box::new(a.subst(x, v))),
            Expr::CmdVal(p, m) => Expr::CmdVal(p.clone(), Arc::new(m.subst(x, v))),
            Expr::PLam(pv, c, e) => Expr::PLam(pv.clone(), c.clone(), Box::new(e.subst(x, v))),
            Expr::PApp(e, p) => Expr::PApp(Box::new(e.subst(x, v)), p.clone()),
            Expr::Let(y, e1, e2) => {
                let e1 = Box::new(e1.subst(x, v));
                if y == x {
                    Expr::Let(y.clone(), e1, e2.clone())
                } else {
                    Expr::Let(y.clone(), e1, Box::new(e2.subst(x, v)))
                }
            }
            Expr::Ifz(cond, z, y, s) => {
                let cond = Box::new(cond.subst(x, v));
                let z = Box::new(z.subst(x, v));
                let s = if y == x {
                    s.clone()
                } else {
                    Box::new(s.subst(x, v))
                };
                Expr::Ifz(cond, z, y.clone(), s)
            }
            Expr::App(a, b) => Expr::App(Box::new(a.subst(x, v)), Box::new(b.subst(x, v))),
            Expr::Fst(a) => Expr::Fst(Box::new(a.subst(x, v))),
            Expr::Snd(a) => Expr::Snd(Box::new(a.subst(x, v))),
            Expr::Case(scr, y1, e1, y2, e2) => {
                let scr = Box::new(scr.subst(x, v));
                let e1 = if y1 == x {
                    e1.clone()
                } else {
                    Box::new(e1.subst(x, v))
                };
                let e2 = if y2 == x {
                    e2.clone()
                } else {
                    Box::new(e2.subst(x, v))
                };
                Expr::Case(scr, y1.clone(), e1, y2.clone(), e2)
            }
            Expr::Fix(y, t, e) => {
                if y == x {
                    self.clone()
                } else {
                    Expr::Fix(y.clone(), t.clone(), Box::new(e.subst(x, v)))
                }
            }
            Expr::Prim(op, a, b) => {
                Expr::Prim(*op, Box::new(a.subst(x, v)), Box::new(b.subst(x, v)))
            }
        }
    }

    /// Applies a whole priority substitution, binding by binding.
    ///
    /// The images produced by the solver are concrete priorities, so
    /// sequential application is exact (no image mentions another
    /// substituted variable).
    pub fn subst_prio_all(&self, s: &rp_priority::PrioSubst) -> Expr {
        let mut out = self.clone();
        for (v, t) in s.iter() {
            out = out.subst_prio(v, t);
        }
        out
    }

    /// Collects the free priority variables of the expression.
    pub fn free_prio_vars(&self) -> Vec<PrioVar> {
        let mut out = Vec::new();
        self.collect_free_prio_vars(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free_prio_vars(&self, bound: &mut Vec<PrioVar>, out: &mut Vec<PrioVar>) {
        match self {
            Expr::Var(_) | Expr::Unit | Expr::Nat(_) | Expr::RefVal(_) | Expr::Tid(_) => {}
            Expr::Lam(_, ty, b) => {
                ty.collect_free_prio_vars(bound, out);
                b.collect_free_prio_vars(bound, out);
            }
            Expr::Pair(a, b) | Expr::App(a, b) | Expr::Prim(_, a, b) => {
                a.collect_free_prio_vars(bound, out);
                b.collect_free_prio_vars(bound, out);
            }
            Expr::Inl(a) | Expr::Inr(a) | Expr::Fst(a) | Expr::Snd(a) => {
                a.collect_free_prio_vars(bound, out)
            }
            Expr::CmdVal(p, m) => {
                collect_term_var(p, bound, out);
                m.collect_free_prio_vars(bound, out);
            }
            Expr::PLam(v, c, b) => {
                bound.push(v.clone());
                collect_constraint_vars(c, bound, out);
                b.collect_free_prio_vars(bound, out);
                bound.pop();
            }
            Expr::PApp(b, p) => {
                b.collect_free_prio_vars(bound, out);
                collect_term_var(p, bound, out);
            }
            Expr::Let(_, a, b) => {
                a.collect_free_prio_vars(bound, out);
                b.collect_free_prio_vars(bound, out);
            }
            Expr::Ifz(c, z, _, s) => {
                c.collect_free_prio_vars(bound, out);
                z.collect_free_prio_vars(bound, out);
                s.collect_free_prio_vars(bound, out);
            }
            Expr::Case(s, _, a, _, b) => {
                s.collect_free_prio_vars(bound, out);
                a.collect_free_prio_vars(bound, out);
                b.collect_free_prio_vars(bound, out);
            }
            Expr::Fix(_, ty, b) => {
                ty.collect_free_prio_vars(bound, out);
                b.collect_free_prio_vars(bound, out);
            }
        }
    }

    /// Substitutes a priority term for a priority variable (`[ρ/π]e`).
    pub fn subst_prio(&self, var: &PrioVar, term: &PrioTerm) -> Expr {
        let s = rp_priority::PrioSubst::single(var.clone(), term.clone());
        match self {
            Expr::Var(_) | Expr::Unit | Expr::Nat(_) | Expr::RefVal(_) | Expr::Tid(_) => {
                self.clone()
            }
            Expr::Lam(y, ty, body) => Expr::Lam(
                y.clone(),
                ty.subst_prio(var, term),
                Box::new(body.subst_prio(var, term)),
            ),
            Expr::Pair(a, b) => Expr::Pair(
                Box::new(a.subst_prio(var, term)),
                Box::new(b.subst_prio(var, term)),
            ),
            Expr::Inl(a) => Expr::Inl(Box::new(a.subst_prio(var, term))),
            Expr::Inr(a) => Expr::Inr(Box::new(a.subst_prio(var, term))),
            Expr::CmdVal(p, m) => Expr::CmdVal(p.subst(&s), Arc::new(m.subst_prio(var, term))),
            Expr::PLam(pv, c, e) => {
                if pv == var {
                    self.clone()
                } else {
                    Expr::PLam(pv.clone(), c.subst(&s), Box::new(e.subst_prio(var, term)))
                }
            }
            Expr::PApp(e, p) => Expr::PApp(Box::new(e.subst_prio(var, term)), p.subst(&s)),
            Expr::Let(y, e1, e2) => Expr::Let(
                y.clone(),
                Box::new(e1.subst_prio(var, term)),
                Box::new(e2.subst_prio(var, term)),
            ),
            Expr::Ifz(c, z, y, sc) => Expr::Ifz(
                Box::new(c.subst_prio(var, term)),
                Box::new(z.subst_prio(var, term)),
                y.clone(),
                Box::new(sc.subst_prio(var, term)),
            ),
            Expr::App(a, b) => Expr::App(
                Box::new(a.subst_prio(var, term)),
                Box::new(b.subst_prio(var, term)),
            ),
            Expr::Fst(a) => Expr::Fst(Box::new(a.subst_prio(var, term))),
            Expr::Snd(a) => Expr::Snd(Box::new(a.subst_prio(var, term))),
            Expr::Case(scr, y1, e1, y2, e2) => Expr::Case(
                Box::new(scr.subst_prio(var, term)),
                y1.clone(),
                Box::new(e1.subst_prio(var, term)),
                y2.clone(),
                Box::new(e2.subst_prio(var, term)),
            ),
            Expr::Fix(y, t, e) => Expr::Fix(
                y.clone(),
                t.subst_prio(var, term),
                Box::new(e.subst_prio(var, term)),
            ),
            Expr::Prim(op, a, b) => Expr::Prim(
                *op,
                Box::new(a.subst_prio(var, term)),
                Box::new(b.subst_prio(var, term)),
            ),
        }
    }
}

impl Cmd {
    /// Capture-avoiding substitution `[v/x]m` of a closed value into a
    /// command.
    pub fn subst(&self, x: &str, v: &Expr) -> Cmd {
        match self {
            Cmd::Fcreate {
                prio,
                ret_type,
                body,
            } => Cmd::Fcreate {
                prio: prio.clone(),
                ret_type: ret_type.clone(),
                body: Arc::new(body.subst(x, v)),
            },
            Cmd::Ftouch(e) => Cmd::Ftouch(Box::new(e.subst(x, v))),
            Cmd::Dcl {
                ty,
                var,
                init,
                body,
            } => {
                let init = Box::new(init.subst(x, v));
                let body = if var == x {
                    body.clone()
                } else {
                    Arc::new(body.subst(x, v))
                };
                Cmd::Dcl {
                    ty: ty.clone(),
                    var: var.clone(),
                    init,
                    body,
                }
            }
            Cmd::Get(e) => Cmd::Get(Box::new(e.subst(x, v))),
            Cmd::Set(a, b) => Cmd::Set(Box::new(a.subst(x, v)), Box::new(b.subst(x, v))),
            Cmd::Bind { var, expr, rest } => {
                let expr = Box::new(expr.subst(x, v));
                let rest = if var == x {
                    rest.clone()
                } else {
                    Arc::new(rest.subst(x, v))
                };
                Cmd::Bind {
                    var: var.clone(),
                    expr,
                    rest,
                }
            }
            Cmd::Ret(e) => Cmd::Ret(Box::new(e.subst(x, v))),
            Cmd::Cas {
                target,
                expected,
                new,
            } => Cmd::Cas {
                target: Box::new(target.subst(x, v)),
                expected: Box::new(expected.subst(x, v)),
                new: Box::new(new.subst(x, v)),
            },
        }
    }

    /// Applies a whole priority substitution, binding by binding (see
    /// [`Expr::subst_prio_all`]).
    pub fn subst_prio_all(&self, s: &rp_priority::PrioSubst) -> Cmd {
        let mut out = self.clone();
        for (v, t) in s.iter() {
            out = out.subst_prio(v, t);
        }
        out
    }

    /// Collects the free priority variables of the command.
    pub fn free_prio_vars(&self) -> Vec<PrioVar> {
        let mut out = Vec::new();
        self.collect_free_prio_vars(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free_prio_vars(&self, bound: &mut Vec<PrioVar>, out: &mut Vec<PrioVar>) {
        match self {
            Cmd::Fcreate {
                prio,
                ret_type,
                body,
            } => {
                collect_term_var(prio, bound, out);
                ret_type.collect_free_prio_vars(bound, out);
                body.collect_free_prio_vars(bound, out);
            }
            Cmd::Ftouch(e) | Cmd::Get(e) | Cmd::Ret(e) => e.collect_free_prio_vars(bound, out),
            Cmd::Dcl { ty, init, body, .. } => {
                ty.collect_free_prio_vars(bound, out);
                init.collect_free_prio_vars(bound, out);
                body.collect_free_prio_vars(bound, out);
            }
            Cmd::Set(a, b) => {
                a.collect_free_prio_vars(bound, out);
                b.collect_free_prio_vars(bound, out);
            }
            Cmd::Bind { expr, rest, .. } => {
                expr.collect_free_prio_vars(bound, out);
                rest.collect_free_prio_vars(bound, out);
            }
            Cmd::Cas {
                target,
                expected,
                new,
            } => {
                target.collect_free_prio_vars(bound, out);
                expected.collect_free_prio_vars(bound, out);
                new.collect_free_prio_vars(bound, out);
            }
        }
    }

    /// Substitutes a priority term for a priority variable (`[ρ/π]m`).
    pub fn subst_prio(&self, var: &PrioVar, term: &PrioTerm) -> Cmd {
        let s = rp_priority::PrioSubst::single(var.clone(), term.clone());
        match self {
            Cmd::Fcreate {
                prio,
                ret_type,
                body,
            } => Cmd::Fcreate {
                prio: prio.subst(&s),
                ret_type: ret_type.subst_prio(var, term),
                body: Arc::new(body.subst_prio(var, term)),
            },
            Cmd::Ftouch(e) => Cmd::Ftouch(Box::new(e.subst_prio(var, term))),
            Cmd::Dcl {
                ty,
                var: y,
                init,
                body,
            } => Cmd::Dcl {
                ty: ty.subst_prio(var, term),
                var: y.clone(),
                init: Box::new(init.subst_prio(var, term)),
                body: Arc::new(body.subst_prio(var, term)),
            },
            Cmd::Get(e) => Cmd::Get(Box::new(e.subst_prio(var, term))),
            Cmd::Set(a, b) => Cmd::Set(
                Box::new(a.subst_prio(var, term)),
                Box::new(b.subst_prio(var, term)),
            ),
            Cmd::Bind { var: y, expr, rest } => Cmd::Bind {
                var: y.clone(),
                expr: Box::new(expr.subst_prio(var, term)),
                rest: Arc::new(rest.subst_prio(var, term)),
            },
            Cmd::Ret(e) => Cmd::Ret(Box::new(e.subst_prio(var, term))),
            Cmd::Cas {
                target,
                expected,
                new,
            } => Cmd::Cas {
                target: Box::new(target.subst_prio(var, term)),
                expected: Box::new(expected.subst_prio(var, term)),
                new: Box::new(new.subst_prio(var, term)),
            },
        }
    }
}

/// Ergonomic constructors used throughout the example programs and tests.
pub mod dsl {
    use super::*;

    /// Variable reference.
    pub fn var(x: &str) -> Expr {
        Expr::Var(x.to_string())
    }

    /// Natural number literal.
    pub fn nat(n: u64) -> Expr {
        Expr::Nat(n)
    }

    /// Unit literal.
    pub fn unit() -> Expr {
        Expr::Unit
    }

    /// Lambda abstraction `λx:τ. body`.
    pub fn lam(x: &str, ty: Type, body: Expr) -> Expr {
        Expr::Lam(x.to_string(), ty, Box::new(body))
    }

    /// Application.
    pub fn app(f: Expr, a: Expr) -> Expr {
        Expr::App(Box::new(f), Box::new(a))
    }

    /// Let binding.
    pub fn let_(x: &str, bound: Expr, body: Expr) -> Expr {
        Expr::Let(x.to_string(), Box::new(bound), Box::new(body))
    }

    /// Zero/successor conditional.
    pub fn ifz(cond: Expr, zero: Expr, x: &str, succ: Expr) -> Expr {
        Expr::Ifz(
            Box::new(cond),
            Box::new(zero),
            x.to_string(),
            Box::new(succ),
        )
    }

    /// Pair constructor.
    pub fn pair(a: Expr, b: Expr) -> Expr {
        Expr::Pair(Box::new(a), Box::new(b))
    }

    /// Recursive definition.
    pub fn fix(x: &str, ty: Type, body: Expr) -> Expr {
        Expr::Fix(x.to_string(), ty, Box::new(body))
    }

    /// Addition.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Prim(PrimOp::Add, Box::new(a), Box::new(b))
    }

    /// Saturating subtraction.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Prim(PrimOp::Sub, Box::new(a), Box::new(b))
    }

    /// Multiplication.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Prim(PrimOp::Mul, Box::new(a), Box::new(b))
    }

    /// Equality test.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Prim(PrimOp::Eq, Box::new(a), Box::new(b))
    }

    /// Encapsulated command value.
    pub fn cmd(p: impl Into<PrioTerm>, m: Cmd) -> Expr {
        Expr::CmdVal(p.into(), Arc::new(m))
    }

    /// `ret e`.
    pub fn ret(e: Expr) -> Cmd {
        Cmd::Ret(Box::new(e))
    }

    /// `x ← e; m`.
    pub fn bind(x: &str, e: Expr, m: Cmd) -> Cmd {
        Cmd::Bind {
            var: x.to_string(),
            expr: Box::new(e),
            rest: Arc::new(m),
        }
    }

    /// `fcreate[ρ; τ]{m}`.
    pub fn fcreate(p: impl Into<PrioTerm>, ty: Type, m: Cmd) -> Cmd {
        Cmd::Fcreate {
            prio: p.into(),
            ret_type: ty,
            body: Arc::new(m),
        }
    }

    /// `ftouch e`.
    pub fn ftouch(e: Expr) -> Cmd {
        Cmd::Ftouch(Box::new(e))
    }

    /// `dcl[τ] x := e in m`.
    pub fn dcl(x: &str, ty: Type, init: Expr, body: Cmd) -> Cmd {
        Cmd::Dcl {
            ty,
            var: x.to_string(),
            init: Box::new(init),
            body: Arc::new(body),
        }
    }

    /// `!e`.
    pub fn get(e: Expr) -> Cmd {
        Cmd::Get(Box::new(e))
    }

    /// `e₁ := e₂`.
    pub fn set(target: Expr, value: Expr) -> Cmd {
        Cmd::Set(Box::new(target), Box::new(value))
    }

    /// `cas(target, expected, new)`.
    pub fn cas(target: Expr, expected: Expr, new: Expr) -> Cmd {
        Cmd::Cas {
            target: Box::new(target),
            expected: Box::new(expected),
            new: Box::new(new),
        }
    }

    /// Sequences a list of commands at priority `p`, discarding intermediate
    /// results, and ends with the final command.
    pub fn seq(p: impl Into<PrioTerm>, cmds: Vec<Cmd>, last: Cmd) -> Cmd {
        let p = p.into();
        cmds.into_iter().rev().fold(last, |acc, c| Cmd::Bind {
            var: "_".to_string(),
            expr: Box::new(Expr::CmdVal(p.clone(), Arc::new(c))),
            rest: Arc::new(acc),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::dsl::*;
    use super::*;

    #[test]
    fn values_are_recognised() {
        assert!(nat(3).is_value());
        assert!(unit().is_value());
        assert!(lam("x", Type::Nat, var("x")).is_value());
        assert!(pair(nat(1), nat(2)).is_value());
        assert!(Expr::Inl(Box::new(nat(1))).is_value());
        assert!(!let_("x", nat(1), var("x")).is_value());
        assert!(!app(lam("x", Type::Nat, var("x")), nat(1)).is_value());
        assert!(!pair(app(lam("x", Type::Nat, var("x")), nat(1)), nat(2)).is_value());
    }

    #[test]
    fn subst_replaces_free_occurrences_only() {
        let e = let_("y", var("x"), add(var("x"), var("y")));
        let r = e.subst("x", &nat(7));
        assert_eq!(r, let_("y", nat(7), add(nat(7), var("y"))));
    }

    #[test]
    fn subst_respects_shadowing() {
        let e = lam("x", Type::Nat, var("x"));
        assert_eq!(e.subst("x", &nat(1)), e);
        let e = let_("x", var("x"), var("x"));
        // The bound expression is in scope of the outer x; the body is not.
        assert_eq!(e.subst("x", &nat(2)), let_("x", nat(2), var("x")));
        let e = ifz(var("n"), nat(0), "n", var("n"));
        assert_eq!(e.subst("n", &nat(5)), ifz(nat(5), nat(0), "n", var("n")));
    }

    #[test]
    fn subst_into_commands() {
        let m = bind("y", var("c"), ret(add(var("x"), var("y"))));
        let m2 = m.subst("x", &nat(3));
        match &m2 {
            Cmd::Bind { rest, .. } => match rest.as_ref() {
                Cmd::Ret(e) => assert_eq!(**e, add(nat(3), var("y"))),
                other => panic!("unexpected rest {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        // Binding variable shadows.
        let m3 = m.subst("y", &nat(9));
        match &m3 {
            Cmd::Bind { rest, .. } => match rest.as_ref() {
                Cmd::Ret(e) => assert_eq!(**e, add(var("x"), var("y"))),
                other => panic!("unexpected rest {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn priority_substitution_in_types() {
        let dom = PriorityDomain::numeric(2);
        let hi = dom.by_index(1);
        let pi = PrioVar::new("pi");
        let t = Type::thread(Type::Nat, PrioTerm::Var(pi.clone()));
        let t2 = t.subst_prio(&pi, &PrioTerm::Const(hi));
        assert_eq!(t2, Type::thread(Type::Nat, hi));
        // Binder shadows.
        let poly = Type::Forall(
            pi.clone(),
            Constraint::True,
            Box::new(Type::cmd(Type::Nat, PrioTerm::Var(pi.clone()))),
        );
        let poly2 = poly.subst_prio(&pi, &PrioTerm::Const(hi));
        assert_eq!(poly, poly2);
    }

    #[test]
    fn priority_substitution_in_terms() {
        let dom = PriorityDomain::numeric(2);
        let hi = dom.by_index(1);
        let pi = PrioVar::new("pi");
        let e = cmd(PrioTerm::Var(pi.clone()), ret(nat(1)));
        let e2 = e.subst_prio(&pi, &PrioTerm::Const(hi));
        match e2 {
            Expr::CmdVal(p, _) => assert_eq!(p, PrioTerm::Const(hi)),
            other => panic!("unexpected {other:?}"),
        }
        // PLam over the same variable shadows.
        let shadowed = Expr::PLam(
            pi.clone(),
            Constraint::True,
            Box::new(cmd(PrioTerm::Var(pi.clone()), ret(nat(1)))),
        );
        assert_eq!(shadowed.subst_prio(&pi, &PrioTerm::Const(hi)), shadowed);
    }

    #[test]
    fn seq_builds_nested_binds() {
        let dom = PriorityDomain::single();
        let m = seq(dom.by_index(0), vec![ret(nat(1)), ret(nat(2))], ret(nat(3)));
        // Two nested binds ending in ret 3.
        let mut depth = 0;
        let mut cur = m;
        while let Cmd::Bind { rest, .. } = cur {
            depth += 1;
            cur = rest.as_ref().clone();
        }
        assert_eq!(depth, 2);
        assert_eq!(cur, ret(nat(3)));
    }

    #[test]
    fn display_of_symbols() {
        assert_eq!(format!("{}", LocId(3)), "s3");
        assert_eq!(format!("{}", ThreadSym(2)), "a2");
    }
}
