//! The λ⁴ᵢ front-end pipeline: parse → infer → run (machine and runtime).
//!
//! This module glues the three front-end stages into one entry point used
//! by `bench_lambda`, the `lambda_server` example, and the integration
//! tests:
//!
//! 1. **parse** — [`crate::parse::parse_program`] turns `.l4i` source into
//!    a [`Program`];
//! 2. **infer** — [`crate::typecheck::infer_program`] collects the priority
//!    constraints, solves for any free priority variables, and re-checks
//!    the instantiated program;
//! 3. **run** — the instantiated program executes on *both* back ends: the
//!    abstract machine ([`crate::run::run_program`], which emits the cost
//!    DAG of the paper's cost semantics) and the traced rp-icilk runtime
//!    ([`crate::compile::compile_and_run`], whose trace reconstructs the
//!    *observed* cost DAG).  Theorem 2.3 is checked on both graphs; any
//!    [`BoundReport::is_counterexample`] is a bug in the scheduler, the
//!    tracer, or the bound analysis.
//!
//! [`BoundReport::is_counterexample`]: rp_core::bound::BoundReport::is_counterexample

// `TypeError` carries the full offending expression/command for error
// messages (see `typecheck`); a large `Err` variant on this cold path is
// deliberate, matching the checker itself.
#![allow(clippy::result_large_err)]

use crate::compile::{compile_and_run, CompileConfig, CompileError, RuntimeOutcome};
use crate::machine::MachineError;
use crate::parse::{parse_program, ParseError};
use crate::run::{run_program, RunConfig, RunResult};
use crate::syntax::{Expr, Program};
use crate::typecheck::{infer_program, Inference, TypeError};
use rp_core::trace::{ReconstructedRun, TraceBoundReport, TraceError};
use std::fmt;

/// Configuration of a pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Abstract-machine configuration.
    pub machine: RunConfig,
    /// Runtime lowering configuration.
    pub runtime: CompileConfig,
}

/// Errors from any stage of the pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Stage 1: the source did not parse.
    Parse(ParseError),
    /// Stage 2: type checking or priority inference failed.
    Type(TypeError),
    /// Stage 3a: the abstract machine got stuck or ran too long.
    Machine(MachineError),
    /// Stage 3b: runtime lowering failed.
    Compile(CompileError),
    /// Stage 3b: the runtime trace did not reconstruct.
    Trace(TraceError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "parse error: {e}"),
            PipelineError::Type(e) => write!(f, "type error: {e}"),
            PipelineError::Machine(e) => write!(f, "abstract machine error: {e}"),
            PipelineError::Compile(e) => write!(f, "compile error: {e}"),
            PipelineError::Trace(e) => write!(f, "trace reconstruction error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Everything one pipeline run produced: both executions and both graphs'
/// bound verdicts, for cross-checking.
#[derive(Debug)]
pub struct PipelineReport {
    /// The inference outcome (assignment, instantiated program, stats).
    pub inference: Inference,
    /// The abstract-machine run (cost-semantics DAG, schedule, per-thread
    /// Theorem 2.3 reports).
    pub machine: RunResult,
    /// The runtime run (value, trace).
    pub runtime: RuntimeOutcome,
    /// The reconstruction of the runtime trace, when tracing was on.
    pub reconstruction: Option<ReconstructedRun>,
    /// Theorem 2.3 against the *observed* runtime schedule.
    pub observed: Vec<TraceBoundReport>,
    /// Theorem 2.3 against a replayed weak-respecting prompt schedule of
    /// the reconstructed graph (the configuration the theorem speaks
    /// about — the oracle even when the observed schedule is not prompt).
    pub replay: Vec<TraceBoundReport>,
}

impl PipelineReport {
    /// Whether both back ends computed the same final value.  Guaranteed
    /// for race-free programs; racy programs (Figure 1) may legitimately
    /// differ.
    pub fn values_agree(&self) -> bool {
        self.machine.value == self.runtime.value
    }

    /// The runtime value (convenience).
    pub fn value(&self) -> &Expr {
        &self.runtime.value
    }

    /// Total Theorem 2.3 counterexamples across the machine graph, the
    /// observed runtime schedule, and the replayed prompt schedule.  Zero
    /// for a healthy build.
    pub fn counterexamples(&self) -> usize {
        let machine = self
            .machine
            .threads
            .iter()
            .filter(|t| t.bound.is_counterexample())
            .count();
        let observed = self
            .observed
            .iter()
            .filter(|r| r.report.is_counterexample())
            .count();
        let replay = self
            .replay
            .iter()
            .filter(|r| r.report.is_counterexample())
            .count();
        machine + observed + replay
    }
}

/// Runs an already-parsed program through stages 2 and 3.
///
/// # Errors
///
/// Returns the first failing stage's error.
pub fn run_pipeline(
    prog: &Program,
    config: &PipelineConfig,
) -> Result<PipelineReport, PipelineError> {
    let inference = infer_program(prog).map_err(PipelineError::Type)?;
    let machine =
        run_program(&inference.program, &config.machine).map_err(PipelineError::Machine)?;
    let runtime =
        compile_and_run(&inference.program, &config.runtime).map_err(PipelineError::Compile)?;
    let reconstruction = match &runtime.trace {
        Some(trace) => Some(trace.reconstruct().map_err(PipelineError::Trace)?),
        None => None,
    };
    let (observed, replay) = match &reconstruction {
        Some(run) => (run.check_observed(), run.check_replay(runtime.workers)),
        None => (Vec::new(), Vec::new()),
    };
    Ok(PipelineReport {
        inference,
        machine,
        runtime,
        reconstruction,
        observed,
        replay,
    })
}

/// The whole front end: `.l4i` source in, cross-checked report out.
///
/// # Errors
///
/// Returns the first failing stage's error.
///
/// # Example
///
/// ```
/// use rp_lambda4i::pipeline::{run_source, PipelineConfig};
/// let src = "\
/// priorities: lo < hi
/// program doc-example : nat
/// main @ lo:
///   t <- cmd[lo]{fcreate[worker; nat]{ret 21}}; -- `worker` is inferred
///   v <- cmd[lo]{ftouch t};
///   ret (v + v)
/// ";
/// let report = run_source(src, &PipelineConfig::default()).unwrap();
/// assert_eq!(report.value(), &rp_lambda4i::syntax::Expr::Nat(42));
/// assert!(report.values_agree());
/// assert_eq!(report.counterexamples(), 0);
/// ```
pub fn run_source(src: &str, config: &PipelineConfig) -> Result<PipelineReport, PipelineError> {
    let prog = parse_program(src).map_err(PipelineError::Parse)?;
    run_pipeline(&prog, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty;
    use crate::progs;

    fn config() -> PipelineConfig {
        PipelineConfig::default()
    }

    #[test]
    fn pretty_printed_programs_flow_through_the_whole_pipeline() {
        let prog = progs::parallel_fib(5);
        let src = pretty::program_to_string(&prog);
        let report = run_source(&src, &config()).unwrap();
        assert_eq!(report.value(), &crate::syntax::Expr::Nat(5));
        assert!(report.values_agree());
        assert_eq!(report.counterexamples(), 0);
        assert!(report.reconstruction.is_some());
    }

    #[test]
    fn inference_feeds_the_runtime_backend() {
        // A source program with a solver-chosen priority.
        let src = "\
priorities: bg < fg
program inferred : nat
main @ fg:
  t <- cmd[fg]{fcreate[p; nat]{ret 9}};
  v <- cmd[fg]{ftouch t};
  ret v
";
        let report = run_source(src, &config()).unwrap();
        // fg ⪯ p forces p = fg.
        let p = report
            .inference
            .assignment
            .get(&rp_priority::PrioVar::new("p"))
            .and_then(|t| t.as_const());
        assert_eq!(p, report.inference.program.domain.priority("fg"));
        assert_eq!(report.value(), &crate::syntax::Expr::Nat(9));
        assert_eq!(report.counterexamples(), 0);
    }

    #[test]
    fn parse_errors_surface_with_positions() {
        let err = run_source(
            "priorities: a\nprogram p : nat\nmain @ a:\n  ret (",
            &config(),
        )
        .unwrap_err();
        match err {
            PipelineError::Parse(e) => assert_eq!(e.line, 4),
            other => panic!("expected a parse error, got {other}"),
        }
    }

    #[test]
    fn type_errors_surface() {
        let src = "\
priorities: lo < hi
program bad : nat
main @ hi:
  t <- cmd[hi]{fcreate[lo; nat]{ret 1}};
  v <- cmd[hi]{ftouch t};
  ret v
";
        let err = run_source(src, &config()).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::Type(TypeError::PriorityInversion { .. })
        ));
    }
}
