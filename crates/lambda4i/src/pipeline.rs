//! The λ⁴ᵢ front-end pipeline: parse → infer → run (machine and runtime).
//!
//! This module glues the three front-end stages into one entry point used
//! by `bench_lambda`, the `lambda_server` example, and the integration
//! tests:
//!
//! 1. **parse** — [`crate::parse::parse_program`] turns `.l4i` source into
//!    a [`Program`];
//! 2. **infer** — [`crate::typecheck::infer_program`] collects the priority
//!    constraints, solves for any free priority variables, and re-checks
//!    the instantiated program;
//! 3. **run** — the instantiated program executes on *both* back ends: the
//!    abstract machine ([`crate::run::run_program`], which emits the cost
//!    DAG of the paper's cost semantics) and the traced rp-icilk runtime
//!    ([`crate::compile::compile_and_run`], whose trace reconstructs the
//!    *observed* cost DAG).  Theorem 2.3 is checked on both graphs; any
//!    [`BoundReport::is_counterexample`] is a bug in the scheduler, the
//!    tracer, or the bound analysis.
//!
//! [`BoundReport::is_counterexample`]: rp_core::bound::BoundReport::is_counterexample

// `TypeError` carries the full offending expression/command for error
// messages (see `typecheck`); a large `Err` variant on this cold path is
// deliberate, matching the checker itself.
#![allow(clippy::result_large_err)]

use crate::compile::{compile_and_run, CompileConfig, CompileError, RuntimeOutcome};
use crate::machine::MachineError;
use crate::parse::{parse_program, ParseError};
use crate::run::{run_program, RunConfig, RunResult};
use crate::syntax::{Expr, Program};
use crate::typecheck::{infer_program, Inference, TypeError};
use rp_core::trace::{ReconstructedRun, TraceBoundReport, TraceError};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Configuration of a pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Abstract-machine configuration.
    pub machine: RunConfig,
    /// Runtime lowering configuration.
    pub runtime: CompileConfig,
}

/// Errors from any stage of the pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Stage 1: the source did not parse.
    Parse(ParseError),
    /// Stage 2: type checking or priority inference failed.
    Type(TypeError),
    /// Stage 3a: the abstract machine got stuck or ran too long.
    Machine(MachineError),
    /// Stage 3b: runtime lowering failed.
    Compile(CompileError),
    /// Stage 3b: the runtime trace did not reconstruct.
    Trace(TraceError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "parse error: {e}"),
            PipelineError::Type(e) => write!(f, "type error: {e}"),
            PipelineError::Machine(e) => write!(f, "abstract machine error: {e}"),
            PipelineError::Compile(e) => write!(f, "compile error: {e}"),
            PipelineError::Trace(e) => write!(f, "trace reconstruction error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Everything one pipeline run produced: both executions and both graphs'
/// bound verdicts, for cross-checking.
#[derive(Debug)]
pub struct PipelineReport {
    /// The inference outcome (assignment, instantiated program, stats).
    /// Shared, not owned, so [`CompileCache`] hits hand out the memoized
    /// result without deep-cloning the instantiated AST.
    pub inference: Arc<Inference>,
    /// The abstract-machine run (cost-semantics DAG, schedule, per-thread
    /// Theorem 2.3 reports).
    pub machine: RunResult,
    /// The runtime run (value, trace).
    pub runtime: RuntimeOutcome,
    /// The reconstruction of the runtime trace, when tracing was on.
    pub reconstruction: Option<ReconstructedRun>,
    /// Theorem 2.3 against the *observed* runtime schedule.
    pub observed: Vec<TraceBoundReport>,
    /// Theorem 2.3 against a replayed weak-respecting prompt schedule of
    /// the reconstructed graph (the configuration the theorem speaks
    /// about — the oracle even when the observed schedule is not prompt).
    pub replay: Vec<TraceBoundReport>,
}

impl PipelineReport {
    /// Whether both back ends computed the same final value.  Guaranteed
    /// for race-free programs; racy programs (Figure 1) may legitimately
    /// differ.
    pub fn values_agree(&self) -> bool {
        self.machine.value == self.runtime.value
    }

    /// The runtime value (convenience).
    pub fn value(&self) -> &Expr {
        &self.runtime.value
    }

    /// Total Theorem 2.3 counterexamples across the machine graph, the
    /// observed runtime schedule, and the replayed prompt schedule.  Zero
    /// for a healthy build.
    pub fn counterexamples(&self) -> usize {
        let machine = self
            .machine
            .threads
            .iter()
            .filter(|t| t.bound.is_counterexample())
            .count();
        let observed = self
            .observed
            .iter()
            .filter(|r| r.report.is_counterexample())
            .count();
        let replay = self
            .replay
            .iter()
            .filter(|r| r.report.is_counterexample())
            .count();
        machine + observed + replay
    }
}

/// Runs an already-parsed program through stages 2 and 3.
///
/// # Errors
///
/// Returns the first failing stage's error.
pub fn run_pipeline(
    prog: &Program,
    config: &PipelineConfig,
) -> Result<PipelineReport, PipelineError> {
    let inference = infer_program(prog).map_err(PipelineError::Type)?;
    run_inferred(Arc::new(inference), config)
}

/// Runs stage 3 (both back ends plus the Theorem 2.3 cross-check) on an
/// already-inferred program.  This is the shared tail of [`run_pipeline`]
/// and the memoized [`CompileCache::run_source`] path: the expensive
/// parse → infer front half is skippable, the execution half never is.
///
/// # Errors
///
/// Returns the first failing stage's error.
pub fn run_inferred(
    inference: Arc<Inference>,
    config: &PipelineConfig,
) -> Result<PipelineReport, PipelineError> {
    let machine =
        run_program(&inference.program, &config.machine).map_err(PipelineError::Machine)?;
    let runtime =
        compile_and_run(&inference.program, &config.runtime).map_err(PipelineError::Compile)?;
    let reconstruction = match &runtime.trace {
        Some(trace) => Some(trace.reconstruct().map_err(PipelineError::Trace)?),
        None => None,
    };
    let (observed, replay) = match &reconstruction {
        Some(run) => (run.check_observed(), run.check_replay(runtime.workers)),
        None => (Vec::new(), Vec::new()),
    };
    Ok(PipelineReport {
        inference,
        machine,
        runtime,
        reconstruction,
        observed,
        replay,
    })
}

/// The whole front end: `.l4i` source in, cross-checked report out.
///
/// # Errors
///
/// Returns the first failing stage's error.
///
/// # Example
///
/// ```
/// use rp_lambda4i::pipeline::{run_source, PipelineConfig};
/// let src = "\
/// priorities: lo < hi
/// program doc-example : nat
/// main @ lo:
///   t <- cmd[lo]{fcreate[worker; nat]{ret 21}}; -- `worker` is inferred
///   v <- cmd[lo]{ftouch t};
///   ret (v + v)
/// ";
/// let report = run_source(src, &PipelineConfig::default()).unwrap();
/// assert_eq!(report.value(), &rp_lambda4i::syntax::Expr::Nat(42));
/// assert!(report.values_agree());
/// assert_eq!(report.counterexamples(), 0);
/// ```
pub fn run_source(src: &str, config: &PipelineConfig) -> Result<PipelineReport, PipelineError> {
    let prog = parse_program(src).map_err(PipelineError::Parse)?;
    run_pipeline(&prog, config)
}

/// The uncached parse → infer front half alone.  [`run_source`] is this
/// followed by [`run_inferred`]; callers that time the front half
/// separately (the `rp_net` request spans) run the two stages themselves.
///
/// # Errors
///
/// Parse or type errors of the source.
pub fn infer_source(src: &str) -> Result<Arc<Inference>, PipelineError> {
    let prog = parse_program(src).map_err(PipelineError::Parse)?;
    Ok(Arc::new(infer_program(&prog).map_err(PipelineError::Type)?))
}

/// Cumulative hit/miss counters of a [`CompileCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Submissions answered from a memoized parse → infer result.
    pub hits: u64,
    /// Submissions that had to run the full front half.
    pub misses: u64,
    /// Distinct sources currently memoized.
    pub entries: usize,
}

/// A memoizing front half of the pipeline for services that run the same
/// λ⁴ᵢ source repeatedly (the `rp_net` cached-compilation request class).
///
/// The expensive parse → infer stages are keyed by the **source text
/// itself** (not a hash — the cache is fed network-supplied sources, and a
/// 64-bit non-cryptographic hash key would let a colliding submission be
/// answered with a *different* program's inference); on a hit,
/// [`CompileCache::run_source`] skips straight to the execution stage
/// ([`run_inferred`]), which always runs — memoizing an execution would
/// defeat the point of checking Theorem 2.3 against real runs.  Parse and
/// type errors are *not* cached: failing sources pay the front half again
/// on every submission (they are cheap — they never reach the execution
/// stage).
///
/// The cache holds at most [`CompileCache::capacity`] distinct sources;
/// inserting past the bound flushes the whole cache (a crude but
/// predictable policy: a service fed a stream of distinct sources degrades
/// to miss-always instead of growing without bound).
///
/// The cache is internally synchronized; share it across server shards with
/// an [`Arc`].
#[derive(Debug)]
pub struct CompileCache {
    entries: Mutex<HashMap<String, Arc<Inference>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for CompileCache {
    fn default() -> Self {
        CompileCache::new()
    }
}

impl CompileCache {
    /// The default bound on distinct memoized sources.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        CompileCache::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty cache bounded to `capacity` distinct sources (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        CompileCache {
            entries: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The bound on distinct memoized sources.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The FNV-1a hash of a source text.  *Not* the cache key (see the
    /// type docs) — exposed so protocol layers can log or route by it.
    pub fn source_hash(src: &str) -> u64 {
        src.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
        })
    }

    /// Like the free function [`run_source`], but memoizing the
    /// parse → infer front half per source.
    ///
    /// # Errors
    ///
    /// Returns the first failing stage's error; front-half errors are
    /// recomputed (never cached).
    pub fn run_source(
        &self,
        src: &str,
        config: &PipelineConfig,
    ) -> Result<PipelineReport, PipelineError> {
        run_inferred(self.inference(src)?, config)
    }

    /// The memoized parse → infer front half alone: the source's inference,
    /// from the cache on a hit or freshly computed (and memoized) on a miss.
    /// [`CompileCache::run_source`] is this followed by [`run_inferred`];
    /// callers that time the front half separately (the `rp_net` request
    /// spans) run the two stages themselves.
    ///
    /// # Errors
    ///
    /// Returns parse/type errors; front-half errors are never cached.
    pub fn inference(&self, src: &str) -> Result<Arc<Inference>, PipelineError> {
        let cached = self.entries.lock().expect("cache lock").get(src).cloned();
        match cached {
            Some(inference) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(inference)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let prog = parse_program(src).map_err(PipelineError::Parse)?;
                let inference = Arc::new(infer_program(&prog).map_err(PipelineError::Type)?);
                let mut entries = self.entries.lock().expect("cache lock");
                if entries.len() >= self.capacity {
                    entries.clear();
                }
                entries.insert(src.to_string(), Arc::clone(&inference));
                Ok(inference)
            }
        }
    }

    /// Hit/miss counters and current size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("cache lock").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty;
    use crate::progs;

    fn config() -> PipelineConfig {
        PipelineConfig::default()
    }

    #[test]
    fn pretty_printed_programs_flow_through_the_whole_pipeline() {
        let prog = progs::parallel_fib(5);
        let src = pretty::program_to_string(&prog);
        let report = run_source(&src, &config()).unwrap();
        assert_eq!(report.value(), &crate::syntax::Expr::Nat(5));
        assert!(report.values_agree());
        assert_eq!(report.counterexamples(), 0);
        assert!(report.reconstruction.is_some());
    }

    #[test]
    fn inference_feeds_the_runtime_backend() {
        // A source program with a solver-chosen priority.
        let src = "\
priorities: bg < fg
program inferred : nat
main @ fg:
  t <- cmd[fg]{fcreate[p; nat]{ret 9}};
  v <- cmd[fg]{ftouch t};
  ret v
";
        let report = run_source(src, &config()).unwrap();
        // fg ⪯ p forces p = fg.
        let p = report
            .inference
            .assignment
            .get(&rp_priority::PrioVar::new("p"))
            .and_then(|t| t.as_const());
        assert_eq!(p, report.inference.program.domain.priority("fg"));
        assert_eq!(report.value(), &crate::syntax::Expr::Nat(9));
        assert_eq!(report.counterexamples(), 0);
    }

    #[test]
    fn compile_cache_memoizes_the_front_half_only() {
        let cache = CompileCache::new();
        let prog = progs::parallel_fib(5);
        let src = pretty::program_to_string(&prog);
        let first = cache.run_source(&src, &config()).unwrap();
        let second = cache.run_source(&src, &config()).unwrap();
        // The front half was reused, the execution half was not: both runs
        // produced fresh machine/runtime executions with the same value.
        assert_eq!(first.value(), second.value());
        assert_eq!(first.counterexamples(), 0);
        assert_eq!(second.counterexamples(), 0);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        // A different source is a separate entry.
        let other = pretty::program_to_string(&progs::parallel_fib(4));
        cache.run_source(&other, &config()).unwrap();
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn compile_cache_does_not_cache_errors() {
        let cache = CompileCache::new();
        let bad = "priorities: a\nprogram p : nat\nmain @ a:\n  ret (";
        for _ in 0..2 {
            let err = cache.run_source(bad, &config()).unwrap_err();
            assert!(matches!(err, PipelineError::Parse(_)));
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 0));
    }

    /// The cache never grows past its capacity: inserting beyond the bound
    /// flushes, so a stream of distinct sources cannot exhaust memory.
    #[test]
    fn compile_cache_is_bounded() {
        let cache = CompileCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        for n in 3..7 {
            let src = pretty::program_to_string(&progs::parallel_fib(n));
            cache.run_source(&src, &config()).unwrap();
            assert!(cache.stats().entries <= 2, "capacity must bound the map");
        }
        // Four distinct sources through a 2-entry cache: all misses, with
        // at least one flush along the way.
        let stats = cache.stats();
        assert_eq!(stats.misses, 4);
        assert!(stats.entries <= 2);
    }

    #[test]
    fn source_hash_is_stable_and_content_sensitive() {
        assert_eq!(
            CompileCache::source_hash("abc"),
            CompileCache::source_hash("abc")
        );
        assert_ne!(
            CompileCache::source_hash("abc"),
            CompileCache::source_hash("abd")
        );
    }

    #[test]
    fn parse_errors_surface_with_positions() {
        let err = run_source(
            "priorities: a\nprogram p : nat\nmain @ a:\n  ret (",
            &config(),
        )
        .unwrap_err();
        match err {
            PipelineError::Parse(e) => assert_eq!(e.line, 4),
            other => panic!("expected a parse error, got {other}"),
        }
    }

    #[test]
    fn type_errors_surface() {
        let src = "\
priorities: lo < hi
program bad : nat
main @ hi:
  t <- cmd[hi]{fcreate[lo; nat]{ret 1}};
  v <- cmd[hi]{ftouch t};
  ret v
";
        let err = run_source(src, &config()).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::Type(TypeError::PriorityInversion { .. })
        ));
    }
}
