//! The λ⁴ᵢ type system (Figures 5, 6, 7).
//!
//! The expression judgment `Γ ⊢^R_Σ e : τ` and the command judgment
//! `Γ ⊢^R_Σ m ∼: τ @ ρ` are implemented by [`Typechecker::check_expr`] and
//! [`Typechecker::check_cmd`].  The signature `Σ` records the types of
//! memory locations and the return type / priority of thread symbols; the
//! context `Γ` records term variables, priority variables, and priority
//! constraint hypotheses.
//!
//! The single rule that rules out priority inversions is `Touch`
//! (Figure 6): `ftouch e` is only well-typed at priority `ρ` when `e` is a
//! handle to a thread at priority `ρ'` with `Γ ⊢^R ρ ⪯ ρ'`.  The checker can
//! be run with that check disabled ([`Typechecker::without_priority_checks`])
//! to measure the cost of the priority layer for the Table 1 reproduction.

// `TypeError` carries the full offending expression/command for error
// messages; boxing it would complicate every checker rule for a cold path.
#![allow(clippy::result_large_err)]

use crate::syntax::{Cmd, Expr, LocId, Program, ThreadSym, Type, Var};
use rp_priority::{Constraint, ConstraintCtx, PrioTerm, PriorityDomain};
use std::collections::HashMap;
use std::fmt;

/// The signature `Σ`: thread symbols `a ∼ τ @ ρ` and locations `s ∼ τ`.
#[derive(Debug, Clone, Default)]
pub struct Signature {
    threads: HashMap<ThreadSym, (Type, PrioTerm)>,
    locs: HashMap<LocId, Type>,
}

impl Signature {
    /// An empty signature.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `a ∼ τ @ ρ`.
    pub fn declare_thread(&mut self, a: ThreadSym, ty: Type, prio: PrioTerm) {
        self.threads.insert(a, (ty, prio));
    }

    /// Adds `s ∼ τ`.
    pub fn declare_loc(&mut self, s: LocId, ty: Type) {
        self.locs.insert(s, ty);
    }

    /// Looks up a thread symbol.
    pub fn thread(&self, a: ThreadSym) -> Option<&(Type, PrioTerm)> {
        self.threads.get(&a)
    }

    /// Looks up a location.
    pub fn loc(&self, s: LocId) -> Option<&Type> {
        self.locs.get(&s)
    }
}

/// Type errors reported by the checker.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// A variable is not bound in `Γ`.
    UnboundVariable(Var),
    /// A thread symbol is not declared in `Σ`.
    UnknownThread(ThreadSym),
    /// A memory location is not declared in `Σ`.
    UnknownLocation(LocId),
    /// Two types that must match do not.
    Mismatch {
        /// What the context required.
        expected: Type,
        /// What the term actually has.
        found: Type,
        /// Where the mismatch occurred.
        context: String,
    },
    /// An elimination form was applied to a value of the wrong shape.
    WrongShape {
        /// What shape was required (e.g. "function", "pair").
        wanted: &'static str,
        /// The type that was found instead.
        found: Type,
        /// Where it happened.
        context: String,
    },
    /// The `Touch` rule's priority side condition `ρ ⪯ ρ'` failed:
    /// a priority inversion.
    PriorityInversion {
        /// The priority of the command performing the `ftouch`.
        at: PrioTerm,
        /// The priority of the touched thread.
        touched: PrioTerm,
    },
    /// A priority constraint required by ∀-elimination is not entailed.
    ConstraintNotEntailed(String),
    /// An undeclared priority variable was mentioned.
    UnknownPriorityVariable(String),
    /// Priority inference found the program's constraint system
    /// unsatisfiable; carries the rendered unsat core.
    UnsatisfiablePriorities(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            TypeError::UnknownThread(a) => write!(f, "unknown thread symbol {a}"),
            TypeError::UnknownLocation(s) => write!(f, "unknown memory location {s}"),
            TypeError::Mismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected:?}, found {found:?}"
            ),
            TypeError::WrongShape {
                wanted,
                found,
                context,
            } => write!(f, "expected a {wanted} in {context}, found {found:?}"),
            TypeError::PriorityInversion { at, touched } => write!(
                f,
                "priority inversion: ftouch at priority {at} of a thread at priority {touched}"
            ),
            TypeError::ConstraintNotEntailed(c) => {
                write!(f, "priority constraint not entailed: {c}")
            }
            TypeError::UnknownPriorityVariable(v) => {
                write!(f, "undeclared priority variable `{v}`")
            }
            TypeError::UnsatisfiablePriorities(core) => {
                write!(f, "priority inference failed: {core}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// The typing context `Γ`: term variables plus priority hypotheses.
#[derive(Debug, Clone, Default)]
pub struct TypeCtx {
    vars: Vec<(Var, Type)>,
    /// Priority variables and constraint hypotheses.
    pub prio: ConstraintCtx,
}

impl TypeCtx {
    /// An empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extends the context with a term variable binding.
    pub fn bind(&self, x: &str, ty: Type) -> TypeCtx {
        let mut new = self.clone();
        new.vars.push((x.to_string(), ty));
        new
    }

    /// Looks up a term variable (innermost binding wins).
    pub fn lookup(&self, x: &str) -> Option<&Type> {
        self.vars.iter().rev().find(|(y, _)| y == x).map(|(_, t)| t)
    }
}

/// Statistics gathered during a type-checking run, used by the Table 1
/// reproduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Number of expression typing judgments derived.
    pub expr_judgments: usize,
    /// Number of command typing judgments derived.
    pub cmd_judgments: usize,
    /// Number of priority-constraint entailment checks performed.
    pub entailment_checks: usize,
}

/// The λ⁴ᵢ type checker.
#[derive(Debug, Clone)]
pub struct Typechecker {
    domain: PriorityDomain,
    check_priorities: bool,
    /// Inference mode: constraint goals mentioning *undeclared* priority
    /// variables (the program's top-level unknowns) are recorded in
    /// `deferred` instead of being checked, for the solver to discharge.
    collect: bool,
    deferred: Vec<Constraint>,
    stats: CheckStats,
}

impl Typechecker {
    /// A checker over the given priority domain with the priority layer
    /// enabled.
    pub fn new(domain: PriorityDomain) -> Self {
        Typechecker {
            domain,
            check_priorities: true,
            collect: false,
            deferred: Vec::new(),
            stats: CheckStats::default(),
        }
    }

    /// A checker with the priority side conditions disabled (the "without
    /// priority" configuration of Table 1).  All other typing rules still
    /// apply.
    pub fn without_priority_checks(domain: PriorityDomain) -> Self {
        Typechecker {
            check_priorities: false,
            ..Typechecker::new(domain)
        }
    }

    /// A checker in constraint-collecting inference mode: goals over the
    /// program's free priority variables are deferred (see
    /// [`infer_program`]) rather than rejected.
    pub fn collecting(domain: PriorityDomain) -> Self {
        Typechecker {
            collect: true,
            ..Typechecker::new(domain)
        }
    }

    /// Statistics from the judgments derived so far.
    pub fn stats(&self) -> CheckStats {
        self.stats
    }

    /// The constraints deferred so far by a collecting checker.
    pub fn deferred(&self) -> &[Constraint] {
        &self.deferred
    }

    /// Whether the goal mentions a priority variable that is not declared
    /// in the context — i.e. a top-level unknown of the inference problem.
    fn mentions_unknown(&self, ctx: &TypeCtx, c: &Constraint) -> bool {
        c.free_vars().iter().any(|v| !ctx.prio.is_declared(v))
    }

    /// Defers a goal for the solver, rejecting goals that mix an unknown
    /// with a `Λπ ∼ C`-bound (universally quantified) variable: the solver
    /// assigns unknowns *existentially* and would silently drop the bound
    /// variable's quantification and hypotheses, so such programs must
    /// annotate the instantiation explicitly instead.
    fn defer(&mut self, ctx: &TypeCtx, c: Constraint) -> Result<(), TypeError> {
        if let Some(bound) = c.free_vars().iter().find(|v| ctx.prio.is_declared(v)) {
            return Err(TypeError::UnsatisfiablePriorities(format!(
                "constraint {c} mixes the quantified priority variable `{bound}` with free \
                 variables; inference cannot solve under a quantifier — annotate the \
                 instantiation explicitly"
            )));
        }
        self.deferred.push(c);
        Ok(())
    }

    fn entails(&mut self, ctx: &TypeCtx, c: &Constraint) -> Result<(), TypeError> {
        self.stats.entailment_checks += 1;
        if !self.check_priorities {
            return Ok(());
        }
        if self.collect && self.mentions_unknown(ctx, c) {
            return self.defer(ctx, c.clone());
        }
        ctx.prio
            .check(&self.domain, c)
            .map_err(|e| TypeError::ConstraintNotEntailed(e.to_string()))
    }

    /// The expression judgment `Γ ⊢^R_Σ e : τ` (Figure 5).
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] when the expression is ill-typed.
    pub fn check_expr(
        &mut self,
        ctx: &TypeCtx,
        sig: &Signature,
        e: &Expr,
    ) -> Result<Type, TypeError> {
        self.stats.expr_judgments += 1;
        match e {
            Expr::Var(x) => ctx
                .lookup(x)
                .cloned()
                .ok_or_else(|| TypeError::UnboundVariable(x.clone())),
            Expr::Unit => Ok(Type::Unit),
            Expr::Nat(_) => Ok(Type::Nat),
            Expr::Lam(x, ty, body) => {
                let body_ty = self.check_expr(&ctx.bind(x, ty.clone()), sig, body)?;
                Ok(Type::arrow(ty.clone(), body_ty))
            }
            Expr::Pair(a, b) => Ok(Type::prod(
                self.check_expr(ctx, sig, a)?,
                self.check_expr(ctx, sig, b)?,
            )),
            Expr::Inl(v) => {
                // Without an annotation the right component is unconstrained;
                // we type sums only through `case`, so synthesise with Unit,
                // and rely on `expect_type` call sites for refinement.
                Ok(Type::sum(self.check_expr(ctx, sig, v)?, Type::Unit))
            }
            Expr::Inr(v) => Ok(Type::sum(Type::Unit, self.check_expr(ctx, sig, v)?)),
            Expr::RefVal(s) => sig
                .loc(*s)
                .map(|t| Type::reference(t.clone()))
                .ok_or(TypeError::UnknownLocation(*s)),
            Expr::Tid(a) => sig
                .thread(*a)
                .map(|(t, p)| Type::thread(t.clone(), p.clone()))
                .ok_or(TypeError::UnknownThread(*a)),
            Expr::CmdVal(p, m) => {
                let t = self.check_cmd(ctx, sig, m, p)?;
                Ok(Type::cmd(t, p.clone()))
            }
            Expr::PLam(pi, c, body) => {
                let mut inner = ctx.clone();
                inner.prio.declare(pi.clone());
                inner.prio.assume(c.clone());
                let t = self.check_expr(&inner, sig, body)?;
                Ok(Type::Forall(pi.clone(), c.clone(), Box::new(t)))
            }
            Expr::PApp(v, rho) => {
                let t = self.check_expr(ctx, sig, v)?;
                match t {
                    Type::Forall(pi, c, body) => {
                        let instantiated_c =
                            c.subst(&rp_priority::PrioSubst::single(pi.clone(), rho.clone()));
                        self.entails(ctx, &instantiated_c)?;
                        Ok(body.subst_prio(&pi, rho))
                    }
                    other => Err(TypeError::WrongShape {
                        wanted: "priority-polymorphic value",
                        found: other,
                        context: "priority application".into(),
                    }),
                }
            }
            Expr::Let(x, e1, e2) => {
                let t1 = self.check_expr(ctx, sig, e1)?;
                self.check_expr(&ctx.bind(x, t1), sig, e2)
            }
            Expr::Ifz(cond, zero, x, succ) => {
                let tc = self.check_expr(ctx, sig, cond)?;
                self.expect(&tc, &Type::Nat, "ifz scrutinee")?;
                let tz = self.check_expr(ctx, sig, zero)?;
                let ts = self.check_expr(&ctx.bind(x, Type::Nat), sig, succ)?;
                self.expect(&ts, &tz, "ifz branches")?;
                Ok(tz)
            }
            Expr::App(f, a) => {
                let tf = self.check_expr(ctx, sig, f)?;
                match tf {
                    Type::Arrow(t1, t2) => {
                        let ta = self.check_expr(ctx, sig, a)?;
                        self.expect(&ta, &t1, "function argument")?;
                        Ok(*t2)
                    }
                    other => Err(TypeError::WrongShape {
                        wanted: "function",
                        found: other,
                        context: "application".into(),
                    }),
                }
            }
            Expr::Fst(v) => match self.check_expr(ctx, sig, v)? {
                Type::Prod(a, _) => Ok(*a),
                other => Err(TypeError::WrongShape {
                    wanted: "pair",
                    found: other,
                    context: "fst".into(),
                }),
            },
            Expr::Snd(v) => match self.check_expr(ctx, sig, v)? {
                Type::Prod(_, b) => Ok(*b),
                other => Err(TypeError::WrongShape {
                    wanted: "pair",
                    found: other,
                    context: "snd".into(),
                }),
            },
            Expr::Case(scrut, x, e1, y, e2) => match self.check_expr(ctx, sig, scrut)? {
                Type::Sum(tl, tr) => {
                    let t1 = self.check_expr(&ctx.bind(x, *tl), sig, e1)?;
                    let t2 = self.check_expr(&ctx.bind(y, *tr), sig, e2)?;
                    self.expect(&t2, &t1, "case branches")?;
                    Ok(t1)
                }
                other => Err(TypeError::WrongShape {
                    wanted: "sum",
                    found: other,
                    context: "case".into(),
                }),
            },
            Expr::Fix(x, ty, body) => {
                let t = self.check_expr(&ctx.bind(x, ty.clone()), sig, body)?;
                self.expect(&t, ty, "fix body")?;
                Ok(ty.clone())
            }
            Expr::Prim(op, a, b) => {
                let ta = self.check_expr(ctx, sig, a)?;
                let tb = self.check_expr(ctx, sig, b)?;
                self.expect(&ta, &Type::Nat, "primitive operand")?;
                self.expect(&tb, &Type::Nat, "primitive operand")?;
                let _ = op;
                Ok(Type::Nat)
            }
        }
    }

    /// The command judgment `Γ ⊢^R_Σ m ∼: τ @ ρ` (Figure 6).
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] when the command is ill-typed, including the
    /// `Touch` rule's priority-inversion check.
    pub fn check_cmd(
        &mut self,
        ctx: &TypeCtx,
        sig: &Signature,
        m: &Cmd,
        rho: &PrioTerm,
    ) -> Result<Type, TypeError> {
        self.stats.cmd_judgments += 1;
        match m {
            Cmd::Fcreate {
                prio,
                ret_type,
                body,
            } => {
                let t = self.check_cmd(ctx, sig, body, prio)?;
                self.expect(&t, ret_type, "fcreate body")?;
                Ok(Type::thread(ret_type.clone(), prio.clone()))
            }
            Cmd::Ftouch(e) => {
                let te = self.check_expr(ctx, sig, e)?;
                match te {
                    Type::Thread(t, rho_prime) => {
                        if self.check_priorities {
                            self.entails(ctx, &Constraint::leq(rho.clone(), rho_prime.clone()))
                                .map_err(|e| match e {
                                    // The quantifier-mixing rejection from
                                    // inference mode is more precise than
                                    // "inversion"; keep it.
                                    TypeError::UnsatisfiablePriorities(_) => e,
                                    _ => TypeError::PriorityInversion {
                                        at: rho.clone(),
                                        touched: rho_prime.clone(),
                                    },
                                })?;
                        } else {
                            self.stats.entailment_checks += 1;
                        }
                        Ok(*t)
                    }
                    other => Err(TypeError::WrongShape {
                        wanted: "thread handle",
                        found: other,
                        context: "ftouch".into(),
                    }),
                }
            }
            Cmd::Dcl {
                ty,
                var,
                init,
                body,
            } => {
                let ti = self.check_expr(ctx, sig, init)?;
                self.expect(&ti, ty, "reference initialiser")?;
                // The body is checked with the binder standing for the fresh
                // reference (the paper introduces s ∼ τ into Σ; binding a
                // variable of reference type is the syntax-directed version).
                self.check_cmd(&ctx.bind(var, Type::reference(ty.clone())), sig, body, rho)
            }
            Cmd::Get(e) => match self.check_expr(ctx, sig, e)? {
                Type::Ref(t) => Ok(*t),
                other => Err(TypeError::WrongShape {
                    wanted: "reference",
                    found: other,
                    context: "get (!)".into(),
                }),
            },
            Cmd::Set(target, value) => match self.check_expr(ctx, sig, target)? {
                Type::Ref(t) => {
                    let tv = self.check_expr(ctx, sig, value)?;
                    self.expect(&tv, &t, "assignment")?;
                    Ok(*t)
                }
                other => Err(TypeError::WrongShape {
                    wanted: "reference",
                    found: other,
                    context: "assignment target".into(),
                }),
            },
            Cmd::Bind { var, expr, rest } => match self.check_expr(ctx, sig, expr)? {
                Type::Cmd(t1, rho_e) => {
                    if self.check_priorities && &rho_e != rho {
                        // The Bind rule requires the encapsulated command to
                        // run at the ambient priority.  In inference mode an
                        // unknown on either side is deferred as the
                        // equality ρₑ ⪯ ρ ∧ ρ ⪯ ρₑ (antisymmetry makes the
                        // pair equivalent to equality in the poset).
                        let eq = Constraint::leq(rho_e.clone(), rho.clone())
                            .and(Constraint::leq(rho.clone(), rho_e.clone()));
                        if self.collect && self.mentions_unknown(ctx, &eq) {
                            self.defer(ctx, eq)?;
                        } else {
                            return Err(TypeError::Mismatch {
                                expected: Type::cmd(*t1, rho.clone()),
                                found: Type::cmd(Type::Unit, rho_e),
                                context: "bind: encapsulated command priority".into(),
                            });
                        }
                    }
                    self.check_cmd(&ctx.bind(var, *t1), sig, rest, rho)
                }
                other => Err(TypeError::WrongShape {
                    wanted: "encapsulated command",
                    found: other,
                    context: "bind".into(),
                }),
            },
            Cmd::Ret(e) => self.check_expr(ctx, sig, e),
            Cmd::Cas {
                target,
                expected,
                new,
            } => match self.check_expr(ctx, sig, target)? {
                Type::Ref(t) => {
                    let te = self.check_expr(ctx, sig, expected)?;
                    let tn = self.check_expr(ctx, sig, new)?;
                    self.expect(&te, &t, "cas expected value")?;
                    self.expect(&tn, &t, "cas new value")?;
                    Ok(Type::Nat)
                }
                other => Err(TypeError::WrongShape {
                    wanted: "reference",
                    found: other,
                    context: "cas target".into(),
                }),
            },
        }
    }

    /// Structural type compatibility.  Sum types synthesised from bare
    /// `inl`/`inr` values carry a `Unit` placeholder on the missing side, so
    /// compatibility treats a required sum side as satisfied by the
    /// placeholder; everything else is exact equality.
    fn compatible(&self, found: &Type, expected: &Type) -> bool {
        if found == expected {
            return true;
        }
        match (found, expected) {
            (Type::Sum(fl, fr), Type::Sum(el, er)) => {
                (self.compatible(fl, el) || **fl == Type::Unit || **el == Type::Unit)
                    && (self.compatible(fr, er) || **fr == Type::Unit || **er == Type::Unit)
            }
            (Type::Prod(a1, b1), Type::Prod(a2, b2)) => {
                self.compatible(a1, a2) && self.compatible(b1, b2)
            }
            (Type::Ref(a), Type::Ref(b)) => self.compatible(a, b),
            (Type::Arrow(a1, b1), Type::Arrow(a2, b2)) => {
                self.compatible(a1, a2) && self.compatible(b1, b2)
            }
            (Type::Cmd(a, p), Type::Cmd(b, q)) => self.compatible(a, b) && p == q,
            (Type::Thread(a, p), Type::Thread(b, q)) => self.compatible(a, b) && p == q,
            _ => false,
        }
    }

    fn expect(&mut self, found: &Type, expected: &Type, context: &str) -> Result<(), TypeError> {
        if self.compatible(found, expected) {
            Ok(())
        } else {
            Err(TypeError::Mismatch {
                expected: expected.clone(),
                found: found.clone(),
                context: context.to_string(),
            })
        }
    }
}

/// Type checks a whole program: the main command must have the program's
/// declared return type at the main priority, in the empty context and
/// signature.
///
/// # Errors
///
/// Returns the first [`TypeError`] encountered.
pub fn typecheck_program(prog: &Program) -> Result<CheckStats, TypeError> {
    typecheck_program_with(prog, true)
}

/// Like [`typecheck_program`], optionally disabling the priority layer
/// (the Table 1 "without priorities" configuration).
///
/// # Errors
///
/// Returns the first [`TypeError`] encountered.
pub fn typecheck_program_with(
    prog: &Program,
    check_priorities: bool,
) -> Result<CheckStats, TypeError> {
    let mut tc = if check_priorities {
        Typechecker::new(prog.domain.clone())
    } else {
        Typechecker::without_priority_checks(prog.domain.clone())
    };
    let ctx = TypeCtx::new();
    let sig = Signature::new();
    let t = tc.check_cmd(&ctx, &sig, &prog.main, &PrioTerm::Const(prog.main_priority))?;
    let mut probe = tc.clone();
    probe.expect(&t, &prog.return_type, "program return type")?;
    Ok(probe.stats())
}

/// What priority inference produced for a program.
#[derive(Debug, Clone)]
pub struct Inference {
    /// The solver's assignment of the program's free priority variables to
    /// concrete levels (empty when the program was already fully
    /// annotated).
    pub assignment: rp_priority::PrioSubst,
    /// The fully instantiated program (`assignment` applied), which
    /// typechecks under the ordinary checking judgment.
    pub program: Program,
    /// Statistics of the final checking pass.
    pub stats: CheckStats,
    /// The constraints the collecting pass deferred to the solver.
    pub deferred: Vec<Constraint>,
}

/// Infers concrete priorities for a program's free priority variables.
///
/// This upgrades [`typecheck_program`] from *checking* annotated priority
/// instantiations to *inferring* them: the program may mention priority
/// variables that no `Λπ ∼ C` binds (e.g. `fcreate[pi; nat]{...}` in a
/// source file).  A constraint-collecting checking pass records every
/// entailment goal that involves such an unknown (the `Touch` rule's
/// `ρ ⪯ ρ'`, `Bind`'s priority equality, and ∀-elimination side
/// conditions); [`rp_priority::solve()`] then computes the least satisfying
/// assignment over the program's priority domain, and the instantiated
/// program is re-checked under the ordinary judgment.
///
/// Fully annotated programs pass through unchanged (with an empty
/// assignment), so this is a strict generalisation of
/// [`typecheck_program`].
///
/// Unknowns are solved *existentially* over the program's domain.  A goal
/// that constrains an unknown against a `Λπ ∼ C`-bound (universally
/// quantified) variable is therefore rejected with a clear error rather
/// than mis-solved — annotate such instantiations explicitly.
///
/// # Errors
///
/// Returns a [`TypeError`] from either checking pass, or
/// [`TypeError::UnsatisfiablePriorities`] carrying the solver's unsat core
/// when no assignment exists.
pub fn infer_program(prog: &Program) -> Result<Inference, TypeError> {
    let unknowns = prog.free_prio_vars();
    let (assignment, deferred) = if unknowns.is_empty() {
        (rp_priority::PrioSubst::new(), Vec::new())
    } else {
        let mut tc = Typechecker::collecting(prog.domain.clone());
        let ctx = TypeCtx::new();
        let sig = Signature::new();
        let t = tc.check_cmd(&ctx, &sig, &prog.main, &PrioTerm::Const(prog.main_priority))?;
        tc.expect(&t, &prog.return_type, "program return type")?;
        let deferred = tc.deferred().to_vec();
        let solution = rp_priority::solve(&prog.domain, &unknowns, &deferred)
            .map_err(|core| TypeError::UnsatisfiablePriorities(core.to_string()))?;
        (solution.assignment, deferred)
    };
    let program = prog.subst_prio_all(&assignment);
    let stats = typecheck_program(&program)?;
    Ok(Inference {
        assignment,
        program,
        stats,
        deferred,
    })
}

/// Counts the AST nodes of a program (expressions + commands + types), the
/// size metric used alongside type-checking time in the Table 1
/// reproduction.
pub fn count_nodes(prog: &Program) -> usize {
    count_cmd(&prog.main)
}

fn count_cmd(m: &Cmd) -> usize {
    1 + match m {
        Cmd::Fcreate { body, .. } => count_cmd(body),
        Cmd::Ftouch(e) => count_expr(e),
        Cmd::Dcl { init, body, .. } => count_expr(init) + count_cmd(body),
        Cmd::Get(e) => count_expr(e),
        Cmd::Set(a, b) => count_expr(a) + count_expr(b),
        Cmd::Bind { expr, rest, .. } => count_expr(expr) + count_cmd(rest),
        Cmd::Ret(e) => count_expr(e),
        Cmd::Cas {
            target,
            expected,
            new,
        } => count_expr(target) + count_expr(expected) + count_expr(new),
    }
}

fn count_expr(e: &Expr) -> usize {
    1 + match e {
        Expr::Var(_) | Expr::Unit | Expr::Nat(_) | Expr::RefVal(_) | Expr::Tid(_) => 0,
        Expr::Lam(_, _, b) => count_expr(b),
        Expr::Pair(a, b) | Expr::App(a, b) | Expr::Prim(_, a, b) => count_expr(a) + count_expr(b),
        Expr::Inl(a) | Expr::Inr(a) | Expr::Fst(a) | Expr::Snd(a) => count_expr(a),
        Expr::CmdVal(_, m) => count_cmd(m),
        Expr::PLam(_, _, b) => count_expr(b),
        Expr::PApp(b, _) => count_expr(b),
        Expr::Let(_, a, b) => count_expr(a) + count_expr(b),
        Expr::Ifz(c, z, _, s) => count_expr(c) + count_expr(z) + count_expr(s),
        Expr::Case(s, _, a, _, b) => count_expr(s) + count_expr(a) + count_expr(b),
        Expr::Fix(_, _, b) => count_expr(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::dsl::*;
    use std::sync::Arc;

    fn dom() -> PriorityDomain {
        PriorityDomain::total_order(["lo", "hi"]).unwrap()
    }

    fn program(main: Cmd, prio: &str, ret: Type) -> Program {
        let d = dom();
        let p = d.priority(prio).unwrap();
        Program {
            name: "test".into(),
            domain: d,
            main_priority: p,
            main: Arc::new(main),
            return_type: ret,
        }
    }

    #[test]
    fn ret_of_literal_checks() {
        let prog = program(ret(nat(42)), "hi", Type::Nat);
        typecheck_program(&prog).unwrap();
    }

    #[test]
    fn arithmetic_and_let_check() {
        let prog = program(
            ret(let_("x", nat(2), add(var("x"), mul(nat(3), nat(4))))),
            "lo",
            Type::Nat,
        );
        typecheck_program(&prog).unwrap();
    }

    #[test]
    fn unbound_variable_rejected() {
        let prog = program(ret(var("nope")), "hi", Type::Nat);
        assert!(matches!(
            typecheck_program(&prog),
            Err(TypeError::UnboundVariable(_))
        ));
    }

    #[test]
    fn application_requires_matching_argument() {
        let good = program(
            ret(app(lam("x", Type::Nat, add(var("x"), nat(1))), nat(3))),
            "hi",
            Type::Nat,
        );
        typecheck_program(&good).unwrap();
        let bad = program(
            ret(app(lam("x", Type::Nat, var("x")), unit())),
            "hi",
            Type::Nat,
        );
        assert!(matches!(
            typecheck_program(&bad),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn touch_of_equal_or_higher_priority_accepted() {
        let d = dom();
        let hi = d.priority("hi").unwrap();
        // At lo: create a hi thread and touch it.
        let m = bind(
            "t",
            cmd(
                d.priority("lo").unwrap(),
                fcreate(hi, Type::Nat, ret(nat(7))),
            ),
            bind(
                "v",
                cmd(d.priority("lo").unwrap(), ftouch(var("t"))),
                ret(var("v")),
            ),
        );
        let prog = program(m, "lo", Type::Nat);
        typecheck_program(&prog).unwrap();
    }

    #[test]
    fn priority_inversion_rejected_and_allowed_without_checks() {
        let d = dom();
        let lo = d.priority("lo").unwrap();
        let hi = d.priority("hi").unwrap();
        // At hi: create a lo thread and touch it — inversion.
        let m = bind(
            "t",
            cmd(hi, fcreate(lo, Type::Nat, ret(nat(7)))),
            bind("v", cmd(hi, ftouch(var("t"))), ret(var("v"))),
        );
        let prog = program(m, "hi", Type::Nat);
        assert!(matches!(
            typecheck_program(&prog),
            Err(TypeError::PriorityInversion { .. })
        ));
        // The unchecked configuration accepts it (this is what the paper's
        // "no-priority" baseline compiles).
        typecheck_program_with(&prog, false).unwrap();
    }

    #[test]
    fn bind_requires_matching_priority() {
        let d = dom();
        let lo = d.priority("lo").unwrap();
        let hi = d.priority("hi").unwrap();
        // Binding a cmd[lo] inside a hi computation is rejected.
        let m = bind("x", cmd(lo, ret(nat(1))), ret(var("x")));
        let prog = program(m, "hi", Type::Nat);
        assert!(typecheck_program(&prog).is_err());
        // Same priority is fine.
        let m = bind("x", cmd(hi, ret(nat(1))), ret(var("x")));
        let prog = program(m, "hi", Type::Nat);
        typecheck_program(&prog).unwrap();
    }

    #[test]
    fn references_are_strongly_typed() {
        let d = dom();
        let hi = d.priority("hi").unwrap();
        let good = dcl(
            "r",
            Type::Nat,
            nat(0),
            bind(
                "_",
                cmd(hi, set(var("r"), nat(5))),
                bind("v", cmd(hi, get(var("r"))), ret(var("v"))),
            ),
        );
        typecheck_program(&program(good, "hi", Type::Nat)).unwrap();
        let bad = dcl(
            "r",
            Type::Nat,
            nat(0),
            bind("_", cmd(hi, set(var("r"), unit())), ret(nat(0))),
        );
        assert!(matches!(
            typecheck_program(&program(bad, "hi", Type::Nat)),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn cas_returns_nat_and_checks_operands() {
        let d = dom();
        let hi = d.priority("hi").unwrap();
        let good = dcl(
            "r",
            Type::Nat,
            nat(0),
            bind("ok", cmd(hi, cas(var("r"), nat(0), nat(1))), ret(var("ok"))),
        );
        typecheck_program(&program(good, "hi", Type::Nat)).unwrap();
        let bad = dcl(
            "r",
            Type::Nat,
            nat(0),
            bind("ok", cmd(hi, cas(var("r"), unit(), nat(1))), ret(var("ok"))),
        );
        assert!(typecheck_program(&program(bad, "hi", Type::Nat)).is_err());
    }

    #[test]
    fn ifz_branches_must_agree() {
        let good = program(ret(ifz(nat(0), nat(1), "p", var("p"))), "hi", Type::Nat);
        typecheck_program(&good).unwrap();
        let bad = program(ret(ifz(nat(0), unit(), "p", var("p"))), "hi", Type::Nat);
        assert!(typecheck_program(&bad).is_err());
    }

    #[test]
    fn fix_must_match_annotation() {
        let t = Type::arrow(Type::Nat, Type::Nat);
        let good = program(
            ret(app(
                fix(
                    "f",
                    t.clone(),
                    lam(
                        "n",
                        Type::Nat,
                        ifz(var("n"), nat(0), "m", app(var("f"), var("m"))),
                    ),
                ),
                nat(3),
            )),
            "hi",
            Type::Nat,
        );
        typecheck_program(&good).unwrap();
        let bad = program(ret(fix("f", Type::Nat, unit())), "hi", Type::Nat);
        assert!(typecheck_program(&bad).is_err());
    }

    #[test]
    fn priority_polymorphism_checks_constraints() {
        let d = dom();
        let lo = d.priority("lo").unwrap();
        let hi = d.priority("hi").unwrap();
        // Λπ ∼ (lo ⪯ π). cmd[π] { t ← fcreate[π]{ret 1}; v ← ftouch t; ret v }
        // instantiated at hi is fine; the constraint lo ⪯ hi holds.
        let pi = rp_priority::PrioVar::new("pi");
        let body = cmd(
            PrioTerm::Var(pi.clone()),
            bind(
                "t",
                cmd(
                    PrioTerm::Var(pi.clone()),
                    fcreate(PrioTerm::Var(pi.clone()), Type::Nat, ret(nat(1))),
                ),
                bind(
                    "v",
                    cmd(PrioTerm::Var(pi.clone()), ftouch(var("t"))),
                    ret(var("v")),
                ),
            ),
        );
        let plam = Expr::PLam(
            pi.clone(),
            Constraint::leq(lo, PrioTerm::Var(pi.clone())),
            Box::new(body),
        );
        let applied_ok = bind(
            "v",
            Expr::PApp(Box::new(plam.clone()), PrioTerm::Const(hi)),
            ret(var("v")),
        );
        let prog = program(applied_ok, "hi", Type::Nat);
        typecheck_program(&prog).unwrap();
        // Instantiating a constraint that fails (hi ⪯ lo required) is
        // rejected.
        let plam_bad = Expr::PLam(
            pi.clone(),
            Constraint::leq(hi, PrioTerm::Var(pi.clone())),
            Box::new(cmd(PrioTerm::Var(pi.clone()), ret(nat(1)))),
        );
        let applied_bad = bind(
            "c",
            Expr::PApp(Box::new(plam_bad), PrioTerm::Const(lo)),
            ret(nat(0)),
        );
        let prog = program(applied_bad, "lo", Type::Nat);
        assert!(matches!(
            typecheck_program(&prog),
            Err(TypeError::ConstraintNotEntailed(_))
        ));
    }

    #[test]
    fn stats_count_judgments() {
        let prog = program(ret(add(nat(1), nat(2))), "hi", Type::Nat);
        let stats = typecheck_program(&prog).unwrap();
        assert!(stats.expr_judgments >= 3);
        assert_eq!(stats.cmd_judgments, 1);
    }

    #[test]
    fn node_count_is_positive_and_monotone() {
        let small = program(ret(nat(1)), "hi", Type::Nat);
        let big = program(ret(add(nat(1), add(nat(2), nat(3)))), "hi", Type::Nat);
        assert!(count_nodes(&big) > count_nodes(&small));
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<TypeError> = vec![
            TypeError::UnboundVariable("x".into()),
            TypeError::UnknownThread(ThreadSym(0)),
            TypeError::UnknownLocation(LocId(0)),
            TypeError::ConstraintNotEntailed("c".into()),
            TypeError::UnknownPriorityVariable("pi".into()),
            TypeError::UnsatisfiablePriorities("core".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    /// A program spawning and touching a thread at an *uninstantiated*
    /// priority variable: the Touch rule's `ρ ⪯ π` goal is deferred and the
    /// solver must raise `π` to at least the toucher's priority.
    fn unannotated_spawn(main_at: &str) -> Program {
        let d = dom();
        let pi = rp_priority::PrioVar::new("pi");
        let m = bind(
            "t",
            cmd(
                d.priority(main_at).unwrap(),
                fcreate(PrioTerm::Var(pi.clone()), Type::Nat, ret(nat(7))),
            ),
            bind(
                "v",
                cmd(d.priority(main_at).unwrap(), ftouch(var("t"))),
                ret(var("v")),
            ),
        );
        program(m, main_at, Type::Nat)
    }

    #[test]
    fn inference_instantiates_free_priority_variables() {
        let prog = unannotated_spawn("hi");
        assert_eq!(prog.free_prio_vars().len(), 1);
        // Plain checking cannot discharge the Touch goal hi ⪯ pi.
        assert!(typecheck_program(&prog).is_err());
        let inf = infer_program(&prog).unwrap();
        assert_eq!(inf.assignment.len(), 1);
        // The least level satisfying hi ⪯ pi is hi itself.
        let assigned = inf
            .assignment
            .get(&rp_priority::PrioVar::new("pi"))
            .and_then(|t| t.as_const());
        assert_eq!(assigned, prog.domain.priority("hi"));
        assert!(!inf.deferred.is_empty());
        // The instantiated program is closed and checks.
        assert!(inf.program.free_prio_vars().is_empty());
        typecheck_program(&inf.program).unwrap();
    }

    #[test]
    fn inference_picks_least_level_when_unconstrained_from_below() {
        let prog = unannotated_spawn("lo");
        let inf = infer_program(&prog).unwrap();
        let assigned = inf
            .assignment
            .get(&rp_priority::PrioVar::new("pi"))
            .and_then(|t| t.as_const());
        // lo ⪯ pi: the least satisfying level is lo.
        assert_eq!(assigned, prog.domain.priority("lo"));
    }

    #[test]
    fn inference_is_identity_on_annotated_programs() {
        let prog = program(ret(add(nat(1), nat(2))), "hi", Type::Nat);
        let inf = infer_program(&prog).unwrap();
        assert!(inf.assignment.is_empty());
        assert_eq!(inf.program, prog);
    }

    #[test]
    fn inference_reports_unsat_core() {
        // A bind at hi of a cmd at an unknown pi that must also be ⪯ lo:
        // pi = hi (bind equality) contradicts pi ⪯ lo (touch at pi of a
        // lo thread... simpler: force pi ⪯ lo and hi ⪯ pi directly).
        let d = dom();
        let pi = rp_priority::PrioVar::new("pi");
        // At hi: bind a cmd[pi] (forces pi = hi) whose body touches a
        // lo-priority thread handle (forces pi ⪯ lo).
        let m = bind(
            "t",
            cmd(
                d.priority("hi").unwrap(),
                fcreate(d.priority("lo").unwrap(), Type::Nat, ret(nat(1))),
            ),
            bind(
                "v",
                Expr::CmdVal(
                    PrioTerm::Var(pi.clone()),
                    std::sync::Arc::new(ftouch(var("t"))),
                ),
                ret(var("v")),
            ),
        );
        let prog = program(m, "hi", Type::Nat);
        let err = infer_program(&prog).unwrap_err();
        assert!(
            matches!(err, TypeError::UnsatisfiablePriorities(_)),
            "{err:?}"
        );
        assert!(err.to_string().contains("pi"), "{err}");
    }

    #[test]
    fn inference_rejects_unknowns_under_quantifiers_with_a_clear_error() {
        // Λpi ∼ pi ⪯ hi. cmd[pi]{ t ← fcreate[q]{…}; ftouch t } with q
        // free: solving q existentially while pi is universally
        // quantified is unsound (the solver would drop pi's hypothesis),
        // so inference must reject with a message naming both variables —
        // not report a bogus inversion against a solver-chosen level.
        let d = dom();
        let hi = d.priority("hi").unwrap();
        let pi = rp_priority::PrioVar::new("pi");
        let body = cmd(
            PrioTerm::Var(pi.clone()),
            bind(
                "t",
                cmd(
                    PrioTerm::Var(pi.clone()),
                    fcreate(PrioTerm::var("q"), Type::Nat, ret(nat(1))),
                ),
                bind(
                    "v",
                    cmd(PrioTerm::Var(pi.clone()), ftouch(var("t"))),
                    ret(var("v")),
                ),
            ),
        );
        let plam = Expr::PLam(
            pi.clone(),
            Constraint::leq(PrioTerm::Var(pi.clone()), hi),
            Box::new(body),
        );
        let applied = bind(
            "v",
            Expr::PApp(Box::new(plam), PrioTerm::Const(hi)),
            ret(var("v")),
        );
        let prog = program(applied, "hi", Type::Nat);
        let err = infer_program(&prog).unwrap_err();
        match &err {
            TypeError::UnsatisfiablePriorities(msg) => {
                assert!(
                    msg.contains("quantified") && msg.contains("pi") && msg.contains("annotate"),
                    "{msg}"
                );
            }
            other => panic!("expected a quantifier-mixing rejection, got {other:?}"),
        }
    }

    #[test]
    fn free_prio_vars_respect_binders() {
        let pi = rp_priority::PrioVar::new("pi");
        let bound = Expr::PLam(
            pi.clone(),
            Constraint::leq(PrioTerm::Var(pi.clone()), PrioTerm::Var(pi.clone())),
            Box::new(cmd(PrioTerm::Var(pi.clone()), ret(nat(1)))),
        );
        assert!(bound.free_prio_vars().is_empty());
        let free = cmd(PrioTerm::Var(pi.clone()), ret(nat(1)));
        assert_eq!(free.free_prio_vars(), vec![pi]);
    }
}
