//! The λ⁴ᵢ type system (Figures 5, 6, 7).
//!
//! The expression judgment `Γ ⊢^R_Σ e : τ` and the command judgment
//! `Γ ⊢^R_Σ m ∼: τ @ ρ` are implemented by [`Typechecker::check_expr`] and
//! [`Typechecker::check_cmd`].  The signature `Σ` records the types of
//! memory locations and the return type / priority of thread symbols; the
//! context `Γ` records term variables, priority variables, and priority
//! constraint hypotheses.
//!
//! The single rule that rules out priority inversions is `Touch`
//! (Figure 6): `ftouch e` is only well-typed at priority `ρ` when `e` is a
//! handle to a thread at priority `ρ'` with `Γ ⊢^R ρ ⪯ ρ'`.  The checker can
//! be run with that check disabled ([`Typechecker::without_priority_checks`])
//! to measure the cost of the priority layer for the Table 1 reproduction.

// `TypeError` carries the full offending expression/command for error
// messages; boxing it would complicate every checker rule for a cold path.
#![allow(clippy::result_large_err)]

use crate::syntax::{Cmd, Expr, LocId, Program, ThreadSym, Type, Var};
use rp_priority::{Constraint, ConstraintCtx, PrioTerm, PriorityDomain};
use std::collections::HashMap;
use std::fmt;

/// The signature `Σ`: thread symbols `a ∼ τ @ ρ` and locations `s ∼ τ`.
#[derive(Debug, Clone, Default)]
pub struct Signature {
    threads: HashMap<ThreadSym, (Type, PrioTerm)>,
    locs: HashMap<LocId, Type>,
}

impl Signature {
    /// An empty signature.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `a ∼ τ @ ρ`.
    pub fn declare_thread(&mut self, a: ThreadSym, ty: Type, prio: PrioTerm) {
        self.threads.insert(a, (ty, prio));
    }

    /// Adds `s ∼ τ`.
    pub fn declare_loc(&mut self, s: LocId, ty: Type) {
        self.locs.insert(s, ty);
    }

    /// Looks up a thread symbol.
    pub fn thread(&self, a: ThreadSym) -> Option<&(Type, PrioTerm)> {
        self.threads.get(&a)
    }

    /// Looks up a location.
    pub fn loc(&self, s: LocId) -> Option<&Type> {
        self.locs.get(&s)
    }
}

/// Type errors reported by the checker.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// A variable is not bound in `Γ`.
    UnboundVariable(Var),
    /// A thread symbol is not declared in `Σ`.
    UnknownThread(ThreadSym),
    /// A memory location is not declared in `Σ`.
    UnknownLocation(LocId),
    /// Two types that must match do not.
    Mismatch {
        /// What the context required.
        expected: Type,
        /// What the term actually has.
        found: Type,
        /// Where the mismatch occurred.
        context: String,
    },
    /// An elimination form was applied to a value of the wrong shape.
    WrongShape {
        /// What shape was required (e.g. "function", "pair").
        wanted: &'static str,
        /// The type that was found instead.
        found: Type,
        /// Where it happened.
        context: String,
    },
    /// The `Touch` rule's priority side condition `ρ ⪯ ρ'` failed:
    /// a priority inversion.
    PriorityInversion {
        /// The priority of the command performing the `ftouch`.
        at: PrioTerm,
        /// The priority of the touched thread.
        touched: PrioTerm,
    },
    /// A priority constraint required by ∀-elimination is not entailed.
    ConstraintNotEntailed(String),
    /// An undeclared priority variable was mentioned.
    UnknownPriorityVariable(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            TypeError::UnknownThread(a) => write!(f, "unknown thread symbol {a}"),
            TypeError::UnknownLocation(s) => write!(f, "unknown memory location {s}"),
            TypeError::Mismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected:?}, found {found:?}"
            ),
            TypeError::WrongShape {
                wanted,
                found,
                context,
            } => write!(f, "expected a {wanted} in {context}, found {found:?}"),
            TypeError::PriorityInversion { at, touched } => write!(
                f,
                "priority inversion: ftouch at priority {at} of a thread at priority {touched}"
            ),
            TypeError::ConstraintNotEntailed(c) => {
                write!(f, "priority constraint not entailed: {c}")
            }
            TypeError::UnknownPriorityVariable(v) => {
                write!(f, "undeclared priority variable `{v}`")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// The typing context `Γ`: term variables plus priority hypotheses.
#[derive(Debug, Clone, Default)]
pub struct TypeCtx {
    vars: Vec<(Var, Type)>,
    /// Priority variables and constraint hypotheses.
    pub prio: ConstraintCtx,
}

impl TypeCtx {
    /// An empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extends the context with a term variable binding.
    pub fn bind(&self, x: &str, ty: Type) -> TypeCtx {
        let mut new = self.clone();
        new.vars.push((x.to_string(), ty));
        new
    }

    /// Looks up a term variable (innermost binding wins).
    pub fn lookup(&self, x: &str) -> Option<&Type> {
        self.vars.iter().rev().find(|(y, _)| y == x).map(|(_, t)| t)
    }
}

/// Statistics gathered during a type-checking run, used by the Table 1
/// reproduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Number of expression typing judgments derived.
    pub expr_judgments: usize,
    /// Number of command typing judgments derived.
    pub cmd_judgments: usize,
    /// Number of priority-constraint entailment checks performed.
    pub entailment_checks: usize,
}

/// The λ⁴ᵢ type checker.
#[derive(Debug, Clone)]
pub struct Typechecker {
    domain: PriorityDomain,
    check_priorities: bool,
    stats: CheckStats,
}

impl Typechecker {
    /// A checker over the given priority domain with the priority layer
    /// enabled.
    pub fn new(domain: PriorityDomain) -> Self {
        Typechecker {
            domain,
            check_priorities: true,
            stats: CheckStats::default(),
        }
    }

    /// A checker with the priority side conditions disabled (the "without
    /// priority" configuration of Table 1).  All other typing rules still
    /// apply.
    pub fn without_priority_checks(domain: PriorityDomain) -> Self {
        Typechecker {
            domain,
            check_priorities: false,
            stats: CheckStats::default(),
        }
    }

    /// Statistics from the judgments derived so far.
    pub fn stats(&self) -> CheckStats {
        self.stats
    }

    fn entails(&mut self, ctx: &TypeCtx, c: &Constraint) -> Result<(), TypeError> {
        self.stats.entailment_checks += 1;
        if !self.check_priorities {
            return Ok(());
        }
        ctx.prio
            .check(&self.domain, c)
            .map_err(|e| TypeError::ConstraintNotEntailed(e.to_string()))
    }

    /// The expression judgment `Γ ⊢^R_Σ e : τ` (Figure 5).
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] when the expression is ill-typed.
    pub fn check_expr(
        &mut self,
        ctx: &TypeCtx,
        sig: &Signature,
        e: &Expr,
    ) -> Result<Type, TypeError> {
        self.stats.expr_judgments += 1;
        match e {
            Expr::Var(x) => ctx
                .lookup(x)
                .cloned()
                .ok_or_else(|| TypeError::UnboundVariable(x.clone())),
            Expr::Unit => Ok(Type::Unit),
            Expr::Nat(_) => Ok(Type::Nat),
            Expr::Lam(x, ty, body) => {
                let body_ty = self.check_expr(&ctx.bind(x, ty.clone()), sig, body)?;
                Ok(Type::arrow(ty.clone(), body_ty))
            }
            Expr::Pair(a, b) => Ok(Type::prod(
                self.check_expr(ctx, sig, a)?,
                self.check_expr(ctx, sig, b)?,
            )),
            Expr::Inl(v) => {
                // Without an annotation the right component is unconstrained;
                // we type sums only through `case`, so synthesise with Unit,
                // and rely on `expect_type` call sites for refinement.
                Ok(Type::sum(self.check_expr(ctx, sig, v)?, Type::Unit))
            }
            Expr::Inr(v) => Ok(Type::sum(Type::Unit, self.check_expr(ctx, sig, v)?)),
            Expr::RefVal(s) => sig
                .loc(*s)
                .map(|t| Type::reference(t.clone()))
                .ok_or(TypeError::UnknownLocation(*s)),
            Expr::Tid(a) => sig
                .thread(*a)
                .map(|(t, p)| Type::thread(t.clone(), p.clone()))
                .ok_or(TypeError::UnknownThread(*a)),
            Expr::CmdVal(p, m) => {
                let t = self.check_cmd(ctx, sig, m, p)?;
                Ok(Type::cmd(t, p.clone()))
            }
            Expr::PLam(pi, c, body) => {
                let mut inner = ctx.clone();
                inner.prio.declare(pi.clone());
                inner.prio.assume(c.clone());
                let t = self.check_expr(&inner, sig, body)?;
                Ok(Type::Forall(pi.clone(), c.clone(), Box::new(t)))
            }
            Expr::PApp(v, rho) => {
                let t = self.check_expr(ctx, sig, v)?;
                match t {
                    Type::Forall(pi, c, body) => {
                        let instantiated_c =
                            c.subst(&rp_priority::PrioSubst::single(pi.clone(), rho.clone()));
                        self.entails(ctx, &instantiated_c)?;
                        Ok(body.subst_prio(&pi, rho))
                    }
                    other => Err(TypeError::WrongShape {
                        wanted: "priority-polymorphic value",
                        found: other,
                        context: "priority application".into(),
                    }),
                }
            }
            Expr::Let(x, e1, e2) => {
                let t1 = self.check_expr(ctx, sig, e1)?;
                self.check_expr(&ctx.bind(x, t1), sig, e2)
            }
            Expr::Ifz(cond, zero, x, succ) => {
                let tc = self.check_expr(ctx, sig, cond)?;
                self.expect(&tc, &Type::Nat, "ifz scrutinee")?;
                let tz = self.check_expr(ctx, sig, zero)?;
                let ts = self.check_expr(&ctx.bind(x, Type::Nat), sig, succ)?;
                self.expect(&ts, &tz, "ifz branches")?;
                Ok(tz)
            }
            Expr::App(f, a) => {
                let tf = self.check_expr(ctx, sig, f)?;
                match tf {
                    Type::Arrow(t1, t2) => {
                        let ta = self.check_expr(ctx, sig, a)?;
                        self.expect(&ta, &t1, "function argument")?;
                        Ok(*t2)
                    }
                    other => Err(TypeError::WrongShape {
                        wanted: "function",
                        found: other,
                        context: "application".into(),
                    }),
                }
            }
            Expr::Fst(v) => match self.check_expr(ctx, sig, v)? {
                Type::Prod(a, _) => Ok(*a),
                other => Err(TypeError::WrongShape {
                    wanted: "pair",
                    found: other,
                    context: "fst".into(),
                }),
            },
            Expr::Snd(v) => match self.check_expr(ctx, sig, v)? {
                Type::Prod(_, b) => Ok(*b),
                other => Err(TypeError::WrongShape {
                    wanted: "pair",
                    found: other,
                    context: "snd".into(),
                }),
            },
            Expr::Case(scrut, x, e1, y, e2) => match self.check_expr(ctx, sig, scrut)? {
                Type::Sum(tl, tr) => {
                    let t1 = self.check_expr(&ctx.bind(x, *tl), sig, e1)?;
                    let t2 = self.check_expr(&ctx.bind(y, *tr), sig, e2)?;
                    self.expect(&t2, &t1, "case branches")?;
                    Ok(t1)
                }
                other => Err(TypeError::WrongShape {
                    wanted: "sum",
                    found: other,
                    context: "case".into(),
                }),
            },
            Expr::Fix(x, ty, body) => {
                let t = self.check_expr(&ctx.bind(x, ty.clone()), sig, body)?;
                self.expect(&t, ty, "fix body")?;
                Ok(ty.clone())
            }
            Expr::Prim(op, a, b) => {
                let ta = self.check_expr(ctx, sig, a)?;
                let tb = self.check_expr(ctx, sig, b)?;
                self.expect(&ta, &Type::Nat, "primitive operand")?;
                self.expect(&tb, &Type::Nat, "primitive operand")?;
                let _ = op;
                Ok(Type::Nat)
            }
        }
    }

    /// The command judgment `Γ ⊢^R_Σ m ∼: τ @ ρ` (Figure 6).
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] when the command is ill-typed, including the
    /// `Touch` rule's priority-inversion check.
    pub fn check_cmd(
        &mut self,
        ctx: &TypeCtx,
        sig: &Signature,
        m: &Cmd,
        rho: &PrioTerm,
    ) -> Result<Type, TypeError> {
        self.stats.cmd_judgments += 1;
        match m {
            Cmd::Fcreate {
                prio,
                ret_type,
                body,
            } => {
                let t = self.check_cmd(ctx, sig, body, prio)?;
                self.expect(&t, ret_type, "fcreate body")?;
                Ok(Type::thread(ret_type.clone(), prio.clone()))
            }
            Cmd::Ftouch(e) => {
                let te = self.check_expr(ctx, sig, e)?;
                match te {
                    Type::Thread(t, rho_prime) => {
                        if self.check_priorities {
                            self.entails(ctx, &Constraint::leq(rho.clone(), rho_prime.clone()))
                                .map_err(|_| TypeError::PriorityInversion {
                                    at: rho.clone(),
                                    touched: rho_prime.clone(),
                                })?;
                        } else {
                            self.stats.entailment_checks += 1;
                        }
                        Ok(*t)
                    }
                    other => Err(TypeError::WrongShape {
                        wanted: "thread handle",
                        found: other,
                        context: "ftouch".into(),
                    }),
                }
            }
            Cmd::Dcl {
                ty,
                var,
                init,
                body,
            } => {
                let ti = self.check_expr(ctx, sig, init)?;
                self.expect(&ti, ty, "reference initialiser")?;
                // The body is checked with the binder standing for the fresh
                // reference (the paper introduces s ∼ τ into Σ; binding a
                // variable of reference type is the syntax-directed version).
                self.check_cmd(&ctx.bind(var, Type::reference(ty.clone())), sig, body, rho)
            }
            Cmd::Get(e) => match self.check_expr(ctx, sig, e)? {
                Type::Ref(t) => Ok(*t),
                other => Err(TypeError::WrongShape {
                    wanted: "reference",
                    found: other,
                    context: "get (!)".into(),
                }),
            },
            Cmd::Set(target, value) => match self.check_expr(ctx, sig, target)? {
                Type::Ref(t) => {
                    let tv = self.check_expr(ctx, sig, value)?;
                    self.expect(&tv, &t, "assignment")?;
                    Ok(*t)
                }
                other => Err(TypeError::WrongShape {
                    wanted: "reference",
                    found: other,
                    context: "assignment target".into(),
                }),
            },
            Cmd::Bind { var, expr, rest } => match self.check_expr(ctx, sig, expr)? {
                Type::Cmd(t1, rho_e) => {
                    if self.check_priorities && &rho_e != rho {
                        // The Bind rule requires the encapsulated command to
                        // run at the ambient priority.
                        return Err(TypeError::Mismatch {
                            expected: Type::cmd(*t1, rho.clone()),
                            found: Type::cmd(Type::Unit, rho_e),
                            context: "bind: encapsulated command priority".into(),
                        });
                    }
                    self.check_cmd(&ctx.bind(var, *t1), sig, rest, rho)
                }
                other => Err(TypeError::WrongShape {
                    wanted: "encapsulated command",
                    found: other,
                    context: "bind".into(),
                }),
            },
            Cmd::Ret(e) => self.check_expr(ctx, sig, e),
            Cmd::Cas {
                target,
                expected,
                new,
            } => match self.check_expr(ctx, sig, target)? {
                Type::Ref(t) => {
                    let te = self.check_expr(ctx, sig, expected)?;
                    let tn = self.check_expr(ctx, sig, new)?;
                    self.expect(&te, &t, "cas expected value")?;
                    self.expect(&tn, &t, "cas new value")?;
                    Ok(Type::Nat)
                }
                other => Err(TypeError::WrongShape {
                    wanted: "reference",
                    found: other,
                    context: "cas target".into(),
                }),
            },
        }
    }

    /// Structural type compatibility.  Sum types synthesised from bare
    /// `inl`/`inr` values carry a `Unit` placeholder on the missing side, so
    /// compatibility treats a required sum side as satisfied by the
    /// placeholder; everything else is exact equality.
    fn compatible(&self, found: &Type, expected: &Type) -> bool {
        if found == expected {
            return true;
        }
        match (found, expected) {
            (Type::Sum(fl, fr), Type::Sum(el, er)) => {
                (self.compatible(fl, el) || **fl == Type::Unit || **el == Type::Unit)
                    && (self.compatible(fr, er) || **fr == Type::Unit || **er == Type::Unit)
            }
            (Type::Prod(a1, b1), Type::Prod(a2, b2)) => {
                self.compatible(a1, a2) && self.compatible(b1, b2)
            }
            (Type::Ref(a), Type::Ref(b)) => self.compatible(a, b),
            (Type::Arrow(a1, b1), Type::Arrow(a2, b2)) => {
                self.compatible(a1, a2) && self.compatible(b1, b2)
            }
            (Type::Cmd(a, p), Type::Cmd(b, q)) => self.compatible(a, b) && p == q,
            (Type::Thread(a, p), Type::Thread(b, q)) => self.compatible(a, b) && p == q,
            _ => false,
        }
    }

    fn expect(&mut self, found: &Type, expected: &Type, context: &str) -> Result<(), TypeError> {
        if self.compatible(found, expected) {
            Ok(())
        } else {
            Err(TypeError::Mismatch {
                expected: expected.clone(),
                found: found.clone(),
                context: context.to_string(),
            })
        }
    }
}

/// Type checks a whole program: the main command must have the program's
/// declared return type at the main priority, in the empty context and
/// signature.
///
/// # Errors
///
/// Returns the first [`TypeError`] encountered.
pub fn typecheck_program(prog: &Program) -> Result<CheckStats, TypeError> {
    typecheck_program_with(prog, true)
}

/// Like [`typecheck_program`], optionally disabling the priority layer
/// (the Table 1 "without priorities" configuration).
///
/// # Errors
///
/// Returns the first [`TypeError`] encountered.
pub fn typecheck_program_with(
    prog: &Program,
    check_priorities: bool,
) -> Result<CheckStats, TypeError> {
    let mut tc = if check_priorities {
        Typechecker::new(prog.domain.clone())
    } else {
        Typechecker::without_priority_checks(prog.domain.clone())
    };
    let ctx = TypeCtx::new();
    let sig = Signature::new();
    let t = tc.check_cmd(&ctx, &sig, &prog.main, &PrioTerm::Const(prog.main_priority))?;
    let mut probe = tc.clone();
    probe.expect(&t, &prog.return_type, "program return type")?;
    Ok(probe.stats())
}

/// Counts the AST nodes of a program (expressions + commands + types), the
/// size metric used alongside type-checking time in the Table 1
/// reproduction.
pub fn count_nodes(prog: &Program) -> usize {
    count_cmd(&prog.main)
}

fn count_cmd(m: &Cmd) -> usize {
    1 + match m {
        Cmd::Fcreate { body, .. } => count_cmd(body),
        Cmd::Ftouch(e) => count_expr(e),
        Cmd::Dcl { init, body, .. } => count_expr(init) + count_cmd(body),
        Cmd::Get(e) => count_expr(e),
        Cmd::Set(a, b) => count_expr(a) + count_expr(b),
        Cmd::Bind { expr, rest, .. } => count_expr(expr) + count_cmd(rest),
        Cmd::Ret(e) => count_expr(e),
        Cmd::Cas {
            target,
            expected,
            new,
        } => count_expr(target) + count_expr(expected) + count_expr(new),
    }
}

fn count_expr(e: &Expr) -> usize {
    1 + match e {
        Expr::Var(_) | Expr::Unit | Expr::Nat(_) | Expr::RefVal(_) | Expr::Tid(_) => 0,
        Expr::Lam(_, _, b) => count_expr(b),
        Expr::Pair(a, b) | Expr::App(a, b) | Expr::Prim(_, a, b) => count_expr(a) + count_expr(b),
        Expr::Inl(a) | Expr::Inr(a) | Expr::Fst(a) | Expr::Snd(a) => count_expr(a),
        Expr::CmdVal(_, m) => count_cmd(m),
        Expr::PLam(_, _, b) => count_expr(b),
        Expr::PApp(b, _) => count_expr(b),
        Expr::Let(_, a, b) => count_expr(a) + count_expr(b),
        Expr::Ifz(c, z, _, s) => count_expr(c) + count_expr(z) + count_expr(s),
        Expr::Case(s, _, a, _, b) => count_expr(s) + count_expr(a) + count_expr(b),
        Expr::Fix(_, _, b) => count_expr(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::dsl::*;
    use std::sync::Arc;

    fn dom() -> PriorityDomain {
        PriorityDomain::total_order(["lo", "hi"]).unwrap()
    }

    fn program(main: Cmd, prio: &str, ret: Type) -> Program {
        let d = dom();
        let p = d.priority(prio).unwrap();
        Program {
            name: "test".into(),
            domain: d,
            main_priority: p,
            main: Arc::new(main),
            return_type: ret,
        }
    }

    #[test]
    fn ret_of_literal_checks() {
        let prog = program(ret(nat(42)), "hi", Type::Nat);
        typecheck_program(&prog).unwrap();
    }

    #[test]
    fn arithmetic_and_let_check() {
        let prog = program(
            ret(let_("x", nat(2), add(var("x"), mul(nat(3), nat(4))))),
            "lo",
            Type::Nat,
        );
        typecheck_program(&prog).unwrap();
    }

    #[test]
    fn unbound_variable_rejected() {
        let prog = program(ret(var("nope")), "hi", Type::Nat);
        assert!(matches!(
            typecheck_program(&prog),
            Err(TypeError::UnboundVariable(_))
        ));
    }

    #[test]
    fn application_requires_matching_argument() {
        let good = program(
            ret(app(lam("x", Type::Nat, add(var("x"), nat(1))), nat(3))),
            "hi",
            Type::Nat,
        );
        typecheck_program(&good).unwrap();
        let bad = program(
            ret(app(lam("x", Type::Nat, var("x")), unit())),
            "hi",
            Type::Nat,
        );
        assert!(matches!(
            typecheck_program(&bad),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn touch_of_equal_or_higher_priority_accepted() {
        let d = dom();
        let hi = d.priority("hi").unwrap();
        // At lo: create a hi thread and touch it.
        let m = bind(
            "t",
            cmd(
                d.priority("lo").unwrap(),
                fcreate(hi, Type::Nat, ret(nat(7))),
            ),
            bind(
                "v",
                cmd(d.priority("lo").unwrap(), ftouch(var("t"))),
                ret(var("v")),
            ),
        );
        let prog = program(m, "lo", Type::Nat);
        typecheck_program(&prog).unwrap();
    }

    #[test]
    fn priority_inversion_rejected_and_allowed_without_checks() {
        let d = dom();
        let lo = d.priority("lo").unwrap();
        let hi = d.priority("hi").unwrap();
        // At hi: create a lo thread and touch it — inversion.
        let m = bind(
            "t",
            cmd(hi, fcreate(lo, Type::Nat, ret(nat(7)))),
            bind("v", cmd(hi, ftouch(var("t"))), ret(var("v"))),
        );
        let prog = program(m, "hi", Type::Nat);
        assert!(matches!(
            typecheck_program(&prog),
            Err(TypeError::PriorityInversion { .. })
        ));
        // The unchecked configuration accepts it (this is what the paper's
        // "no-priority" baseline compiles).
        typecheck_program_with(&prog, false).unwrap();
    }

    #[test]
    fn bind_requires_matching_priority() {
        let d = dom();
        let lo = d.priority("lo").unwrap();
        let hi = d.priority("hi").unwrap();
        // Binding a cmd[lo] inside a hi computation is rejected.
        let m = bind("x", cmd(lo, ret(nat(1))), ret(var("x")));
        let prog = program(m, "hi", Type::Nat);
        assert!(typecheck_program(&prog).is_err());
        // Same priority is fine.
        let m = bind("x", cmd(hi, ret(nat(1))), ret(var("x")));
        let prog = program(m, "hi", Type::Nat);
        typecheck_program(&prog).unwrap();
    }

    #[test]
    fn references_are_strongly_typed() {
        let d = dom();
        let hi = d.priority("hi").unwrap();
        let good = dcl(
            "r",
            Type::Nat,
            nat(0),
            bind(
                "_",
                cmd(hi, set(var("r"), nat(5))),
                bind("v", cmd(hi, get(var("r"))), ret(var("v"))),
            ),
        );
        typecheck_program(&program(good, "hi", Type::Nat)).unwrap();
        let bad = dcl(
            "r",
            Type::Nat,
            nat(0),
            bind("_", cmd(hi, set(var("r"), unit())), ret(nat(0))),
        );
        assert!(matches!(
            typecheck_program(&program(bad, "hi", Type::Nat)),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn cas_returns_nat_and_checks_operands() {
        let d = dom();
        let hi = d.priority("hi").unwrap();
        let good = dcl(
            "r",
            Type::Nat,
            nat(0),
            bind("ok", cmd(hi, cas(var("r"), nat(0), nat(1))), ret(var("ok"))),
        );
        typecheck_program(&program(good, "hi", Type::Nat)).unwrap();
        let bad = dcl(
            "r",
            Type::Nat,
            nat(0),
            bind("ok", cmd(hi, cas(var("r"), unit(), nat(1))), ret(var("ok"))),
        );
        assert!(typecheck_program(&program(bad, "hi", Type::Nat)).is_err());
    }

    #[test]
    fn ifz_branches_must_agree() {
        let good = program(ret(ifz(nat(0), nat(1), "p", var("p"))), "hi", Type::Nat);
        typecheck_program(&good).unwrap();
        let bad = program(ret(ifz(nat(0), unit(), "p", var("p"))), "hi", Type::Nat);
        assert!(typecheck_program(&bad).is_err());
    }

    #[test]
    fn fix_must_match_annotation() {
        let t = Type::arrow(Type::Nat, Type::Nat);
        let good = program(
            ret(app(
                fix(
                    "f",
                    t.clone(),
                    lam(
                        "n",
                        Type::Nat,
                        ifz(var("n"), nat(0), "m", app(var("f"), var("m"))),
                    ),
                ),
                nat(3),
            )),
            "hi",
            Type::Nat,
        );
        typecheck_program(&good).unwrap();
        let bad = program(ret(fix("f", Type::Nat, unit())), "hi", Type::Nat);
        assert!(typecheck_program(&bad).is_err());
    }

    #[test]
    fn priority_polymorphism_checks_constraints() {
        let d = dom();
        let lo = d.priority("lo").unwrap();
        let hi = d.priority("hi").unwrap();
        // Λπ ∼ (lo ⪯ π). cmd[π] { t ← fcreate[π]{ret 1}; v ← ftouch t; ret v }
        // instantiated at hi is fine; the constraint lo ⪯ hi holds.
        let pi = rp_priority::PrioVar::new("pi");
        let body = cmd(
            PrioTerm::Var(pi.clone()),
            bind(
                "t",
                cmd(
                    PrioTerm::Var(pi.clone()),
                    fcreate(PrioTerm::Var(pi.clone()), Type::Nat, ret(nat(1))),
                ),
                bind(
                    "v",
                    cmd(PrioTerm::Var(pi.clone()), ftouch(var("t"))),
                    ret(var("v")),
                ),
            ),
        );
        let plam = Expr::PLam(
            pi.clone(),
            Constraint::leq(lo, PrioTerm::Var(pi.clone())),
            Box::new(body),
        );
        let applied_ok = bind(
            "v",
            Expr::PApp(Box::new(plam.clone()), PrioTerm::Const(hi)),
            ret(var("v")),
        );
        let prog = program(applied_ok, "hi", Type::Nat);
        typecheck_program(&prog).unwrap();
        // Instantiating a constraint that fails (hi ⪯ lo required) is
        // rejected.
        let plam_bad = Expr::PLam(
            pi.clone(),
            Constraint::leq(hi, PrioTerm::Var(pi.clone())),
            Box::new(cmd(PrioTerm::Var(pi.clone()), ret(nat(1)))),
        );
        let applied_bad = bind(
            "c",
            Expr::PApp(Box::new(plam_bad), PrioTerm::Const(lo)),
            ret(nat(0)),
        );
        let prog = program(applied_bad, "lo", Type::Nat);
        assert!(matches!(
            typecheck_program(&prog),
            Err(TypeError::ConstraintNotEntailed(_))
        ));
    }

    #[test]
    fn stats_count_judgments() {
        let prog = program(ret(add(nat(1), nat(2))), "hi", Type::Nat);
        let stats = typecheck_program(&prog).unwrap();
        assert!(stats.expr_judgments >= 3);
        assert_eq!(stats.cmd_judgments, 1);
    }

    #[test]
    fn node_count_is_positive_and_monotone() {
        let small = program(ret(nat(1)), "hi", Type::Nat);
        let big = program(ret(add(nat(1), add(nat(2), nat(3)))), "hi", Type::Nat);
        assert!(count_nodes(&big) > count_nodes(&small));
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<TypeError> = vec![
            TypeError::UnboundVariable("x".into()),
            TypeError::UnknownThread(ThreadSym(0)),
            TypeError::UnknownLocation(LocId(0)),
            TypeError::ConstraintNotEntailed("c".into()),
            TypeError::UnknownPriorityVariable("pi".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
