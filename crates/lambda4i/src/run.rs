//! Running λ⁴ᵢ programs: the D-Par driver, per-thread response times, and
//! cross-checks against the Section 2 cost model.

use crate::machine::{Machine, MachineError, StepOutcome};
use crate::policy::{ScriptedSelector, SelectionPolicy, Selector};
use crate::syntax::{Expr, Program, ThreadSym};
use rp_core::bound::{check_bounds_batch, BoundReport};
use rp_core::graph::{CostDag, ThreadId as DagThreadId, VertexId};
use rp_core::schedule::Schedule;
use rp_core::wellformed::{check_strongly_well_formed, check_well_formed};
use rp_priority::Priority;
use serde::{Deserialize, Serialize};

/// Configuration of a program run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Number of simulated cores `P` (threads stepped per parallel step).
    pub cores: usize,
    /// The thread-selection policy for the D-Par rule.
    pub policy: SelectionPolicy,
    /// Upper bound on parallel steps before the run is aborted.
    pub max_steps: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            cores: 2,
            policy: SelectionPolicy::Prompt,
            max_steps: 1_000_000,
        }
    }
}

/// Per-thread outcome of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadReport {
    /// The thread symbol.
    pub sym: ThreadSym,
    /// The corresponding thread of the produced cost graph.
    pub dag_thread: DagThreadId,
    /// The thread's priority.
    pub priority: Priority,
    /// Parallel step at which the thread was created (and became ready).
    pub created_at_step: usize,
    /// Parallel step at which it finished.
    pub finished_at_step: usize,
    /// Observed response time in parallel steps (finish − ready + 1).
    pub response_steps: usize,
    /// The Theorem 2.3 report for this thread against the executed schedule.
    pub bound: BoundReport,
}

/// Summary facts about the produced cost graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphReport {
    /// Whether the graph satisfies Definition 1.
    pub well_formed: bool,
    /// Whether the graph satisfies Definition 4.
    pub strongly_well_formed: bool,
    /// Number of vertices (total work).
    pub vertices: usize,
    /// Number of threads.
    pub threads: usize,
    /// Number of weak edges (state communication events observed).
    pub weak_edges: usize,
}

/// The full result of running a program.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The program's name.
    pub name: String,
    /// Total number of parallel steps taken.
    pub steps: usize,
    /// The main thread's final value.
    pub value: Expr,
    /// The cost graph produced by the cost semantics.
    pub graph: CostDag,
    /// The schedule actually executed (vertex set per parallel step).
    pub schedule: Schedule,
    /// Whether the executed schedule is admissible for the graph (always
    /// true by construction — recorded for cross-checking).
    pub admissible: bool,
    /// Whether the executed schedule is prompt for the graph.
    pub prompt: bool,
    /// Per-thread reports.
    pub threads: Vec<ThreadReport>,
    /// Graph-level facts.
    pub graph_report: GraphReport,
}

impl RunResult {
    /// The report of the main thread.
    pub fn main_thread(&self) -> &ThreadReport {
        &self.threads[0]
    }

    /// Whether any thread's boundary-adjusted Theorem 2.3 bound is violated
    /// even though the theorem's hypotheses hold — i.e. whether this run is a
    /// counterexample to the theorem.
    pub fn any_bound_counterexample(&self) -> bool {
        self.threads.iter().any(|t| t.bound.is_counterexample())
    }

    /// Mean response time (in parallel steps) over threads at the given
    /// priority.
    pub fn mean_response_at(&self, priority: Priority) -> Option<f64> {
        let xs: Vec<usize> = self
            .threads
            .iter()
            .filter(|t| t.priority == priority)
            .map(|t| t.response_steps)
            .collect();
        if xs.is_empty() {
            None
        } else {
            Some(xs.iter().sum::<usize>() as f64 / xs.len() as f64)
        }
    }
}

/// Runs a program to completion under the given configuration.
///
/// Each parallel step selects up to `cores` runnable threads with the
/// configured policy and steps each of them once (the D-Par rule).  The
/// executed vertices per step are recorded as a [`Schedule`] of the final
/// graph, which is admissible by construction and is checked for promptness
/// and against the Theorem 2.3 bound for every thread.
///
/// # Errors
///
/// Returns a [`MachineError`] if the program gets stuck (ill-typed input) or
/// exceeds `max_steps`.
pub fn run_program(program: &Program, config: &RunConfig) -> Result<RunResult, MachineError> {
    assert!(config.cores > 0, "need at least one core");
    let mut selector = Selector::new(config.policy);
    let (machine, steps) = drive(program, config, |domain, runnable, cores| {
        selector.select(domain, runnable, cores)
    })?;
    finalize(program, config, machine, steps)
}

/// Runs a program replaying an explicit schedule script.
///
/// `script[i]` lists the thread symbols to step at parallel step `i` — the
/// explicit-schedule driver the DPOR explorer replays candidate
/// interleavings through.  Scripted entries naming threads that are not
/// runnable at that step are skipped (see [`ScriptedSelector`]); once the
/// script is exhausted the run continues under `config.policy` until every
/// thread finishes, so partial scripts (replayed prefixes) are legal.
///
/// # Errors
///
/// Returns a [`MachineError`] if the program gets stuck (ill-typed input) or
/// exceeds `config.max_steps`.
pub fn run_with_schedule(
    program: &Program,
    script: &[Vec<ThreadSym>],
    config: &RunConfig,
) -> Result<RunResult, MachineError> {
    assert!(config.cores > 0, "need at least one core");
    let mut selector = ScriptedSelector::new(script.iter().cloned(), config.policy);
    let (machine, steps) = drive(program, config, |domain, runnable, cores| {
        selector.select(domain, runnable, cores)
    })?;
    finalize(program, config, machine, steps)
}

/// The shared D-Par loop: steps the machine until all threads are done,
/// asking `choose` which runnable threads to step each round.
fn drive(
    program: &Program,
    config: &RunConfig,
    mut choose: impl FnMut(
        &rp_priority::PriorityDomain,
        &[(ThreadSym, Priority)],
        usize,
    ) -> Vec<ThreadSym>,
) -> Result<(Machine, Vec<Vec<VertexId>>), MachineError> {
    let mut machine = Machine::new(program);
    let mut steps: Vec<Vec<VertexId>> = Vec::new();

    while !machine.all_done() {
        if steps.len() >= config.max_steps {
            return Err(MachineError::StepLimitExceeded(config.max_steps));
        }
        let runnable: Vec<(ThreadSym, Priority)> = machine
            .runnable()
            .iter()
            .map(|&s| (s, machine.thread(s).priority))
            .collect();
        if runnable.is_empty() {
            // All unfinished threads are blocked: deadlock.  Well-typed
            // programs cannot deadlock through ftouch alone (the touch
            // relation follows thread creation), so report stuckness.
            let blocked = machine
                .thread_syms()
                .into_iter()
                .find(|s| !machine.thread(*s).is_done())
                .expect("not all done");
            return Err(MachineError::Stuck {
                thread: blocked,
                state: "deadlock: every unfinished thread is blocked".into(),
            });
        }
        let chosen = choose(machine.domain(), &runnable, config.cores);
        let step_index = steps.len();
        let mut executed = Vec::new();
        for sym in chosen {
            match machine.step_thread(sym, step_index)? {
                StepOutcome::Progress(v) => executed.push(v),
                StepOutcome::Blocked(_) | StepOutcome::Finished => {}
            }
        }
        steps.push(executed);
    }
    Ok((machine, steps))
}

/// Builds the [`RunResult`] from a finished machine and its recorded steps:
/// cost graph, schedule, well-formedness facts, and per-thread Theorem 2.3
/// reports.
fn finalize(
    program: &Program,
    config: &RunConfig,
    machine: Machine,
    steps: Vec<Vec<VertexId>>,
) -> Result<RunResult, MachineError> {
    let total_steps = steps.len();
    let value = machine
        .main_value()
        .cloned()
        .expect("all threads done implies main done");

    // Collect per-thread timing before consuming the machine.
    let timings: Vec<(ThreadSym, DagThreadId, Priority, usize, usize)> = machine
        .thread_entries()
        .iter()
        .map(|t| {
            (
                t.sym,
                t.dag_thread,
                t.priority,
                t.created_at_step,
                t.finished_at_step.expect("all done"),
            )
        })
        .collect();

    let graph = machine
        .into_graph()
        .expect("machine-produced graphs are acyclic");

    let schedule = Schedule {
        num_cores: config.cores,
        steps,
    };

    let well_formed = check_well_formed(&graph).is_ok();
    let strongly_well_formed = check_strongly_well_formed(&graph).is_ok();
    let graph_report = GraphReport {
        well_formed,
        strongly_well_formed,
        vertices: graph.vertex_count(),
        threads: graph.thread_count(),
        weak_edges: graph.weak_edges().len(),
    };

    // One shared pass computes the bound ingredients for every thread.
    let bounds = check_bounds_batch(&graph, &schedule);
    let threads = timings
        .into_iter()
        .map(
            |(sym, dag_thread, priority, created, finished)| ThreadReport {
                sym,
                dag_thread,
                priority,
                created_at_step: created,
                finished_at_step: finished,
                response_steps: finished.saturating_sub(created) + 1,
                bound: bounds[dag_thread.index()].clone(),
            },
        )
        .collect();

    Ok(RunResult {
        name: program.name.clone(),
        steps: total_steps,
        value,
        admissible: schedule.is_admissible(&graph),
        prompt: schedule.is_prompt(&graph),
        schedule,
        threads,
        graph,
        graph_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progs;
    use crate::typecheck::typecheck_program;

    #[test]
    fn parallel_fib_runs_and_is_well_formed() {
        let prog = progs::parallel_fib(6);
        typecheck_program(&prog).unwrap();
        let result = run_program(&prog, &RunConfig::default()).unwrap();
        assert_eq!(result.value, Expr::Nat(8));
        assert!(result.graph_report.well_formed);
        assert!(result.graph_report.strongly_well_formed);
        assert!(
            result.admissible,
            "machine runs are admissible by construction"
        );
        assert!(result.graph_report.threads > 1, "fib(6) spawns futures");
    }

    #[test]
    fn executed_schedule_respects_bound_under_prompt_policy() {
        let prog = progs::server_with_background(4, 6);
        typecheck_program(&prog).unwrap();
        for cores in [1, 2, 4] {
            let config = RunConfig {
                cores,
                policy: SelectionPolicy::Prompt,
                max_steps: 200_000,
            };
            let result = run_program(&prog, &config).unwrap();
            assert!(result.admissible);
            assert!(
                !result.any_bound_counterexample(),
                "bound violated at P={cores}"
            );
        }
    }

    #[test]
    fn oblivious_policy_still_terminates_with_same_value() {
        let prog = progs::parallel_fib(5);
        let prompt = run_program(&prog, &RunConfig::default()).unwrap();
        let oblivious = run_program(
            &prog,
            &RunConfig {
                policy: SelectionPolicy::Oblivious,
                ..RunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(prompt.value, oblivious.value);
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let prog = progs::figure1_program();
        let cfg = |seed| RunConfig {
            cores: 2,
            policy: SelectionPolicy::Random { seed },
            max_steps: 100_000,
        };
        let a = run_program(&prog, &cfg(1)).unwrap();
        let b = run_program(&prog, &cfg(1)).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.graph.vertex_count(), b.graph.vertex_count());
    }

    #[test]
    fn step_limit_is_enforced() {
        let prog = progs::parallel_fib(8);
        let result = run_program(
            &prog,
            &RunConfig {
                max_steps: 5,
                ..RunConfig::default()
            },
        );
        assert!(matches!(result, Err(MachineError::StepLimitExceeded(5))));
    }

    #[test]
    fn response_times_favor_high_priority_under_prompt() {
        // A high-priority "request" thread races a pile of low-priority
        // background threads for one core.  The prompt policy should answer
        // the request much sooner than the oblivious policy does.
        let prog = progs::server_with_background(6, 24);
        let one_core = |policy| RunConfig {
            cores: 1,
            policy,
            max_steps: 400_000,
        };
        let prompt = run_program(&prog, &one_core(SelectionPolicy::Prompt)).unwrap();
        let oblivious = run_program(&prog, &one_core(SelectionPolicy::Oblivious)).unwrap();
        let hi = prog.domain.priority("interactive").unwrap();
        let t_prompt = prompt.mean_response_at(hi).unwrap();
        let t_oblivious = oblivious.mean_response_at(hi).unwrap();
        assert!(
            t_prompt < t_oblivious,
            "prompt {t_prompt} should beat oblivious {t_oblivious}"
        );
    }
}
