//! Integration tests for the λ⁴ᵢ front-end pipeline: the checked-in `.l4i`
//! fixtures, the seeded pretty→parse→typecheck→solve property sweep, and
//! end-to-end machine-vs-runtime cross-checks.

use rp_lambda4i::compile::CompileConfig;
use rp_lambda4i::generate::{random_program, GenConfig};
use rp_lambda4i::parse::{parse_cmd, parse_program};
use rp_lambda4i::pipeline::{run_pipeline, run_source, PipelineConfig};
use rp_lambda4i::pretty;
use rp_lambda4i::progs::{self, sources};
use rp_lambda4i::run::RunConfig;
use rp_lambda4i::syntax::Expr;
use rp_lambda4i::typecheck::{infer_program, typecheck_program};
use rp_priority::PriorityDomain;

/// Every checked-in `.l4i` fixture parses to exactly the AST its `progs`
/// builder constructs.
#[test]
fn fixtures_parse_to_the_embedded_asts() {
    for (name, src, builder) in sources::all() {
        let parsed = parse_program(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            parsed,
            builder(),
            "fixture `{name}` diverged from its builder"
        );
    }
}

/// The fixtures are byte-identical to what the pretty-printer emits for the
/// embedded ASTs (modulo the leading comment lines) — i.e. the checked-in
/// text is canonical, not just parse-equivalent.
#[test]
fn fixtures_are_canonically_formatted() {
    for (name, src, builder) in sources::all() {
        let body: String = src
            .lines()
            .filter(|l| !l.trim_start().starts_with("--"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(
            body,
            pretty::program_to_string(&builder()),
            "fixture `{name}` is not canonically formatted; regenerate with \
             `cargo run --example gen_fixtures`"
        );
    }
}

/// Every fixture typechecks with solver-inferred priority instantiations
/// (vacuously for the fully annotated library) and round-trips
/// pretty → parse → AST-equal.
#[test]
fn fixtures_roundtrip_and_typecheck_under_inference() {
    for (name, src, _) in sources::all() {
        let prog = parse_program(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let reprinted = pretty::program_to_string(&prog);
        let reparsed = parse_program(&reprinted).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(reparsed, prog, "{name}: pretty∘parse is not the identity");
        infer_program(&prog).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// The acceptance sweep: every fixture runs on both the abstract machine
/// and the traced rp-icilk runtime with zero Theorem 2.3 counterexamples.
#[test]
fn fixtures_run_on_both_backends_without_counterexamples() {
    let config = PipelineConfig {
        machine: RunConfig {
            cores: 2,
            max_steps: 2_000_000,
            ..RunConfig::default()
        },
        runtime: CompileConfig {
            workers: 2,
            tracing: true,
            drain_secs: 60,
        },
    };
    for (name, src, _) in sources::all() {
        let report = run_source(src, &config).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            report.counterexamples(),
            0,
            "{name}: Theorem 2.3 counterexample on a front-end run"
        );
        let recon = report
            .reconstruction
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: traced run must reconstruct"));
        assert_eq!(recon.skipped, 0, "{name}: tracer lost tasks");
        assert!(
            rp_core::wellformed::check_well_formed(&recon.dag).is_ok(),
            "{name}: reconstructed graph ill-formed"
        );
    }
}

/// Deterministic fixtures compute the same value on both back ends.
#[test]
fn deterministic_fixtures_agree_across_backends() {
    let report = run_source(sources::PARALLEL_FIB, &PipelineConfig::default()).unwrap();
    assert_eq!(report.value(), &Expr::Nat(5), "fib(5)");
    assert!(report.values_agree());
}

/// Seeded property sweep: random well-typed programs round-trip through
/// pretty → parse, typecheck, and solve.  Closed and open (solver-
/// exercising) configurations are both swept.
#[test]
fn property_sweep_random_programs_roundtrip_and_solve() {
    for (label, cfg) in [
        (
            "closed",
            GenConfig {
                free_prio_probability: 0.0,
                ..GenConfig::default()
            },
        ),
        (
            "open",
            GenConfig {
                free_prio_probability: 0.5,
                ..GenConfig::default()
            },
        ),
    ] {
        for seed in 0..40u64 {
            let prog = random_program(seed, &cfg);
            // pretty → parse round-trip.
            let src = pretty::program_to_string(&prog);
            let parsed =
                parse_program(&src).unwrap_or_else(|e| panic!("{label} seed {seed}: {e}\n{src}"));
            assert_eq!(parsed, prog, "{label} seed {seed}: round-trip mismatch");
            // typecheck + solve.
            let inf =
                infer_program(&prog).unwrap_or_else(|e| panic!("{label} seed {seed}: {e}\n{src}"));
            assert!(inf.program.free_prio_vars().is_empty());
            typecheck_program(&inf.program)
                .unwrap_or_else(|e| panic!("{label} seed {seed} (instantiated): {e}"));
        }
    }
}

/// A slice of the random sweep runs end to end on both back ends.
#[test]
fn random_programs_execute_on_both_backends() {
    let cfg = GenConfig {
        free_prio_probability: 0.4,
        steps: 4,
        ..GenConfig::default()
    };
    let pipeline = PipelineConfig {
        runtime: CompileConfig {
            workers: 1,
            tracing: true,
            drain_secs: 30,
        },
        ..PipelineConfig::default()
    };
    for seed in 0..6u64 {
        let prog = random_program(seed, &cfg);
        let report = run_pipeline(&prog, &pipeline).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(report.counterexamples(), 0, "seed {seed}");
        // Generated programs are race-free on their return value only when
        // no step reads a ref a spawned thread writes — spawned bodies are
        // pure, so both back ends must agree.
        assert!(report.values_agree(), "seed {seed}: values diverged");
    }
}

/// Golden error-message tests for the parser and the solver, end to end.
#[test]
fn golden_frontend_error_messages() {
    // Parser: position and expectation.
    let err =
        parse_program("priorities: lo < hi\nprogram p : nat\nmain @ hi:\n  ret 1 2\n").unwrap_err();
    assert_eq!((err.line, err.col), (4, 9), "{err}");
    assert!(err.to_string().contains("expected end of program"), "{err}");

    // Parser: commands need `:=` to be assignments.
    let d = PriorityDomain::total_order(["lo", "hi"]).unwrap();
    let err = parse_cmd("1", &d).unwrap_err();
    assert!(
        err.to_string().contains("expected `:=` in assignment"),
        "{err}"
    );

    // Solver (through the pipeline): an unsatisfiable spawn priority.
    // At hi, binding cmd[pi] forces pi = hi; touching a lo thread from pi
    // forces pi ⪯ lo — unsatisfiable, reported with the core.
    let src = "\
priorities: lo < hi
program unsat : nat
main @ hi:
  t <- cmd[hi]{fcreate[lo; nat]{ret 1}};
  v <- cmd[pi]{ftouch t};
  ret v
";
    let err = run_source(src, &PipelineConfig::default()).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("priority inference failed") && msg.contains("pi"),
        "{msg}"
    );

    // Type checker: inversion survives the pipeline with its message.
    let src_inversion = "\
priorities: lo < hi
program inv : nat
main @ hi:
  t <- cmd[hi]{fcreate[lo; nat]{ret 1}};
  v <- cmd[hi]{ftouch t};
  ret v
";
    let err = run_source(src_inversion, &PipelineConfig::default()).unwrap_err();
    assert!(err.to_string().contains("priority inversion"), "{err}");
}

/// The machine and runtime graphs describe the same program: thread counts
/// match for deterministic spawn structures.
#[test]
fn machine_and_runtime_graphs_agree_on_thread_count() {
    let prog = progs::server_with_background(2, 2);
    let report = run_pipeline(
        &prog,
        &PipelineConfig {
            runtime: CompileConfig {
                workers: 1,
                tracing: true,
                drain_secs: 30,
            },
            ..PipelineConfig::default()
        },
    )
    .unwrap();
    let machine_threads = report.machine.graph.thread_count();
    let runtime_threads = report
        .reconstruction
        .as_ref()
        .expect("traced")
        .dag
        .thread_count();
    assert_eq!(
        machine_threads, runtime_threads,
        "both back ends spawn one thread per fcreate plus main"
    );
}
