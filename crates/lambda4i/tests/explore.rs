//! Golden explorer verdicts for the checked-in race fixtures.
//!
//! Each fixture in `crates/lambda4i/progs/` that exists for the DPOR
//! explorer (`racy-counter.l4i`, `cas-counter.l4i`, `handoff.l4i`) has a
//! known race classification and outcome set, asserted exactly here: the
//! racy fixture's race-pair sites are pinned down to the access label and
//! thread level, and the race-free fixtures must come back with zero racy
//! pairs and a single bit-identical outcome.

use rp_lambda4i::explore::{explore_program, ExploreConfig, ExploreReport};
use rp_lambda4i::parse::parse_program;
use rp_lambda4i::progs::{self, sources};
use rp_lambda4i::run::{run_with_schedule, RunConfig};
use rp_lambda4i::syntax::{dsl::nat, Program, ThreadSym};
use rp_lambda4i::typecheck::infer_program;

fn explore(prog: &Program) -> ExploreReport {
    explore_program(prog, &ExploreConfig::default())
        .unwrap_or_else(|e| panic!("{}: exploration failed: {e}", prog.name))
}

/// The racy counter loses an increment on some schedules: the explorer must
/// exhaust the space, report exactly the outcomes {1, 2}, and pin the racy
/// pairs to the two children's `get`/`set` sites.
#[test]
fn racy_counter_verdict_is_golden() {
    let report = explore(&progs::racy_counter_program());
    assert!(report.complete, "fixture space must be exhaustible");
    assert!(report.racy());
    assert!(!report.deterministic());
    assert!(report.pruned_choices > 0, "DPOR must prune something");
    assert_eq!(report.bound_counterexamples, 0);

    let mut values: Vec<_> = report.outcomes.iter().map(|o| o.value.clone()).collect();
    values.sort_by_key(|v| format!("{v:?}"));
    assert_eq!(values, vec![nat(1), nat(2)], "lost-update outcome set");

    // Both children are spawned by `main` in program order, so their thread
    // symbols are stable across schedules: a1 is future `a`, a2 is `b`.
    let (a, b) = (ThreadSym(1), ThreadSym(2));
    let mut sites: Vec<(ThreadSym, &str, ThreadSym, &str)> = report
        .races
        .iter()
        .map(|r| {
            (
                r.first.thread,
                r.first.label,
                r.second.thread,
                r.second.label,
            )
        })
        .collect();
    sites.sort();
    assert_eq!(
        sites,
        vec![
            (a, "get-read", b, "set-write"),
            (a, "set-write", b, "get-read"),
            (a, "set-write", b, "set-write"),
        ],
        "exact racy site pairs between the two increments"
    );
}

/// Every race schedule the explorer reports is a real counterexample: it
/// replays deterministically through the scripted driver and reproduces one
/// of the observed outcomes.
#[test]
fn racy_counter_race_schedules_replay() {
    let prog = progs::racy_counter_program();
    let report = explore(&prog);
    let config = RunConfig {
        cores: 1,
        ..RunConfig::default()
    };
    let mut replayed = 0usize;
    for race in &report.races {
        assert!(
            !race.schedules.is_empty(),
            "race without a witness schedule"
        );
        for script in &race.schedules {
            let rerun = run_with_schedule(&prog, script, &config)
                .expect("race witness schedule must replay");
            assert_eq!(rerun.steps, script.len(), "script must drive every step");
            assert!(
                rerun.value == nat(1) || rerun.value == nat(2),
                "replay produced an outcome the explorer never saw: {:?}",
                rerun.value
            );
            replayed += 1;
        }
    }
    assert!(replayed >= report.races.len());
}

/// The CAS counter is the same shape as the racy counter but fully
/// synchronized: zero racy pairs, at least one CAS-synchronized pair, and a
/// deterministic final value of 2.
#[test]
fn cas_counter_verdict_is_golden() {
    let report = explore(&progs::cas_counter_program());
    assert!(report.complete);
    assert!(!report.racy(), "CAS-synchronized pairs must not be racy");
    assert!(report.deterministic());
    assert_eq!(report.outcomes[0].value, nat(2));
    assert!(
        report.cas_pairs > 0,
        "the cas/cas conflicts must be observed"
    );
    assert!(
        report.schedules_explored > 1,
        "the cas conflicts force real re-exploration"
    );
    assert_eq!(report.bound_counterexamples, 0);
}

/// The touch-ordered handoff has conflicting accesses but every pair is
/// ordered by the fcreate/ftouch edges alone, so DPOR needs exactly one
/// schedule and reports zero races of any kind.
#[test]
fn handoff_verdict_is_golden() {
    let report = explore(&progs::handoff_program());
    assert!(report.complete);
    assert!(!report.racy());
    assert!(report.deterministic());
    assert_eq!(report.outcomes[0].value, nat(42));
    assert_eq!(report.races.len(), 0);
    assert_eq!(report.cas_pairs, 0, "no cas in the program");
    assert!(
        report.ordered_pairs > 0,
        "the handoff conflicts are ordered"
    );
    assert_eq!(
        report.schedules_explored, 1,
        "touch ordering leaves nothing to backtrack"
    );
    assert_eq!(report.bound_counterexamples, 0);
}

/// The checked-in `.l4i` sources produce the same verdicts as the embedded
/// builders when driven through the full front end (parse → infer →
/// explore), so the fixtures stay golden end to end.
#[test]
fn fixture_sources_explore_to_the_same_verdicts() {
    let expectations: &[(&str, bool, &[u64])] = &[
        ("racy-counter", true, &[1, 2]),
        ("cas-counter", false, &[2]),
        ("handoff", false, &[42]),
    ];
    for &(name, racy, values) in expectations {
        let (_, src, _) = sources::all()
            .into_iter()
            .find(|(n, _, _)| *n == name)
            .unwrap_or_else(|| panic!("fixture `{name}` missing from sources::all()"));
        let parsed = parse_program(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let inferred = infer_program(&parsed).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = explore(&inferred.program);
        assert!(report.complete, "{name}: space must be exhaustible");
        assert_eq!(report.racy(), racy, "{name}: race verdict diverged");
        let mut got: Vec<_> = report.outcomes.iter().map(|o| o.value.clone()).collect();
        got.sort_by_key(|v| format!("{v:?}"));
        let want: Vec<_> = values.iter().map(|&n| nat(n)).collect();
        assert_eq!(got, want, "{name}: outcome set diverged");
        assert_eq!(report.bound_counterexamples, 0, "{name}: Theorem 2.3");
    }
}
